"""Online bandwidth auction: streaming admission on an ISP backbone.

The offline examples clear one sealed-bid auction over all customer
requests at once.  Real bandwidth demand arrives over time, so here the
same ISP topology serves a *stream*: requests arrive under a Poisson law,
the online auction admits irrevocably with exponential dual prices, and
each admitted customer is charged its batch critical value the moment it
is admitted — no waiting for the day's traffic to settle.

The example contrasts three arrival patterns over the same workload
(Poisson, synchronized bursts, and an adversarial cheapest-first ordering)
against the offline ``Bounded-UFP`` optimum-in-hindsight, and prints the
pricing-engine counters showing that per-arrival admission reuses cached
shortest-path trees instead of re-running Dijkstra per request.

Run with::

    python examples/online_bandwidth_stream.py
"""

from __future__ import annotations

from repro import bounded_ufp, flows
from repro.online import (
    OnlineAuction,
    adversarial_arrivals,
    bursty_arrivals,
    poisson_arrivals,
)
from repro.utils.tables import Table


def main() -> None:
    epsilon = 0.5
    instance = flows.isp_instance(
        num_core=4,
        leaves_per_core=3,
        core_capacity=16.0,
        access_capacity=8.0,
        num_requests=120,
        seed=2026,
        name="isp-stream",
    )
    print(f"topology: {instance.graph!r}")
    print(f"{instance.num_requests} customer requests, B = {instance.capacity_bound():.1f}")

    offline = bounded_ufp(instance, epsilon)
    print(f"\noffline Bounded-UFP (hindsight): value {offline.value:.2f}, "
          f"{len(offline.routed)} admitted")

    streams = {
        "poisson": poisson_arrivals(
            instance.requests, rate=2.0, batch_window=1.0, seed=1
        ),
        "bursty": bursty_arrivals(
            instance.requests, burst_size=10, shuffle=True, seed=1
        ),
        "adversarial": adversarial_arrivals(
            instance.requests, order="density_ascending"
        ),
    }

    table = Table(
        columns=["arrival", "batches", "admitted", "value", "ratio",
                 "revenue", "dijkstra", "tree_reuses"],
        title="online streaming admission (threshold policy, payments on)",
    )
    for name, stream in streams.items():
        auction = OnlineAuction(
            instance.graph,
            epsilon,
            admission="threshold",
            score_threshold=1.0,
            compute_payments=True,
            name=f"{instance.name}-{name}",
        )
        result = auction.run(stream)
        result.validate()
        extra = result.stats.extra
        table.add_row(
            {
                "arrival": name,
                "batches": result.num_batches,
                "admitted": f"{result.num_selected}/{instance.num_requests}",
                "value": f"{result.value:.2f}",
                "ratio": f"{result.value / offline.value:.3f}",
                "revenue": f"{result.revenue:.2f}",
                "dijkstra": int(extra["pricing_dijkstra_calls"]),
                "tree_reuses": int(extra["pricing_tree_reuses"]),
            }
        )
    print()
    print(table.render())
    print(
        "\nThe adversarial (cheapest-density-first) order shows why online "
        "admission is strictly harder: early low-value commitments consume "
        "capacity the later, better requests then cannot get.  The tree_reuses "
        "column counts arrivals priced from a cached shortest-path tree — "
        "sources untouched by admitted paths are never re-priced."
    )


if __name__ == "__main__":
    main()

"""Unsplittable flow with repetitions: batch throughput maximization.

Section 5 of the paper: when a request may be satisfied repeatedly (think of
a content provider shipping as many replicas of a transfer as the network
will carry, earning per delivered copy), the same primal-dual machinery is a
``(1 + eps)``-approximation — the e/(e-1) barrier of the single-shot problem
disappears.

The example runs ``Bounded-UFP-Repeat`` on a replication workload, compares
it with the single-shot ``Bounded-UFP`` and with the fractional optima of
both formulations (Figures 1 and 5), and shows how often each transfer was
replicated.

Run with::

    python examples/repetitions_throughput.py
"""

from __future__ import annotations

from collections import Counter

from repro import bounded_ufp, bounded_ufp_repeat, flows, lp
from repro.utils.tables import Table


def main() -> None:
    epsilon = 0.3
    instance = flows.random_instance(
        num_vertices=10,
        edge_probability=0.35,
        capacity=60.0,
        num_requests=14,
        demand_range=(0.4, 1.0),
        value_range=(0.5, 2.0),
        seed=31,
        name="replication",
    )
    print(f"instance: {instance!r}, B = {instance.capacity_bound():.1f}")

    single_shot = bounded_ufp(instance, epsilon)
    repeated = bounded_ufp_repeat(instance, epsilon)
    repeated.validate(allow_repetitions=True)

    lp_single = lp.solve_fractional_ufp(instance)
    lp_repeat = lp.solve_fractional_ufp(instance, repetitions=True)

    table = Table(columns=["formulation", "algorithm value", "fractional optimum", "ratio"],
                  title="single-shot vs repetitions")
    table.add_row(["single-shot (Figure 1)", single_shot.value, lp_single.objective,
                   lp_single.objective / max(single_shot.value, 1e-12)])
    table.add_row(["with repetitions (Figure 5)", repeated.value, lp_repeat.objective,
                   lp_repeat.objective / max(repeated.value, 1e-12)])
    print()
    print(table.render())
    print(f"\npaper guarantee with repetitions: 1 + 6*eps = {1 + 6 * epsilon:.2f} "
          f"(Theorem 5.1); note how much closer to 1 the measured ratio is than the "
          f"single-shot one can be in the worst case.")

    copies = Counter(item.request_index for item in repeated.routed)
    table = Table(columns=["transfer", "route hops", "demand", "value per copy",
                           "copies shipped", "total value"],
                  title="\nreplication profile (top transfers)")
    for idx, count in copies.most_common(8):
        request = instance.requests[idx]
        hops = len(repeated.routed_for(idx)[0].edge_ids)
        table.add_row([request.name, hops, request.demand, request.value, count,
                       count * request.value])
    print(table.render())

    utilization = repeated.edge_utilization()
    print(f"\nnetwork utilization under repetitions: mean {utilization.mean():.2%}, "
          f"max {utilization.max():.2%} "
          f"(vs mean {single_shot.edge_utilization().mean():.2%} single-shot)")
    print(f"iterations: {repeated.stats.iterations} "
          f"(bound m*c_max/d_min = "
          f"{instance.num_edges * instance.graph.max_capacity / instance.min_demand:.0f})")


if __name__ == "__main__":
    main()

"""ISP bandwidth auction: selling guaranteed-bandwidth paths to selfish customers.

The motivating application of the paper: an ISP owns a two-level backbone
(well-provisioned core, thinner access links) and customers request
point-to-point bandwidth between their sites, each with a private demand and
a private willingness to pay.  The ISP wants to maximize the served value but
cannot trust the declarations — so it runs the truthful ``Bounded-UFP``
mechanism and charges critical-value payments.

The example reports the allocation, the payments/revenue, link utilization,
and contrasts the truthful mechanism with a non-truthful "first-price greedy"
policy whose declared-value maximization invites bid shading.

Run with::

    python examples/isp_bandwidth_auction.py
"""

from __future__ import annotations

from functools import partial

import numpy as np

from repro import bounded_ufp, flows, lp, mechanism
from repro.baselines import greedy_ufp_by_value
from repro.utils.tables import Table


def main() -> None:
    epsilon = 0.3
    instance = flows.isp_instance(
        num_core=6,
        leaves_per_core=4,
        core_capacity=80.0,
        access_capacity=40.0,
        num_requests=120,
        seed=2024,
        name="isp-auction",
    )
    print(f"topology: {instance.graph!r}")
    print(f"{instance.num_requests} customer requests, B = {instance.capacity_bound():.1f}")

    # --- truthful mechanism ------------------------------------------------ #
    result = mechanism.run_truthful_ufp_mechanism(instance, epsilon)
    allocation = result.allocation
    allocation.validate()
    fractional = lp.solve_fractional_ufp(instance)

    print(f"\nBounded-UFP mechanism:")
    print(f"  accepted customers : {allocation.num_selected} / {instance.num_requests}")
    print(f"  social welfare     : {allocation.value:.2f}")
    print(f"  fractional optimum : {fractional.objective:.2f} "
          f"(ratio {fractional.objective / allocation.value:.4f})")
    print(f"  revenue collected  : {result.revenue:.2f}")

    utilization = allocation.edge_utilization()
    print(f"  link utilization   : mean {utilization.mean():.2%}, "
          f"max {utilization.max():.2%}")

    # The most contended links (highest utilization).
    order = np.argsort(-utilization)[:5]
    table = Table(columns=["edge", "endpoints", "capacity", "load", "utilization"],
                  title="\nbusiest links")
    for eid in order:
        u, v = instance.graph.edge_endpoints(int(eid))
        table.add_row([int(eid), f"{u}->{v}", instance.graph.edge_capacity(int(eid)),
                       float(allocation.edge_loads()[eid]), float(utilization[eid])])
    print(table.render())

    # A few customers with what they declared and what they pay.
    table = Table(columns=["customer", "route", "demand", "declared value", "payment"],
                  title="\nsample of accepted customers")
    for item in allocation.routed[:8]:
        table.add_row([
            item.request.name,
            "->".join(str(v) for v in item.vertices),
            item.request.demand,
            item.request.value,
            float(result.payments[item.request_index]),
        ])
    print(table.render())

    # --- why truthfulness matters ------------------------------------------ #
    # A first-price greedy policy (pay what you bid) invites shading: the
    # highest-value customer could declare just above the competition and keep
    # the difference.  Under the critical-value payments of Bounded-UFP the
    # audit finds no profitable misreport.
    audit = mechanism.audit_ufp_truthfulness(
        partial(bounded_ufp, epsilon=epsilon),
        instance,
        agents=list(range(8)),
        misreports_per_agent=3,
        seed=1,
    )
    print(f"\ntruthfulness audit of the mechanism: {audit.summary()}")

    greedy = greedy_ufp_by_value(instance)
    print(f"\nfor reference, greedy-by-declared-value (not truthful) achieves "
          f"value {greedy.value:.2f}")


if __name__ == "__main__":
    main()

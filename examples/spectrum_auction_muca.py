"""Multi-unit spectrum auction with single-minded bidders.

Section 4 of the paper: a regulator auctions ``c_u`` identical licenses of
each spectrum block ``u``; every bidder wants one specific bundle of blocks
(one license of each) and has a private value for getting the whole bundle.
``Bounded-MUCA`` allocates the licenses truthfully with an ``e/(e-1)``-type
guarantee — and remains truthful even when the *bundles* are private
("unknown single-minded bidders", Corollary 4.2).

The example compares the truthful mechanism against greedy heuristics and
the fractional LP bound, prints winner payments, and runs the value- and
bundle-monotonicity audits.

Run with::

    python examples/spectrum_auction_muca.py
"""

from __future__ import annotations

from functools import partial

from repro import auctions, bounded_muca, lp, mechanism
from repro.baselines import greedy_muca_by_density, greedy_muca_by_value
from repro.types import E_OVER_E_MINUS_1
from repro.utils.tables import Table


def main() -> None:
    epsilon = 0.3
    auction = auctions.correlated_auction(
        num_items=24,
        num_bids=150,
        multiplicity=45.0,
        num_popular=4,
        popular_probability=0.7,
        seed=99,
        name="spectrum",
    )
    print(f"auction: {auction!r}, every block has {auction.capacity_bound():.0f} licenses")
    print(f"popular (contended) blocks: {auction.metadata['popular_items']}")

    # --- algorithms --------------------------------------------------------- #
    fractional = lp.solve_fractional_muca(auction)
    allocation = bounded_muca(auction, epsilon)
    allocation.validate()
    greedy_value = greedy_muca_by_value(auction)
    greedy_density = greedy_muca_by_density(auction)

    table = Table(columns=["algorithm", "winners", "value", "ratio vs LP"],
                  title="allocation comparison")
    for name, result in [
        (f"Bounded-MUCA(eps={epsilon})", allocation),
        ("Greedy by value", greedy_value),
        ("Greedy by value density", greedy_density),
    ]:
        table.add_row([name, result.num_winners, result.value,
                       fractional.objective / max(result.value, 1e-12)])
    print()
    print(table.render())
    print(f"fractional LP optimum: {fractional.objective:.2f}; "
          f"paper guarantee (1+6eps)e/(e-1) = {(1 + 6 * epsilon) * E_OVER_E_MINUS_1:.3f}")

    # --- truthful payments --------------------------------------------------- #
    result = mechanism.run_truthful_muca_mechanism(auction, epsilon)
    print(f"\ntruthful mechanism revenue: {result.revenue:.2f} "
          f"(social welfare {result.social_welfare:.2f})")
    sample = Table(columns=["bidder", "bundle size", "declared value", "payment"],
                   title="\nsample of winners")
    for idx in result.allocation.winners[:8]:
        bid = auction.bids[idx]
        sample.add_row([bid.name, bid.size, bid.value, float(result.payments[idx])])
    print(sample.render())

    # --- audits -------------------------------------------------------------- #
    monotone = mechanism.check_muca_monotonicity(
        partial(bounded_muca, epsilon=epsilon), auction, trials_per_bid=1, seed=0
    )
    print(f"\nvalue-monotonicity audit: {monotone.summary()}")

    truthful = mechanism.audit_muca_truthfulness(
        partial(bounded_muca, epsilon=epsilon),
        auction,
        agents=list(range(6)),
        misreports_per_agent=3,
        seed=1,
    )
    print(f"truthfulness audit      : {truthful.summary()}")


if __name__ == "__main__":
    main()

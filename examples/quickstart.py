"""Quickstart: route selfish bandwidth requests with a truthful mechanism.

This example walks through the core loop of the library:

1. generate a random large-capacity unsplittable-flow instance,
2. run ``Bounded-UFP`` (the paper's Algorithm 1) on it,
3. compare the achieved value against the fractional LP upper bound,
4. turn the allocation into a truthful mechanism by charging critical-value
   payments, and
5. sanity-check monotonicity — the property that makes the payments work.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from functools import partial

from repro import bounded_ufp, flows, lp, mechanism
from repro.types import E_OVER_E_MINUS_1


def main() -> None:
    # 1. A random directed network with comfortably large capacities
    #    (B = 40 >> ln m) and 60 connection requests with private types.
    instance = flows.random_instance(
        num_vertices=14,
        edge_probability=0.25,
        capacity=40.0,
        num_requests=60,
        demand_range=(0.2, 1.0),
        value_range=(0.5, 2.0),
        seed=7,
        name="quickstart",
    )
    epsilon = 0.3
    print(f"instance: {instance!r}  B = {instance.capacity_bound():.1f}")
    print(f"capacity assumption B >= ln(m)/eps^2 holds: "
          f"{instance.meets_capacity_assumption(epsilon)}")

    # 2. The monotone primal-dual algorithm.
    allocation = bounded_ufp(instance, epsilon)
    allocation.validate()
    print(f"\nBounded-UFP(eps={epsilon}) selected {allocation.num_selected} requests, "
          f"value {allocation.value:.3f} "
          f"({allocation.stats.iterations} iterations, "
          f"{allocation.stats.shortest_path_calls} shortest-path calls)")

    # 3. The fractional optimum upper-bounds the best possible integral value.
    fractional = lp.solve_fractional_ufp(instance)
    ratio = fractional.objective / allocation.value
    guarantee = (1 + 6 * epsilon) * E_OVER_E_MINUS_1
    print(f"fractional LP optimum: {fractional.objective:.3f}")
    print(f"measured ratio OPT_frac / ALG = {ratio:.4f} "
          f"(paper guarantee {guarantee:.3f}, e/(e-1) = {E_OVER_E_MINUS_1:.3f})")

    # 4. Critical-value payments make the algorithm a truthful mechanism
    #    (Theorem 2.3 / Corollary 3.2).
    result = mechanism.run_truthful_ufp_mechanism(instance, epsilon)
    print(f"\ntruthful mechanism: social welfare {result.social_welfare:.3f}, "
          f"revenue {result.revenue:.3f}")
    winners = sorted(result.allocation.selected_indices())[:5]
    for idx in winners:
        request = instance.requests[idx]
        print(f"  winner {request.name}: value {request.value:.3f}, "
              f"pays {result.payments[idx]:.3f}")

    # 5. The property that makes it all work: monotonicity.
    report = mechanism.check_ufp_monotonicity(
        partial(bounded_ufp, epsilon=epsilon), instance, trials_per_request=2, seed=1
    )
    print(f"\nmonotonicity audit: {report.summary()}")


if __name__ == "__main__":
    main()

"""Reproduce the paper's lower-bound constructions (Figures 2, 3 and 4).

The surprise of the paper is negative: *no* reasonable iterative path
minimizing algorithm — the natural family that contains Bounded-UFP itself —
can beat ``e/(e-1)`` on the directed staircase of Figure 2, or ``4/3`` on the
undirected instance of Figure 3 (for any capacity!), and the auction analogue
loses ``4/3`` on the Figure 4 partition family.

This example builds all three constructions, runs members of the family with
the adversarial tie-breaking used in the proofs, and prints the measured
fractions next to the paper's formulas.

Run with::

    python examples/adversarial_lower_bounds.py
"""

from __future__ import annotations

import math

from repro import auctions, flows
from repro.core import (
    BoundedUFPPriority,
    BundlePriority,  # noqa: F401  (exported for users extending the family)
    ReasonableIterativeBundleMinimizer,
    ReasonableIterativePathMinimizer,
    UnitCapacityPriority,
    partition_tie_break,
    ring7_tie_break,
    staircase_tie_break,
)
from repro.core.reasonable import BundleExponentialPriority
from repro.types import E_OVER_E_MINUS_1
from repro.utils.tables import Table


def staircase_demo() -> None:
    print("=" * 72)
    print("Figure 2 — the directed staircase (Theorem 3.11)")
    print("=" * 72)
    table = Table(columns=["ell", "B", "achieved", "optimum", "fraction",
                           "1-(B/(B+1))^B", "implied ratio"])
    for ell, B in [(12, 4), (18, 6), (24, 8), (30, 10)]:
        instance = flows.staircase_instance(ell, B)
        algorithm = ReasonableIterativePathMinimizer(
            BoundedUFPPriority(0.5, float(B)), tie_break=staircase_tie_break
        )
        allocation = algorithm.run(instance)
        optimum = instance.metadata["known_optimum"]
        table.add_row([ell, B, allocation.value, optimum, allocation.value / optimum,
                       1 - (B / (B + 1)) ** B, optimum / allocation.value])
    print(table.render())
    print(f"-> the fraction tends to 1 - 1/e = {1 - 1 / math.e:.4f}, i.e. the ratio "
          f"tends to e/(e-1) = {E_OVER_E_MINUS_1:.4f}\n")


def ring7_demo() -> None:
    print("=" * 72)
    print("Figure 3 — the undirected 7-vertex instance (Theorem 3.12)")
    print("=" * 72)
    table = Table(columns=["B", "achieved", "optimum", "ratio"])
    for B in [4, 16, 64, 256]:
        instance = flows.ring7_instance(B)
        algorithm = ReasonableIterativePathMinimizer(
            UnitCapacityPriority(0.5, float(B)), tie_break=ring7_tie_break
        )
        allocation = algorithm.run(instance)
        optimum = instance.metadata["known_optimum"]
        table.add_row([B, allocation.value, optimum, optimum / allocation.value])
    print(table.render())
    print("-> the 4/3 gap persists no matter how large the capacity is: within this\n"
          "   algorithm family, large capacities alone do not buy a PTAS.\n")


def partition_demo() -> None:
    print("=" * 72)
    print("Figure 4 — the multi-unit auction partition family (Theorem 4.5)")
    print("=" * 72)
    table = Table(columns=["p", "B", "achieved", "optimum", "ratio", "4p/(3p+1)"])
    for p, B in [(3, 4), (5, 4), (7, 6), (9, 6), (11, 6)]:
        instance = auctions.partition_instance(p, B)
        algorithm = ReasonableIterativeBundleMinimizer(
            BundleExponentialPriority(0.5, float(B)), tie_break=partition_tie_break
        )
        allocation = algorithm.run(instance)
        optimum = instance.metadata["known_optimum"]
        table.add_row([p, B, allocation.value, optimum, optimum / allocation.value,
                       4 * p / (3 * p + 1)])
    print(table.render())
    print("-> the ratio climbs towards 4/3 as p grows.\n")


if __name__ == "__main__":
    staircase_demo()
    ring7_demo()
    partition_demo()

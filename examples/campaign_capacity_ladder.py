"""Walkthrough: a capacity-ladder scenario campaign with a resumable store.

The paper's guarantee — a truthful ``e/(e-1)``-approximation — holds in
the *large-capacity* regime ``B >= ln(m) / eps^2``.  This example sweeps a
fat-tree datacenter and a Waxman WAN across ``B = scale * ln(m)`` rungs
and watches three quantities cross over as the instance enters the regime:

* below it (``scale < 1`` at ``eps = 1``) the mechanism admits nothing —
  the approximation ratio column reads ``inf``;
* around ``2-4 ln m`` the auction is contended: admission is partial and
  critical-value payments (the ``revenue`` column) are positive;
* deep in the regime (``8 ln m``) everything is admitted at ratio ~1 and
  payments vanish — capacity is no longer scarce.

Run it::

    PYTHONPATH=src python examples/campaign_capacity_ladder.py

The campaign persists to ``runs/capacity-ladder/``: interrupt it (Ctrl-C)
and run it again — completed cells are loaded from the store, only the
missing ones are computed, and the final store hash is identical to an
uninterrupted run (at any --jobs).
"""

from __future__ import annotations

from repro import scenarios
from repro.scenarios.store import ResultStore


def main() -> None:
    suite = scenarios.get_suite("capacity-ladder")

    # A suite is a plain dict: tweak it like any config.  Add a third
    # topology family to the ladder just to show how:
    suite["topologies"].append(
        {"name": "scalefree", "family": "barabasi_albert",
         "num_vertices": 20, "attachments": 2}
    )

    store = ResultStore("runs/capacity-ladder")
    result = scenarios.run_campaign(
        suite, store=store, jobs=None, progress=print  # jobs=None -> REPRO_JOBS or serial
    )

    print()
    print(
        scenarios.render_report(
            result.records,
            title="Capacity ladder: B = scale * ln(m)",
            content_hash=store.content_hash(),
        )
    )
    print(f"  {result.summary_line()}")
    print()
    print("Interrupt and re-run this script: completed cells are skipped, "
          "and the store hash stays identical.")


if __name__ == "__main__":
    main()

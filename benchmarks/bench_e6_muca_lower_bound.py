"""E6 — Figure 4 / Theorem 4.5: the 4/3 multi-unit auction lower bound.

Regenerates the partition-family sweep: the measured ratio equals
``4p / (3p + 1)`` exactly and climbs towards 4/3 as p grows.
"""

import pytest

from conftest import run_and_report


def test_e6_partition_lower_bound(benchmark, jobs):
    result = run_and_report(benchmark, "E6", jobs=jobs)
    for row in result.rows:
        assert row["measured_ratio"] == pytest.approx(4.0 * row["p"] / (3.0 * row["p"] + 1.0))

"""Shared configuration for the benchmark suite.

Each ``bench_e*.py`` module regenerates one experiment of DESIGN.md's
per-experiment index (the paper's theorems / figures) under
``pytest-benchmark`` timing, asserts that the experiment's claims hold, and
prints the experiment table so a benchmark run doubles as a reproduction
run.  Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:  # pragma: no cover - environment dependent
    try:
        import repro  # noqa: F401
    except ModuleNotFoundError:
        sys.path.insert(0, str(_SRC))


def pytest_addoption(parser):
    parser.addoption(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the benchmarked fan-outs (payments, "
        "experiment cells); default: REPRO_JOBS env or serial, 0 = all "
        "cores.  Results are bit-identical at any --jobs.",
    )
    parser.addoption(
        "--no-trace",
        action="store_true",
        help="run the benchmarked payments/audits with from-scratch probe "
        "runs instead of checkpointed trace replay (results are "
        "bit-identical; use for A/B timing of the replay engine)",
    )


@pytest.fixture(scope="session")
def jobs(request):
    """The ``--jobs`` knob, forwarded into payments/experiment calls."""
    return request.config.getoption("--jobs")


@pytest.fixture(scope="session")
def use_trace(request):
    """The ``--no-trace`` knob, forwarded as ``use_trace=`` where benches
    exercise the trace-replay engine."""
    return not request.config.getoption("--no-trace")


def run_and_report(
    benchmark,
    experiment_id: str,
    *,
    quick: bool = True,
    seed: int | None = 7,
    jobs: int | None = None,
):
    """Benchmark one experiment run, assert its claims, and print its table."""
    from repro.experiments import run_experiment

    result = benchmark.pedantic(
        lambda: run_experiment(experiment_id, quick=quick, seed=seed, jobs=jobs),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.summary())
    failed = result.claims_failed()
    assert not failed, f"{experiment_id} claims failed: {failed}"
    return result

"""E4 — Theorem 2.3 / Lemma 3.4: monotonicity, exactness and truthfulness.

Regenerates the audit table: Bounded-UFP passes the monotonicity, exactness
and truthfulness audits; randomized LP rounding fails monotonicity, which is
the paper's motivation for a deterministic primal-dual mechanism.
"""

from conftest import run_and_report


def test_e4_truthfulness_audits(benchmark, jobs):
    result = run_and_report(benchmark, "E4", jobs=jobs)
    by_check = {(row["algorithm"], row["check"]): row for row in result.rows}
    assert by_check[("Bounded-UFP", "monotonicity (Def. 2.1)")]["passes"]
    assert by_check[("Bounded-UFP + critical payments", "truthfulness (Thm. 2.3)")]["passes"]
    assert not by_check[("RandomizedRounding", "monotonicity (Def. 2.1)")]["passes"]

#!/usr/bin/env python3
"""Fail the build on benchmark regressions vs a committed baseline.

Compares two ``pytest-benchmark`` JSON files benchmark by benchmark (matched
on the fully-qualified test name) and exits non-zero when any current mean
exceeds ``threshold`` times the baseline mean, or when a baseline benchmark
vanished from the current run::

    python benchmarks/compare_bench.py BENCH_PR3.json benchmarks/BENCH_PR3.json \
        --threshold 1.20

The committed baseline (``benchmarks/BENCH_PR3.json``) encodes absolute
times from the reference machine.  CI runners belong to a different (and
varying) machine class, so absolute comparison would fail on runner speed
rather than code: ``--normalize`` therefore divides every mean by the
geometric mean of its own file's benchmarks before comparing.  A uniform
machine-class shift cancels exactly, while a single benchmark regressing by
``R`` still moves its normalized ratio by ``R^((k-1)/k)`` (``k``
benchmarks; ``2x`` on one of four gate benchmarks shows as ``1.68x`` —
comfortably past the 20% gate).  The default threshold is a generous 20%
aimed at algorithmic regressions (a hot path going accidentally quadratic,
a cache stopping to hit), not scheduler noise.  Regenerate the baseline
after an intentional perf change with::

    PYTHONPATH=src python -m pytest benchmarks/bench_pr3_gate.py -q \
        --benchmark-json=benchmarks/BENCH_PR3.json
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

__all__ = ["compare", "main"]


def _load_means(path: Path) -> dict[str, float]:
    data = json.loads(path.read_text())
    return {
        bench["fullname"]: float(bench["stats"]["mean"])
        for bench in data.get("benchmarks", [])
    }


def _normalized(means: dict[str, float]) -> dict[str, float]:
    """Means divided by their geometric mean (machine-speed cancels)."""
    positive = [m for m in means.values() if m > 0]
    if not positive:
        return dict(means)
    geomean = math.exp(sum(math.log(m) for m in positive) / len(positive))
    return {name: mean / geomean for name, mean in means.items()}


def compare(
    current: dict[str, float],
    baseline: dict[str, float],
    threshold: float,
    *,
    normalize: bool = False,
) -> tuple[list[str], list[str]]:
    """Return ``(regressions, notes)`` as printable report lines.

    With ``normalize=True`` the gate compares shape, not speed: each mean is
    divided by its file's geometric mean first, so a uniform machine-class
    shift between baseline and current cancels.
    """
    current_gate = _normalized(current) if normalize else current
    baseline_gate = _normalized(baseline) if normalize else baseline
    regressions: list[str] = []
    notes: list[str] = []
    for name, base_mean in sorted(baseline.items()):
        if name not in current:
            regressions.append(f"MISSING  {name}: present in baseline, absent now")
            continue
        mean = current[name]
        base_gate = baseline_gate[name]
        gate = current_gate[name]
        ratio = gate / base_gate if base_gate > 0 else float("inf")
        line = (
            f"{name}: {mean * 1e3:.2f} ms vs baseline {base_mean * 1e3:.2f} ms "
            f"({'normalized ' if normalize else ''}ratio {ratio:.2f}x)"
        )
        if ratio > threshold:
            regressions.append("REGRESSED " + line)
        else:
            notes.append("ok        " + line)
    for name in sorted(set(current) - set(baseline)):
        notes.append(f"new       {name}: {current[name] * 1e3:.2f} ms (no baseline yet)")
    return regressions, notes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", type=Path, help="freshly produced benchmark JSON")
    parser.add_argument("baseline", type=Path, help="committed baseline JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.20,
        help="max allowed current/baseline ratio (default 1.20 = +20%%)",
    )
    parser.add_argument(
        "--normalize",
        action="store_true",
        help="compare geomean-normalized means (cancels uniform machine-speed "
        "differences; use when baseline and current come from different "
        "machines, e.g. in CI)",
    )
    args = parser.parse_args(argv)

    regressions, notes = compare(
        _load_means(args.current),
        _load_means(args.baseline),
        args.threshold,
        normalize=args.normalize,
    )
    for line in notes:
        print(line)
    for line in regressions:
        print(line, file=sys.stderr)
    if regressions:
        print(
            f"\n{len(regressions)} benchmark(s) regressed beyond the "
            f"{args.threshold:.2f}x gate",
            file=sys.stderr,
        )
        return 1
    print(f"\nall benchmarks within the {args.threshold:.2f}x gate")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""E3 — Figure 3 / Theorem 3.12: the undirected 4/3 lower bound.

Regenerates the 7-vertex ring sweep: for every capacity B the adversarial
schedule caps reasonable path minimizers at 3B out of the optimal 4B.
"""

import pytest

from conftest import run_and_report


def test_e3_undirected_ring_lower_bound(benchmark, jobs):
    result = run_and_report(benchmark, "E3", jobs=jobs)
    assert all(row["measured_ratio"] == pytest.approx(4.0 / 3.0) for row in result.rows)

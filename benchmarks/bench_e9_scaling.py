"""E9 — running-time scaling of Bounded-UFP and Bounded-UFP-Repeat."""

from conftest import run_and_report


def test_e9_running_time_scaling(benchmark, jobs):
    result = run_and_report(benchmark, "E9", jobs=jobs)
    for row in result.rows:
        if row["algorithm"] == "Bounded-UFP":
            assert row["iterations"] <= row["requests"]

"""E7 — Theorem 5.1: unsplittable flow with repetitions is (1+eps)-approximable."""

from conftest import run_and_report


def test_e7_repetitions(benchmark, jobs):
    result = run_and_report(benchmark, "E7", jobs=jobs)
    assert all(row["measured_ratio"] <= row["paper_guarantee"] + 1e-9 for row in result.rows)

"""Ablations of the design choices DESIGN.md calls out.

Two knobs of the primal-dual machinery are ablated on a fixed contended
workload:

* **Stopping rule** — the dual-budget threshold ``e^{beta * eps * (B-1)}``.
  ``beta = 1`` is Algorithm 1; ``beta = -ln(1 - 1/e) ~ 0.459`` reproduces the
  BKV-style ``e`` guarantee; smaller ``beta`` stops even earlier.  The
  achieved value should be non-decreasing in ``beta`` (a larger budget can
  only admit more requests), which is exactly why the paper's threshold —
  the largest one that still guarantees feasibility — is the right choice.
* **Accuracy parameter** ``eps`` — smaller ``eps`` tightens the guarantee but
  requires a larger ``B``; the sweep shows the achieved value as ``eps``
  varies on an instance whose ``B`` satisfies the assumption for all of them.
"""

from __future__ import annotations

import pytest

from repro.baselines.briest import BKV_STOP_FRACTION, briest_style_ufp
from repro.core import bounded_ufp
from repro.flows import random_instance
from repro.lp import solve_fractional_ufp
from repro.utils.tables import Table


@pytest.fixture(scope="module")
def contended_workload():
    return random_instance(
        num_vertices=6, edge_probability=0.5, capacity=40.0,
        num_requests=380, demand_range=(0.7, 1.0), seed=17,
    )


def test_ablation_stopping_rule(benchmark, contended_workload):
    """Sweep the stopping-rule fraction beta; value must grow with beta."""
    epsilon = 0.3
    betas = [0.25, BKV_STOP_FRACTION, 0.7, 1.0]

    def run_sweep():
        return [briest_style_ufp(contended_workload, epsilon, stop_fraction=b).value for b in betas]

    values = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    bound = solve_fractional_ufp(contended_workload).objective

    table = Table(columns=["beta", "value", "ratio vs frac opt"],
                  title="\nstopping-rule ablation (beta = 1 is Algorithm 1)")
    for beta, value in zip(betas, values):
        table.add_row([beta, value, bound / max(value, 1e-12)])
    print(table.render())

    for earlier, later in zip(values, values[1:]):
        assert later >= earlier - 1e-9
    # beta = 1 coincides with Bounded-UFP.
    assert values[-1] == pytest.approx(bounded_ufp(contended_workload, epsilon).value)


def test_ablation_epsilon_sensitivity(benchmark, contended_workload):
    """Sweep the accuracy parameter eps of Algorithm 1 on the same workload."""
    epsilons = [0.15, 0.25, 0.35, 0.5]

    def run_sweep():
        return [bounded_ufp(contended_workload, eps).value for eps in epsilons]

    values = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    bound = solve_fractional_ufp(contended_workload).objective

    table = Table(columns=["eps", "B >= ln(m)/eps^2", "value", "ratio vs frac opt"],
                  title="\nepsilon-sensitivity ablation")
    for eps, value in zip(epsilons, values):
        table.add_row([
            eps,
            contended_workload.meets_capacity_assumption(eps),
            value,
            bound / max(value, 1e-12),
        ])
    print(table.render())

    # Every run is feasible by construction; just check values are sane.
    assert all(0.0 <= v <= bound + 1e-6 for v in values)

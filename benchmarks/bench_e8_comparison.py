"""E8 — Section 1.1 comparison: Bounded-UFP vs baselines across workloads."""

from conftest import run_and_report


def test_e8_algorithm_comparison(benchmark, jobs):
    result = run_and_report(benchmark, "E8", jobs=jobs)
    # Bounded-UFP never loses to the BKV-style baseline on any workload.
    by_workload: dict[str, dict[str, float]] = {}
    for row in result.rows:
        by_workload.setdefault(row["workload"], {})[row["algorithm"]] = row["value"]
    for values in by_workload.values():
        if "Bounded-UFP" in values and "BKV-style (e-approx)" in values:
            assert values["Bounded-UFP"] >= values["BKV-style (e-approx)"] - 1e-9

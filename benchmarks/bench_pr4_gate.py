"""The perf-regression gate benchmarks (PR 4).

The four PR 3 headline timings (payments on the medium instance, one
``Bounded-UFP`` medium solve, one E9 scaling cell, one E10 online batch
stream) plus the two trace-replay rows this PR commits to:

* ``payments_replay_medium`` — critical-value payments for every winner of
  the *contended* medium instance with tracing on.  The committed baseline
  encodes the ≥5x ISSUE-4 speedup over the from-scratch path; a regression
  here means the suffix-resume machinery stopped paying for itself.
* ``e4_audit_cell`` — the E4 truthfulness audit cell through the traced
  audit path.

The partitioned-solver PR adds a row pair on one medium multi-region
instance — ``partition_region_medium`` (per-shard fast path) vs
``ufp_region_medium_global`` (the global solver) — so the committed
baseline both gates the partitioned layer's performance and documents its
speedup over the global solve.

Recorded to ``BENCH_PR4.json`` in CI and compared against the committed
baseline ``benchmarks/BENCH_PR4.json`` by ``benchmarks/compare_bench.py``,
which fails the build on a >20% normalized mean-time regression.
Regenerate the baseline (on the reference machine) with::

    PYTHONPATH=src python -m pytest benchmarks/bench_pr4_gate.py -q \
        --benchmark-json=benchmarks/BENCH_PR4.json
"""

from __future__ import annotations

from functools import partial

import numpy as np
import pytest

from repro.core import bounded_ufp
from repro.experiments import run_experiment
from repro.flows import random_instance
from repro.mechanism import compute_ufp_payments
from repro.online import OnlineAuction, bursty_arrivals


@pytest.fixture(scope="module")
def medium_instance():
    # Mirrors bench_micro_primitives.medium_instance.
    return random_instance(
        num_vertices=20, edge_probability=0.2, capacity=50.0,
        num_requests=80, demand_range=(0.3, 1.0), seed=13,
    )


@pytest.fixture(scope="module")
def contended_medium_instance():
    # Mirrors bench_trace_replay.contended_instance: the budget rule fires
    # mid-run, so every winner pays a positive critical value.
    return random_instance(
        num_vertices=12, edge_probability=0.25, capacity=15.0,
        num_requests=120, demand_range=(0.5, 1.0), seed=13,
    )


def test_gate_payments_medium(benchmark, medium_instance, jobs):
    """Critical-value payments for every winner of the medium instance."""
    algorithm = partial(bounded_ufp, epsilon=0.3)
    allocation = bounded_ufp(medium_instance, 0.3)

    payments = benchmark.pedantic(
        lambda: compute_ufp_payments(
            algorithm, medium_instance, allocation, jobs=jobs
        ),
        rounds=3,
        iterations=1,
    )
    assert np.all(payments >= 0.0)


def test_gate_payments_replay_medium(benchmark, contended_medium_instance, jobs):
    """Trace-replay payments on the contended medium instance (PR 4)."""
    algorithm = partial(bounded_ufp, epsilon=0.3)
    allocation = bounded_ufp(contended_medium_instance, 0.3)

    payments = benchmark.pedantic(
        lambda: compute_ufp_payments(
            algorithm, contended_medium_instance, allocation,
            jobs=jobs, use_trace=True,
        ),
        rounds=3,
        iterations=1,
    )
    assert (payments > 0).sum() == allocation.num_selected


def test_gate_e4_audit_cell(benchmark, jobs):
    """The full E4 experiment (audits through the traced path) (PR 4)."""
    result = benchmark.pedantic(
        lambda: run_experiment("E4", quick=True, seed=7, jobs=jobs),
        rounds=3,
        iterations=1,
    )
    assert result.all_claims_hold


def test_gate_bounded_ufp_medium(benchmark, medium_instance):
    """One full Bounded-UFP run on the medium instance."""
    allocation = benchmark(lambda: bounded_ufp(medium_instance, 0.3))
    assert allocation.is_feasible()


def test_gate_e9_cell(benchmark, jobs):
    """The E9 scaling sweep (quick cells) through the harness fan-out."""
    result = benchmark.pedantic(
        lambda: run_experiment("E9", quick=True, seed=7, jobs=jobs),
        rounds=3,
        iterations=1,
    )
    assert result.all_claims_hold


def test_gate_campaign_cell_small(benchmark):
    """One small scenario-campaign cell end to end (PR 5): topology build,
    regime resolution, offline Bounded-UFP clearing and the LP bound."""
    from repro.scenarios import enumerate_cells, run_cell

    suite = {
        "name": "bench",
        "seed": 17,
        "topologies": [{"name": "wan", "family": "waxman", "num_vertices": 16}],
        "regimes": [
            {
                "name": "stress",
                "capacity": {"scale_log_m": 3.0, "min": 2.0},
                "num_requests": 30,
            }
        ],
        "modes": [{"name": "offline", "kind": "offline", "bound": "lp"}],
    }
    (cell,) = enumerate_cells(suite)

    outcome = benchmark.pedantic(lambda: run_cell(cell), rounds=3, iterations=1)
    record = outcome.rows[0]
    assert record["claims_ok"] and record["admitted"] > 0


@pytest.fixture(scope="module")
def region_medium():
    # A medium multi-region composite with an intra-region-only workload:
    # the partitioned fast path's home turf.  10 regions x (6 cores, 5
    # leaves/core) = 360 vertices / 495 edges, 900 leaf-to-leaf requests —
    # big enough that per-shard pricing wins clearly (~6x serial).
    from repro.flows import Request, UFPInstance
    from repro.graphs.generators import multi_region_topology
    from repro.graphs.partition import multi_region_partition
    from repro.utils.prng import ensure_rng

    regions, cores, leaves = 10, 6, 5
    rng = ensure_rng(41)
    graph = multi_region_topology(
        regions, cores, leaves, 60.0, 30.0, 15.0, seed=int(rng.integers(2**31))
    )
    block = cores * (1 + leaves)
    requests = []
    for _ in range(900):
        region = int(rng.integers(regions))
        pool = np.arange(region * block + cores, (region + 1) * block)
        u, v = rng.choice(pool, size=2, replace=False)
        requests.append(
            Request(
                int(u), int(v),
                demand=float(rng.uniform(0.2, 1.0)),
                value=float(rng.uniform(0.5, 2.0)),
            )
        )
    instance = UFPInstance(graph, requests)
    return instance, multi_region_partition(graph, regions, cores, leaves)


def test_gate_partition_region_medium(benchmark, region_medium):
    """Partitioned Bounded-UFP over the natural region cut (this PR).

    Read next to ``test_gate_ufp_region_medium_global`` — same instance
    through the global solver — the pair documents the per-shard speedup
    the partitioned layer exists for (~6x serial on this shape).
    """
    from repro.partition import partitioned_bounded_ufp

    instance, partition = region_medium
    allocation = benchmark.pedantic(
        lambda: partitioned_bounded_ufp(
            instance, 0.5, partition=partition, jobs=1
        ),
        rounds=3,
        iterations=1,
    )
    assert allocation.is_feasible() and allocation.num_selected > 0
    assert allocation.stats.extra["partition_cross_requests"] == 0.0


def test_gate_ufp_region_medium_global(benchmark, region_medium):
    """The global solver on the region-medium instance (the partitioned
    row's comparison point)."""
    instance, _partition = region_medium
    allocation = benchmark.pedantic(
        lambda: bounded_ufp(instance, 0.5), rounds=3, iterations=1
    )
    assert allocation.is_feasible() and allocation.num_selected > 0


def test_gate_e10_online_batch(benchmark):
    """One bursty stream through the online auction (the E10 hot path)."""
    instance = random_instance(
        num_vertices=12, edge_probability=0.2, capacity=12.0,
        num_requests=150, demand_range=(0.4, 1.0), seed=29,
    )

    def run():
        auction = OnlineAuction(instance.graph, 0.5, admission="greedy")
        return auction.run(
            bursty_arrivals(list(instance.requests), burst_size=8, seed=4)
        )

    online = benchmark.pedantic(run, rounds=3, iterations=1)
    assert online.is_feasible()

"""E2 — Figure 2 / Theorem 3.11: the directed staircase lower bound.

Regenerates the staircase sweep: reasonable iterative path minimizers satisfy
only a ``1 - (B/(B+1))^B -> 1 - 1/e`` fraction of the optimum, so their ratio
approaches ``e/(e-1)``.
"""

from conftest import run_and_report

from repro.types import E_OVER_E_MINUS_1


def test_e2_directed_staircase_lower_bound(benchmark, jobs):
    result = run_and_report(benchmark, "E2", jobs=jobs)
    adversarial_rows = [
        row for row in result.rows if not row["algorithm"].startswith("Bounded-UFP on subdivided")
    ]
    # The adversarial schedule always leaves at least the asymptotic 1/e
    # fraction of the optimum on the table (up to the finite-B correction).
    assert all(row["implied_ratio"] >= E_OVER_E_MINUS_1 - 0.15 for row in adversarial_rows)
    assert all(row["fraction"] < 1.0 for row in adversarial_rows)

"""E5 — Theorem 4.1: Bounded-MUCA approximation ratio vs the fractional optimum."""

from conftest import run_and_report


def test_e5_bounded_muca_approximation(benchmark, jobs):
    result = run_and_report(benchmark, "E5", jobs=jobs)
    assert all(row["within_guarantee"] for row in result.rows)

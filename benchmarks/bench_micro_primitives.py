"""Micro-benchmarks of the hot primitives underneath the experiments.

These are not tied to a paper artifact; they document the cost of the
building blocks (Dijkstra pricing, one Bounded-UFP run, the fractional LP,
the Garg–Könemann FPTAS, critical-value payment computation) so regressions
in the substrates are visible independently of the experiment sweeps.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import bounded_muca, bounded_ufp
from repro.flows import random_instance
from repro.auctions import random_auction
from repro.fractional import garg_konemann_fractional_ufp
from repro.graphs import random_digraph, single_source_dijkstra
from repro.lp import solve_fractional_ufp
from repro.mechanism import compute_ufp_payments


@pytest.fixture(scope="module")
def medium_instance():
    return random_instance(
        num_vertices=20, edge_probability=0.2, capacity=50.0,
        num_requests=80, demand_range=(0.3, 1.0), seed=13,
    )


@pytest.fixture(scope="module")
def medium_auction():
    return random_auction(
        num_items=30, num_bids=200, multiplicity=40.0, bundle_size_range=(1, 5), seed=13
    )


def test_bench_dijkstra_pricing(benchmark):
    """One shortest-path tree on a 300-vertex random digraph."""
    graph = random_digraph(300, 0.03, 10.0, seed=5)
    rng = np.random.default_rng(5)
    weights = rng.uniform(0.01, 1.0, size=graph.num_edges)
    result = benchmark(lambda: single_source_dijkstra(graph, 0, weights))
    assert result.distance(0) == 0.0


def test_bench_bounded_ufp_medium(benchmark, medium_instance):
    """A full Bounded-UFP run on an 80-request instance."""
    allocation = benchmark(lambda: bounded_ufp(medium_instance, 0.3))
    assert allocation.is_feasible()


def test_bench_bounded_muca_medium(benchmark, medium_auction):
    """A full Bounded-MUCA run on a 200-bid auction."""
    allocation = benchmark(lambda: bounded_muca(medium_auction, 0.3))
    assert allocation.is_feasible()


def test_bench_fractional_lp(benchmark, medium_instance):
    """The edge-flow LP relaxation of the 80-request instance."""
    result = benchmark.pedantic(
        lambda: solve_fractional_ufp(medium_instance), rounds=1, iterations=1
    )
    assert result.ok


def test_bench_garg_konemann(benchmark, medium_instance):
    """The combinatorial FPTAS on the same instance (eps = 0.2)."""
    result = benchmark.pedantic(
        lambda: garg_konemann_fractional_ufp(medium_instance, 0.2),
        rounds=1,
        iterations=1,
    )
    assert result.objective > 0.0


def test_bench_critical_value_payments(benchmark, jobs):
    """Critical-value payments for the winners of a 15-request instance.

    Honors ``--jobs N``: the per-winner bisections fan out over a process
    pool with byte-identical payments (see ``repro.parallel``)."""
    instance = random_instance(
        num_vertices=8, edge_probability=0.4, capacity=10.0,
        num_requests=15, demand_range=(0.4, 1.0), seed=3,
    )

    def run():
        allocation = bounded_ufp(instance, 0.4)
        return compute_ufp_payments(
            lambda declared: bounded_ufp(declared, 0.4),
            instance,
            allocation,
            jobs=jobs,
        )

    payments = benchmark.pedantic(run, rounds=1, iterations=1)
    assert np.all(payments >= 0.0)

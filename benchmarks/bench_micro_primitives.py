"""Micro-benchmarks of the hot primitives underneath the experiments.

These are not tied to a paper artifact; they document the cost of the
building blocks (Dijkstra pricing, one Bounded-UFP run, the fractional LP,
the Garg–Könemann FPTAS, critical-value payment computation) so regressions
in the substrates are visible independently of the experiment sweeps.

The ``*_kernel`` rows sweep the same workload across the compute-kernel
tiers of :mod:`repro.kernels` (``lists`` / ``numpy`` / ``numba``); all
tiers are bit-identical, so any timing difference is pure implementation
speed.  Record them with::

    PYTHONPATH=src python -m pytest benchmarks/bench_micro_primitives.py -q \
        -k kernel --benchmark-json=benchmarks/BENCH_KERNELS.json

The committed ``benchmarks/BENCH_KERNELS.json`` documents the measured
tier speedups on the reference machine (the perf gate itself stays on the
lists tier; see ``bench_pr4_gate.py``).
"""

from __future__ import annotations

from functools import partial

import numpy as np
import pytest

from repro.core import bounded_muca, bounded_ufp
from repro.flows import random_instance
from repro.auctions import random_auction
from repro.fractional import garg_konemann_fractional_ufp
from repro.graphs import random_digraph, single_source_dijkstra
from repro.kernels import get_kernel, kernel_available, use_kernel
from repro.lp import solve_fractional_ufp
from repro.mechanism import compute_ufp_payments


def _kernel_tier_params():
    """All compute-kernel tiers, with the numba row skipped (not failed)
    when the optional dependency is absent."""
    params = []
    for name in ("lists", "numpy", "numba"):
        marks = []
        if name == "numba" and not kernel_available("numba"):
            marks.append(
                pytest.mark.skip(
                    reason="the numba kernel tier needs the optional numba "
                    "dependency (pip install 'repro-bounded-ufp[numba]')"
                )
            )
        params.append(pytest.param(name, marks=marks))
    return params


KERNEL_TIERS = _kernel_tier_params()


@pytest.fixture(scope="module")
def medium_instance():
    return random_instance(
        num_vertices=20, edge_probability=0.2, capacity=50.0,
        num_requests=80, demand_range=(0.3, 1.0), seed=13,
    )


@pytest.fixture(scope="module")
def medium_auction():
    return random_auction(
        num_items=30, num_bids=200, multiplicity=40.0, bundle_size_range=(1, 5), seed=13
    )


def test_bench_dijkstra_pricing(benchmark):
    """One shortest-path tree on a 300-vertex random digraph."""
    graph = random_digraph(300, 0.03, 10.0, seed=5)
    rng = np.random.default_rng(5)
    weights = rng.uniform(0.01, 1.0, size=graph.num_edges)
    result = benchmark(lambda: single_source_dijkstra(graph, 0, weights))
    assert result.distance(0) == 0.0


def test_bench_bounded_ufp_medium(benchmark, medium_instance):
    """A full Bounded-UFP run on an 80-request instance."""
    allocation = benchmark(lambda: bounded_ufp(medium_instance, 0.3))
    assert allocation.is_feasible()


def test_bench_bounded_muca_medium(benchmark, medium_auction):
    """A full Bounded-MUCA run on a 200-bid auction."""
    allocation = benchmark(lambda: bounded_muca(medium_auction, 0.3))
    assert allocation.is_feasible()


def test_bench_fractional_lp(benchmark, medium_instance):
    """The edge-flow LP relaxation of the 80-request instance."""
    result = benchmark.pedantic(
        lambda: solve_fractional_ufp(medium_instance), rounds=1, iterations=1
    )
    assert result.ok


def test_bench_garg_konemann(benchmark, medium_instance):
    """The combinatorial FPTAS on the same instance (eps = 0.2)."""
    result = benchmark.pedantic(
        lambda: garg_konemann_fractional_ufp(medium_instance, 0.2),
        rounds=1,
        iterations=1,
    )
    assert result.objective > 0.0


@pytest.mark.parametrize("kernel_name", KERNEL_TIERS)
def test_bench_dijkstra_kernel_micro(benchmark, kernel_name):
    """One shortest-path tree through each compute-kernel tier directly.

    Same 300-vertex digraph as ``test_bench_dijkstra_pricing``, but calling
    ``kernel.dijkstra`` without the backend wrapper so the rows isolate the
    tiers' inner loops (pure-Python array heap vs the numba JIT heap).  One
    warm-up call outside the timed region absorbs the one-off costs the
    tiers amortize in real runs (CSR materialization, JIT compilation)."""
    graph = random_digraph(300, 0.03, 10.0, seed=5)
    rng = np.random.default_rng(5)
    weights = rng.uniform(0.01, 1.0, size=graph.num_edges)
    with use_kernel(kernel_name):
        kernel = get_kernel()
        wlist = weights.tolist() if kernel.wants_weights_list else None
        kernel.dijkstra(graph, weights, wlist, 0)  # warm-up
        dist, _pv, _pe = benchmark(
            lambda: kernel.dijkstra(graph, weights, wlist, 0)
        )
    assert dist[0] == 0.0


@pytest.mark.parametrize("kernel_name", KERNEL_TIERS)
def test_bench_payments_replay_medium_kernel(benchmark, kernel_name, jobs):
    """Trace-replay payments on the contended medium instance, per tier.

    The same workload as the gate's ``payments_replay_medium`` row (which
    stays on the default lists tier so ``compare_bench.py`` keeps gating
    single-core reference performance).  The instance is rebuilt inside each
    parametrization so one tier's per-graph tree memo cannot warm another's
    timing."""
    instance = random_instance(
        num_vertices=12, edge_probability=0.25, capacity=15.0,
        num_requests=120, demand_range=(0.5, 1.0), seed=13,
    )
    with use_kernel(kernel_name):
        algorithm = partial(bounded_ufp, epsilon=0.3)
        allocation = bounded_ufp(instance, 0.3)
        payments = benchmark.pedantic(
            lambda: compute_ufp_payments(
                algorithm, instance, allocation, jobs=jobs, use_trace=True
            ),
            rounds=3,
            iterations=1,
        )
    assert (payments > 0).sum() == allocation.num_selected


@pytest.mark.parametrize("kernel_name", KERNEL_TIERS)
def test_bench_campaign_cell_small_kernel(benchmark, kernel_name):
    """One small scenario-campaign cell end to end, per kernel tier.

    Mirrors the gate's ``campaign_cell_small`` row.  This cell is
    LP-dominated, so the tiers are expected to sit close together — the row
    pair documents that the kernel layer adds no dispatch overhead where it
    cannot win."""
    from repro.scenarios import enumerate_cells, run_cell

    suite = {
        "name": "bench",
        "seed": 17,
        "topologies": [{"name": "wan", "family": "waxman", "num_vertices": 16}],
        "regimes": [
            {
                "name": "stress",
                "capacity": {"scale_log_m": 3.0, "min": 2.0},
                "num_requests": 30,
            }
        ],
        "modes": [{"name": "offline", "kind": "offline", "bound": "lp"}],
    }
    (cell,) = enumerate_cells(suite)

    with use_kernel(kernel_name):
        outcome = benchmark.pedantic(
            lambda: run_cell(cell), rounds=3, iterations=1
        )
    record = outcome.rows[0]
    assert record["claims_ok"] and record["admitted"] > 0


def test_bench_critical_value_payments(benchmark, jobs):
    """Critical-value payments for the winners of a 15-request instance.

    Honors ``--jobs N``: the per-winner bisections fan out over a process
    pool with byte-identical payments (see ``repro.parallel``)."""
    instance = random_instance(
        num_vertices=8, edge_probability=0.4, capacity=10.0,
        num_requests=15, demand_range=(0.4, 1.0), seed=3,
    )

    def run():
        allocation = bounded_ufp(instance, 0.4)
        return compute_ufp_payments(
            lambda declared: bounded_ufp(declared, 0.4),
            instance,
            allocation,
            jobs=jobs,
        )

    payments = benchmark.pedantic(run, rounds=1, iterations=1)
    assert np.all(payments >= 0.0)

"""Micro-benchmarks of the checkpointed trace-replay engine (PR 4).

A/B the suffix-resume probe path against from-scratch probe runs::

    PYTHONPATH=src python -m pytest benchmarks/bench_trace_replay.py -q
    PYTHONPATH=src python -m pytest benchmarks/bench_trace_replay.py -q --no-trace

Every benchmarked call is bit-identical under both flags (the differential
suite :mod:`tests.test_trace_replay` enforces it across the fuzz corpus);
only wall-clock changes.  The headline rows:

* ``payments_contended`` — critical-value payments for every winner of a
  congested medium instance, the ISSUE-4 ≥5x target workload;
* ``audit_truthfulness`` — the E4-style audit on the same instance family;
* ``online_threshold_payments`` — per-batch critical values under the
  posted-price policy, where the recorded admission score also certifies a
  not-admitted-below bisection bound;
* ``trace_overhead`` — one solver run with recording on vs off (the price
  of producing a trace nobody replays).
"""

from __future__ import annotations

from functools import partial

import numpy as np
import pytest

from repro.core import TraceRecorder, bounded_ufp
from repro.flows import random_instance
from repro.mechanism import compute_ufp_payments
from repro.mechanism.verification import audit_ufp_truthfulness
from repro.online import OnlineAuction, bursty_arrivals

EPSILON = 0.3


@pytest.fixture(scope="module")
def contended_instance():
    # Congested enough that the dual budget fires mid-run: every winner has
    # a genuinely positive critical value, so each payment is a real
    # bisection (the regime the replay engine is built for).
    return random_instance(
        num_vertices=12, edge_probability=0.25, capacity=15.0,
        num_requests=120, demand_range=(0.5, 1.0), seed=13,
    )


def test_payments_contended(benchmark, contended_instance, jobs, use_trace):
    algorithm = partial(bounded_ufp, epsilon=EPSILON)
    allocation = bounded_ufp(contended_instance, EPSILON)
    assert allocation.stats.stopped_by_budget

    payments = benchmark.pedantic(
        lambda: compute_ufp_payments(
            algorithm, contended_instance, allocation,
            jobs=jobs, use_trace=use_trace,
        ),
        rounds=3,
        iterations=1,
    )
    assert (payments > 0).sum() == allocation.num_selected


def test_audit_truthfulness(benchmark, contended_instance, jobs, use_trace):
    rule = partial(bounded_ufp, epsilon=EPSILON)
    report = benchmark.pedantic(
        lambda: audit_ufp_truthfulness(
            rule, contended_instance,
            agents=list(range(12)), misreports_per_agent=4, seed=7,
            jobs=jobs, use_trace=use_trace,
        ),
        rounds=3,
        iterations=1,
    )
    assert report.is_truthful


def test_online_threshold_payments(benchmark, contended_instance, use_trace):
    def run():
        auction = OnlineAuction(
            contended_instance.graph, 0.4,
            admission="threshold", score_threshold=1.5,
            compute_payments=True, use_trace=use_trace,
        )
        return auction.run(
            bursty_arrivals(list(contended_instance.requests), burst_size=10, seed=4)
        )

    online = benchmark.pedantic(run, rounds=3, iterations=1)
    assert online.is_feasible()
    assert np.all(online.payments >= 0.0)


def test_trace_overhead(benchmark, contended_instance, use_trace):
    """One solver run, recording a trace nobody replays (when tracing)."""

    def run():
        if not use_trace:
            return bounded_ufp(contended_instance, EPSILON)
        recorder = TraceRecorder()
        return bounded_ufp(contended_instance, EPSILON, trace=recorder)

    allocation = benchmark(run)
    assert allocation.num_selected > 0

"""E10 — online streaming admission vs offline Bounded-UFP."""

from conftest import run_and_report


def test_e10_online_competitive(benchmark, jobs):
    result = run_and_report(benchmark, "E10", jobs=jobs)
    greedy_rows = [row for row in result.rows if row["policy"] == "greedy"]
    assert greedy_rows, "E10 must measure at least one greedy streaming cell"
    for row in greedy_rows:
        # The competitive ratio is reported per arrival process and must be a
        # meaningful number: positive, and (admission being irrevocable under
        # the same budget rule) not wildly above the offline optimum.
        assert 0.0 < row["value_ratio"] <= 1.5
        assert row["admitted"] <= row["requests"]

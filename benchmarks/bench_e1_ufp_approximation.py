"""E1 — Theorem 3.1: Bounded-UFP approximation ratio vs the fractional optimum.

Regenerates the E1 table (eps/B sweep on random large-capacity workloads) and
checks the ``(1 + 6 eps) e/(e-1)`` guarantee, feasibility, exactness and the
iteration bound.
"""

from conftest import run_and_report


def test_e1_bounded_ufp_approximation(benchmark, jobs):
    result = run_and_report(benchmark, "E1", jobs=jobs)
    # Every cell's measured ratio stays within the paper guarantee whenever
    # the capacity assumption holds.
    assert all(row["within_guarantee"] for row in result.rows)

"""Tests for the experiment harness, registry, CLI and the fast experiments.

The slow sweeps are exercised by the benchmark suite; here the deterministic,
fast experiments (E2, E3, E6) are run end to end and the claim machinery is
tested in isolation.
"""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ExperimentError
from repro.experiments import (
    ExperimentResult,
    available_experiments,
    get_experiment,
    ratio,
    run_experiment,
)
from repro.experiments.cli import build_parser, main


class TestHarness:
    def test_ratio(self):
        assert ratio(10.0, 5.0) == 2.0
        assert ratio(0.0, 0.0) == 1.0
        assert ratio(3.0, 0.0) == float("inf")

    def test_result_table_and_claims(self):
        result = ExperimentResult("EX", "demo", columns=["a", "b"])
        result.add_row(a=1, b=2.5)
        result.claim("holds", True)
        result.claim("holds", True)
        result.claim("fails", False)
        assert not result.all_claims_hold
        assert result.claims_failed() == ["fails"]
        text = result.summary()
        assert "[PASS] holds" in text and "[FAIL] fails" in text
        assert result.to_dict()["experiment_id"] == "EX"

    def test_claim_anding(self):
        result = ExperimentResult("EX", "demo")
        result.claim("c", True)
        result.claim("c", False)
        result.claim("c", True)
        assert result.claims == {"c": False}

    def test_columns_inferred_when_missing(self):
        result = ExperimentResult("EX", "demo")
        result.add_row(b=1, a=2)
        assert result.table.columns == ["a", "b"]


class TestRegistry:
    def test_all_experiments_registered_in_numeric_order(self):
        assert available_experiments() == [f"E{i}" for i in range(1, 11)]

    def test_get_experiment_case_insensitive(self):
        spec = get_experiment("e3")
        assert spec.experiment_id == "E3"
        assert "Figure 3" in spec.paper_artifact

    def test_unknown_experiment(self):
        with pytest.raises(ExperimentError):
            get_experiment("E99")

    def test_specs_have_claims_and_titles(self):
        for experiment_id in available_experiments():
            spec = get_experiment(experiment_id)
            assert spec.title
            assert spec.claim
            assert callable(spec.runner)


class TestFastExperimentsEndToEnd:
    """E2, E3 and E6 are deterministic and fast; their claims must hold."""

    @pytest.mark.parametrize("experiment_id", ["E2", "E3", "E6"])
    def test_claims_hold(self, experiment_id):
        result = run_experiment(experiment_id, quick=True)
        assert result.rows, f"{experiment_id} produced no rows"
        assert result.all_claims_hold, result.claims_failed()

    def test_e3_ratio_is_exactly_four_thirds(self):
        result = run_experiment("E3", quick=True)
        ratios = [row["measured_ratio"] for row in result.rows]
        assert all(r == pytest.approx(4.0 / 3.0) for r in ratios)

    def test_e6_ratio_follows_formula(self):
        result = run_experiment("E6", quick=True)
        for row in result.rows:
            expected = 4.0 * row["p"] / (3.0 * row["p"] + 1.0)
            assert row["measured_ratio"] == pytest.approx(expected)

    def test_e2_fractions_exceed_paper_floor_and_stay_below_one(self):
        result = run_experiment("E2", quick=True)
        for row in result.rows:
            if row["algorithm"].startswith("Bounded-UFP on subdivided"):
                continue
            assert row["fraction"] < 1.0
            # The adversarial schedule achieves at least the asymptotic
            # fraction (the finite-size effects only help).
            assert row["fraction"] >= row["paper_fraction_bound"] - 1e-9


class TestCLI:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E9" in out

    def test_run_single_experiment_text(self, capsys):
        code = main(["run", "E6"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Figure 4" in out
        assert "[PASS]" in out

    def test_run_single_experiment_json(self, capsys):
        code = main(["run", "E3", "--json"])
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out)
        assert payload["experiment_id"] == "E3"
        assert payload["rows"]

    def test_unknown_experiment_raises(self):
        with pytest.raises(ExperimentError):
            main(["run", "E42"])

    def test_parser_flags(self):
        parser = build_parser()
        args = parser.parse_args(["run", "E1", "--full", "--seed", "3"])
        assert args.full and args.seed == 3

"""Tests for the fractional UFP / MUCA relaxations, the path LP and duality helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.flows import Request, UFPInstance, random_instance
from repro.graphs import CapacitatedGraph
from repro.lp import (
    check_weak_duality,
    solve_fractional_muca,
    solve_fractional_ufp,
    solve_path_lp,
    ufp_dual_objective,
)
from repro.lp.duality import minimum_normalized_path_length, ufp_dual_is_feasible


class TestFractionalUFP:
    def test_single_edge_contention(self, contended_instance):
        result = solve_fractional_ufp(contended_instance)
        # Capacity 2, three unit requests of values 5, 3, 2: best fractional
        # solution routes the two most valuable ones.
        assert result.objective == pytest.approx(8.0)
        assert result.ok
        np.testing.assert_allclose(result.edge_loads(), [2.0], atol=1e-6)

    def test_uncontended_routes_everything(self, diamond_instance):
        result = solve_fractional_ufp(diamond_instance)
        assert result.objective == pytest.approx(diamond_instance.total_value)
        np.testing.assert_allclose(
            result.routed_fraction, np.ones(3), atol=1e-6
        )

    def test_splitting_beats_unsplittable(self):
        """The relaxation may split one request across two paths."""
        graph = CapacitatedGraph(4, [(0, 1, 0.5), (1, 3, 0.5), (0, 2, 0.5), (2, 3, 0.5)],
                                 directed=True)
        instance = UFPInstance(graph, [Request(0, 3, 1.0, 10.0)])
        result = solve_fractional_ufp(instance)
        # Each path carries half the demand.
        assert result.objective == pytest.approx(10.0)

    def test_repetitions_mode_unbounded_by_request_cap(self, diamond_instance):
        plain = solve_fractional_ufp(diamond_instance)
        repeated = solve_fractional_ufp(diamond_instance, repetitions=True)
        assert repeated.objective >= plain.objective - 1e-9
        # With repetitions the best-density request saturates the capacity,
        # so the optimum strictly exceeds the capped one here.
        assert repeated.objective > plain.objective + 1.0

    def test_capacity_duals_nonnegative_and_cover_requests(self, contended_instance):
        result = solve_fractional_ufp(contended_instance)
        assert np.all(result.capacity_duals >= -1e-9)
        # The single edge is saturated, so its dual is at least the value
        # density of the marginal (losing) request.
        assert result.capacity_duals[0] >= 2.0 - 1e-6

    def test_disconnected_request_gets_zero(self):
        graph = CapacitatedGraph(3, [(0, 1, 5.0)], directed=True)
        instance = UFPInstance(graph, [Request(0, 2, 1.0, 4.0), Request(0, 1, 1.0, 1.0)])
        result = solve_fractional_ufp(instance)
        assert result.objective == pytest.approx(1.0)
        assert result.routed_fraction[0] == pytest.approx(0.0, abs=1e-9)

    def test_empty_requests(self, diamond_graph):
        instance = UFPInstance(diamond_graph, [])
        result = solve_fractional_ufp(instance)
        assert result.objective == 0.0

    def test_undirected_capacity_shared_between_orientations(self):
        graph = CapacitatedGraph(2, [(0, 1, 1.0)], directed=False)
        instance = UFPInstance(
            graph, [Request(0, 1, 1.0, 1.0), Request(1, 0, 1.0, 1.0)]
        )
        result = solve_fractional_ufp(instance)
        # Both directions share the single unit of capacity.
        assert result.objective == pytest.approx(1.0)


class TestPathLP:
    def test_matches_edge_formulation_on_random_instances(self):
        for seed in range(3):
            instance = random_instance(
                num_vertices=8, edge_probability=0.35, capacity=3.0,
                num_requests=12, demand_range=(0.5, 1.0), seed=seed,
            )
            edge_form = solve_fractional_ufp(instance)
            path_form = solve_path_lp(instance)
            assert path_form.objective == pytest.approx(edge_form.objective, rel=1e-5, abs=1e-6)

    def test_matches_on_contended_single_edge(self, contended_instance):
        result = solve_path_lp(contended_instance)
        assert result.objective == pytest.approx(8.0)
        # Path distribution of the winning requests sums to ~1.
        assert result.routed_fraction(0) == pytest.approx(1.0, abs=1e-6)
        assert result.routed_fraction(2) == pytest.approx(0.0, abs=1e-6)

    def test_column_generation_terminates_and_reports_iterations(self, diamond_instance):
        result = solve_path_lp(diamond_instance)
        assert result.iterations >= 1
        assert result.ok

    def test_path_distribution_entries_are_valid_paths(self, diamond_instance):
        result = solve_path_lp(diamond_instance)
        for idx in range(diamond_instance.num_requests):
            for column, weight in result.path_distribution(idx):
                assert weight > 0
                assert column.vertices[0] == diamond_instance.requests[idx].source
                assert column.vertices[-1] == diamond_instance.requests[idx].target

    def test_empty_instance(self, diamond_graph):
        result = solve_path_lp(UFPInstance(diamond_graph, []))
        assert result.objective == 0.0


class TestFractionalMUCA:
    def test_tiny_auction_optimum(self, tiny_auction):
        result = solve_fractional_muca(tiny_auction)
        # All four bids fit within multiplicity 2 of each item.
        assert result.objective == pytest.approx(10.0)
        assert result.ok

    def test_contention_forces_choice(self):
        from repro.auctions import Bid, MUCAInstance

        instance = MUCAInstance(
            np.array([1.0]),
            [Bid((0,), 5.0), Bid((0,), 3.0), Bid((0,), 1.0)],
        )
        result = solve_fractional_muca(instance)
        assert result.objective == pytest.approx(5.0)
        assert result.item_duals[0] >= 3.0 - 1e-6

    def test_item_without_bids_gets_zero_dual(self):
        from repro.auctions import Bid, MUCAInstance

        instance = MUCAInstance(np.array([1.0, 1.0]), [Bid((0,), 2.0)])
        result = solve_fractional_muca(instance)
        assert result.objective == pytest.approx(2.0)
        assert result.item_duals[1] == pytest.approx(0.0, abs=1e-9)

    def test_empty_auction(self):
        from repro.auctions import MUCAInstance

        result = solve_fractional_muca(MUCAInstance(np.array([2.0]), []))
        assert result.objective == 0.0


class TestDualityHelpers:
    def test_dual_objective(self, contended_instance):
        y = np.array([1.5])
        z = np.array([1.0, 0.0, 0.0])
        # sum c_e y_e = 2 * 1.5 = 3, plus z = 1.
        assert ufp_dual_objective(contended_instance, y, z) == pytest.approx(4.0)
        assert ufp_dual_objective(contended_instance, y) == pytest.approx(3.0)

    def test_dual_feasibility_check(self, contended_instance):
        # y = 5 on the single edge covers every request's value (v <= d * y).
        assert ufp_dual_is_feasible(contended_instance, np.array([5.0]))
        assert not ufp_dual_is_feasible(contended_instance, np.array([1.0]))
        # Adding z duals can restore feasibility.
        assert ufp_dual_is_feasible(
            contended_instance, np.array([1.0]), np.array([4.0, 2.0, 1.0])
        )

    def test_minimum_normalized_path_length(self, contended_instance):
        y = np.array([2.0])
        # alpha = min_r d/v * dist = 1/5 * 2 = 0.4.
        assert minimum_normalized_path_length(contended_instance, y) == pytest.approx(0.4)
        subset = minimum_normalized_path_length(contended_instance, y, request_subset={2})
        assert subset == pytest.approx(1.0)

    def test_lp_duals_are_dual_feasible(self, contended_instance):
        result = solve_fractional_ufp(contended_instance)
        # Edge duals alone need the z_r complement; with z_r chosen as the
        # positive parts of the slack they certify the optimum.
        z = np.array(
            [
                max(0.0, req.value - req.demand * float(result.capacity_duals[0]))
                for req in contended_instance.requests
            ]
        )
        assert ufp_dual_is_feasible(contended_instance, result.capacity_duals, z)
        dual_value = ufp_dual_objective(contended_instance, result.capacity_duals, z)
        assert check_weak_duality(result.objective, dual_value)

    def test_check_weak_duality(self):
        assert check_weak_duality(3.0, 3.0)
        assert check_weak_duality(2.9, 3.0)
        assert not check_weak_duality(3.1, 3.0)

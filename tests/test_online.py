"""Tests for the online streaming auction subsystem (``repro.online``)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import io
from repro.core.bounded_ufp import bounded_ufp
from repro.exceptions import InvalidInstanceError
from repro.flows import (
    Request,
    StreamingAllocation,
    UFPInstance,
    isp_instance,
    random_instance,
)
from repro.graphs import CapacitatedGraph
from repro.online import (
    Batch,
    OnlineAuction,
    adversarial_arrivals,
    bursty_arrivals,
    poisson_arrivals,
    trace_arrivals,
)


# ---------------------------------------------------------------------- #
# Arrival processes
# ---------------------------------------------------------------------- #
class TestArrivalProcesses:
    def _requests(self, count: int = 10) -> list[Request]:
        return [Request(0, 1, 0.5, 1.0 + i, name=f"r{i}") for i in range(count)]

    def test_poisson_singletons_cover_all_requests_in_order(self):
        requests = self._requests()
        batches = list(poisson_arrivals(requests, rate=3.0, seed=1))
        assert [b.requests[0] for b in batches] == requests
        times = [b.time for b in batches]
        assert times == sorted(times)
        assert all(len(b) == 1 for b in batches)

    def test_poisson_batch_window_coalesces(self):
        requests = self._requests(40)
        batches = list(
            poisson_arrivals(requests, rate=10.0, batch_window=1.0, seed=2)
        )
        assert sum(len(b) for b in batches) == 40
        assert len(batches) < 40  # at rate 10 per unit window, batching happens
        flat = [r for b in batches for r in b.requests]
        assert flat == requests

    def test_poisson_is_deterministic_per_seed(self):
        requests = self._requests()
        a = [(b.time, b.requests) for b in poisson_arrivals(requests, seed=7)]
        b = [(b.time, b.requests) for b in poisson_arrivals(requests, seed=7)]
        assert a == b

    def test_poisson_rejects_bad_rate(self):
        with pytest.raises(InvalidInstanceError):
            list(poisson_arrivals(self._requests(), rate=0.0))

    def test_bursty_shapes_and_shuffle_determinism(self):
        requests = self._requests(10)
        batches = list(bursty_arrivals(requests, burst_size=4))
        assert [len(b) for b in batches] == [4, 4, 2]
        assert [r for b in batches for r in b.requests] == requests
        s1 = [b.requests for b in bursty_arrivals(requests, burst_size=4, shuffle=True, seed=3)]
        s2 = [b.requests for b in bursty_arrivals(requests, burst_size=4, shuffle=True, seed=3)]
        assert s1 == s2
        assert sorted(r.name for b in s1 for r in b) == sorted(r.name for r in requests)

    def test_adversarial_orders(self):
        requests = [
            Request(0, 1, 1.0, 4.0, name="dense"),
            Request(0, 1, 1.0, 1.0, name="sparse"),
            Request(0, 1, 0.5, 1.0, name="middling"),
        ]
        by_density = [b.requests[0].name for b in adversarial_arrivals(requests)]
        assert by_density == ["sparse", "middling", "dense"]
        by_value = [
            b.requests[0].name
            for b in adversarial_arrivals(requests, order="value_descending")
        ]
        assert by_value[0] == "dense"
        with pytest.raises(InvalidInstanceError):
            list(adversarial_arrivals(requests, order="nope"))

    def test_trace_arrivals_from_instance_and_file(self, tmp_path):
        instance = random_instance(num_vertices=6, num_requests=9, seed=4)
        batches = list(trace_arrivals(instance, batch_size=4))
        assert [len(b) for b in batches] == [4, 4, 1]
        path = tmp_path / "trace.json"
        io.save_json(instance, path)
        replayed = list(trace_arrivals(path, batch_size=4))
        assert [
            [r.name for r in b.requests] for b in replayed
        ] == [[r.name for r in b.requests] for b in batches]


# ---------------------------------------------------------------------- #
# The online auction driver
# ---------------------------------------------------------------------- #
class TestOnlineAuction:
    def test_streaming_matches_offline_on_uncontended_workload(self):
        """With capacity to spare the budget never fires, so every order
        admits everything — streaming and offline values coincide."""
        instance = isp_instance(num_requests=30, seed=7)
        offline = bounded_ufp(instance, 0.3)
        auction = OnlineAuction(instance.graph, 0.3)
        result = auction.run(poisson_arrivals(instance.requests, seed=7))
        result.validate()
        assert isinstance(result, StreamingAllocation)
        assert result.value == pytest.approx(offline.value)
        assert result.num_selected == len(offline.routed)

    def test_streaming_allocation_bookkeeping(self):
        instance = isp_instance(num_requests=20, seed=3)
        auction = OnlineAuction(instance.graph, 0.3, name="bookkeeping")
        result = auction.run(bursty_arrivals(instance.requests, burst_size=6))
        assert result.num_batches == 4
        assert result.instance.num_requests == 20
        assert result.instance.name == "bookkeeping"
        assert len(result.events) == len(result.routed)
        assert len(result.rejected) == 20 - result.num_selected
        assert result.payments.shape == (20,)
        assert 0.0 <= result.admission_rate <= 1.0
        # Events align with routed entries and carry arrival metadata.
        for event, item in zip(result.events, result.routed):
            assert event.request_index == item.request_index
            assert 0 <= event.arrival_batch <= event.batch < result.num_batches
            assert math.isfinite(event.score)

    def test_contended_stream_admits_fewer_than_offline_order_sensitive(self):
        instance = isp_instance(
            num_core=4, leaves_per_core=3, core_capacity=16.0,
            access_capacity=8.0, num_requests=100, seed=1,
        )
        offline = bounded_ufp(instance, 0.5)
        adversarial = OnlineAuction(instance.graph, 0.5).run(
            adversarial_arrivals(instance.requests)
        )
        adversarial.validate()
        assert adversarial.stats.stopped_by_budget
        # The cheapest-density-first order strictly hurts.
        assert adversarial.value < offline.value

    def test_greedy_policy_admits_batch_in_global_cheapest_first_order(self):
        """Within a batch the greedy drain admits in normalized-score order
        (highest value first here), not arrival order; and since greedy only
        defers past budget exhaustion, every admission lands in its own
        arrival batch (batch == arrival_batch)."""
        graph = CapacitatedGraph(2, [(0, 1, 6.0)], directed=True)
        auction = OnlineAuction(graph, 1.0)
        events = auction.submit(
            [Request(0, 1, 1.0, 2.0), Request(0, 1, 1.0, 4.0), Request(0, 1, 1.0, 3.0)]
        )
        assert [e.request_index for e in events] == [1, 2, 0]
        assert all(e.batch == e.arrival_batch for e in events)

    def test_threshold_policy_prices_out_cheap_requests_forever(self):
        graph = CapacitatedGraph(2, [(0, 1, 8.0)], directed=True)
        auction = OnlineAuction(
            graph, 0.5, admission="threshold", score_threshold=0.5
        )
        # score = (d / v) * y with y starting at 1/8; demand 1, value 1 gives
        # 0.125 <= 0.5 (admit); demand 1, value 0.2 gives 0.625 > 0.5 (reject).
        admitted = auction.submit([Request(0, 1, 1.0, 1.0)])
        rejected = auction.submit([Request(0, 1, 1.0, 0.2)])
        assert len(admitted) == 1 and len(rejected) == 0
        assert auction.num_pending == 1  # priced out but still tracked
        result = auction.finalize()
        assert result.rejected == (1,)

    def test_unroutable_requests_are_rejected_not_crashed(self):
        graph = CapacitatedGraph(4, [(0, 1, 5.0), (2, 3, 5.0)], directed=True)
        auction = OnlineAuction(graph, 1.0)
        events = auction.submit([Request(1, 0, 1.0, 1.0), Request(0, 1, 1.0, 1.0)])
        assert [e.request_index for e in events] == [1]
        result = auction.finalize()
        assert result.rejected == (0,)

    def test_budget_exhaustion_stops_admission_across_batches(self):
        """On a single capacity-4 edge with eps = 1 the dual budget grows by
        a factor of e per unit admission and the limit is e^{B-1} = e^3, so
        exactly 4 of the 8 identical requests are admitted (filling the edge
        to capacity, as Lemma 3.3 promises) and every later batch admits
        nothing."""
        graph = CapacitatedGraph(2, [(0, 1, 4.0)], directed=True)
        auction = OnlineAuction(graph, 1.0)
        first = auction.submit([Request(0, 1, 1.0, 5.0) for _ in range(8)])
        assert len(first) == 4
        assert not auction.within_budget
        later = auction.submit([Request(0, 1, 1.0, 50.0)])
        assert later == []
        final = auction.finalize()
        final.validate()
        assert final.max_utilization() == pytest.approx(1.0)
        assert final.stats.stopped_by_budget

    def test_finalize_is_idempotent(self):
        instance = isp_instance(num_requests=10, seed=2)
        auction = OnlineAuction(instance.graph, 0.3)
        auction.submit(instance.requests, time=0.0)
        a = auction.finalize()
        b = auction.finalize()
        assert a.value == b.value
        assert [r.request_index for r in a.routed] == [r.request_index for r in b.routed]

    def test_invalid_policy_rejected(self):
        graph = CapacitatedGraph(2, [(0, 1, 4.0)], directed=True)
        with pytest.raises(InvalidInstanceError):
            OnlineAuction(graph, 0.5, admission="magic")
        with pytest.raises(InvalidInstanceError):
            OnlineAuction(graph, 0.5, admission="threshold", score_threshold=0.0)

    def test_streaming_equals_offline_when_whole_stream_is_one_batch(self):
        """Submitting everything in one batch is exactly offline Bounded-UFP:
        same selections, same order, same paths."""
        instance = random_instance(
            num_vertices=10, edge_probability=0.3, capacity=12.0,
            num_requests=40, demand_range=(0.4, 1.0), seed=11,
        )
        offline = bounded_ufp(instance, 0.5)
        auction = OnlineAuction(instance.graph, 0.5)
        result = auction.run(iter([Batch(time=0.0, requests=instance.requests)]))
        assert [r.request_index for r in result.routed] == [
            r.request_index for r in offline.routed
        ]
        assert [r.vertices for r in result.routed] == [
            r.vertices for r in offline.routed
        ]


# ---------------------------------------------------------------------- #
# The acceptance-criterion cache test: untouched sources are not re-priced
# ---------------------------------------------------------------------- #
class TestIncrementalPricing:
    def test_arrival_on_untouched_source_does_not_rerun_dijkstra(self):
        """Two disjoint corridors.  Admissions on corridor A touch only A's
        edges, so corridor B's cached tree stays valid: a later arrival from
        B's source must be priced from the cache (tree_reuses grows) without
        a new shortest-path computation (dijkstra_calls frozen)."""
        graph = CapacitatedGraph(
            4, [(0, 1, 8.0), (2, 3, 8.0)], directed=True
        )
        auction = OnlineAuction(graph, 0.5)
        # Batch 1 primes both sources (2 Dijkstra runs) and admits both,
        # invalidating each corridor's own tree.
        auction.submit([Request(0, 1, 1.0, 2.0), Request(2, 3, 1.0, 2.0)])
        stats = auction.pricing_stats
        assert stats.dijkstra_calls == 2
        # Batch 2: a corridor-A arrival re-prices source 0 (its tree was
        # invalidated by the batch-1 admission on edge (0, 1)).
        auction.submit([Request(0, 1, 1.0, 1.5)])
        calls_after_touch = auction.pricing_stats.dijkstra_calls
        assert calls_after_touch == 3
        # Batch 3: a corridor-B arrival — but batch 2's admission touched
        # only corridor A's edge, so source 2's tree from batch 2... was
        # invalidated in batch 1 by its own admission.  Re-prime it:
        auction.submit([Request(2, 3, 1.0, 1.5)])
        assert auction.pricing_stats.dijkstra_calls == 4

        # Now the decisive phase: corridor-B requests kept un-admitted
        # (threshold run below) never invalidate, so further B arrivals are
        # priced purely from cache.
        # Fresh graph object: the per-graph tree memo would otherwise
        # warm-start these trees from the first auction's run (also correct,
        # but this test isolates the *within-stream* cache).
        graph2 = CapacitatedGraph(4, [(0, 1, 8.0), (2, 3, 8.0)], directed=True)
        auction2 = OnlineAuction(
            graph2, 0.5, admission="threshold", score_threshold=0.2
        )
        # Admissible on A (score 1/8 = 0.125 <= 0.2), priced out on B
        # (value 0.5 -> score 0.25 > 0.2).
        auction2.submit([Request(0, 1, 1.0, 2.0), Request(2, 3, 1.0, 0.5)])
        base_calls = auction2.pricing_stats.dijkstra_calls
        base_reuses = auction2.pricing_stats.tree_reuses
        assert base_calls == 2
        # Three more corridor-B arrivals: the admitted corridor-A path never
        # intersects B's tree, and the priced-out B request never committed,
        # so B's cached tree is untouched — zero new Dijkstra runs.
        auction2.submit([Request(2, 3, 1.0, 0.4)])
        auction2.submit([Request(2, 3, 1.0, 0.3)])
        auction2.submit([Request(2, 3, 1.0, 0.45)])
        assert auction2.pricing_stats.dijkstra_calls == base_calls
        assert auction2.pricing_stats.tree_reuses >= base_reuses + 3

    def test_streaming_saves_dijkstra_calls_vs_eager_on_real_workload(self):
        instance = isp_instance(num_requests=60, seed=5)
        auction = OnlineAuction(instance.graph, 0.3)
        result = auction.run(bursty_arrivals(instance.requests, burst_size=6))
        stats = auction.pricing_stats
        assert stats.tree_reuses > 0
        # The engine never computes more trees than the eager per-iteration
        # strategy would have.
        assert stats.dijkstra_calls <= stats.eager_equivalent_calls or (
            stats.eager_equivalent_calls == 0
        )
        assert result.stats.extra["pricing_tree_reuses"] == stats.tree_reuses


# ---------------------------------------------------------------------- #
# Online MUCA streaming
# ---------------------------------------------------------------------- #
class TestOnlineMUCA:
    def test_single_batch_stream_matches_offline_bounded_muca(self):
        from repro.auctions import random_auction
        from repro.core import bounded_muca
        from repro.online import OnlineMUCAAuction

        auction = random_auction(num_items=8, num_bids=25, multiplicity=6.0, seed=9)
        offline = bounded_muca(auction, 0.5)
        online = OnlineMUCAAuction(auction.multiplicities, 0.5)
        result = online.run([list(auction.bids)])
        assert result.winners == offline.winners
        assert result.value == offline.value
        result.validate()

    def test_batched_stream_is_feasible_and_budget_limited(self):
        from repro.auctions import Bid
        from repro.online import OnlineMUCAAuction

        online = OnlineMUCAAuction(np.array([2.0, 2.0]), 1.0)
        bids = [Bid((0,), 3.0), Bid((0, 1), 2.0), Bid((1,), 1.5), Bid((0,), 1.0)]
        for bid in bids:
            online.submit([bid])
        result = online.finalize()
        result.validate()
        assert result.stats.extra["num_batches"] == 4.0

    def test_disjoint_bundles_are_never_re_priced(self):
        """A bid sharing no item with any winner keeps its exact cached
        score: streaming disjoint-bundle bids causes zero re-pricings."""
        from repro.auctions import Bid
        from repro.online import OnlineMUCAAuction

        online = OnlineMUCAAuction(np.full(6, 8.0), 0.5)
        for item in range(6):
            online.submit([Bid((item,), 1.0 + item)])
        assert online.num_admitted == 6
        assert online.pricing_stats.repricings == 0


# ---------------------------------------------------------------------- #
# Online payments
# ---------------------------------------------------------------------- #
class TestOnlinePayments:
    def test_second_price_flavour_on_single_edge_batch(self):
        """One capacity-2 edge, values (5, 3, 2) arriving together: the two
        winners must each pay (up to bisection tolerance) the displaced
        value 2 — the same critical values as the offline mechanism."""
        graph = CapacitatedGraph(2, [(0, 1, 2.0)], directed=True)
        auction = OnlineAuction(graph, 1.0, compute_payments=True)
        events = auction.submit(
            [
                Request(0, 1, 1.0, 5.0, name="a"),
                Request(0, 1, 1.0, 3.0, name="b"),
                Request(0, 1, 1.0, 2.0, name="c"),
            ]
        )
        admitted = {e.request_index: e.payment for e in events}
        assert set(admitted) == {0, 1}
        assert admitted[0] == pytest.approx(2.0, abs=1e-3)
        assert admitted[1] == pytest.approx(2.0, abs=1e-3)

    def test_payments_are_individually_rational_and_zero_for_losers(self):
        instance = isp_instance(
            num_core=3, leaves_per_core=2, core_capacity=20.0,
            access_capacity=12.0, num_requests=14, seed=5,
        )
        auction = OnlineAuction(
            instance.graph, 0.5, admission="threshold",
            score_threshold=1.0, compute_payments=True,
        )
        result = auction.run(bursty_arrivals(list(instance.requests), burst_size=4))
        declared = result.instance.values_array()
        assert np.all(result.payments <= declared + 1e-9)
        assert np.all(result.payments >= 0.0)
        for idx in result.rejected:
            assert result.payments[idx] == 0.0
        assert result.revenue == pytest.approx(float(result.payments.sum()))

    def test_sequential_batches_price_against_history(self):
        """Under the posted-price policy the critical value of a unit-demand
        request on a single edge is exactly ``y_e / threshold``, so a request
        admitted after the dual price grew pays strictly more than an
        identical one admitted while the edge was empty.  (Greedy payments
        would be ~0 here: greedy admits any routable positive-value request
        while within budget, so only the price *cap* makes history bind.)"""
        graph = CapacitatedGraph(2, [(0, 1, 3.0)], directed=True)
        auction = OnlineAuction(
            graph, 1.0, admission="threshold", score_threshold=1.0,
            compute_payments=True,
        )
        e_const = math.e
        first = auction.submit([Request(0, 1, 1.0, 5.0), Request(0, 1, 1.0, 4.0)])
        second = auction.submit([Request(0, 1, 1.0, 5.0)])
        assert len(first) == 2 and len(second) == 1
        # Batch 1: both winners pay the once-updated price e/3 — shading
        # your value demotes you behind the other winner in the replay, so
        # the critical value is the price *after* their admission (the
        # second-price flavour of critical values).
        assert first[0].payment == pytest.approx(e_const / 3.0, rel=1e-4)
        assert first[1].payment == pytest.approx(e_const / 3.0, rel=1e-4)
        # Batch 2: an identical request now faces the twice-updated price.
        assert second[0].payment == pytest.approx(e_const**2 / 3.0, rel=1e-4)
        assert second[0].payment > max(e.payment for e in first)
        final = auction.finalize()
        final.validate()

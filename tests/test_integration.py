"""Cross-module integration tests.

Each test exercises a full pipeline — instance generation, algorithm, LP
bound, mechanism, audit — the way a downstream user would chain the public
API, asserting the relationships the paper's theory promises between the
pieces (algorithm <= exact <= fractional, truthful payments, consistency of
the two fractional solvers, etc.).
"""

from __future__ import annotations

from functools import partial

import numpy as np
import pytest

from repro.auctions import partition_instance, random_auction
from repro.baselines import (
    briest_style_ufp,
    exact_ufp,
    greedy_ufp_by_value,
    randomized_rounding_ufp,
)
from repro.core import (
    BoundedUFPPriority,
    ReasonableIterativePathMinimizer,
    bounded_muca,
    bounded_ufp,
    bounded_ufp_repeat,
    staircase_tie_break,
)
from repro.flows import random_instance, staircase_instance
from repro.fractional import garg_konemann_fractional_ufp
from repro.lp import solve_fractional_muca, solve_fractional_ufp, solve_path_lp
from repro.mechanism import (
    audit_ufp_truthfulness,
    check_ufp_monotonicity,
    run_truthful_muca_mechanism,
    run_truthful_ufp_mechanism,
)
from repro.types import E_OVER_E_MINUS_1


class TestValueChainOrdering:
    """algorithm value <= exact optimum <= fractional optimum, across solvers."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_ufp_value_chain(self, seed):
        instance = random_instance(
            num_vertices=6, edge_probability=0.45, capacity=2.0,
            num_requests=9, demand_range=(0.5, 1.0), seed=seed,
        )
        exact = exact_ufp(instance, max_path_hops=5).value
        fractional = solve_fractional_ufp(instance).objective
        path_lp = solve_path_lp(instance).objective
        gk = garg_konemann_fractional_ufp(instance, 0.15)

        for algorithm in (
            lambda i: bounded_ufp(i, 1.0),
            greedy_ufp_by_value,
            lambda i: briest_style_ufp(i, 1.0),
            lambda i: randomized_rounding_ufp(i, 0.2, seed=seed),
        ):
            allocation = algorithm(instance)
            allocation.validate()
            assert allocation.value <= exact + 1e-6

        assert exact <= fractional + 1e-6
        assert fractional == pytest.approx(path_lp, rel=1e-5, abs=1e-6)
        assert gk.objective <= fractional + 1e-6
        assert gk.dual_bound >= fractional - 1e-6

    def test_repetitions_dominate_everything_integral(self):
        instance = random_instance(
            num_vertices=6, edge_probability=0.5, capacity=20.0,
            num_requests=10, demand_range=(0.5, 1.0), seed=5,
        )
        plain = bounded_ufp(instance, 0.4).value
        repeat = bounded_ufp_repeat(instance, 0.4).value
        lp_plain = solve_fractional_ufp(instance).objective
        lp_repeat = solve_fractional_ufp(instance, repetitions=True).objective
        assert plain <= lp_plain + 1e-6
        assert repeat <= lp_repeat + 1e-6
        assert repeat >= plain - 1e-9
        assert lp_repeat >= lp_plain - 1e-9


class TestEndToEndMechanisms:
    def test_truthful_ufp_pipeline_on_isp_style_workload(self):
        instance = random_instance(
            num_vertices=8, edge_probability=0.4, capacity=12.0,
            num_requests=12, demand_range=(0.4, 1.0), seed=11,
        )
        result = run_truthful_ufp_mechanism(instance, epsilon=0.5)
        result.allocation.validate()
        # Individual rationality + no payment for losers.
        for idx, request in enumerate(instance.requests):
            if result.allocation.is_selected(idx):
                assert result.payments[idx] <= request.value + 1e-6
            else:
                assert result.payments[idx] == 0.0
        assert 0.0 <= result.revenue <= result.social_welfare + 1e-9

        audit = audit_ufp_truthfulness(
            partial(bounded_ufp, epsilon=0.5),
            instance,
            agents=list(range(4)),
            misreports_per_agent=3,
            seed=0,
        )
        assert audit.is_truthful

    def test_truthful_muca_pipeline(self):
        auction = random_auction(
            num_items=8, num_bids=25, multiplicity=6.0, bundle_size_range=(1, 3), seed=2
        )
        result = run_truthful_muca_mechanism(auction, epsilon=0.5)
        result.allocation.validate()
        assert result.revenue <= result.social_welfare + 1e-9
        assert np.all(result.payments >= -1e-12)

    def test_monotonicity_audit_of_full_pipeline(self):
        instance = random_instance(
            num_vertices=7, edge_probability=0.4, capacity=10.0,
            num_requests=10, demand_range=(0.4, 1.0), seed=21,
        )
        report = check_ufp_monotonicity(
            partial(bounded_ufp, epsilon=0.5), instance, trials_per_request=3, seed=3
        )
        assert report.is_monotone


class TestPaperHeadlineNumbers:
    def test_headline_ratio_constant(self):
        assert E_OVER_E_MINUS_1 == pytest.approx(1.5819767, abs=1e-6)

    def test_staircase_family_ratio_approaches_e_over_e_minus_1(self):
        """As B grows the adversarial fraction 1 - (B/(B+1))^B approaches
        1 - 1/e from above, so the implied ratio climbs towards e/(e-1)."""
        ratios = []
        for ell, B in [(12, 3), (18, 6), (24, 9)]:
            instance = staircase_instance(ell, B)
            algorithm = ReasonableIterativePathMinimizer(
                BoundedUFPPriority(0.5, float(B)), tie_break=staircase_tie_break
            )
            value = algorithm.run(instance).value
            ratios.append(instance.metadata["known_optimum"] / value)
        assert ratios[0] > ratios[1] > ratios[2]
        assert all(r > E_OVER_E_MINUS_1 - 1e-9 for r in ratios)

    def test_muca_and_ufp_guarantees_consistent(self):
        """Bounded-MUCA inherits Bounded-UFP's analysis (Theorem 4.1 proof):
        on matched workloads in the valid regime both stay within the
        (1 + 6 eps) e/(e-1) factor of their LP bounds."""
        eps = 0.4
        instance = random_instance(
            num_vertices=6, edge_probability=0.5, capacity=22.0,
            num_requests=150, demand_range=(0.6, 1.0), seed=8,
        )
        auction = random_auction(
            num_items=10, num_bids=150, multiplicity=25.0,
            bundle_size_range=(2, 4), seed=8,
        )
        guarantee = (1 + 6 * eps) * E_OVER_E_MINUS_1
        if instance.meets_capacity_assumption(eps):
            ufp_ratio = solve_fractional_ufp(instance).objective / bounded_ufp(instance, eps).value
            assert ufp_ratio <= guarantee + 1e-9
        if auction.meets_capacity_assumption(eps):
            muca_ratio = (
                solve_fractional_muca(auction).objective / bounded_muca(auction, eps).value
            )
            assert muca_ratio <= guarantee + 1e-9

    def test_partition_family_certifies_gap_against_lp(self):
        """The Figure 4 optimum p*B is also the LP optimum, so the 4/3-ish gap
        of the greedy family is a genuine approximation gap, not an artifact
        of a loose bound."""
        instance = partition_instance(5, 4)
        lp = solve_fractional_muca(instance).objective
        assert lp == pytest.approx(instance.metadata["known_optimum"], rel=1e-6)

"""Unit tests of the benchmark regression gate (``benchmarks/compare_bench.py``)."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

_GATE_PATH = Path(__file__).resolve().parents[1] / "benchmarks" / "compare_bench.py"
_spec = importlib.util.spec_from_file_location("compare_bench", _GATE_PATH)
compare_bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(compare_bench)


def test_within_threshold_passes():
    regressions, notes = compare_bench.compare(
        {"a": 1.1, "b": 0.9}, {"a": 1.0, "b": 1.0}, threshold=1.2
    )
    assert regressions == []
    assert len(notes) == 2


def test_regression_detected():
    regressions, _ = compare_bench.compare({"a": 1.5}, {"a": 1.0}, threshold=1.2)
    assert len(regressions) == 1
    assert "REGRESSED" in regressions[0]


def test_missing_benchmark_is_a_regression():
    regressions, _ = compare_bench.compare({}, {"a": 1.0}, threshold=1.2)
    assert len(regressions) == 1
    assert "MISSING" in regressions[0]


def test_new_benchmark_is_noted_not_failed():
    regressions, notes = compare_bench.compare({"new": 1.0}, {}, threshold=1.2)
    assert regressions == []
    assert any("new" in line for line in notes)


def test_normalize_cancels_uniform_machine_shift():
    baseline = {"a": 0.1, "b": 0.01, "c": 0.3}
    slower_machine = {name: mean * 1.8 for name, mean in baseline.items()}
    regressions, _ = compare_bench.compare(
        slower_machine, baseline, threshold=1.2, normalize=True
    )
    assert regressions == []


def test_normalize_still_catches_single_regression():
    baseline = {"a": 0.1, "b": 0.01, "c": 0.3, "d": 0.2}
    # Everything 1.5x slower (new machine) AND one benchmark regressed 3x.
    current = {name: mean * 1.5 for name, mean in baseline.items()}
    current["b"] *= 3.0
    regressions, _ = compare_bench.compare(
        current, baseline, threshold=1.2, normalize=True
    )
    assert len(regressions) == 1
    assert "b" in regressions[0]


def test_main_against_committed_baseline(tmp_path, capsys):
    """End to end: the committed baseline compared against itself passes, and
    a doubled copy fails."""
    baseline = _GATE_PATH.parent / "BENCH_PR4.json"
    assert baseline.exists(), "committed BENCH_PR4.json baseline missing"
    assert compare_bench.main([str(baseline), str(baseline)]) == 0

    doubled = json.loads(baseline.read_text())
    for bench in doubled["benchmarks"]:
        bench["stats"]["mean"] *= 2.0
    slow = tmp_path / "slow.json"
    slow.write_text(json.dumps(doubled))
    assert compare_bench.main([str(slow), str(baseline)]) == 1
    capsys.readouterr()

"""Multi-supervisor fleet tests (in-process).

Several :class:`JobQueue` handles share one root.  ``flock`` contends
between file descriptors even inside one process, so these tests exercise
the real cross-process transaction protocol — peer-tail following, fenced
leases, and work distribution — without subprocess plumbing (that lives in
``test_service_signals.py``).
"""

from __future__ import annotations

import threading

from repro.scenarios.runner import run_campaign
from repro.scenarios.specs import enumerate_cells
from repro.scenarios.store import ResultStore
from repro.service import JobQueue, Supervisor, SupervisorConfig, job_id_for
from repro.utils.backoff import BackoffPolicy


def _suite(name, cells=2):
    return {
        "name": name,
        "seed": 11,
        "topologies": [{"name": "g", "family": "grid", "rows": 3, "cols": 3}],
        "regimes": [
            {"name": f"r{i}", "capacity": 5.0 + i, "num_requests": 8}
            for i in range(cells)
        ],
        "modes": [{"name": "off", "kind": "offline", "bound": "none"}],
    }


def _fleet(tmp_path, nodes, **queue_kwargs):
    """N supervisors, each with its *own* queue handle on one root."""
    queue_kwargs.setdefault("lease_seconds", 30.0)
    members = []
    for index in range(nodes):
        queue = JobQueue(tmp_path / "svc", **queue_kwargs)
        supervisor = Supervisor(
            queue,
            tmp_path / "svc" / "results",
            config=SupervisorConfig(
                node=f"node-{index}",
                poll_interval=0.01,
                backoff=BackoffPolicy(base=0.01, cap=0.05),
            ),
        )
        members.append((queue, supervisor))
    return members


class TestFleet:
    def test_fleet_splits_work_and_matches_serial_hashes(self, tmp_path):
        suites = [_suite(f"fleet-{i}") for i in range(4)]
        specs = [{"kind": "campaign", "suite": suite} for suite in suites]
        members = _fleet(tmp_path, nodes=3)
        intake = members[0][0]
        for spec in specs:
            intake.submit(spec)

        def drive(supervisor):
            while supervisor.run_until_idle():
                pass

        threads = [
            threading.Thread(target=drive, args=(supervisor,))
            for _queue, supervisor in members
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60.0)

        workers = set()
        for spec, suite in zip(specs, suites):
            job = intake.get(job_id_for(spec))
            assert job.state == "DONE"
            assert job.attempts == 0  # no contention-driven retries
            reference = ResultStore(tmp_path / "ref" / suite["name"])
            result = run_campaign(suite, store=reference)
            keys = [cell.key for cell in enumerate_cells(result.suite)]
            summary = members[0][1].load_result(job.id)
            assert summary["content_hash"] == reference.content_hash(keys)
            done = [
                e
                for e in intake.wal.events_for(job.id)
                if e["event"] == "DONE"
            ]
            assert len(done) == 1  # exactly one acknowledgement, fleet-wide
            workers.add(done[0].get("token"))
        # Tokens are globally unique across the fleet's acknowledgements.
        assert len(workers) == len(specs)

    def test_peer_handles_observe_each_others_writes(self, tmp_path):
        first = JobQueue(tmp_path / "svc", lease_seconds=30.0)
        second = JobQueue(tmp_path / "svc", lease_seconds=30.0)
        job, _ = first.submit({"suite": _suite("shared")})
        # The peer sees the submission, leases it, and the first handle
        # sees that lease — all through the WAL, no shared memory.
        leased = second.lease("peer/w0")
        assert leased.id == job.id
        view = first.get(job.id)
        assert view.state == "RUNNING"
        assert view.worker == "peer/w0"
        assert view.fence == leased.fence
        second.complete(job.id, "peer/w0", token=leased.fence)
        assert first.get(job.id).state == "DONE"

    def test_concurrent_leasing_never_double_assigns(self, tmp_path):
        handles = [JobQueue(tmp_path / "svc", lease_seconds=30.0) for _ in range(4)]
        for index in range(8):
            handles[0].submit({"suite": _suite(f"c{index}", cells=1)})
        grabbed: list[str] = []
        lock = threading.Lock()

        def grab(queue, worker):
            while True:
                job = queue.lease(worker)
                if job is None:
                    return
                with lock:
                    grabbed.append(job.id)

        threads = [
            threading.Thread(target=grab, args=(queue, f"n{i}/w"))
            for i, queue in enumerate(handles)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30.0)
        assert len(grabbed) == 8
        assert len(set(grabbed)) == 8  # every job leased exactly once

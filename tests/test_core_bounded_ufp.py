"""Tests for Algorithm 1 (``Bounded-UFP``)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bounded_ufp, recommended_epsilon
from repro.exceptions import CapacityBoundError, InvalidInstanceError
from repro.flows import Request, UFPInstance, random_instance, staircase_instance
from repro.graphs import CapacitatedGraph
from repro.lp import solve_fractional_ufp
from repro.mechanism.monotonicity import check_exactness
from repro.types import E_OVER_E_MINUS_1


class TestBasicBehaviour:
    def test_routes_everything_when_uncontended(self, roomy_diamond_instance):
        allocation = bounded_ufp(roomy_diamond_instance, 1.0)
        assert allocation.value == pytest.approx(roomy_diamond_instance.total_value)
        assert allocation.is_feasible()
        assert allocation.stats.iterations == 3

    def test_contended_edge_prefers_high_density(self, contended_instance):
        # Capacity 2, requests of value 5, 3, 2 with unit demand: the
        # algorithm picks in decreasing density order and the budget rule
        # keeps the result feasible.
        allocation = bounded_ufp(contended_instance, 1.0)
        allocation.validate()
        assert allocation.is_selected(0)
        assert allocation.value >= 5.0

    def test_selection_order_by_normalized_length(self, contended_instance):
        allocation = bounded_ufp(contended_instance, 1.0)
        order = [item.request_index for item in allocation.routed]
        # Highest density (value 5) first, then value 3.
        assert order[0] == 0
        if len(order) > 1:
            assert order[1] == 1

    def test_empty_request_list(self, diamond_graph):
        allocation = bounded_ufp(UFPInstance(diamond_graph, []), 0.5)
        assert allocation.value == 0.0
        assert allocation.stats.iterations == 0

    def test_rejects_unnormalized_demands(self, diamond_graph):
        instance = UFPInstance(diamond_graph, [Request(0, 3, 2.0, 1.0)])
        with pytest.raises(InvalidInstanceError):
            bounded_ufp(instance, 0.5)

    def test_rejects_graph_without_edges(self):
        instance = UFPInstance(CapacitatedGraph(2, []), [])
        with pytest.raises(InvalidInstanceError):
            bounded_ufp(instance, 0.5)

    def test_rejects_bad_epsilon(self, diamond_instance):
        with pytest.raises(ValueError):
            bounded_ufp(diamond_instance, 0.0)
        with pytest.raises(ValueError):
            bounded_ufp(diamond_instance, 1.5)

    def test_unroutable_requests_are_skipped(self):
        graph = CapacitatedGraph(3, [(0, 1, 50.0)], directed=True)
        instance = UFPInstance(
            graph, [Request(0, 2, 1.0, 9.0), Request(0, 1, 1.0, 1.0)]
        )
        allocation = bounded_ufp(instance, 1.0)
        assert allocation.value == pytest.approx(1.0)
        assert not allocation.is_selected(0)

    def test_capacity_check_modes(self):
        instance = random_instance(num_vertices=8, capacity=2.0, num_requests=5, seed=0)
        # B = 2 is far below ln(m)/eps^2 for eps = 0.1.
        with pytest.raises(CapacityBoundError):
            bounded_ufp(instance, 0.1, capacity_check="strict")
        with pytest.warns(UserWarning):
            bounded_ufp(instance, 0.1, capacity_check="warn")
        bounded_ufp(instance, 0.1, capacity_check="ignore")

    def test_recommended_epsilon(self):
        assert recommended_epsilon(0.6) == pytest.approx(0.1)
        with pytest.raises(ValueError):
            recommended_epsilon(0.0)

    def test_max_iterations_cap(self, contended_instance):
        allocation = bounded_ufp(contended_instance, 1.0, max_iterations=1)
        assert allocation.stats.iterations == 1
        assert allocation.num_selected == 1

    def test_stats_populated(self, roomy_diamond_instance):
        allocation = bounded_ufp(roomy_diamond_instance, 0.8)
        assert allocation.stats.shortest_path_calls >= allocation.stats.iterations
        assert allocation.stats.wall_time_s >= 0.0
        assert "final_dual_budget" in allocation.stats.extra
        assert allocation.algorithm.startswith("Bounded-UFP")


class TestTheoremGuarantees:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_feasibility_on_random_instances(self, seed):
        instance = random_instance(
            num_vertices=9, edge_probability=0.3, capacity=6.0,
            num_requests=60, demand_range=(0.5, 1.0), seed=seed,
        )
        allocation = bounded_ufp(instance, 0.5)
        allocation.validate()  # Lemma 3.3

    @pytest.mark.parametrize("seed", [0, 1])
    def test_exactness(self, seed):
        instance = random_instance(num_vertices=8, capacity=10.0, num_requests=20, seed=seed)
        assert check_exactness(bounded_ufp(instance, 0.4))

    def test_never_exceeds_fractional_optimum(self):
        for seed in range(3):
            instance = random_instance(
                num_vertices=8, edge_probability=0.35, capacity=8.0,
                num_requests=25, demand_range=(0.4, 1.0), seed=seed,
            )
            allocation = bounded_ufp(instance, 0.5)
            bound = solve_fractional_ufp(instance).objective
            assert allocation.value <= bound + 1e-6

    def test_approximation_guarantee_in_valid_regime(self):
        # A dense tiny graph keeps ln(m) small so B = 22 satisfies the
        # capacity assumption for eps = 0.4, and the many near-unit demands
        # make the instance genuinely contended.
        instance = random_instance(
            num_vertices=6, edge_probability=0.5, capacity=22.0,
            num_requests=220, demand_range=(0.6, 1.0), seed=1,
        )
        eps = 0.4
        assert instance.meets_capacity_assumption(eps)
        allocation = bounded_ufp(instance, eps)
        bound = solve_fractional_ufp(instance).objective
        guarantee = (1.0 + 6.0 * eps) * E_OVER_E_MINUS_1
        assert bound / allocation.value <= guarantee + 1e-9

    def test_iteration_bound(self):
        instance = random_instance(num_vertices=8, capacity=30.0, num_requests=40, seed=3)
        allocation = bounded_ufp(instance, 0.3)
        assert allocation.stats.iterations <= instance.num_requests

    def test_stops_by_budget_on_tiny_capacity(self):
        # With B = 1 and eps = 1 the budget limit is e^0 = 1 < m, so the
        # algorithm must stop immediately and output nothing.
        graph = CapacitatedGraph(2, [(0, 1, 1.0), (1, 0, 1.0)], directed=True)
        instance = UFPInstance(graph, [Request(0, 1, 1.0, 1.0)])
        allocation = bounded_ufp(instance, 1.0)
        assert allocation.value == 0.0
        assert allocation.stats.stopped_by_budget

    def test_monotone_in_value_single_agent(self, contended_instance):
        # Raising the declared value of a selected request keeps it selected.
        base = bounded_ufp(contended_instance, 1.0)
        assert base.is_selected(0)
        boosted = contended_instance.replace_request(
            0, contended_instance.requests[0].with_value(50.0)
        )
        assert bounded_ufp(boosted, 1.0).is_selected(0)

    def test_monotone_in_demand_single_agent(self, contended_instance):
        base = bounded_ufp(contended_instance, 1.0)
        assert base.is_selected(0)
        slimmer = contended_instance.replace_request(
            0, contended_instance.requests[0].with_demand(0.25)
        )
        assert bounded_ufp(slimmer, 1.0).is_selected(0)

    def test_deterministic(self, contended_instance):
        a = bounded_ufp(contended_instance, 0.7)
        b = bounded_ufp(contended_instance, 0.7)
        assert [r.request_index for r in a.routed] == [r.request_index for r in b.routed]
        assert [r.edge_ids for r in a.routed] == [r.edge_ids for r in b.routed]


class TestStaircaseBehaviour:
    def test_large_B_staircase_is_solved_optimally_with_default_dijkstra(self):
        # Without the adversarial tie-breaking, Bounded-UFP's own Dijkstra
        # tie-breaking happens to route greedily but the budget rule may stop
        # it early; the value is always between 0 and the optimum.
        instance = staircase_instance(6, 25)
        allocation = bounded_ufp(instance, 1.0)
        allocation.validate()
        assert 0.0 <= allocation.value <= instance.metadata["known_optimum"] + 1e-9

    def test_subdivided_staircase_exhibits_the_lower_bound_gap(self):
        instance = staircase_instance(8, 5, subdivide=True)
        allocation = bounded_ufp(instance, 1.0)
        allocation.validate()
        optimum = instance.metadata["known_optimum"]
        # Theorem 3.11: the algorithm cannot reach the optimum on this family.
        assert allocation.value < optimum - 1e-9


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=1000),
    epsilon=st.floats(min_value=0.2, max_value=1.0),
)
def test_property_feasibility_and_exactness(seed, epsilon):
    """On arbitrary random instances the output is feasible, exact and never
    beats the fractional optimum."""
    instance = random_instance(
        num_vertices=7, edge_probability=0.35, capacity=5.0,
        num_requests=18, demand_range=(0.3, 1.0), seed=seed,
    )
    allocation = bounded_ufp(instance, epsilon)
    allocation.validate()
    assert check_exactness(allocation)
    assert allocation.stats.iterations <= instance.num_requests
    assert allocation.value <= solve_fractional_ufp(instance).objective + 1e-6

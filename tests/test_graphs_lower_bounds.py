"""Tests for the Figure 2 / Figure 3 adversarial constructions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidInstanceError
from repro.graphs import (
    directed_staircase,
    ring7_optimal_value,
    staircase_optimal_value,
    undirected_ring7,
)
from repro.graphs.lower_bounds import (
    ring7_reasonable_upper_bound,
    staircase_reasonable_upper_bound,
)
from repro.graphs.shortest_path import single_source_dijkstra


class TestDirectedStaircase:
    def test_sizes_match_figure_2(self):
        ell, B = 5, 3
        graph, requests, layout = directed_staircase(ell, B)
        # Arcs s_i -> v_j for j >= i: ell*(ell+1)/2, plus ell arcs v_j -> t.
        assert graph.num_edges == ell * (ell + 1) // 2 + ell
        assert graph.num_vertices == 2 * ell + 1
        assert len(requests) == ell * B
        assert graph.directed
        assert layout["target"] == 2 * ell

    def test_all_capacities_equal_B(self):
        graph, _, _ = directed_staircase(4, 7)
        assert np.all(graph.capacities == 7.0)

    def test_requests_are_unit_type(self):
        _, requests, _ = directed_staircase(3, 2)
        assert all(d == 1.0 and v == 1.0 for (_, _, d, v) in requests)

    def test_connectivity_structure(self):
        ell = 4
        graph, _, layout = directed_staircase(ell, 2)
        # s_i has arcs exactly to v_j with j >= i.
        for i in range(ell):
            heads, _ = graph.out_arcs(layout[f"source_{i}"])
            reachable_intermediates = sorted(int(h) - ell for h in heads)
            assert reachable_intermediates == list(range(i, ell))

    def test_every_request_routable(self):
        graph, requests, _ = directed_staircase(4, 3)
        weights = np.ones(graph.num_edges)
        for s, t, _, _ in requests:
            tree = single_source_dijkstra(graph, s, weights, targets={t})
            assert tree.reachable(t)

    def test_optimal_value_formula(self):
        assert staircase_optimal_value(6, 5) == 30.0

    def test_reasonable_upper_bound_below_optimum_for_large_ell(self):
        ell, B = 60, 4
        assert staircase_reasonable_upper_bound(ell, B) < staircase_optimal_value(ell, B)

    def test_subdivided_variant_has_more_edges_and_same_requests(self):
        plain, requests_plain, _ = directed_staircase(4, 3)
        subdivided, requests_sub, _ = directed_staircase(4, 3, subdivide=True)
        assert subdivided.num_edges > plain.num_edges
        assert requests_sub == requests_plain
        # Every request remains routable in the subdivided graph.
        weights = np.ones(subdivided.num_edges)
        for s, t, _, _ in requests_sub:
            tree = single_source_dijkstra(subdivided, s, weights, targets={t})
            assert tree.reachable(t)

    def test_subdivided_path_lengths_break_ties(self):
        # In the subdivided graph the s_i -> v_j path has (i+1)*ell - j edges
        # (0-indexed), so for a fixed source larger j means a shorter path.
        ell = 3
        graph, _, layout = directed_staircase(ell, 2, subdivide=True)
        weights = np.ones(graph.num_edges)
        tree = single_source_dijkstra(graph, layout["source_0"], weights)
        hops = [tree.distance(layout[f"intermediate_{j}"]) for j in range(ell)]
        assert hops[0] > hops[1] > hops[2]

    def test_invalid_parameters(self):
        with pytest.raises(InvalidInstanceError):
            directed_staircase(0, 3)
        with pytest.raises(InvalidInstanceError):
            directed_staircase(3, 0)


class TestUndirectedRing7:
    def test_sizes_match_figure_3(self):
        graph, requests, layout = undirected_ring7(4)
        assert graph.num_vertices == 7
        assert graph.num_edges == 8
        assert len(requests) == 4 * 4
        assert not graph.directed
        assert layout["v7"] == 6

    def test_capacity_must_be_even(self):
        with pytest.raises(InvalidInstanceError):
            undirected_ring7(3)
        with pytest.raises(InvalidInstanceError):
            undirected_ring7(0)

    def test_request_groups(self):
        B = 6
        _, requests, _ = undirected_ring7(B)
        pairs = [(s, t) for s, t, _, _ in requests]
        for expected in [(0, 2), (3, 5), (0, 5), (2, 3)]:
            assert pairs.count(expected) == B

    def test_optimal_value(self):
        assert ring7_optimal_value(10) == 40.0
        assert ring7_reasonable_upper_bound(10) == 30.0

    def test_every_request_routable(self):
        graph, requests, _ = undirected_ring7(4)
        weights = np.ones(graph.num_edges)
        for s, t, _, _ in requests:
            tree = single_source_dijkstra(graph, s, weights, targets={t})
            assert tree.reachable(t)

"""Unit and differential tests for :mod:`repro.graphs.shortest_path`."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import NoPathError
from repro.graphs import (
    CapacitatedGraph,
    bellman_ford,
    random_digraph,
    random_graph,
    shortest_path,
    single_source_dijkstra,
    to_networkx,
)


class TestDijkstraBasics:
    def test_trivial_source_distance(self, diamond_graph):
        result = single_source_dijkstra(diamond_graph, 0, np.ones(5))
        assert result.distance(0) == 0.0
        assert result.source == 0

    def test_shortest_path_prefers_cheap_edge(self, diamond_graph):
        # With unit weights the direct 0 -> 3 edge (1 hop) wins.
        vertices, edges, length = shortest_path(diamond_graph, 0, 3, np.ones(5))
        assert vertices == (0, 3)
        assert edges == (4,)
        assert length == 1.0

    def test_shortest_path_respects_weights(self, diamond_graph):
        # Make the direct edge expensive; the path through vertex 1 is
        # 0.1 + 0.1 = 0.2, cheaper than the 5.0 shortcut.
        weights = np.array([0.1, 0.3, 0.1, 0.3, 5.0])
        vertices, edges, length = shortest_path(diamond_graph, 0, 3, weights)
        assert vertices == (0, 1, 3)
        assert edges == (0, 2)
        assert length == pytest.approx(0.2)

    def test_unreachable_raises(self):
        graph = CapacitatedGraph(3, [(0, 1, 1.0)], directed=True)
        with pytest.raises(NoPathError):
            shortest_path(graph, 0, 2, np.ones(1))

    def test_directed_edges_are_one_way(self):
        graph = CapacitatedGraph(2, [(0, 1, 1.0)], directed=True)
        with pytest.raises(NoPathError):
            shortest_path(graph, 1, 0, np.ones(1))

    def test_undirected_edges_are_two_way(self):
        graph = CapacitatedGraph(2, [(0, 1, 1.0)], directed=False)
        vertices, _, _ = shortest_path(graph, 1, 0, np.ones(1))
        assert vertices == (1, 0)

    def test_rejects_negative_weights(self, diamond_graph):
        with pytest.raises(ValueError):
            single_source_dijkstra(diamond_graph, 0, np.array([1, 1, 1, -1, 1], dtype=float))

    def test_rejects_wrong_weight_shape(self, diamond_graph):
        with pytest.raises(ValueError):
            single_source_dijkstra(diamond_graph, 0, np.ones(3))

    def test_rejects_bad_source(self, diamond_graph):
        with pytest.raises(ValueError):
            single_source_dijkstra(diamond_graph, 9, np.ones(5))

    def test_zero_weights_allowed(self, diamond_graph):
        result = single_source_dijkstra(diamond_graph, 0, np.zeros(5))
        assert result.distance(3) == 0.0

    def test_early_exit_targets(self, diamond_graph):
        result = single_source_dijkstra(diamond_graph, 0, np.ones(5), targets={3})
        assert result.reachable(3)
        vertices, edges = result.path_to(3)
        assert vertices[0] == 0 and vertices[-1] == 3

    def test_path_to_unreachable_raises(self):
        graph = CapacitatedGraph(3, [(0, 1, 1.0)], directed=True)
        result = single_source_dijkstra(graph, 0, np.ones(1))
        with pytest.raises(NoPathError):
            result.path_to(2)


class TestAgainstOracles:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("directed", [True, False])
    def test_matches_networkx_on_random_graphs(self, seed, directed):
        if directed:
            graph = random_digraph(12, 0.3, (1.0, 5.0), seed=seed)
        else:
            graph = random_graph(12, 0.3, (1.0, 5.0), seed=seed)
        rng = np.random.default_rng(seed)
        weights = rng.uniform(0.1, 3.0, size=graph.num_edges)

        nxg = to_networkx(graph)
        for _, _, data in nxg.edges(data=True):
            data["weight"] = float(weights[data["edge_id"]])

        result = single_source_dijkstra(graph, 0, weights)
        nx_lengths = nx.single_source_dijkstra_path_length(nxg, 0, weight="weight")
        for v in range(graph.num_vertices):
            if v in nx_lengths:
                assert result.distance(v) == pytest.approx(nx_lengths[v], rel=1e-9)
            else:
                assert not result.reachable(v)

    @pytest.mark.parametrize("seed", [10, 11, 12])
    def test_dijkstra_matches_bellman_ford(self, seed):
        graph = random_digraph(10, 0.35, 3.0, seed=seed)
        rng = np.random.default_rng(seed)
        weights = rng.uniform(0.0, 2.0, size=graph.num_edges)
        dj = single_source_dijkstra(graph, 2, weights)
        bf = bellman_ford(graph, 2, weights)
        np.testing.assert_allclose(dj.distances, bf.distances, rtol=1e-9, atol=1e-12)

    def test_returned_path_length_matches_distance(self, diamond_graph):
        weights = np.array([0.5, 0.2, 0.9, 0.1, 2.0])
        result = single_source_dijkstra(diamond_graph, 0, weights)
        vertices, edges = result.path_to(3)
        assert sum(weights[e] for e in edges) == pytest.approx(result.distance(3))
        # Path endpoints and contiguity.
        assert vertices[0] == 0 and vertices[-1] == 3
        assert len(edges) == len(vertices) - 1


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_triangle_inequality(seed):
    """Shortest-path distances obey the triangle inequality over any edge."""
    graph = random_digraph(8, 0.4, 2.0, seed=seed)
    rng = np.random.default_rng(seed)
    weights = rng.uniform(0.05, 1.0, size=graph.num_edges)
    result = single_source_dijkstra(graph, 0, weights)
    for edge in graph.edges():
        du, dv = result.distance(edge.tail), result.distance(edge.head)
        if np.isfinite(du):
            assert dv <= du + weights[edge.edge_id] + 1e-9

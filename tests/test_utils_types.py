"""Tests for :mod:`repro.types` and the small utility modules."""

from __future__ import annotations

import math
import time

import numpy as np
import pytest

from repro.types import (
    E_OVER_E_MINUS_1,
    ApproximationTarget,
    Direction,
    RunStats,
    SolverStatus,
    one_minus_one_over_e,
    ufp_capacity_threshold,
)
from repro.utils import Table, Timer, ensure_rng, format_float, spawn_rngs
from repro.utils.prng import DEFAULT_SEED, random_seed_sequence
from repro.utils.validation import (
    check_finite,
    check_in_unit_interval,
    check_integer,
    check_nonnegative,
    check_positive,
    check_probability,
)


class TestTypes:
    def test_constants(self):
        assert E_OVER_E_MINUS_1 == pytest.approx(math.e / (math.e - 1))
        assert one_minus_one_over_e() == pytest.approx(1 - 1 / math.e)
        assert E_OVER_E_MINUS_1 == pytest.approx(1.582, abs=1e-3)

    def test_capacity_threshold(self):
        assert ufp_capacity_threshold(100, 0.5) == pytest.approx(math.log(100) / 0.25)
        with pytest.raises(ValueError):
            ufp_capacity_threshold(0, 0.5)
        with pytest.raises(ValueError):
            ufp_capacity_threshold(10, 0.0)
        with pytest.raises(ValueError):
            ufp_capacity_threshold(10, 2.0)

    def test_direction_and_status(self):
        assert Direction.DIRECTED.is_directed
        assert not Direction.UNDIRECTED.is_directed
        assert SolverStatus.OPTIMAL.ok
        assert not SolverStatus.INFEASIBLE.ok
        assert ApproximationTarget.FRACTIONAL_LP.value == "fractional_lp"

    def test_run_stats_merged(self):
        stats = RunStats(iterations=3, extra={"a": 1.0})
        merged = stats.merged(b=2.0)
        assert merged.extra == {"a": 1.0, "b": 2.0}
        assert stats.extra == {"a": 1.0}
        assert merged.iterations == 3


class TestPrng:
    def test_ensure_rng_accepts_all_forms(self):
        rng = np.random.default_rng(0)
        assert ensure_rng(rng) is rng
        a = ensure_rng(5).integers(0, 100, size=3)
        b = ensure_rng(5).integers(0, 100, size=3)
        np.testing.assert_array_equal(a, b)
        default_a = ensure_rng(None).integers(0, 1000)
        default_b = ensure_rng(DEFAULT_SEED).integers(0, 1000)
        assert default_a == default_b

    def test_ensure_rng_rejects_bad_seed(self):
        with pytest.raises(TypeError):
            ensure_rng("not-a-seed")

    def test_spawn_rngs_independent_and_deterministic(self):
        first = [g.integers(0, 10**6) for g in spawn_rngs(7, 3)]
        second = [g.integers(0, 10**6) for g in spawn_rngs(7, 3)]
        assert first == second
        assert len(set(first)) == 3
        with pytest.raises(ValueError):
            spawn_rngs(7, -1)

    def test_random_seed_sequence_stability(self):
        mapping = random_seed_sequence(1, ["a", "b", "c"])
        again = random_seed_sequence(1, ["a", "b", "c"])
        assert mapping == again
        assert set(mapping) == {"a", "b", "c"}


class TestTables:
    def test_format_float(self):
        assert format_float(None) == "-"
        assert format_float(True) == "yes"
        assert format_float(1.23456, precision=2) == "1.23"
        assert format_float(float("nan")) == "nan"
        assert format_float(1e9).endswith("e+09")
        assert format_float("text") == "text"

    def test_table_rendering_alignment(self):
        table = Table(columns=["name", "value"], title="demo")
        table.add_row(["a", 1.5])
        table.add_row({"name": "bc", "value": 2.25})
        rendered = table.render()
        lines = rendered.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5
        # Column widths are consistent.
        assert len(lines[2]) == len(lines[3])

    def test_table_rejects_wrong_row_length(self):
        table = Table(columns=["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_table_extend(self):
        table = Table(columns=["a"])
        table.extend([[1], [2], [3]])
        assert len(table.rows) == 3


class TestTimer:
    def test_accumulates_and_resets(self):
        timer = Timer()
        with timer:
            time.sleep(0.001)
        first = timer.elapsed
        assert first > 0
        with timer:
            time.sleep(0.001)
        assert timer.elapsed > first
        assert not timer.running
        timer.reset()
        assert timer.elapsed == 0.0


class TestValidation:
    def test_check_finite(self):
        assert check_finite(1.5, "x") == 1.5
        with pytest.raises(ValueError):
            check_finite(float("inf"), "x")

    def test_check_positive_and_nonnegative(self):
        assert check_positive(0.1, "x") == 0.1
        with pytest.raises(ValueError):
            check_positive(0.0, "x")
        assert check_nonnegative(0.0, "x") == 0.0
        with pytest.raises(ValueError):
            check_nonnegative(-1.0, "x")

    def test_check_probability_and_unit_interval(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0
        with pytest.raises(ValueError):
            check_probability(1.1, "p")
        assert check_in_unit_interval(1.0, "e") == 1.0
        with pytest.raises(ValueError):
            check_in_unit_interval(0.0, "e")
        assert check_in_unit_interval(0.0, "e", open_left=False) == 0.0

    def test_check_integer(self):
        assert check_integer(5, "n") == 5
        assert check_integer(5.0, "n") == 5
        with pytest.raises(ValueError):
            check_integer(5.5, "n")
        with pytest.raises(ValueError):
            check_integer(2, "n", minimum=3)


class TestPackageSurface:
    def test_version_and_reexports(self):
        import repro

        assert repro.__version__
        assert hasattr(repro, "bounded_ufp")
        assert hasattr(repro, "UFPInstance")
        assert hasattr(repro, "MUCAInstance")
        assert repro.E_OVER_E_MINUS_1 == pytest.approx(E_OVER_E_MINUS_1)

"""Trace-replay equivalence: checkpointed probes vs from-scratch runs.

The contract of :mod:`repro.core.trace` is *bit-identity*: a probe answered
by suffix-resume replay (divergence-round computation, checkpoint restore,
excluded-run sub-traces, certificates) must equal the from-scratch run of
the solver on the perturbed instance — same selections, same paths, same
floats.  This suite replays the pinned differential-fuzz corpus (the same
seed derivation as ``test_differential_fuzz``) through the replayers:

* single-probe allocations for ``bounded_ufp`` / ``bounded_ufp_repeat`` /
  ``bounded_muca`` vs the solvers run from scratch on the perturbed input;
* critical-value payments with ``use_trace=True`` vs ``use_trace=False``,
  on both shortest-path backends;
* truthfulness audits with and without tracing;
* online batch payments (greedy and threshold policies) with and without
  tracing, plus ``jobs=4 == jobs=1`` with tracing on.
"""

from __future__ import annotations

from functools import partial

import numpy as np
import pytest

from test_differential_fuzz import (  # noqa: E402  (corpus shared with the fuzz suite)
    MUCA_SEEDS,
    ONLINE_SEEDS,
    REPEAT_SEEDS,
    UFP_SEEDS,
    _assert_same_allocation,
    _ufp_instance,
)

from repro.auctions import correlated_auction, random_auction
from repro.core import (
    TraceRecorder,
    bounded_muca,
    bounded_ufp,
    bounded_ufp_repeat,
    make_replayer,
)
from repro.flows import random_instance
from repro.mechanism import compute_muca_payments, compute_ufp_payments
from repro.mechanism.verification import (
    audit_muca_truthfulness,
    audit_ufp_truthfulness,
)
from repro.online import OnlineAuction, bursty_arrivals
from repro.utils.prng import ensure_rng

pytestmark = pytest.mark.fuzz

#: Value multipliers probed per request: deep-low (trivially-inert region),
#: bisection-like mids, the declaration itself, and a raise.
PROBE_FACTORS = (0.03, 0.4, 1.0, 2.5)


def _muca_auction(seed: int):
    rng = ensure_rng(seed)
    num_items = int(rng.integers(4, 16))
    build = random_auction if seed % 2 else correlated_auction
    kwargs = dict(
        num_items=num_items,
        num_bids=int(rng.integers(3, 40)),
        multiplicity=float(rng.uniform(4.0, 20.0)),
        bundle_size_range=(1, min(4, num_items)),
        seed=rng,
    )
    if build is correlated_auction:
        kwargs["num_popular"] = min(3, num_items)
    return build(**kwargs)


def _probe_indices(instance_size: int, seed: int) -> list[int]:
    rng = ensure_rng(seed ^ 0x5EED)
    count = min(3, instance_size)
    return sorted(int(i) for i in rng.choice(instance_size, size=count, replace=False))


@pytest.mark.parametrize("seed", UFP_SEEDS)
def test_ufp_probe_replay_matches_scratch(seed):
    instance = _ufp_instance(seed)
    epsilon = [0.3, 0.5, 1.0][seed % 3]
    recorder = TraceRecorder()
    bounded_ufp(instance, epsilon, trace=recorder)
    replayer = make_replayer(recorder.trace)
    for idx in _probe_indices(instance.num_requests, seed):
        request = instance.requests[idx]
        for factor in PROBE_FACTORS:
            probe = request.with_value(request.value * factor)
            expected = bounded_ufp(instance.replace_request(idx, probe), epsilon)
            _assert_same_allocation(replayer.probe(idx, probe), expected)
            assert replayer.probe_selected(idx, probe) == expected.is_selected(idx)


@pytest.mark.parametrize("seed", REPEAT_SEEDS)
def test_repeat_probe_replay_matches_scratch(seed):
    instance = _ufp_instance(seed, max_requests=10)
    epsilon = [0.5, 1.0][seed % 2]
    recorder = TraceRecorder()
    bounded_ufp_repeat(instance, epsilon, trace=recorder)
    replayer = make_replayer(recorder.trace)
    for idx in _probe_indices(instance.num_requests, seed):
        request = instance.requests[idx]
        for factor in PROBE_FACTORS:
            probe = request.with_value(request.value * factor)
            expected = bounded_ufp_repeat(instance.replace_request(idx, probe), epsilon)
            _assert_same_allocation(replayer.probe(idx, probe), expected)
            assert replayer.probe_selected(idx, probe) == expected.is_selected(idx)


@pytest.mark.parametrize("seed", MUCA_SEEDS)
def test_muca_probe_replay_matches_scratch(seed):
    auction = _muca_auction(seed)
    epsilon = [0.3, 0.5, 1.0][seed % 3]
    recorder = TraceRecorder()
    bounded_muca(auction, epsilon, trace=recorder)
    replayer = make_replayer(recorder.trace)
    for idx in _probe_indices(auction.num_bids, seed):
        bid = auction.bids[idx]
        for factor in PROBE_FACTORS:
            value = bid.value * factor
            expected = bounded_muca(auction.replace_bid(idx, bid.with_value(value)), epsilon)
            assert replayer.probe_winners(idx, value) == expected.winners
            assert replayer.probe_selected(idx, value) == expected.is_winner(idx)


# --------------------------------------------------------------------- #
# Payments: trace vs from-scratch, both shortest-path backends
# --------------------------------------------------------------------- #
PAYMENT_SEEDS = UFP_SEEDS[::6]  # every 6th corpus case: payments cost ~|R| runs each

try:
    import scipy  # noqa: F401

    _HAVE_SCIPY = True
except ImportError:  # pragma: no cover - scipy is installed in CI
    _HAVE_SCIPY = False

BACKENDS = [
    "lists",
    pytest.param(
        "scipy",
        marks=pytest.mark.skipif(not _HAVE_SCIPY, reason="scipy backend needs scipy"),
    ),
]


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("seed", PAYMENT_SEEDS)
def test_ufp_payments_bit_identical(seed, backend):
    from repro.graphs.shortest_path import use_backend

    with use_backend(backend):
        instance = _ufp_instance(seed)
        epsilon = [0.3, 0.5, 1.0][seed % 3]
        algorithm = partial(bounded_ufp, epsilon=epsilon)
        allocation = bounded_ufp(instance, epsilon)
        plain = compute_ufp_payments(algorithm, instance, allocation)
        stats: dict = {}
        traced = compute_ufp_payments(
            algorithm, instance, allocation, use_trace=True, replay_stats=stats
        )
    np.testing.assert_array_equal(plain, traced)
    if allocation.num_selected:
        assert stats["replay_probes"] >= 0


@pytest.mark.parametrize("seed", MUCA_SEEDS[::6])
def test_muca_payments_bit_identical(seed):
    auction = _muca_auction(seed)
    epsilon = [0.3, 0.5, 1.0][seed % 3]
    algorithm = partial(bounded_muca, epsilon=epsilon)
    allocation = bounded_muca(auction, epsilon)
    plain = compute_muca_payments(algorithm, auction, allocation)
    traced = compute_muca_payments(algorithm, auction, allocation, use_trace=True)
    np.testing.assert_array_equal(plain, traced)


def test_payments_jobs_invariant_with_trace():
    instance = random_instance(
        num_vertices=12, edge_probability=0.25, capacity=15.0,
        num_requests=60, demand_range=(0.5, 1.0), seed=13,
    )
    algorithm = partial(bounded_ufp, epsilon=0.3)
    allocation = bounded_ufp(instance, 0.3)
    serial = compute_ufp_payments(algorithm, instance, allocation, use_trace=True, jobs=1)
    fanned = compute_ufp_payments(algorithm, instance, allocation, use_trace=True, jobs=4)
    np.testing.assert_array_equal(serial, fanned)


# --------------------------------------------------------------------- #
# Audits: trace vs from-scratch
# --------------------------------------------------------------------- #
def _report_key(report):
    return (
        report.agents_audited,
        report.misreports_tried,
        report.max_gain,
        [
            (d.agent_index, d.true_type, d.misreported_type,
             d.truthful_utility, d.deviating_utility)
            for d in report.profitable_deviations
        ],
    )


@pytest.mark.parametrize("seed", UFP_SEEDS[::12])
def test_ufp_audit_bit_identical(seed):
    instance = _ufp_instance(seed)
    epsilon = [0.3, 0.5, 1.0][seed % 3]
    rule = partial(bounded_ufp, epsilon=epsilon)
    agents = _probe_indices(instance.num_requests, seed)
    plain = audit_ufp_truthfulness(
        rule, instance, agents=agents, misreports_per_agent=4, seed=seed
    )
    traced = audit_ufp_truthfulness(
        rule, instance, agents=agents, misreports_per_agent=4, seed=seed,
        use_trace=True,
    )
    assert _report_key(plain) == _report_key(traced)


@pytest.mark.parametrize("seed", MUCA_SEEDS[::12])
def test_muca_audit_bit_identical(seed):
    auction = _muca_auction(seed)
    epsilon = [0.3, 0.5, 1.0][seed % 3]
    rule = partial(bounded_muca, epsilon=epsilon)
    agents = _probe_indices(auction.num_bids, seed)
    plain = audit_muca_truthfulness(
        rule, auction, agents=agents, misreports_per_agent=4, seed=seed
    )
    traced = audit_muca_truthfulness(
        rule, auction, agents=agents, misreports_per_agent=4, seed=seed,
        use_trace=True,
    )
    assert _report_key(plain) == _report_key(traced)


def test_audit_jobs_invariant_with_trace():
    instance = random_instance(
        num_vertices=10, edge_probability=0.3, capacity=25.0,
        num_requests=18, seed=42,
    )
    rule = partial(bounded_ufp, epsilon=0.3)
    serial = audit_ufp_truthfulness(
        rule, instance, agents=list(range(10)), misreports_per_agent=4,
        seed=7, use_trace=True, jobs=1,
    )
    fanned = audit_ufp_truthfulness(
        rule, instance, agents=list(range(10)), misreports_per_agent=4,
        seed=7, use_trace=True, jobs=4,
    )
    assert _report_key(serial) == _report_key(fanned)


# --------------------------------------------------------------------- #
# Online batch payments: trace vs from-scratch drains
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("admission,threshold", [("greedy", 1.0), ("threshold", 1.5)])
@pytest.mark.parametrize("seed", ONLINE_SEEDS)
def test_online_payments_bit_identical(seed, admission, threshold):
    instance = _ufp_instance(seed)
    epsilon = [0.3, 0.5, 1.0][seed % 3]

    def stream(use_trace):
        auction = OnlineAuction(
            instance.graph, epsilon,
            admission=admission, score_threshold=threshold,
            compute_payments=True, use_trace=use_trace,
        )
        return auction.run(
            bursty_arrivals(list(instance.requests), burst_size=5, seed=seed % 97)
        )

    plain = stream(False)
    traced = stream(True)
    np.testing.assert_array_equal(plain.payments, traced.payments)
    assert [r.request_index for r in plain.routed] == [
        r.request_index for r in traced.routed
    ]


# --------------------------------------------------------------------- #
# Trace bookkeeping
# --------------------------------------------------------------------- #
def test_traced_run_reports_stats_and_matches_untraced():
    instance = random_instance(
        num_vertices=12, edge_probability=0.3, capacity=20.0,
        num_requests=30, demand_range=(0.4, 1.0), seed=3,
    )
    recorder = TraceRecorder()
    traced = bounded_ufp(instance, 0.4, trace=recorder)
    plain = bounded_ufp(instance, 0.4)
    _assert_same_allocation(traced, plain)
    assert traced.stats.extra["trace_rounds"] == recorder.trace.num_rounds
    assert traced.stats.extra["trace_checkpoints"] == recorder.trace.num_checkpoints
    assert recorder.trace.completed
    # Checkpoint 0 plus at least one more on a 30-round run.
    assert recorder.trace.num_checkpoints >= 2


def test_checkpoint_count_stays_bounded_on_long_runs():
    instance = random_instance(
        num_vertices=8, edge_probability=0.5, capacity=60.0,
        num_requests=12, demand_range=(0.3, 0.6), seed=11,
    )
    recorder = TraceRecorder()
    bounded_ufp_repeat(instance, 0.5, trace=recorder, max_iterations=2000)
    trace = recorder.trace
    assert trace.num_rounds > 100  # repetitions make this a long run
    assert trace.num_checkpoints <= 17 + 1  # max_checkpoints plus the final one

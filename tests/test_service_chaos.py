"""Service-level chaos harness tests (``repro.service.chaos``).

The acceptance property: a supervisor fleet under a seeded fault plan —
torn WAL tails, failed appends, supervisor kills, lease steals, wall-clock
jumps — finishes every job in exactly one terminal state, never
acknowledges conflicting results, and lands bit-identical to a serial
fault-free run.  A zero-intensity plan must match the fault-free path too.
"""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidInstanceError
from repro.service.chaos import (
    ChaosPlan,
    JumpyClock,
    SupervisorKilled,
    normalize_chaos_spec,
    run_chaos_harness,
    tiny_job_specs,
)
from repro.service.queue import JobQueue


class TestChaosPlan:
    def test_spec_defaults_and_validation(self):
        spec = normalize_chaos_spec()
        assert spec["supervisors"] == 3
        assert all(spec[f] == 0.0 for f in ("torn_tail", "io_error", "kill"))
        with pytest.raises(InvalidInstanceError, match="unknown chaos spec key"):
            normalize_chaos_spec({"explosions": 1.0})
        with pytest.raises(InvalidInstanceError, match=r"\[0, 1\]"):
            normalize_chaos_spec({"kill": 1.5})

    def test_plan_is_deterministic_in_the_seed(self):
        spec = {"kill": 0.1, "io_error": 0.1, "torn_tail": 0.1}
        assert ChaosPlan(spec, seed=7).events() == ChaosPlan(spec, seed=7).events()
        assert ChaosPlan(spec, seed=7).events() != ChaosPlan(spec, seed=8).events()

    def test_zero_intensity_plan_is_empty(self):
        plan = ChaosPlan({}, seed=3)
        assert plan.zero_intensity
        assert plan.events() == []

    def test_max_events_caps_the_schedule(self):
        plan = ChaosPlan({"io_error": 1.0, "max_events": 5}, seed=1)
        assert len(plan.events()) == 5

    def test_jumpy_clock_steps_wall_time_only(self):
        clock = JumpyClock()
        before = clock()
        clock.jump(-3600.0)
        assert clock() < before  # wall time went backwards...
        clock.jump(7200.0)
        assert clock() > before  # ...and forwards; monotonic was never ours

    def test_supervisor_killed_evades_exception_handlers(self):
        with pytest.raises(SupervisorKilled):
            try:
                raise SupervisorKilled("kill -9")
            except Exception:  # production recovery code must not see it
                pytest.fail("SupervisorKilled must not be an Exception")


class TestChaosHarness:
    def test_zero_intensity_fleet_matches_serial_reference(self, tmp_path):
        """Instrumentation must be invisible: an un-faulted fleet run is
        bit-identical to the serial single-supervisor reference."""
        report = run_chaos_harness(
            tmp_path,
            tiny_job_specs(2),
            chaos={"supervisors": 2},
            seed=5,
            lease_seconds=5.0,
            timeout=60.0,
        )
        assert report.fired == []
        assert report.ok, report.violations
        assert report.job_hashes == report.reference_hashes
        assert all(h is not None for h in report.job_hashes.values())

    @pytest.mark.slow
    def test_full_fault_mix_preserves_all_invariants(self, tmp_path):
        """The tentpole acceptance run: three supervisors under a seeded
        plan mixing every fault kind; every job DONE exactly once, no
        conflicting acks, results bit-identical to the serial run."""
        report = run_chaos_harness(
            tmp_path,
            tiny_job_specs(3),
            chaos={
                # Rates are per WAL seq and the tiny workload only spans a
                # few dozen seqs, so the horizon is shrunk (and rates set
                # high) to concentrate the schedule where the run lives.
                "supervisors": 3,
                "torn_tail": 0.10,
                "io_error": 0.15,
                "kill": 0.08,
                "lease_steal": 0.10,
                "clock_jump": 0.05,
                "horizon": 32,
                "max_events": 24,
            },
            seed=1,
            lease_seconds=0.75,
            timeout=90.0,
        )
        assert report.fired, "the plan must actually inject something"
        assert report.ok, report.violations
        assert report.job_hashes == report.reference_hashes

    @pytest.mark.slow
    def test_lease_steal_heavy_plan_exercises_fencing(self, tmp_path):
        report = run_chaos_harness(
            tmp_path,
            tiny_job_specs(2),
            chaos={
                "supervisors": 2,
                "lease_steal": 0.35,
                "horizon": 16,
                "max_events": 10,
            },
            seed=3,
            lease_seconds=0.75,
            timeout=90.0,
        )
        assert any(f["fault"] == "lease_steal" for f in report.fired)
        assert report.ok, report.violations

    def test_torn_tail_fault_is_repaired_by_the_next_append(self, tmp_path):
        """Unit-level check of the torn-tail injection path: the fragment
        is invisible to readers and healed by the next append."""
        from repro.service.chaos import ChaosHooks, ChaosJournal
        import threading

        plan = ChaosPlan({"torn_tail": 1.0, "max_events": 1}, seed=0)
        queue = JobQueue(tmp_path / "svc", lease_seconds=30.0)
        queue.wal.hooks = ChaosHooks(
            plan, "n0", ChaosJournal(), set(), threading.Lock(), JumpyClock()
        )
        job, _ = queue.submit(tiny_job_specs(1)[0])  # seq 1: tail torn after
        raw = (tmp_path / "svc" / "wal.jsonl").read_bytes()
        assert not raw.endswith(b"\n")  # the fragment is really there
        # A fresh handle replays past it; the next append repairs it.
        fresh = JobQueue(tmp_path / "svc", lease_seconds=30.0)
        assert fresh.get(job.id).state == "QUEUED"
        fresh.lease("w0")
        raw = (tmp_path / "svc" / "wal.jsonl").read_bytes()
        assert raw.endswith(b"\n")
        assert queue.get(job.id).state == "RUNNING"  # original handle follows

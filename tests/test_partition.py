"""Units for the partitioned region-solving layer.

Covers the purely topological pieces (:mod:`repro.graphs.partition` —
partitioners, validation, the border quotient), the shard builder, the
partitioned solver's two operating modes on hand-sized instances, the
``bounded_ufp(partition=...)`` entry point, and the scenario-runner wiring
(mode-spec resolution — including the ``partition: 1`` vs ``True``
regression — and a miniature end-to-end campaign).  The large pinned-seed
differential sweeps live in ``test_partition_fuzz.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import bounded_ufp
from repro.exceptions import InvalidInstanceError
from repro.flows import Request, UFPInstance
from repro.graphs import CapacitatedGraph
from repro.graphs.generators import multi_region_leaves, multi_region_topology
from repro.graphs.partition import (
    GraphPartition,
    bfs_partition,
    block_partition,
    build_border_quotient,
    multi_region_partition,
    single_region_partition,
)
from repro.partition import build_shards, partitioned_bounded_ufp, resolve_partition
from repro.partition.solver import _splice_loops
from repro.scenarios.runner import _resolve_cell_partition, run_campaign
from repro.scenarios.specs import enumerate_cells, normalize_suite


def _assert_same_allocation(actual, expected) -> None:
    assert [r.request_index for r in actual.routed] == [
        r.request_index for r in expected.routed
    ]
    assert [r.vertices for r in actual.routed] == [r.vertices for r in expected.routed]
    assert [r.edge_ids for r in actual.routed] == [r.edge_ids for r in expected.routed]
    assert actual.value == expected.value  # exact, not approx


def _regions_graph(
    regions: int = 3, cores: int = 2, leaves: int = 1, seed: int = 7
) -> CapacitatedGraph:
    return multi_region_topology(regions, cores, leaves, 40.0, 20.0, 10.0, seed=seed)


# ---------------------------------------------------------------------- #
# GraphPartition + partitioners
# ---------------------------------------------------------------------- #
class TestGraphPartition:
    def test_single_region_has_no_cut(self, diamond_graph):
        part = single_region_partition(diamond_graph)
        assert part.num_regions == 1
        assert part.num_cut_edges == 0
        assert part.border_vertices.size == 0
        np.testing.assert_array_equal(part.region_vertices(0), np.arange(4))
        np.testing.assert_array_equal(part.region_edge_ids(0), np.arange(5))

    def test_block_partition_layout(self):
        graph = CapacitatedGraph(7, [(0, 1, 1.0), (5, 6, 1.0)], directed=False)
        part = block_partition(graph, 3)
        assert part.num_regions == 3
        # ceil(7/3) == 3 -> blocks [0..2], [3..5], [6]
        np.testing.assert_array_equal(part.labels, [0, 0, 0, 1, 1, 1, 2])
        assert part.region_of(4) == 1
        assert part.is_intra(0, 2) and not part.is_intra(2, 3)

    def test_block_partition_bounds(self, diamond_graph):
        with pytest.raises(InvalidInstanceError):
            block_partition(diamond_graph, 0)
        with pytest.raises(InvalidInstanceError):
            block_partition(diamond_graph, 5)

    def test_label_validation(self, diamond_graph):
        with pytest.raises(InvalidInstanceError, match="shape"):
            GraphPartition(diamond_graph, [0, 0, 0])
        with pytest.raises(InvalidInstanceError, match="non-negative"):
            GraphPartition(diamond_graph, [0, -1, 0, 0])
        with pytest.raises(InvalidInstanceError, match="empty"):
            GraphPartition(diamond_graph, [0, 0, 2, 2])  # region 1 missing

    def test_multi_region_cut_is_the_backbone(self):
        graph = _regions_graph(3, 2, 1)
        part = multi_region_partition(graph, 3, 2, 1)
        assert part.num_regions == 3
        # Backbone edges come first in the generator's layout: one link per
        # region pair -> C(3,2) cut edges, and nothing else is cut.
        np.testing.assert_array_equal(part.cut_edge_ids, [0, 1, 2])
        # Border vertices are core vertices (local id < cores within block).
        block = 2 * (1 + 1)
        for v in part.border_vertices.tolist():
            assert v % block < 2
        # Every region's vertex set is its contiguous block, ascending.
        for r in range(3):
            np.testing.assert_array_equal(
                part.region_vertices(r), np.arange(r * block, (r + 1) * block)
            )

    def test_multi_region_layout_mismatch(self, diamond_graph):
        with pytest.raises(InvalidInstanceError, match="layout"):
            multi_region_partition(diamond_graph, 2, 2, 1)

    def test_bfs_partition_deterministic_and_complete(self):
        graph = _regions_graph(3, 3, 2, seed=11)
        a = bfs_partition(graph, 4, seed=123)
        b = bfs_partition(graph, 4, seed=123)
        np.testing.assert_array_equal(a.labels, b.labels)
        assert a.num_regions == 4
        # Every vertex assigned, every region non-empty (ctor validates).
        assert set(np.unique(a.labels)) == {0, 1, 2, 3}
        c = bfs_partition(graph, 4, seed=456)
        assert c.num_regions == 4  # different seed still valid

    def test_bfs_partition_unreachable_vertices(self):
        # Two isolated vertices: BFS cannot reach them; round-robin fills in.
        graph = CapacitatedGraph(
            4, [(0, 1, 1.0)], directed=False
        )  # vertices 2, 3 isolated
        part = bfs_partition(graph, 2, seed=0)
        assert part.num_regions == 2
        assert sorted(np.unique(part.labels)) == [0, 1]

    def test_split_requests(self):
        graph = _regions_graph(2, 2, 1)
        part = multi_region_partition(graph, 2, 2, 1)
        block = 2 * (1 + 1)
        requests = [
            Request(2, 3, 1.0, 1.0),  # leaves of region 0
            Request(0, block + 1, 1.0, 1.0),  # core 0 -> core of region 1
            Request(block + 2, block + 3, 1.0, 1.0),  # leaves of region 1
        ]
        intra, cross = part.split_requests(requests)
        assert intra == [[0], [2]]
        assert cross == [1]


class TestBorderQuotient:
    def test_structure_on_multi_region(self):
        graph = _regions_graph(3, 2, 1)
        part = multi_region_partition(graph, 3, 2, 1)
        quotient = build_border_quotient(part)
        np.testing.assert_array_equal(quotient.vertices, part.border_vertices)
        assert quotient.num_nodes == part.border_vertices.size
        cut_arcs = [a for a in quotient.arcs if a.kind == "cut"]
        shortcut_arcs = [a for a in quotient.arcs if a.kind == "shortcut"]
        # Undirected substrate: each cut edge contributes both directions.
        assert len(cut_arcs) == 2 * part.num_cut_edges
        # One shortcut per ordered border pair within each region.
        expected_shortcuts = 0
        labels = part.labels
        for r in range(3):
            nodes = quotient.border_nodes_of_region(labels, r)
            expected_shortcuts += len(nodes) * (len(nodes) - 1)
        assert len(shortcut_arcs) == expected_shortcuts
        # Adjacency indexes exactly the arcs leaving each node.
        for q, arc_ids in enumerate(quotient.adjacency):
            assert all(quotient.arcs[i].tail == q for i in arc_ids)
        assert sum(len(ids) for ids in quotient.adjacency) == len(quotient.arcs)

    def test_disabled_cut_edge_has_no_arc(self):
        graph = _regions_graph(3, 2, 1)
        part = multi_region_partition(graph, 3, 2, 1)
        baseline = build_border_quotient(part)
        disabled_cut = int(part.cut_edge_ids[0])
        degraded_graph = CapacitatedGraph(
            graph.num_vertices,
            graph.edge_list(),
            directed=graph.directed,
            disabled_edges={disabled_cut},
        )
        degraded = build_border_quotient(
            GraphPartition(degraded_graph, part.labels)
        )
        kept = [a.edge_id for a in degraded.arcs if a.kind == "cut"]
        assert disabled_cut not in kept
        assert len(kept) == len(
            [a for a in baseline.arcs if a.kind == "cut"]
        ) - 2  # both directions gone


# ---------------------------------------------------------------------- #
# Shards
# ---------------------------------------------------------------------- #
class TestShards:
    def test_relabeling_round_trips(self):
        graph = _regions_graph(2, 2, 1)
        part = multi_region_partition(graph, 2, 2, 1)
        block = 2 * (1 + 1)
        requests = [
            Request(2, 3, 0.5, 1.0),
            Request(block + 2, block + 3, 0.5, 2.0),
            Request(2, block + 2, 0.5, 3.0),  # cross
        ]
        instance = UFPInstance(graph, requests)
        shards, cross = build_shards(instance, part)
        assert cross == [2]
        assert [s.num_requests for s in shards] == [1, 1]
        for r, shard in enumerate(shards):
            # Order-preserving compact relabeling, ascending in global id.
            np.testing.assert_array_equal(shard.vertices, part.region_vertices(r))
            np.testing.assert_array_equal(shard.edge_ids, part.region_edge_ids(r))
            # Capacities carried over edge by edge.
            for local, gid in enumerate(shard.edge_ids.tolist()):
                assert shard.graph.edge_capacity(local) == graph.edge_capacity(gid)
            # Round trip: local -> global -> local.
            locals_ = list(range(len(shard.vertices)))
            globals_ = shard.to_global_vertices(locals_)
            assert [shard.local_vertex[g] for g in globals_] == locals_
        # Shard-local request terminals map back to the original request.
        shard = shards[1]
        local_req = shard.requests[0]
        gidx = shard.request_indices[0]
        assert shard.vertices[local_req.source] == requests[gidx].source
        assert shard.vertices[local_req.target] == requests[gidx].target


# ---------------------------------------------------------------------- #
# The solver
# ---------------------------------------------------------------------- #
class TestPartitionedSolver:
    def test_single_region_matches_global(self, roomy_diamond_instance):
        expected = bounded_ufp(roomy_diamond_instance, 0.5)
        actual = partitioned_bounded_ufp(
            roomy_diamond_instance, 0.5, partition=1
        )
        _assert_same_allocation(actual, expected)
        assert actual.stats.extra["final_dual_budget"] == (
            expected.stats.extra["final_dual_budget"]
        )
        assert actual.stats.extra["partition_regions"] == 1.0
        assert actual.stats.extra["partition_hierarchical"] == 0.0

    def test_multi_region_intra_only_matches_global(self):
        graph = _regions_graph(3, 3, 2, seed=5)
        part = multi_region_partition(graph, 3, 3, 2)
        rng = np.random.default_rng(17)
        block = 3 * (1 + 2)
        requests = []
        for _ in range(18):
            r = int(rng.integers(3))
            leaves = np.arange(r * block + 3, (r + 1) * block)
            u, v = rng.choice(leaves, size=2, replace=False)
            requests.append(
                Request(
                    int(u),
                    int(v),
                    demand=float(rng.uniform(0.2, 1.0)),
                    value=float(rng.uniform(0.5, 2.0)),
                )
            )
        instance = UFPInstance(graph, requests)
        expected = bounded_ufp(instance, 0.5)
        actual = partitioned_bounded_ufp(instance, 0.5, partition=part)
        _assert_same_allocation(actual, expected)
        assert actual.stats.stopped_by_budget == expected.stats.stopped_by_budget
        assert actual.stats.extra["partition_cross_requests"] == 0.0

    def test_hierarchical_mode_is_feasible_and_deterministic(self):
        graph = _regions_graph(3, 3, 2, seed=5)
        part = multi_region_partition(graph, 3, 3, 2)
        leaves = multi_region_leaves(3, 3, 2)
        rng = np.random.default_rng(29)
        requests = [
            Request(
                int(u),
                int(v),
                demand=float(rng.uniform(0.2, 1.0)),
                value=float(rng.uniform(0.5, 2.0)),
            )
            for u, v in (
                rng.choice(leaves, size=2, replace=False) for _ in range(20)
            )
        ]
        instance = UFPInstance(graph, requests)
        first = partitioned_bounded_ufp(instance, 0.5, partition=part)
        second = partitioned_bounded_ufp(instance, 0.5, partition=part)
        assert first.is_feasible()
        _assert_same_allocation(first, second)
        extra = first.stats.extra
        assert extra["partition_hierarchical"] == 1.0
        assert extra["partition_cross_requests"] > 0

    def test_jobs_do_not_change_the_answer(self, roomy_diamond_instance):
        serial = partitioned_bounded_ufp(
            roomy_diamond_instance, 0.5, partition=1, jobs=1
        )
        fanned = partitioned_bounded_ufp(
            roomy_diamond_instance, 0.5, partition=1, jobs=2
        )
        _assert_same_allocation(serial, fanned)

    def test_bounded_ufp_delegates(self, roomy_diamond_instance):
        direct = partitioned_bounded_ufp(
            roomy_diamond_instance, 0.5, partition=1
        )
        via_core = bounded_ufp(roomy_diamond_instance, 0.5, partition=1)
        _assert_same_allocation(via_core, direct)
        assert via_core.stats.extra["partition_regions"] == 1.0

    def test_trace_and_partition_are_exclusive(self, roomy_diamond_instance):
        with pytest.raises(ValueError, match="trace or partition"):
            bounded_ufp(
                roomy_diamond_instance, 0.5, trace=object(), partition=1
            )

    def test_input_validation(self, roomy_diamond_instance):
        with pytest.raises(ValueError, match="epsilon"):
            partitioned_bounded_ufp(roomy_diamond_instance, 0.0, partition=1)
        graph = roomy_diamond_instance.graph
        heavy = UFPInstance(graph, [Request(0, 3, demand=2.0, value=1.0)])
        with pytest.raises(InvalidInstanceError, match="normalized"):
            partitioned_bounded_ufp(heavy, 0.5, partition=1)

    def test_resolve_partition_forms(self, diamond_graph):
        ready = single_region_partition(diamond_graph)
        assert resolve_partition(diamond_graph, ready) is ready
        assert resolve_partition(diamond_graph, 1).num_regions == 1
        assert resolve_partition(diamond_graph, 2, seed=3).num_regions == 2
        from_labels = resolve_partition(diamond_graph, [0, 0, 1, 1])
        assert from_labels.num_regions == 2
        other = CapacitatedGraph(3, [(0, 1, 1.0)], directed=True)
        with pytest.raises(InvalidInstanceError, match="different substrate"):
            resolve_partition(diamond_graph, single_region_partition(other))

    def test_splice_loops(self):
        # Walk 0-1-2-1-3 revisits 1: the 1-2-1 cycle is excised.
        vertices, edges = _splice_loops([0, 1, 2, 1, 3], [10, 11, 12, 13])
        assert vertices == [0, 1, 3]
        assert edges == [10, 13]
        # A simple path passes through untouched.
        vertices, edges = _splice_loops([4, 5, 6], [1, 2])
        assert vertices == [4, 5, 6]
        assert edges == [1, 2]
        # Returning to the start collapses everything before the tail.
        vertices, edges = _splice_loops([0, 1, 0, 2], [7, 8, 9])
        assert vertices == [0, 2]
        assert edges == [9]


# ---------------------------------------------------------------------- #
# Scenario wiring
# ---------------------------------------------------------------------- #
def _partition_cell(partition_spec, *, family="multi_region"):
    topo = (
        {
            "name": "regions",
            "family": "multi_region",
            "regions": 2,
            "cores_per_region": 2,
            "leaves_per_core": 1,
        }
        if family == "multi_region"
        else {"name": "grid", "family": "grid", "rows": 3, "cols": 3}
    )
    suite = {
        "name": "ptest",
        "seed": 31,
        "topologies": [topo],
        "regimes": [{"name": "r", "capacity": 8.0, "num_requests": 6}],
        "modes": [
            {
                "name": "m",
                "kind": "offline",
                "epsilon": 0.5,
                "bound": "none",
                "partition": partition_spec,
            }
        ],
    }
    return enumerate_cells(normalize_suite(suite))[0]


class TestScenarioWiring:
    def test_partition_one_is_not_auto(self):
        # Regression: `1 == True` in Python, so a naive membership test
        # (`regions in ("auto", True)`) silently promoted the explicit
        # 1-region spec to the natural multi-region cut.
        from repro.scenarios.regimes import build_cell_instance

        cell = _partition_cell(1)
        instance, _topology, _base = build_cell_instance(cell)
        partition, exact = _resolve_cell_partition(cell, instance)
        assert partition.num_regions == 1
        assert exact is True

    def test_partition_auto_uses_natural_clusters(self):
        from repro.scenarios.regimes import build_cell_instance

        cell = _partition_cell("auto")
        instance, _topology, _base = build_cell_instance(cell)
        partition, exact = _resolve_cell_partition(cell, instance)
        assert partition.num_regions == 2
        assert exact is True
        # The natural cut of a 2x(2 cores, 1 leaf) composite is the backbone.
        assert partition.num_cut_edges == 1

    def test_partition_auto_rejects_other_families(self):
        from repro.scenarios.regimes import build_cell_instance

        cell = _partition_cell("auto", family="grid")
        instance, _topology, _base = build_cell_instance(cell)
        with pytest.raises(InvalidInstanceError, match="multi_region"):
            _resolve_cell_partition(cell, instance)

    def test_partition_dict_spec_runs_bfs(self):
        from repro.scenarios.regimes import build_cell_instance

        cell = _partition_cell({"regions": 3})
        instance, _topology, _base = build_cell_instance(cell)
        partition, exact = _resolve_cell_partition(cell, instance)
        assert partition.num_regions == 3
        assert exact is False

    def test_campaign_reports_partition_columns(self):
        suite = {
            "name": "ptest-campaign",
            "seed": 31,
            "topologies": [
                {
                    "name": "regions",
                    "family": "multi_region",
                    "regions": 2,
                    "cores_per_region": 2,
                    "leaves_per_core": 1,
                }
            ],
            "regimes": [{"name": "r", "capacity": 8.0, "num_requests": 8}],
            "modes": [
                {
                    "name": "part-auto",
                    "kind": "offline",
                    "epsilon": 0.5,
                    "bound": "none",
                    "partition": "auto",
                },
                {
                    "name": "part-1",
                    "kind": "offline",
                    "epsilon": 0.5,
                    "bound": "none",
                    "partition": 1,
                },
            ],
        }
        result = run_campaign(suite, jobs=1)
        assert result.all_cells_ok
        records = list(result.records.values())
        assert len(records) == 2
        by_mode = {record["mode"]: record for record in records}
        assert by_mode["part-auto"]["partition_regions"] == 2
        # The trivial cut is intra-only by construction, so the runner
        # claims (and reports) bit-identity with the global solver.
        assert by_mode["part-1"]["partition_regions"] == 1
        assert by_mode["part-1"]["partition_cross"] == 0
        assert by_mode["part-1"]["partition_exact"] is True
        assert by_mode["part-1"]["partition_gap"] == 1.0

    def test_partition_rejected_on_online_modes(self):
        from repro.scenarios.runner import run_cell

        suite = {
            "name": "ptest-online",
            "seed": 31,
            "topologies": [
                {
                    "name": "regions",
                    "family": "multi_region",
                    "regions": 2,
                    "cores_per_region": 2,
                    "leaves_per_core": 1,
                }
            ],
            "regimes": [{"name": "r", "capacity": 8.0, "num_requests": 6}],
            "modes": [
                {
                    "name": "stream",
                    "kind": "online",
                    "epsilon": 0.5,
                    "arrivals": "bursty",
                    "compare_offline": False,
                    "partition": 1,
                }
            ],
        }
        cell = enumerate_cells(normalize_suite(suite))[0]
        with pytest.raises(InvalidInstanceError, match="offline"):
            run_cell(cell)

"""Environment-knob precedence: explicit arguments beat inherited env vars.

``REPRO_JOBS``, ``REPRO_SP_BACKEND`` and ``REPRO_KERNEL`` are convenience
defaults; an explicit ``jobs=``/``--jobs``, ``set_backend()``/``--backend``
or ``set_kernel()``/``--kernel`` must win everywhere — in-process, in the
CLIs, and inside ``pmap`` worker processes (which inherit the parent's
environment).
"""

from __future__ import annotations

import importlib
import json

import pytest

from repro import kernels, parallel

# The repro.graphs package re-exports a *function* called shortest_path
# that shadows the module attribute; import the module itself.
sp = importlib.import_module("repro.graphs.shortest_path")


@pytest.fixture(autouse=True)
def _restore_backend():
    """Pin and restore the process-global backend and kernel around each
    test."""
    previous = sp.get_backend()
    previous_kernel = kernels.get_kernel()
    yield
    sp._active_backend = previous
    kernels._active_kernel = previous_kernel


class TestJobsPrecedence:
    def test_explicit_jobs_beats_env(self, monkeypatch):
        monkeypatch.setenv(parallel.JOBS_ENV_VAR, "7")
        assert parallel.resolve_jobs(2) == 2
        assert parallel.resolve_jobs(1) == 1
        # env only applies when nothing explicit was passed
        assert parallel.resolve_jobs(None) == 7

    def test_env_ignored_when_invalid(self, monkeypatch):
        monkeypatch.setenv(parallel.JOBS_ENV_VAR, "many")
        with pytest.warns(UserWarning, match="non-integer"):
            assert parallel.resolve_jobs(None) == 1

    def test_pmap_explicit_jobs_beats_env(self, monkeypatch):
        """REPRO_JOBS=4 must not fan out a pmap explicitly asked to run
        serially (observable via the worker flag: the serial path never
        forks)."""
        monkeypatch.setenv(parallel.JOBS_ENV_VAR, "4")
        import os

        parent = os.getpid()
        pids = parallel.pmap(lambda _: os.getpid(), [0, 1, 2], jobs=1)
        assert set(pids) == {parent}


def _backend_name(_task):
    return sp.get_backend().name


class TestBackendPrecedence:
    def test_explicit_set_backend_beats_env(self, monkeypatch):
        monkeypatch.setenv(sp.BACKEND_ENV_VAR, "scipy")
        sp.set_backend("lists")
        assert sp.get_backend().name == "lists"

    def test_workers_inherit_explicit_backend(self, monkeypatch):
        """An explicit backend choice propagates into pmap workers even
        when the inherited environment says otherwise."""
        monkeypatch.setenv(sp.BACKEND_ENV_VAR, "scipy")
        sp.set_backend("lists")
        names = parallel.pmap(_backend_name, [0, 1, 2, 3], jobs=2)
        assert names == ["lists"] * 4

    def test_experiments_cli_backend_flag_beats_env(self, monkeypatch):
        """--backend wins over REPRO_SP_BACKEND in the experiments CLI."""
        from repro.experiments import cli as experiments_cli

        monkeypatch.setenv(sp.BACKEND_ENV_VAR, "scipy")
        sp._active_backend = None  # force lazy re-resolution from env

        observed = {}

        class _StubSpec:
            def run(self, **kwargs):
                observed["backend"] = sp.get_backend().name
                from repro.experiments.harness import ExperimentResult

                return ExperimentResult(experiment_id="EX", title="stub")

        monkeypatch.setattr(
            experiments_cli, "get_experiment", lambda _id: _StubSpec()
        )
        assert experiments_cli.main(["run", "EX", "--backend", "lists"]) == 0
        assert observed["backend"] == "lists"

    def test_experiments_cli_unknown_backend_errors(self):
        from repro.experiments import cli as experiments_cli

        with pytest.raises(SystemExit):
            experiments_cli.main(["run", "E1", "--backend", "bogus"])

    def test_scenarios_cli_backend_flag_beats_env(self, monkeypatch, tmp_path, capsys):
        """--backend wins over REPRO_SP_BACKEND in the scenarios CLI, and
        the campaign result is identical either way."""
        from repro.scenarios.cli import main as scenarios_main

        suite = {
            "name": "tiny",
            "seed": 5,
            "topologies": [{"name": "g", "family": "grid", "rows": 3, "cols": 3}],
            "regimes": [{"name": "r", "capacity": 6.0, "num_requests": 6}],
            "modes": [{"name": "off", "kind": "offline", "bound": "none"}],
        }
        spec_path = tmp_path / "suite.json"
        spec_path.write_text(json.dumps(suite))

        monkeypatch.setenv(sp.BACKEND_ENV_VAR, "bogus-backend")
        sp._active_backend = None
        assert (
            scenarios_main(["run", str(spec_path), "--backend", "lists", "--json"])
            == 0
        )
        # The bogus env var never got resolved: the explicit flag won
        # without even a warning from the lazy env fallback.
        assert sp.get_backend().name == "lists"
        json.loads(capsys.readouterr().out)


def _kernel_name(_task):
    return kernels.get_kernel().name


_TINY_SUITE = {
    "name": "tiny",
    "seed": 5,
    "topologies": [{"name": "g", "family": "grid", "rows": 3, "cols": 3}],
    "regimes": [{"name": "r", "capacity": 6.0, "num_requests": 6}],
    "modes": [{"name": "off", "kind": "offline", "bound": "none"}],
}


class TestKernelPrecedence:
    def test_explicit_set_kernel_beats_env(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_ENV_VAR, "numpy")
        kernels.set_kernel("lists")
        assert kernels.get_kernel().name == "lists"

    def test_env_resolves_numpy(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_ENV_VAR, "numpy")
        kernels._active_kernel = None
        assert kernels.get_kernel().name == "numpy"

    def test_unknown_env_kernel_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_ENV_VAR, "bogus-kernel")
        kernels._active_kernel = None
        with pytest.warns(UserWarning, match="bogus-kernel"):
            assert kernels.get_kernel().name == "lists"

    def test_numba_env_falls_back_silently_when_absent(self, monkeypatch):
        """REPRO_KERNEL=numba on a numba-less host must resolve to the
        numpy tier with zero warnings and zero failures (the kernel
        contract's silent downgrade)."""
        if kernels.kernel_available("numba"):
            pytest.skip("numba is installed; the fallback path cannot fire")
        import warnings as _warnings

        monkeypatch.setenv(kernels.KERNEL_ENV_VAR, "numba")
        kernels._active_kernel = None
        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            assert kernels.get_kernel().name == "numpy"

    def test_explicit_numba_selection_fails_fast_when_absent(self):
        if kernels.kernel_available("numba"):
            pytest.skip("numba is installed; the failure path cannot fire")
        with pytest.raises(ImportError):
            kernels.set_kernel("numba")

    def test_workers_inherit_explicit_kernel(self, monkeypatch):
        """An explicit kernel choice propagates into pmap workers even when
        the inherited environment says otherwise."""
        monkeypatch.setenv(kernels.KERNEL_ENV_VAR, "lists")
        kernels.set_kernel("numpy")
        names = parallel.pmap(_kernel_name, [0, 1, 2, 3], jobs=2)
        assert names == ["numpy"] * 4

    def test_experiments_cli_kernel_flag_beats_env(self, monkeypatch):
        """--kernel wins over REPRO_KERNEL in the experiments CLI."""
        from repro.experiments import cli as experiments_cli

        monkeypatch.setenv(kernels.KERNEL_ENV_VAR, "numpy")
        kernels._active_kernel = None  # force lazy re-resolution from env

        observed = {}

        class _StubSpec:
            def run(self, **kwargs):
                observed["kernel"] = kernels.get_kernel().name
                from repro.experiments.harness import ExperimentResult

                return ExperimentResult(experiment_id="EX", title="stub")

        monkeypatch.setattr(
            experiments_cli, "get_experiment", lambda _id: _StubSpec()
        )
        assert experiments_cli.main(["run", "EX", "--kernel", "lists"]) == 0
        assert observed["kernel"] == "lists"

    def test_experiments_cli_unknown_kernel_errors(self):
        from repro.experiments import cli as experiments_cli

        with pytest.raises(SystemExit):
            experiments_cli.main(["run", "E1", "--kernel", "bogus"])

    def test_scenarios_cli_kernel_flag_beats_env(self, monkeypatch, tmp_path, capsys):
        """--kernel wins over REPRO_KERNEL in the scenarios CLI, and the
        bogus env value is never resolved."""
        from repro.scenarios.cli import main as scenarios_main

        spec_path = tmp_path / "suite.json"
        spec_path.write_text(json.dumps(_TINY_SUITE))

        monkeypatch.setenv(kernels.KERNEL_ENV_VAR, "bogus-kernel")
        kernels._active_kernel = None
        assert (
            scenarios_main(["run", str(spec_path), "--kernel", "numpy", "--json"])
            == 0
        )
        assert kernels.get_kernel().name == "numpy"
        json.loads(capsys.readouterr().out)

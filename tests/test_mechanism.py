"""Tests for the mechanism layer: payments, truthful wrappers, audits."""

from __future__ import annotations

from functools import partial

import numpy as np
import pytest

from repro.auctions import Bid, MUCAInstance
from repro.core import bounded_muca, bounded_ufp
from repro.exceptions import MechanismError
from repro.flows import Request, UFPInstance, random_instance
from repro.graphs import CapacitatedGraph
from repro.mechanism import (
    MUCAAgent,
    UFPAgent,
    audit_muca_truthfulness,
    audit_ufp_truthfulness,
    check_exactness,
    check_muca_monotonicity,
    check_ufp_monotonicity,
    compute_muca_payments,
    compute_ufp_payments,
    critical_value_muca,
    critical_value_ufp,
    run_truthful_muca_mechanism,
    run_truthful_ufp_mechanism,
)


class TestAgents:
    def test_ufp_agent_utility_truthful_winner(self):
        request = Request(0, 1, 0.5, 4.0)
        agent = UFPAgent.truthful(request)
        assert agent.is_truthful
        assert agent.utility(selected=True, payment=1.5) == pytest.approx(2.5)
        assert agent.utility(selected=False, payment=0.0) == 0.0

    def test_ufp_agent_underdeclared_demand_is_worthless(self):
        true = Request(0, 1, 0.8, 4.0)
        lie = true.with_demand(0.3)
        agent = UFPAgent(true_request=true, declared_request=lie)
        assert not agent.is_truthful
        # Winning with an under-declared demand gives no value, only payment.
        assert agent.utility(selected=True, payment=1.0) == pytest.approx(-1.0)

    def test_ufp_agent_overdeclared_demand_still_serves(self):
        true = Request(0, 1, 0.5, 4.0)
        agent = UFPAgent(true_request=true, declared_request=true.with_demand(0.9))
        assert agent.utility(selected=True, payment=1.0) == pytest.approx(3.0)

    def test_muca_agent_bundle_containment(self):
        true = Bid((0, 1), 5.0)
        superset = MUCAAgent(true_bid=true, declared_bid=true.with_bundle((0, 1, 2)))
        subset = MUCAAgent(true_bid=true, declared_bid=true.with_bundle((0,)))
        assert superset.utility(selected=True, payment=1.0) == pytest.approx(4.0)
        assert subset.utility(selected=True, payment=1.0) == pytest.approx(-1.0)
        assert MUCAAgent.truthful(true).is_truthful


class TestCriticalValuePayments:
    def test_single_edge_second_price_flavour(self, contended_instance):
        """On one capacity-2 edge with values (5, 3, 2), the winners pay (up
        to bisection tolerance) the value they must beat: the excluded
        request's density-threshold, i.e. 2."""
        algorithm = partial(bounded_ufp, epsilon=1.0)
        allocation = algorithm(contended_instance)
        assert allocation.is_selected(0) and allocation.is_selected(1)
        payment_0 = critical_value_ufp(algorithm, contended_instance, 0)
        payment_1 = critical_value_ufp(algorithm, contended_instance, 1)
        assert payment_0 == pytest.approx(2.0, abs=1e-3)
        assert payment_1 == pytest.approx(2.0, abs=1e-3)

    def test_payment_never_exceeds_declared_value(self, contended_instance):
        algorithm = partial(bounded_ufp, epsilon=1.0)
        allocation = algorithm(contended_instance)
        payments = compute_ufp_payments(algorithm, contended_instance, allocation)
        for idx in allocation.selected_indices():
            assert payments[idx] <= contended_instance.requests[idx].value + 1e-9
        # Losers pay zero.
        assert payments[2] == 0.0

    def test_uncontended_winner_pays_zero(self, roomy_diamond_instance):
        algorithm = partial(bounded_ufp, epsilon=1.0)
        allocation = algorithm(roomy_diamond_instance)
        payments = compute_ufp_payments(algorithm, roomy_diamond_instance, allocation)
        np.testing.assert_allclose(payments, 0.0, atol=1e-6)

    def test_critical_value_on_loser_raises(self, contended_instance):
        algorithm = partial(bounded_ufp, epsilon=1.0)
        with pytest.raises(MechanismError):
            critical_value_ufp(algorithm, contended_instance, 2)

    def test_payments_restricted_to_subset(self, contended_instance):
        algorithm = partial(bounded_ufp, epsilon=1.0)
        allocation = algorithm(contended_instance)
        payments = compute_ufp_payments(
            algorithm, contended_instance, allocation, winners=[0]
        )
        assert payments[0] > 0.0
        assert payments[1] == 0.0

    def test_muca_critical_value(self):
        instance = MUCAInstance(
            np.array([2.0]),
            [Bid((0,), 5.0), Bid((0,), 3.0), Bid((0,), 2.0)],
        )
        algorithm = partial(bounded_muca, epsilon=1.0)
        allocation = algorithm(instance)
        assert allocation.is_winner(0)
        payment = critical_value_muca(algorithm, instance, 0)
        # Must beat the displaced bid of value 2.
        assert payment == pytest.approx(2.0, abs=1e-3)
        payments = compute_muca_payments(algorithm, instance, allocation)
        assert payments[0] == pytest.approx(payment, abs=1e-6)


class TestTruthfulMechanisms:
    def test_ufp_mechanism_end_to_end(self, contended_instance):
        result = run_truthful_ufp_mechanism(contended_instance, epsilon=1.0)
        assert result.social_welfare >= 5.0
        assert 0.0 <= result.revenue <= result.social_welfare + 1e-9
        winner = next(iter(result.allocation.selected_indices()))
        true_value = contended_instance.requests[winner].value
        assert result.utility_of(winner, true_value) >= -1e-9

    def test_ufp_mechanism_without_payments(self, contended_instance):
        result = run_truthful_ufp_mechanism(
            contended_instance, epsilon=1.0, compute_payments=False
        )
        assert result.revenue == 0.0

    def test_muca_mechanism_end_to_end(self):
        instance = MUCAInstance(
            np.array([3.0, 3.0]),
            [Bid((0,), 4.0), Bid((0, 1), 3.0), Bid((1,), 2.0), Bid((0,), 1.0)],
        )
        result = run_truthful_muca_mechanism(instance, epsilon=1.0)
        assert result.social_welfare > 0.0
        assert result.revenue >= 0.0
        assert result.payments.shape == (4,)

    def test_custom_algorithm_override(self, contended_instance):
        calls = []

        def spy(instance):
            calls.append(1)
            return bounded_ufp(instance, 1.0)

        run_truthful_ufp_mechanism(contended_instance, epsilon=1.0, algorithm=spy)
        assert len(calls) >= 1


class TestMonotonicityAudits:
    def test_bounded_ufp_passes(self):
        instance = random_instance(
            num_vertices=8, edge_probability=0.35, capacity=8.0,
            num_requests=15, demand_range=(0.4, 1.0), seed=0,
        )
        report = check_ufp_monotonicity(
            partial(bounded_ufp, epsilon=0.5), instance, trials_per_request=3, seed=1
        )
        assert report.is_monotone
        assert report.trials == 3 * instance.num_requests
        assert report.violation_rate == 0.0
        assert "monotone" in report.summary()

    def test_non_monotone_rule_is_caught(self, contended_instance):
        """A deliberately broken rule (selects the *lowest* value request)
        must fail the audit: raising a loser's value makes it win."""

        def value_averse(instance):
            order = sorted(
                range(instance.num_requests), key=lambda i: instance.requests[i].value
            )
            winner = order[0]
            from repro.flows.allocation import Allocation

            return Allocation.from_paths(instance, [(winner, [0, 1])], algorithm="bad")

        report = check_ufp_monotonicity(
            value_averse, contended_instance, trials_per_request=4, seed=2
        )
        assert not report.is_monotone
        assert report.violations
        assert "NOT monotone" in report.summary()
        assert "promoted" in report.violations[0].describe() or "dropped" in report.violations[0].describe()

    def test_muca_audit_passes_for_bounded_muca(self):
        from repro.auctions import random_auction

        auction = random_auction(num_items=8, num_bids=20, multiplicity=12.0, seed=3)
        report = check_muca_monotonicity(
            partial(bounded_muca, epsilon=0.5), auction, trials_per_bid=3, seed=4
        )
        assert report.is_monotone

    def test_exactness_check(self, contended_instance):
        allocation = bounded_ufp(contended_instance, 1.0)
        assert check_exactness(allocation)
        # An allocation with a duplicated request is not exact.
        from repro.flows.allocation import Allocation

        duplicated = Allocation.from_paths(
            contended_instance, [(0, [0, 1]), (0, [0, 1])]
        )
        assert not check_exactness(duplicated)


class TestTruthfulnessAudits:
    def test_bounded_ufp_mechanism_is_truthful(self, contended_instance):
        report = audit_ufp_truthfulness(
            partial(bounded_ufp, epsilon=1.0),
            contended_instance,
            misreports_per_agent=5,
            seed=0,
        )
        assert report.is_truthful
        assert report.agents_audited == 3
        assert report.misreports_tried >= 15
        assert "truthful" in report.summary()

    def test_bounded_muca_mechanism_is_truthful(self):
        instance = MUCAInstance(
            np.array([2.0]),
            [Bid((0,), 5.0), Bid((0,), 3.0), Bid((0,), 2.0)],
        )
        report = audit_muca_truthfulness(
            partial(bounded_muca, epsilon=1.0), instance, misreports_per_agent=5, seed=1
        )
        assert report.is_truthful

    def test_first_price_rule_fails_the_audit(self, contended_instance):
        """Charging winners their *declared* value (first price) is not
        truthful: shading the bid down towards the critical value is a
        profitable deviation.  The audit must detect it."""

        def first_price_outcome(algorithm, instance, index):
            allocation = algorithm(instance)
            if not allocation.is_selected(index):
                return False, 0.0
            return True, instance.requests[index].value

        # Recreate the audit loop with the broken payment rule.
        algorithm = partial(bounded_ufp, epsilon=1.0)
        truthful_selected, truthful_payment = first_price_outcome(
            algorithm, contended_instance, 0
        )
        agent = UFPAgent.truthful(contended_instance.requests[0])
        truthful_utility = agent.utility(truthful_selected, truthful_payment)
        # Shade the declared value down to 2.5 (still above the competition).
        lie = contended_instance.requests[0].with_value(2.5)
        lie_instance = contended_instance.replace_request(0, lie)
        lie_selected, lie_payment = first_price_outcome(algorithm, lie_instance, 0)
        lie_agent = UFPAgent(
            true_request=contended_instance.requests[0], declared_request=lie
        )
        assert lie_agent.utility(lie_selected, lie_payment) > truthful_utility + 0.5

    def test_audit_subset_of_agents(self, contended_instance):
        report = audit_ufp_truthfulness(
            partial(bounded_ufp, epsilon=1.0),
            contended_instance,
            agents=[0],
            misreports_per_agent=2,
            seed=3,
        )
        assert report.agents_audited == 1


@pytest.mark.property
class TestTruthfulnessPerturbationGrids:
    """Deviation sweeps over explicit misreport grids on random instances.

    These go beyond the random-draw audits above: every audited agent is
    perturbed across the full factor grid, so the coverage is deterministic
    and seed-independent, and the payment computations inside the audit
    exercise the ``assume_selected`` bisection fast path from the lazy
    engine rewiring (see the fast-path equivalence test below).
    """

    UFP_GRID = [
        (d, v)
        for d in (0.5, 1.0, 2.0)
        for v in (0.25, 0.5, 1.0, 2.0, 4.0)
        if (d, v) != (1.0, 1.0)
    ]
    MUCA_GRID = [0.1, 0.5, 0.9, 1.1, 2.0, 5.0]

    @pytest.mark.parametrize("seed", [11, 29, 47])
    def test_no_ufp_agent_gains_across_the_grid(self, seed):
        instance = random_instance(
            num_vertices=7, edge_probability=0.35, capacity=8.0,
            num_requests=10, demand_range=(0.4, 1.0), seed=seed,
        )
        report = audit_ufp_truthfulness(
            partial(bounded_ufp, epsilon=0.5),
            instance,
            misreports_per_agent=0,
            misreport_grid=self.UFP_GRID,
            seed=seed,
        )
        assert report.is_truthful, report.summary()
        # Every agent saw the whole grid plus the structured inflation lie.
        assert report.misreports_tried >= len(self.UFP_GRID) * instance.num_requests

    @pytest.mark.parametrize("seed", [5, 23])
    def test_no_muca_bidder_gains_across_the_grid(self, seed):
        from repro.auctions import random_auction

        auction = random_auction(
            num_items=6, num_bids=12, multiplicity=6.0,
            bundle_size_range=(1, 3), seed=seed,
        )
        report = audit_muca_truthfulness(
            partial(bounded_muca, epsilon=0.5),
            auction,
            misreports_per_agent=0,
            value_grid=self.MUCA_GRID,
            seed=seed,
        )
        assert report.is_truthful, report.summary()
        assert report.misreports_tried >= len(self.MUCA_GRID) * auction.num_bids

    def test_assume_selected_fast_path_matches_guarded_payments(self):
        """The audit's payments ride on the ``assume_selected`` fast path;
        this pins the fast path to the verifying slow path bit for bit."""
        instance = random_instance(
            num_vertices=7, edge_probability=0.35, capacity=8.0,
            num_requests=12, demand_range=(0.4, 1.0), seed=13,
        )
        algorithm = partial(bounded_ufp, epsilon=0.5)
        allocation = algorithm(instance)
        assert allocation.num_selected > 0
        fast = compute_ufp_payments(algorithm, instance, allocation)
        guarded = compute_ufp_payments(
            algorithm, instance, allocation, verify_winners=True
        )
        np.testing.assert_array_equal(fast, guarded)

"""Tests of the shared retry-backoff policy (``repro.utils.backoff``)."""

from __future__ import annotations

import pytest

from repro.utils.backoff import BackoffPolicy, jitter_fraction


class TestSchedule:
    def test_plain_doubling_without_jitter(self):
        policy = BackoffPolicy(base=0.25)
        assert policy.delays(4) == [0.25, 0.5, 1.0, 2.0]

    def test_custom_factor(self):
        policy = BackoffPolicy(base=1.0, factor=3.0)
        assert policy.delays(3) == [1.0, 3.0, 9.0]

    def test_cap_is_a_hard_upper_bound(self):
        policy = BackoffPolicy(base=1.0, cap=4.0)
        assert policy.delays(5) == [1.0, 2.0, 4.0, 4.0, 4.0]

    def test_zero_base_means_retry_immediately(self):
        assert BackoffPolicy().delays(3) == [0.0, 0.0, 0.0]

    def test_attempts_are_one_based(self):
        with pytest.raises(ValueError, match="attempt"):
            BackoffPolicy(base=1.0).delay(0)


class TestJitter:
    def test_deterministic_across_policies(self):
        a = BackoffPolicy(base=1.0, jitter=0.5, seed=7)
        b = BackoffPolicy(base=1.0, jitter=0.5, seed=7)
        assert a.delays(6, scope="job-1") == b.delays(6, scope="job-1")

    def test_scopes_decorrelate(self):
        policy = BackoffPolicy(base=1.0, jitter=0.5, seed=7)
        assert policy.delays(6, scope="job-1") != policy.delays(6, scope="job-2")

    def test_seeds_decorrelate(self):
        a = BackoffPolicy(base=1.0, jitter=0.5, seed=1)
        b = BackoffPolicy(base=1.0, jitter=0.5, seed=2)
        assert a.delays(6, scope="j") != b.delays(6, scope="j")

    def test_jitter_only_shrinks_within_bounds(self):
        policy = BackoffPolicy(base=1.0, cap=8.0, jitter=0.5, seed=3)
        plain = BackoffPolicy(base=1.0, cap=8.0)
        for attempt in range(1, 10):
            jittered = policy.delay(attempt, scope="s")
            full = plain.delay(attempt)
            assert 0.5 * full <= jittered <= full

    def test_jitter_fraction_in_unit_interval(self):
        draws = [jitter_fraction(seed, "scope", k) for seed in range(5) for k in range(1, 5)]
        assert all(0.0 <= u < 1.0 for u in draws)
        assert len(set(draws)) == len(draws)  # no accidental collisions here


class TestValidationAndSleep:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base": -1.0},
            {"factor": 0.5},
            {"cap": -2.0},
            {"jitter": 1.5},
            {"jitter": -0.1},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BackoffPolicy(**kwargs)

    def test_sleep_for_uses_injected_sleep(self):
        recorded = []
        policy = BackoffPolicy(base=0.25)
        for attempt in (1, 2, 3):
            policy.sleep_for(attempt, sleep=recorded.append)
        assert recorded == [0.25, 0.5, 1.0]

    def test_sleep_for_skips_zero_delay(self):
        recorded = []
        BackoffPolicy().sleep_for(1, sleep=recorded.append)
        assert recorded == []

"""The compute-kernel layer: registry semantics and per-primitive parity.

The broad end-to-end parity matrix lives in ``test_backend_parity.py``;
this module covers the kernel layer itself:

* registry semantics — explicit selection beats env, unknown env names
  warn-and-fall-back, a missing numba downgrades silently (covered in
  ``test_env_precedence.py``), ``use_kernel`` restores;
* the floating-point properties the numpy tier's bit-identity *proof*
  rests on (positional stability of ``np.exp`` and scalar division) —
  if a numpy build ever broke these, this is the test that should fail
  first, with a message pointing at the right invariant;
* per-primitive differential tests: ``dual_update`` against the reference
  arithmetic, the bitmask invalidation index against the edge-set index,
  ``bundle_scores`` across tiers;
* end-to-end: traced payments and campaign-store content hashes are
  bit-identical across kernels and across ``jobs=``.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import kernels
from repro.core.bounded_ufp import bounded_ufp
from repro.core.dual_state import DualWeights
from repro.flows.generators import random_instance
from repro.kernels.lists import ListsKernel, _EdgeSetIndex
from repro.kernels.numpy_tier import NumpyKernel, _BitmaskIndex
from repro.mechanism.payments import compute_ufp_payments
from repro.utils.prng import ensure_rng


@pytest.fixture(autouse=True)
def _restore_kernel():
    previous = kernels.get_kernel()
    yield
    kernels._active_kernel = previous


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #
class TestRegistry:
    def test_default_is_lists(self, monkeypatch):
        monkeypatch.delenv(kernels.KERNEL_ENV_VAR, raising=False)
        kernels._active_kernel = None
        assert kernels.get_kernel().name == "lists"

    def test_set_and_use_kernel(self):
        kernels.set_kernel("lists")
        with kernels.use_kernel("numpy") as k:
            assert k.name == "numpy"
            assert kernels.get_kernel() is k
        assert kernels.get_kernel().name == "lists"

    def test_unknown_name_raises_keyerror(self):
        with pytest.raises(KeyError, match="bogus"):
            kernels.set_kernel("bogus")

    def test_available_kernels_listing(self):
        assert kernels.available_kernels() == ["lists", "numba", "numpy"]
        assert kernels.kernel_available("lists")
        assert kernels.kernel_available("numpy")
        assert not kernels.kernel_available("bogus")

    def test_kernel_instances_are_singletons(self):
        assert kernels.set_kernel("numpy") is kernels.set_kernel("numpy")

    def test_tier_inheritance(self):
        # numpy extends lists (shared dijkstra + bundle scoring); if numba
        # is present it must extend numpy (shared commit path).
        assert isinstance(kernels.set_kernel("numpy"), ListsKernel)
        if kernels.kernel_available("numba"):
            assert isinstance(kernels.set_kernel("numba"), NumpyKernel)


# --------------------------------------------------------------------- #
# The floating-point invariants behind the numpy tier's bit-identity
# --------------------------------------------------------------------- #
class TestBitIdentityInvariants:
    def test_np_exp_is_positionally_stable(self):
        """``np.exp(x)[ids] == np.exp(x[ids])`` bit for bit: the ufunc
        applies the same scalar routine per element regardless of vector
        shape.  The multiplier-table dual update is built on this."""
        rng = ensure_rng(20070611)
        x = rng.uniform(-30.0, 30.0, size=4096)
        ids = rng.integers(0, x.size, size=512)
        np.testing.assert_array_equal(np.exp(x)[ids], np.exp(x[ids]))

    def test_scalar_division_is_positionally_stable(self):
        """``(s / x)[ids] == s / x[ids]`` bit for bit (IEEE division is
        correctly rounded per element)."""
        rng = ensure_rng(20070612)
        x = rng.uniform(0.1, 50.0, size=4096)
        ids = rng.integers(0, x.size, size=512)
        np.testing.assert_array_equal((3.7 / x)[ids], 3.7 / x[ids])


# --------------------------------------------------------------------- #
# dual_update
# --------------------------------------------------------------------- #
def _random_dual_case(seed, m):
    rng = ensure_rng(seed)
    capacities = rng.uniform(1.0, 30.0, size=m)
    y = 1.0 / capacities.copy()
    k = int(rng.integers(1, max(2, m // 3)))
    ids = np.unique(rng.integers(0, m, size=k))
    return capacities, y, ids, float(rng.uniform(0.2, 1.0))


class TestDualUpdate:
    @pytest.mark.parametrize("seed", range(20))
    @pytest.mark.parametrize("m", [5, 64, 4096, 5000])
    def test_numpy_matches_lists_bit_for_bit(self, seed, m):
        """Both the table path (m <= 4096) and the large-m fallback must
        reproduce the reference update and delta exactly."""
        capacities, y0, ids, demand = _random_dual_case(seed, m)
        lists_k, numpy_k = ListsKernel(), NumpyKernel()
        y_a, y_b = y0.copy(), y0.copy()
        delta_a = lists_k.dual_update(y_a, capacities, ids, 0.5, 3.0, demand)
        delta_b = numpy_k.dual_update(y_b, capacities, ids, 0.5, 3.0, demand)
        np.testing.assert_array_equal(y_a, y_b)
        assert delta_a == delta_b

    def test_repeated_demands_hit_the_table(self, monkeypatch):
        """The multiplier table is shared across DualWeights instances on
        the same capacity array (the payment-probe access pattern)."""
        from repro.kernels import numpy_tier

        calls = {"exp": 0}
        real_exp = np.exp

        def counting_exp(x, *a, **kw):
            calls["exp"] += 1
            return real_exp(x, *a, **kw)

        monkeypatch.setattr(numpy_tier.np, "exp", counting_exp)
        capacities = ensure_rng(7).uniform(1.0, 10.0, size=64)
        k = NumpyKernel()
        for _ in range(5):
            y = 1.0 / capacities.copy()
            ids = np.arange(8)
            k.dual_update(y, capacities, ids, 0.5, 3.0, 0.75)
        assert calls["exp"] == 1  # one table build, four gathers

    def test_dualweights_dispatches_through_kernel(self):
        """End to end through DualWeights: both tiers land on the same
        weights, budget and last increment."""
        capacities = ensure_rng(11).uniform(1.0, 10.0, size=32)
        results = []
        for name in ("lists", "numpy"):
            with kernels.use_kernel(name):
                d = DualWeights(capacities, 0.5)
                for step in range(6):
                    d.apply_selection(
                        np.arange(step, step + 5, dtype=np.int64),
                        0.5 + 0.05 * step,
                        assume_unique=True,
                    )
                results.append(
                    (d.weights.tobytes(), d.budget, d.last_budget_increment)
                )
        assert results[0] == results[1]


# --------------------------------------------------------------------- #
# Invalidation index
# --------------------------------------------------------------------- #
class _FakeTree:
    def __init__(self, edge_set):
        self.edge_set = frozenset(edge_set)
        self.edge_mask = None


class TestInvalidationIndex:
    @pytest.mark.parametrize("seed", range(15))
    def test_bitmask_index_matches_edge_set_index(self, seed):
        """Differential test: a random register/invalidate/discard workload
        evicts the identical source sets from both index flavors."""
        rng = ensure_rng(seed)
        a, b = _EdgeSetIndex(), _BitmaskIndex()
        live: dict[int, _FakeTree] = {}
        for step in range(120):
            op = int(rng.integers(0, 4))
            if op <= 1:  # register (engine contract: evict before re-register)
                source = int(rng.integers(0, 12))
                if source in live:
                    a.discard(source)
                    b.discard(source)
                tree = _FakeTree(
                    int(e) for e in rng.integers(0, 64, size=rng.integers(1, 9))
                )
                live[source] = tree
                a.register(source, tree)
                b.register(source, tree)
            elif op == 2:  # invalidate a random edge set
                edges = [int(e) for e in rng.integers(0, 64, size=3)]
                hit_a = a.invalidate(edges)
                hit_b = b.invalidate(edges)
                assert hit_a == hit_b
                for s in hit_a:
                    live.pop(s, None)
            else:  # discard one source
                source = int(rng.integers(0, 12))
                a.discard(source)
                b.discard(source)
                live.pop(source, None)

    def test_snapshots_restore_across_flavors(self):
        """A checkpoint taken under one kernel restores under the other
        (replays may cross tiers)."""
        trees = {1: _FakeTree({2, 5}), 3: _FakeTree({5, 9}), 7: _FakeTree({0})}
        a, b = _EdgeSetIndex(), _BitmaskIndex()
        for s, t in trees.items():
            a.register(s, t)
            b.register(s, t)
        # sets-snapshot into a bitmask index and vice versa.
        b2 = _BitmaskIndex()
        b2.restore(a.snapshot())
        a2 = _EdgeSetIndex()
        a2.restore(b.snapshot())
        assert b2.invalidate([5]) == [1, 3]
        assert a2.invalidate([5]) == [1, 3]
        assert b2.invalidate([0]) == [7]
        assert a2.invalidate([0]) == [7]


# --------------------------------------------------------------------- #
# Bundle scoring
# --------------------------------------------------------------------- #
class TestBundleScores:
    @pytest.mark.parametrize("seed", range(10))
    def test_tiers_agree_bit_for_bit(self, seed):
        rng = ensure_rng(seed)
        n = int(rng.integers(1, 30))
        sizes = rng.integers(1, 6, size=n)
        flat = rng.integers(0, 40, size=int(sizes.sum()))
        starts = np.zeros(n, dtype=np.int64)
        np.cumsum(sizes[:-1], out=starts[1:])
        weights = rng.uniform(0.01, 2.0, size=40)
        values = rng.uniform(0.5, 5.0, size=n)
        out = [
            k.bundle_scores(weights, flat, starts, values)
            for k in (ListsKernel(), NumpyKernel())
        ]
        np.testing.assert_array_equal(out[0], out[1])


# --------------------------------------------------------------------- #
# Dijkstra (numba tier, guarded)
# --------------------------------------------------------------------- #
@pytest.mark.skipif(
    not kernels.kernel_available("numba"), reason="the numba kernel needs numba"
)
class TestNumbaDijkstra:
    @pytest.mark.parametrize("seed", range(25))
    def test_jit_tree_matches_lists_bit_for_bit(self, seed):
        from repro.graphs.generators import random_digraph, random_graph

        rng = ensure_rng(seed)
        n = int(rng.integers(4, 24))
        build = random_digraph if seed % 2 else random_graph
        graph = build(
            n,
            float(rng.uniform(0.1, 0.6)),
            (0.5, 5.0),
            seed=rng,
            ensure_connected=bool(rng.integers(0, 2)),
        )
        weights = rng.uniform(1e-6, 10.0, size=graph.num_edges)
        source = int(rng.integers(0, n))
        wl = weights.tolist()
        ref = ListsKernel().dijkstra(graph, weights, wl, source)
        jit = kernels.set_kernel("numba").dijkstra(graph, weights, None, source)
        assert jit[0] == ref[0]
        assert jit[1] == ref[1]
        assert jit[2] == ref[2]


# --------------------------------------------------------------------- #
# End to end: payments and store hashes across kernels and jobs
# --------------------------------------------------------------------- #
def _payment_instance(seed):
    return random_instance(
        num_vertices=12,
        edge_probability=0.3,
        capacity=12.0,
        num_requests=30,
        demand_range=(0.5, 1.0),
        seed=seed,
    )


def _available_tiers():
    tiers = ["lists", "numpy"]
    if kernels.kernel_available("numba"):
        tiers.append("numba")
    return tiers


class TestEndToEndParity:
    @pytest.mark.parametrize("use_trace", [True, False])
    def test_traced_payments_identical_across_kernels(self, use_trace):
        outputs = []
        for name in _available_tiers():
            with kernels.use_kernel(name):
                inst = _payment_instance(23)
                allocation = bounded_ufp(inst, 0.3)
                payments = compute_ufp_payments(
                    lambda i, **kw: bounded_ufp(i, 0.3, **kw),
                    inst,
                    allocation,
                    use_trace=use_trace,
                )
                outputs.append(
                    (
                        tuple((r.request_index, r.edge_ids) for r in allocation.routed),
                        float(allocation.value),
                        payments.tobytes(),
                    )
                )
        assert all(out == outputs[0] for out in outputs[1:])

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_store_content_hash_identical_across_kernels(self, tmp_path, jobs):
        """The acceptance headline: a campaign's store hash is the same
        under every kernel tier, at jobs=1 and jobs=4."""
        from repro.scenarios.runner import run_campaign
        from repro.scenarios.store import ResultStore

        suite = {
            "name": "kernel-hash",
            "seed": 17,
            "topologies": [
                {"name": "wax", "family": "waxman", "num_vertices": 12}
            ],
            "regimes": [
                {
                    "name": "mid",
                    "capacity": {"scale_log_m": 2.0, "min": 2.0},
                    "num_requests": 14,
                }
            ],
            "modes": [
                {"name": "off", "kind": "offline", "bound": "none"},
                {
                    "name": "pay",
                    "kind": "offline",
                    "bound": "none",
                    "payments": True,
                },
            ],
        }
        hashes = []
        for name in _available_tiers():
            with kernels.use_kernel(name):
                store = ResultStore(tmp_path / f"{name}-{jobs}")
                result = run_campaign(suite, store=store, jobs=jobs)
                assert result.all_cells_ok
                hashes.append(store.content_hash(result.records))
        assert len(set(hashes)) == 1

    def test_kernel_name_surfaces_in_stats_not_records(self):
        """kernel_name rides RunStats.extra; records carry only the
        tier-invariant kernel_calls count (store-hash safety)."""
        from repro.scenarios.runner import run_campaign

        with kernels.use_kernel("numpy"):
            inst = _payment_instance(5)
            allocation = bounded_ufp(inst, 0.5)
            assert allocation.stats.extra["kernel_name"] == "numpy"
            assert allocation.stats.extra["pricing_kernel_calls"] > 0

            suite = {
                "name": "tiny",
                "seed": 5,
                "topologies": [
                    {"name": "g", "family": "grid", "rows": 3, "cols": 3}
                ],
                "regimes": [
                    {"name": "r", "capacity": 6.0, "num_requests": 6}
                ],
                "modes": [{"name": "off", "kind": "offline", "bound": "none"}],
            }
            result = run_campaign(suite)
            for record in result.records.values():
                assert "kernel_calls" in record
                assert not any("kernel_name" in k for k in record)
                json.dumps(record["kernel_calls"])  # numeric, serializable

    def test_report_kernel_header_line(self):
        from repro.scenarios.report import render_report

        text = render_report(
            {"cell": {"topology": "g", "value": 1.0, "kernel_calls": 3.0}},
            title="t",
            kernel="numpy",
            content_hash="abc123",
        )
        assert "compute kernel: numpy" in text
        assert "store hash: abc123" in text
        assert "kernel_calls" in text

"""Tests for the shared dual-weight state machine."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dual_state import DualWeights


class TestInitialization:
    def test_initial_weights_are_inverse_capacities(self):
        caps = np.array([2.0, 4.0, 8.0])
        duals = DualWeights(caps, 0.5)
        np.testing.assert_allclose(duals.weights, [0.5, 0.25, 0.125])

    def test_initial_budget_equals_m(self):
        duals = DualWeights(np.array([3.0, 7.0, 11.0, 2.0]), 0.3)
        assert duals.budget == pytest.approx(4.0)

    def test_capacity_bound_defaults_to_min(self):
        duals = DualWeights(np.array([5.0, 2.0, 9.0]), 0.3)
        assert duals.capacity_bound == 2.0
        override = DualWeights(np.array([5.0, 2.0, 9.0]), 0.3, capacity_bound=4.0)
        assert override.capacity_bound == 4.0

    def test_budget_limit_formula(self):
        duals = DualWeights(np.array([10.0, 10.0]), 0.25)
        assert duals.budget_limit == pytest.approx(math.exp(0.25 * 9.0))

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            DualWeights(np.array([]), 0.5)
        with pytest.raises(ValueError):
            DualWeights(np.array([1.0, -1.0]), 0.5)
        with pytest.raises(ValueError):
            DualWeights(np.array([1.0]), 0.0)
        with pytest.raises(ValueError):
            DualWeights(np.array([1.0]), 1.5)


class TestUpdates:
    def test_apply_selection_multiplies_weights(self):
        caps = np.array([2.0, 4.0])
        duals = DualWeights(caps, 0.5, capacity_bound=2.0)
        duals.apply_selection([0], demand=1.0)
        # y_0 = (1/2) * exp(0.5 * 2 * 1 / 2) = 0.5 * e^0.5.
        assert duals.weight_of(0) == pytest.approx(0.5 * math.exp(0.5))
        assert duals.weight_of(1) == pytest.approx(0.25)
        assert duals.num_updates == 1

    def test_budget_tracked_incrementally(self):
        duals = DualWeights(np.array([2.0, 3.0, 5.0]), 0.4)
        duals.apply_selection([0, 2], demand=0.7)
        duals.apply_selection([1], demand=0.3)
        assert duals.budget == pytest.approx(duals.recompute_budget(), rel=1e-12)

    def test_within_budget_flips_after_enough_updates(self):
        duals = DualWeights(np.array([2.0, 2.0]), 1.0)  # limit = e^{1*(2-1)} = e
        assert duals.within_budget
        for _ in range(10):
            duals.apply_selection([0, 1], demand=1.0)
        assert not duals.within_budget

    def test_path_length(self):
        duals = DualWeights(np.array([2.0, 4.0, 5.0]), 0.3)
        assert duals.path_length([0, 1]) == pytest.approx(0.75)
        assert duals.path_length([]) == 0.0

    def test_empty_selection_is_noop(self):
        duals = DualWeights(np.array([2.0]), 0.3)
        before = duals.budget
        duals.apply_selection([], demand=1.0)
        assert duals.budget == before

    def test_rejects_nonpositive_demand(self):
        duals = DualWeights(np.array([2.0]), 0.3)
        with pytest.raises(ValueError):
            duals.apply_selection([0], demand=0.0)

    def test_copy_is_independent(self):
        duals = DualWeights(np.array([2.0, 2.0]), 0.3)
        clone = duals.copy()
        duals.apply_selection([0], demand=1.0)
        assert clone.weight_of(0) == pytest.approx(0.5)
        assert duals.weight_of(0) > 0.5

    def test_weights_view_readonly(self):
        duals = DualWeights(np.array([2.0]), 0.3)
        with pytest.raises(ValueError):
            duals.weights[0] = 3.0

    def test_restore_from_equals_fresh_copy_probe_by_probe(self):
        """The copy-light bisection pattern: one scratch state restored per
        probe must be indistinguishable from a fresh ``snapshot.copy()`` —
        weights bit-for-bit, incremental budget and update counter included —
        no matter what the previous probe did to the scratch."""
        snapshot = DualWeights(np.array([2.0, 3.0, 5.0]), 0.4)
        snapshot.apply_selection(np.array([0, 2]), 0.7, assume_unique=True)
        scratch = snapshot.copy()
        probes = [([0], 0.3), ([1, 2], 0.9), ([0, 1, 2], 0.5)]
        for edge_ids, demand in probes:
            scratch.restore_from(snapshot)
            fresh = snapshot.copy()
            assert scratch.weights.tobytes() == fresh.weights.tobytes()
            assert scratch.budget == fresh.budget
            assert scratch.num_updates == fresh.num_updates
            # Diverge the scratch; identical updates must land identically.
            scratch.apply_selection(np.array(edge_ids), demand, assume_unique=True)
            fresh.apply_selection(np.array(edge_ids), demand, assume_unique=True)
            assert scratch.weights.tobytes() == fresh.weights.tobytes()
            assert scratch.budget == fresh.budget
        # The snapshot itself was never perturbed by any restore/update.
        assert snapshot.num_updates == 1
        assert snapshot.budget == pytest.approx(snapshot.recompute_budget(), rel=1e-12)

    def test_restore_from_rejects_mismatched_substrate(self):
        a = DualWeights(np.array([2.0, 3.0]), 0.4)
        b = DualWeights(np.array([2.0, 3.0, 4.0]), 0.4)
        with pytest.raises(ValueError):
            a.restore_from(b)
        c = DualWeights(np.array([2.0, 4.0]), 0.4)
        with pytest.raises(ValueError):
            a.restore_from(c)


@settings(max_examples=40, deadline=None)
@given(
    caps=st.lists(st.floats(min_value=0.5, max_value=20.0), min_size=1, max_size=6),
    epsilon=st.floats(min_value=0.05, max_value=1.0),
    selections=st.lists(
        st.tuples(
            st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=4),
            st.floats(min_value=0.05, max_value=1.0),
        ),
        max_size=8,
    ),
)
def test_property_incremental_budget_matches_recomputation(caps, epsilon, selections):
    """The O(path) incremental budget never drifts from the O(m) recomputation,
    and weights are monotone non-decreasing (Claim 3.7 machinery)."""
    caps = np.asarray(caps)
    duals = DualWeights(caps, epsilon)
    previous = np.array(duals.weights)
    for edge_ids, demand in selections:
        ids = [e % caps.size for e in edge_ids]
        duals.apply_selection(ids, demand)
        current = np.array(duals.weights)
        assert np.all(current >= previous - 1e-15)
        previous = current
    assert duals.budget == pytest.approx(duals.recompute_budget(), rel=1e-9)


class TestWithCapacities:
    """Capacity churn: carrying dual state across a substrate resize."""

    def test_budget_contribution_preserved(self):
        duals = DualWeights(np.array([2.0, 4.0, 8.0]), 0.5, capacity_bound=2.0)
        duals.apply_selection([0, 1], demand=1.0)
        resized = duals.with_capacities(np.array([1.0, 4.0, 16.0]))
        # c'_e y'_e == c_e y_e edge-wise, so the budget does not jump.
        np.testing.assert_allclose(
            np.array([1.0, 4.0, 16.0]) * resized.weights,
            np.array([2.0, 4.0, 8.0]) * duals.weights,
        )
        assert resized.budget == pytest.approx(duals.budget, rel=1e-12)

    def test_weights_rescaled_by_capacity_ratio(self):
        duals = DualWeights(np.array([2.0, 4.0]), 0.5)
        resized = duals.with_capacities(np.array([4.0, 1.0]))
        np.testing.assert_allclose(
            resized.weights, duals.weights * np.array([2.0 / 4.0, 4.0 / 1.0])
        )

    def test_fresh_edge_lands_on_initial_weight(self):
        """An untouched edge's weight maps 1/c -> 1/c', indistinguishable
        from an edge that started at the new capacity."""
        duals = DualWeights(np.array([2.0, 4.0]), 0.5)
        resized = duals.with_capacities(np.array([8.0, 4.0]))
        assert resized.weights[0] == pytest.approx(1.0 / 8.0)

    def test_epsilon_and_bound_preserved(self):
        duals = DualWeights(np.array([2.0, 4.0]), 0.25, capacity_bound=2.0)
        resized = duals.with_capacities(np.array([3.0, 5.0]))
        assert resized.epsilon == duals.epsilon
        assert resized.capacity_bound == duals.capacity_bound
        assert resized.budget_limit == duals.budget_limit

    def test_resize_does_not_mutate_original(self):
        duals = DualWeights(np.array([2.0, 4.0]), 0.5)
        before = duals.weights.copy()
        duals.with_capacities(np.array([1.0, 1.0]))
        np.testing.assert_array_equal(duals.weights, before)

    def test_rejects_bad_capacities(self):
        duals = DualWeights(np.array([2.0, 4.0]), 0.5)
        with pytest.raises(ValueError, match="same edge count"):
            duals.with_capacities(np.array([2.0, 4.0, 8.0]))
        with pytest.raises(ValueError, match="positive"):
            duals.with_capacities(np.array([2.0, 0.0]))

    def test_round_trip_resize_is_identity(self):
        duals = DualWeights(np.array([2.0, 4.0, 8.0]), 0.5, capacity_bound=2.0)
        duals.apply_selection([1, 2], demand=0.7)
        back = duals.with_capacities(
            np.array([1.0, 9.0, 3.0])
        ).with_capacities(np.array([2.0, 4.0, 8.0]))
        np.testing.assert_allclose(back.weights, duals.weights, rtol=1e-15)
        assert back.budget == pytest.approx(duals.budget, rel=1e-15)

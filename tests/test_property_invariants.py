"""Property-based invariant tests for the primal-dual solver stack.

Three structural invariants of the paper's algorithms are checked over
randomly drawn instances:

1. **Dual monotonicity** — the weights ``y_e`` never decrease over a run
   (the exponential update multiplies by a factor ``>= 1``; the pricing
   engine's laziness is *sound only because* of this), and the incremental
   budget bookkeeping never drifts from a from-scratch recomputation.
2. **Feasibility** — allocations never exceed edge capacities / item
   multiplicities (Lemma 3.3).
3. **Value monotonicity** — raising a winner's declared value keeps it
   winning (Definition 2.1 / Lemma 3.4; the property critical-value
   payments rely on).

Every property is exercised by two drivers over the same checker functions:

* a ``hypothesis`` driver (when the library is available) with
  ``derandomize=True`` so runs are reproducible without a database; the CI
  full lane additionally pins ``--hypothesis-seed``;
* a plain seeded-``random`` fallback driver that always runs, so the
  invariants stay covered on boxes without hypothesis.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.auctions import random_auction
from repro.core import bounded_muca, bounded_ufp, bounded_ufp_repeat
from repro.core.dual_state import DualWeights
from repro.core.pricing_engine import PathPricingEngine
from repro.flows import random_instance

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised on hypothesis-free boxes
    HAVE_HYPOTHESIS = False

pytestmark = pytest.mark.property

#: Deterministic parameter draws for the no-hypothesis fallback driver.
_FALLBACK_RNG = random.Random(20070611)
FALLBACK_CASES = [
    (
        _FALLBACK_RNG.randrange(2**31),        # instance seed
        _FALLBACK_RNG.randint(5, 12),          # num_vertices
        _FALLBACK_RNG.uniform(0.15, 0.45),     # edge_probability
        _FALLBACK_RNG.uniform(6.0, 30.0),      # capacity
        _FALLBACK_RNG.randint(4, 24),          # num_requests
        _FALLBACK_RNG.choice([0.3, 0.5, 1.0]), # epsilon
    )
    for _ in range(8)
]


def _build_instance(seed, num_vertices, edge_probability, capacity, num_requests):
    return random_instance(
        num_vertices=num_vertices,
        edge_probability=edge_probability,
        capacity=capacity,
        num_requests=num_requests,
        demand_range=(0.2, 1.0),
        seed=seed,
    )


# ---------------------------------------------------------------------- #
# Checker functions (shared by both drivers)
# ---------------------------------------------------------------------- #
def check_dual_monotonicity(seed, num_vertices, edge_probability, capacity,
                            num_requests, epsilon) -> None:
    """Weights are componentwise non-decreasing across every iteration and
    the incremental budget matches a from-scratch recomputation."""
    instance = _build_instance(seed, num_vertices, edge_probability, capacity,
                               num_requests)
    duals = DualWeights(instance.graph.capacities, epsilon)
    engine = PathPricingEngine(
        instance.graph, instance.requests, duals,
        tie_tolerance=1e-15, index_tie_break=True, remove_selected=True,
    )
    previous = duals.weights.copy()
    iterations = 0
    while engine.num_pending and duals.within_budget and iterations < num_requests:
        selection = engine.select()
        if selection is None:
            break
        engine.commit(selection)
        current = duals.weights
        assert np.all(current >= previous), "a dual weight decreased"
        previous = current.copy()
        iterations += 1
    assert duals.budget == pytest.approx(duals.recompute_budget(), rel=1e-9)


def check_feasibility(seed, num_vertices, edge_probability, capacity,
                      num_requests, epsilon) -> None:
    """No edge is ever loaded past its capacity, with or without repetitions."""
    instance = _build_instance(seed, num_vertices, edge_probability, capacity,
                               num_requests)
    allocation = bounded_ufp(instance, epsilon)
    allocation.validate()
    repeat = bounded_ufp_repeat(instance, epsilon)
    repeat.validate(allow_repetitions=True)


def check_muca_feasibility(seed, num_items, num_bids, multiplicity, epsilon) -> None:
    auction = random_auction(
        num_items=num_items, num_bids=num_bids, multiplicity=multiplicity,
        seed=seed,
    )
    bounded_muca(auction, epsilon).validate()


def check_ufp_value_monotonicity(seed, num_vertices, edge_probability, capacity,
                                 num_requests, epsilon, raise_factor) -> None:
    """Raising a winner's declared value keeps it winning (Definition 2.1)."""
    instance = _build_instance(seed, num_vertices, edge_probability, capacity,
                               num_requests)
    allocation = bounded_ufp(instance, epsilon)
    winners = sorted(allocation.selected_indices())
    if not winners:
        return
    winner = winners[seed % len(winners)]
    raised = instance.replace_request(
        winner, instance.requests[winner].with_value(
            instance.requests[winner].value * raise_factor
        ),
    )
    assert bounded_ufp(raised, epsilon).is_selected(winner), (
        f"winner {winner} lost after raising its value x{raise_factor}"
    )


def check_muca_value_monotonicity(seed, num_items, num_bids, multiplicity,
                                  epsilon, raise_factor) -> None:
    auction = random_auction(
        num_items=num_items, num_bids=num_bids, multiplicity=multiplicity,
        seed=seed,
    )
    allocation = bounded_muca(auction, epsilon)
    if not allocation.winners:
        return
    winner = sorted(allocation.winners)[seed % len(allocation.winners)]
    raised = auction.replace_bid(
        winner, auction.bids[winner].with_value(
            auction.bids[winner].value * raise_factor
        ),
    )
    assert bounded_muca(raised, epsilon).is_winner(winner)


# ---------------------------------------------------------------------- #
# Fallback driver: plain seeded random, always runs
# ---------------------------------------------------------------------- #
class TestInvariantsSeededFallback:
    @pytest.mark.parametrize("case", FALLBACK_CASES, ids=lambda c: f"seed{c[0]}")
    def test_dual_weights_monotone(self, case):
        check_dual_monotonicity(*case)

    @pytest.mark.parametrize("case", FALLBACK_CASES, ids=lambda c: f"seed{c[0]}")
    def test_allocations_respect_capacity(self, case):
        check_feasibility(*case)

    @pytest.mark.parametrize("case", FALLBACK_CASES, ids=lambda c: f"seed{c[0]}")
    def test_raising_a_winning_value_keeps_winning(self, case):
        check_ufp_value_monotonicity(*case, raise_factor=1.0 + (case[0] % 30) / 10.0)

    @pytest.mark.parametrize("case", FALLBACK_CASES[:4], ids=lambda c: f"seed{c[0]}")
    def test_muca_feasible_and_monotone(self, case):
        seed, _, _, _, num_requests, epsilon = case
        check_muca_feasibility(seed, 8, 3 + num_requests, 10.0, epsilon)
        check_muca_value_monotonicity(
            seed, 8, 3 + num_requests, 10.0, epsilon, raise_factor=2.5
        )


# ---------------------------------------------------------------------- #
# Hypothesis driver (richer search; skipped when hypothesis is missing)
# ---------------------------------------------------------------------- #
if HAVE_HYPOTHESIS:
    _COMMON = dict(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        num_vertices=st.integers(min_value=5, max_value=12),
        edge_probability=st.floats(min_value=0.15, max_value=0.45),
        capacity=st.floats(min_value=6.0, max_value=30.0),
        num_requests=st.integers(min_value=4, max_value=24),
        epsilon=st.sampled_from([0.3, 0.5, 1.0]),
    )
    _SETTINGS = settings(
        max_examples=15,
        deadline=None,
        derandomize=True,
        suppress_health_check=[HealthCheck.too_slow],
    )

    class TestInvariantsHypothesis:
        @_SETTINGS
        @given(**_COMMON)
        def test_dual_weights_monotone(self, **kwargs):
            check_dual_monotonicity(**kwargs)

        @_SETTINGS
        @given(**_COMMON)
        def test_allocations_respect_capacity(self, **kwargs):
            check_feasibility(**kwargs)

        @_SETTINGS
        @given(raise_factor=st.floats(min_value=1.0, max_value=10.0), **_COMMON)
        def test_raising_a_winning_value_keeps_winning(self, **kwargs):
            check_ufp_value_monotonicity(**kwargs)

        @_SETTINGS
        @given(
            seed=st.integers(min_value=0, max_value=2**31 - 1),
            num_items=st.integers(min_value=6, max_value=12),
            num_bids=st.integers(min_value=2, max_value=25),
            multiplicity=st.floats(min_value=3.0, max_value=20.0),
            epsilon=st.sampled_from([0.3, 0.5, 1.0]),
        )
        def test_muca_feasible(self, **kwargs):
            check_muca_feasibility(**kwargs)

        @_SETTINGS
        @given(
            seed=st.integers(min_value=0, max_value=2**31 - 1),
            num_items=st.integers(min_value=6, max_value=12),
            num_bids=st.integers(min_value=2, max_value=25),
            multiplicity=st.floats(min_value=3.0, max_value=20.0),
            epsilon=st.sampled_from([0.3, 0.5, 1.0]),
            raise_factor=st.floats(min_value=1.0, max_value=10.0),
        )
        def test_muca_raising_a_winning_value_keeps_winning(self, **kwargs):
            check_muca_value_monotonicity(**kwargs)

"""Differential and property tests for the lazy-greedy pricing engine.

The engine-backed production solvers must produce allocations *identical* to
the eager :mod:`repro.core.reference` loops (which in turn drive
:func:`~repro.graphs.shortest_path.reference_dijkstra`): same selected
requests, same selection order, same paths, same payments.  On top of the
exact-match contract, property tests check the lazy-greedy invariant itself —
a selection is never beaten by the fresh score of any pool request — and the
bit-identity of the rewritten Dijkstra hot loop against the reference one.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.auctions import random_auction
from repro.core import (
    DualWeights,
    PathPricingEngine,
    bounded_muca,
    bounded_ufp,
    bounded_ufp_repeat,
    reference_bounded_muca,
    reference_bounded_ufp,
    reference_bounded_ufp_repeat,
)
from repro.flows import random_instance
from repro.graphs import random_digraph, reference_dijkstra, single_source_dijkstra
from repro.mechanism import compute_ufp_payments


def _routed_signature(allocation):
    return [(r.request_index, r.vertices, r.edge_ids) for r in allocation.routed]


# --------------------------------------------------------------------- #
# Differential: engine solvers vs reference solvers
# --------------------------------------------------------------------- #
class TestAllocationsMatchReference:
    @pytest.mark.parametrize("seed", [0, 1, 2, 7, 13])
    @pytest.mark.parametrize("directed", [True, False])
    @pytest.mark.parametrize("epsilon", [0.3, 0.7])
    def test_bounded_ufp(self, seed, directed, epsilon):
        instance = random_instance(
            num_vertices=11, edge_probability=0.25, capacity=15.0,
            num_requests=30, demand_range=(0.3, 1.0), seed=seed,
            directed=directed,
        )
        fast = bounded_ufp(instance, epsilon)
        slow = reference_bounded_ufp(instance, epsilon)
        assert _routed_signature(fast) == _routed_signature(slow)

    @pytest.mark.parametrize("seed", [0, 3, 9])
    @pytest.mark.parametrize("directed", [True, False])
    def test_bounded_ufp_repeat(self, seed, directed):
        instance = random_instance(
            num_vertices=9, edge_probability=0.3, capacity=10.0,
            num_requests=12, demand_range=(0.4, 1.0), seed=seed,
            directed=directed,
        )
        fast = bounded_ufp_repeat(instance, 0.5, max_iterations=150)
        slow = reference_bounded_ufp_repeat(instance, 0.5, max_iterations=150)
        assert _routed_signature(fast) == _routed_signature(slow)

    @pytest.mark.parametrize("seed", [0, 1, 5])
    def test_bounded_muca(self, seed):
        auction = random_auction(
            num_items=20, num_bids=120, multiplicity=25.0,
            bundle_size_range=(1, 5), seed=seed,
        )
        fast = bounded_muca(auction, 0.35)
        slow = reference_bounded_muca(auction, 0.35)
        assert fast.winners == slow.winners

    def test_unroutable_requests(self):
        # Disconnected terminals must be skipped identically.
        from repro.flows import Request, UFPInstance
        from repro.graphs import CapacitatedGraph

        graph = CapacitatedGraph(4, [(0, 1, 20.0), (2, 3, 20.0)], directed=True)
        instance = UFPInstance(
            graph,
            [Request(0, 3, 1.0, 9.0), Request(0, 1, 1.0, 1.0), Request(2, 3, 1.0, 2.0)],
        )
        fast = bounded_ufp(instance, 1.0)
        slow = reference_bounded_ufp(instance, 1.0)
        assert _routed_signature(fast) == _routed_signature(slow)

    def test_exact_ties_break_identically(self):
        # Four identical requests: scores tie exactly, index order decides.
        from repro.flows import Request, UFPInstance
        from repro.graphs import CapacitatedGraph

        graph = CapacitatedGraph(2, [(0, 1, 10.0)], directed=True)
        requests = [Request(0, 1, 1.0, 2.0) for _ in range(4)]
        instance = UFPInstance(graph, requests)
        fast = bounded_ufp(instance, 1.0)
        slow = reference_bounded_ufp(instance, 1.0)
        assert _routed_signature(fast) == _routed_signature(slow)

    def test_payments_match_reference_driven_bisection(self):
        instance = random_instance(
            num_vertices=8, edge_probability=0.4, capacity=10.0,
            num_requests=12, demand_range=(0.4, 1.0), seed=3,
        )
        fast_alloc = bounded_ufp(instance, 0.4)
        slow_alloc = reference_bounded_ufp(instance, 0.4)
        fast_payments = compute_ufp_payments(
            lambda trial: bounded_ufp(trial, 0.4), instance, fast_alloc
        )
        slow_payments = compute_ufp_payments(
            lambda trial: reference_bounded_ufp(trial, 0.4), instance, slow_alloc
        )
        assert np.array_equal(fast_payments, slow_payments)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2000),
    epsilon=st.floats(min_value=0.2, max_value=1.0),
    directed=st.booleans(),
)
def test_property_engine_matches_reference(seed, epsilon, directed):
    """Engine allocations equal reference allocations on arbitrary random
    instances, directed and undirected."""
    instance = random_instance(
        num_vertices=8, edge_probability=0.35, capacity=8.0,
        num_requests=16, demand_range=(0.3, 1.0), seed=seed, directed=directed,
    )
    fast = bounded_ufp(instance, epsilon)
    slow = reference_bounded_ufp(instance, epsilon)
    assert _routed_signature(fast) == _routed_signature(slow)


# --------------------------------------------------------------------- #
# Property: the lazy-greedy invariant
# --------------------------------------------------------------------- #
@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1000))
def test_property_lazy_selection_is_never_beaten(seed):
    """No pool request's *fresh* score (recomputed eagerly from scratch under
    the current duals) ever beats the lazy-greedy selection."""
    instance = random_instance(
        num_vertices=9, edge_probability=0.3, capacity=12.0,
        num_requests=14, demand_range=(0.3, 1.0), seed=seed,
    )
    graph = instance.graph
    duals = DualWeights(graph.capacities, 0.5)
    engine = PathPricingEngine(graph, instance.requests, duals)
    pool = set(range(instance.num_requests))

    while engine.num_pending and duals.within_budget:
        selection = engine.select()
        if selection is None:
            break
        # Eager oracle: fresh score of every pool request under current duals.
        weights = duals.weights
        best = None
        for i in sorted(pool):
            req = instance.requests[i]
            tree = reference_dijkstra(graph, req.source, weights, targets={req.target})
            if not tree.reachable(req.target):
                continue
            score = req.demand / req.value * tree.distance(req.target)
            if best is None or score < best:
                best = score
        assert best is not None
        assert selection.score <= best + 1e-15
        engine.commit(selection)
        pool.discard(selection.index)


# --------------------------------------------------------------------- #
# Bit-identity of the rewritten Dijkstra
# --------------------------------------------------------------------- #
class TestFastDijkstraBitIdentity:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_full_tree(self, seed):
        graph = random_digraph(40, 0.12, 5.0, seed=seed)
        rng = np.random.default_rng(seed)
        weights = rng.uniform(0.01, 1.0, size=graph.num_edges)
        for source in (0, 7, 19):
            fast = single_source_dijkstra(graph, source, weights)
            slow = reference_dijkstra(graph, source, weights)
            assert np.array_equal(fast.distances, slow.distances)
            assert np.array_equal(fast.parent_vertex, slow.parent_vertex)
            assert np.array_equal(fast.parent_edge, slow.parent_edge)
            # The invalidation footprint (parent-edge set) matches too.
            assert fast.used_edge_ids() == slow.used_edge_ids()

    def test_targets_set_not_consumed(self):
        graph = random_digraph(20, 0.2, 5.0, seed=8)
        rng = np.random.default_rng(8)
        weights = rng.uniform(0.01, 1.0, size=graph.num_edges)
        targets = {3, 9}
        single_source_dijkstra(graph, 0, weights, targets=targets)
        assert targets == {3, 9}  # caller's set must survive the early exit

    def test_early_exit_targets(self):
        graph = random_digraph(30, 0.15, 5.0, seed=5)
        rng = np.random.default_rng(5)
        weights = rng.uniform(0.01, 1.0, size=graph.num_edges)
        fast = single_source_dijkstra(graph, 0, weights, targets={11, 23})
        slow = reference_dijkstra(graph, 0, weights, targets={11, 23})
        assert np.array_equal(fast.distances, slow.distances)
        assert np.array_equal(fast.parent_edge, slow.parent_edge)


# --------------------------------------------------------------------- #
# Substrate caches and DualWeights fast paths
# --------------------------------------------------------------------- #
class TestSubstrateCaches:
    def test_bellman_ford_arc_list_is_cached(self):
        graph = random_digraph(12, 0.3, 4.0, seed=1)
        arcs1 = graph.bellman_ford_arcs()
        arcs2 = graph.bellman_ford_arcs()
        assert arcs1 is arcs2  # built once
        assert len(arcs1) == graph.num_edges  # directed: one arc per edge

    def test_csr_lists_are_cached_and_consistent(self):
        graph = random_digraph(12, 0.3, 4.0, seed=2)
        indptr, heads, eids = graph.csr_lists()
        assert graph.csr_lists() is graph.csr_lists()
        assert indptr == graph.indptr.tolist()
        assert heads == graph.adjacency_heads.tolist()
        assert eids == graph.adjacency_edge_ids.tolist()

    def test_warm_tree_cache_reused_across_runs(self):
        instance = random_instance(
            num_vertices=10, edge_probability=0.3, capacity=20.0,
            num_requests=20, demand_range=(0.3, 1.0), seed=4,
        )
        first = bounded_ufp(instance, 0.4)
        second = bounded_ufp(instance, 0.4)
        assert _routed_signature(first) == _routed_signature(second)
        # The second run prices its initial sweep from the per-graph memo.
        assert second.stats.extra["pricing_warm_start_hits"] > 0
        assert (
            second.stats.extra["pricing_dijkstra_calls"]
            < first.stats.extra["pricing_dijkstra_calls"]
            + first.stats.extra["pricing_warm_start_hits"]
        )

    def test_cache_statistics_recorded_in_run_stats(self):
        instance = random_instance(
            num_vertices=10, edge_probability=0.3, capacity=20.0,
            num_requests=20, demand_range=(0.3, 1.0), seed=6,
        )
        stats = bounded_ufp(instance, 0.4).stats
        for key in (
            "pricing_dijkstra_calls",
            "pricing_tree_reuses",
            "pricing_warm_start_hits",
            "pricing_lazy_pops",
            "pricing_repricings",
            "pricing_trees_invalidated",
            "pricing_dijkstra_calls_saved",
        ):
            assert key in stats.extra
        # Laziness must actually kick in: the eager strategy would have run
        # far more trees than the engine did.
        assert stats.extra["pricing_dijkstra_calls_saved"] > 0

    def test_dual_weights_assume_unique_matches_dedup_path(self):
        caps = np.array([2.0, 3.0, 5.0, 7.0])
        a = DualWeights(caps, 0.5)
        b = DualWeights(caps, 0.5)
        ids = np.array([1, 3], dtype=np.int64)  # sorted, distinct
        a.apply_selection(ids, 0.7, assume_unique=True)
        b.apply_selection([3, 1], 0.7)  # np.unique path
        assert np.array_equal(a.weights, b.weights)
        assert a.budget == b.budget

    def test_verify_winners_restores_mismatch_guard(self):
        from repro.exceptions import MechanismError

        instance = random_instance(
            num_vertices=7, edge_probability=0.4, capacity=4.0,
            num_requests=10, demand_range=(0.5, 1.0), seed=11,
        )
        allocation = bounded_ufp(instance, 0.3)
        assert allocation.num_selected < instance.num_requests  # contended
        # A mismatched algorithm (different epsilon -> different winners)
        # must trip the guard when verification is requested.
        mismatched = lambda trial: bounded_ufp(trial, 1.0)  # noqa: E731
        if any(
            not mismatched(instance).is_selected(i)
            for i in allocation.selected_indices()
        ):
            with pytest.raises(MechanismError):
                compute_ufp_payments(
                    mismatched, instance, allocation, verify_winners=True
                )

    def test_initial_trees_survive_memo_eviction(self):
        from repro.core.pricing_engine import (
            _INITIAL_TREE_MEMO_KEY,
            _TREE_MEMO_KEY,
        )

        instance = random_instance(
            num_vertices=10, edge_probability=0.3, capacity=20.0,
            num_requests=20, demand_range=(0.3, 1.0), seed=5,
        )
        bounded_ufp(instance, 0.4)
        cache = instance.graph.substrate_cache
        initial = cache[_INITIAL_TREE_MEMO_KEY]
        assert initial  # initial sweep memoized outside the evictable memo
        cache[_TREE_MEMO_KEY].clear()  # simulate a cap-triggered eviction
        again = bounded_ufp(instance, 0.4)
        # The initial sweep still warm-starts after the eviction.
        assert again.stats.extra["pricing_warm_start_hits"] >= len(initial)

    def test_dual_weights_path_length_ndarray_fast_path(self):
        caps = np.array([2.0, 3.0, 5.0])
        duals = DualWeights(caps, 0.5)
        ids = np.array([0, 2], dtype=np.int64)
        assert duals.path_length(ids) == duals.path_length([0, 2])
        assert duals.path_length(np.array([], dtype=np.int64)) == 0.0


# --------------------------------------------------------------------- #
# Streaming admission into a live engine (the repro.online substrate)
# --------------------------------------------------------------------- #
class TestStreamingEngineAPI:
    def _engine(self, instance, requests=()):
        duals = DualWeights(instance.graph.capacities, 0.5)
        return PathPricingEngine(
            instance.graph, requests, duals,
            tie_tolerance=1e-15, index_tie_break=True, remove_selected=True,
        )

    def test_add_requests_assigns_consecutive_indices_and_liveness(self):
        from repro.flows import Request
        from repro.graphs import CapacitatedGraph
        from repro.flows import UFPInstance

        graph = CapacitatedGraph(3, [(0, 1, 5.0)], directed=True)
        instance = UFPInstance(graph, [])
        engine = self._engine(instance)
        assert engine.num_requests == 0
        first = engine.add_requests([Request(0, 1, 1.0, 2.0)])
        # Vertex 2 is unreachable: the request is dropped on arrival.
        second = engine.add_requests([Request(0, 2, 1.0, 2.0), Request(0, 1, 1.0, 1.0)])
        assert first == [0] and second == [1, 2]
        assert engine.num_requests == 3
        assert engine.is_live(0) and not engine.is_live(1) and engine.is_live(2)
        selection = engine.select()
        engine.commit(selection)
        assert not engine.is_live(selection.index)

    def test_streamed_pool_selects_identically_to_constructed_pool(self):
        """Adding the whole request list via add_requests is equivalent to
        constructing the engine with it: same selection sequence, paths and
        scores — streaming changes *when* requests enter, never the
        semantics of selection."""
        instance = random_instance(
            num_vertices=9, edge_probability=0.3, capacity=10.0,
            num_requests=18, demand_range=(0.3, 1.0), seed=21,
        )

        def run(engine):
            out = []
            while engine.num_pending and engine.duals.within_budget:
                selection = engine.select()
                if selection is None:
                    break
                engine.commit(selection)
                out.append((selection.index, selection.score, selection.edge_ids))
            return out

        constructed = self._engine(instance, instance.requests)
        streamed = self._engine(instance)
        mid = len(instance.requests) // 2
        streamed.add_requests(instance.requests[:mid])
        streamed.add_requests(instance.requests[mid:])
        assert run(streamed) == run(constructed)

    def test_requeue_returns_the_same_selection(self):
        instance = random_instance(
            num_vertices=8, edge_probability=0.35, capacity=10.0,
            num_requests=12, seed=3,
        )
        engine = self._engine(instance, instance.requests)
        first = engine.select()
        engine.requeue(first)
        again = engine.select()
        assert (first.index, first.score, first.edge_ids) == (
            again.index, again.score, again.edge_ids
        )


# --------------------------------------------------------------------- #
# Tree-memo LRU: the substrate_cache stays bounded (PR 4)
# --------------------------------------------------------------------- #
class TestTreeMemoLRU:
    def test_lru_cap_and_counters(self):
        from repro.core.pricing_engine import _TreeMemoLRU

        memo = _TreeMemoLRU(3)
        assert memo.get("a") is None and memo.misses == 1
        for key in ("a", "b", "c"):
            assert memo.put(key, key.upper()) is False
        assert len(memo) == 3
        assert memo.get("a") == "A" and memo.hits == 1
        # "b" is now least-recently-used; inserting "d" evicts it.
        assert memo.put("d", "D") is True
        assert memo.evictions == 1
        assert memo.get("b") is None
        assert memo.get("a") == "A" and memo.get("d") == "D"
        memo.clear()
        assert len(memo) == 0 and not memo

    def test_long_fuzz_runs_stay_under_the_cap(self, monkeypatch):
        import repro.core.pricing_engine as pe
        from functools import partial
        from repro.core.pricing_engine import _TREE_MEMO_KEY

        # Shrink the memory budget so the derived cap bottoms out at 8
        # entries, then push hundreds of distinct weight vectors through
        # one graph's memo via payment bisections.
        monkeypatch.setattr(pe, "_TREE_MEMO_BUDGET_BYTES", 1)
        instance = random_instance(
            num_vertices=10, edge_probability=0.3, capacity=12.0,
            num_requests=40, demand_range=(0.5, 1.0), seed=17,
        )
        allocation = bounded_ufp(instance, 0.4)
        assert allocation.num_selected > 5
        payments = compute_ufp_payments(
            partial(bounded_ufp, epsilon=0.4), instance, allocation
        )
        memo = instance.graph.substrate_cache[_TREE_MEMO_KEY]
        assert memo.cap == 8
        assert len(memo) <= memo.cap
        assert memo.evictions > 0
        assert np.all(payments >= 0.0)

    def test_engine_stats_surface_memo_counters(self):
        instance = random_instance(
            num_vertices=9, edge_probability=0.3, capacity=15.0,
            num_requests=20, demand_range=(0.4, 1.0), seed=23,
        )
        allocation = bounded_ufp(instance, 0.4)
        extra = allocation.stats.extra
        assert "pricing_memo_misses" in extra
        assert "pricing_memo_evictions" in extra
        # A second run warm-starts from the shared memo: fewer misses.
        again = bounded_ufp(instance, 0.4)
        assert (
            again.stats.extra["pricing_memo_misses"]
            <= extra["pricing_memo_misses"]
        )


# --------------------------------------------------------------------- #
# Substrate mutation (fault injection): reinstate + rebind_substrate
# --------------------------------------------------------------------- #
class TestSubstrateRebind:
    def _setup(self, seed=31):
        instance = random_instance(
            num_vertices=9, edge_probability=0.35, capacity=12.0,
            num_requests=18, demand_range=(0.4, 1.0), seed=seed,
        )
        duals = DualWeights(instance.graph.capacities, 0.5)
        engine = PathPricingEngine(
            instance.graph, list(instance.requests), duals,
            tie_tolerance=1e-15, index_tie_break=True, remove_selected=True,
        )
        return instance, duals, engine

    def test_reinstate_returns_selection_to_pool(self):
        _instance, _duals, engine = self._setup()
        selection = engine.select()
        engine.commit(selection)
        assert not engine.is_live(selection.index)
        pending_before = engine.num_pending
        engine.reinstate(selection.index)
        assert engine.is_live(selection.index)
        assert engine.num_pending == pending_before + 1
        engine.reinstate(selection.index)  # no-op when already live
        assert engine.num_pending == pending_before + 1

    def test_rebind_rehomes_tree_memo_to_the_new_graph(self):
        from repro.core.pricing_engine import _TREE_MEMO_KEY

        instance, duals, engine = self._setup()
        engine.commit(engine.select())  # warm the old graph's memo
        old_graph = instance.graph
        assert _TREE_MEMO_KEY in old_graph.substrate_cache
        new_graph = old_graph.with_capacities(old_graph.capacities * 2.0)
        engine.rebind_substrate(new_graph, duals.with_capacities(new_graph.capacities))
        assert engine._tree_memo is new_graph.substrate_cache[_TREE_MEMO_KEY]
        assert engine._tree_memo is not old_graph.substrate_cache[_TREE_MEMO_KEY]

    def test_rebind_reprices_without_stale_memo_hits(self):
        """The ISSUE-6 cache-safety satellite: a substrate mutation must
        never serve shortest-path trees cached for the old substrate.  The
        rebind re-price runs against the new graph's (empty) memo, so it
        records misses and zero new warm-start hits."""
        instance, duals, engine = self._setup()
        engine.commit(engine.select())
        hits_before = engine.stats.warm_start_hits
        misses_before = engine.stats.memo_misses
        new_graph = instance.graph.with_capacities(instance.graph.capacities * 3.0)
        engine.rebind_substrate(new_graph, duals.with_capacities(new_graph.capacities))
        assert engine.stats.warm_start_hits == hits_before
        assert engine.stats.memo_misses > misses_before

    def test_rebind_matches_fresh_engine_on_the_mutated_substrate(self):
        """After a capacity mutation, the rebound engine's selection
        sequence must equal that of an engine built from scratch on the
        mutated substrate with the same live pool and dual state."""
        instance, duals, engine = self._setup(seed=37)
        for _ in range(3):
            engine.commit(engine.select())
        new_graph = instance.graph.with_capacities(
            instance.graph.capacities * 0.75, disabled_edges=[0]
        )
        new_duals = duals.with_capacities(new_graph.capacities)
        engine.rebind_substrate(new_graph, new_duals)

        live = [i for i in range(engine.num_requests) if engine.is_live(i)]
        fresh = PathPricingEngine(
            new_graph,
            [instance.requests[i] for i in live],
            new_duals.copy(),
            tie_tolerance=1e-15, index_tie_break=True, remove_selected=True,
        )
        while True:
            a = engine.select()
            b = fresh.select()
            if a is None or b is None:
                assert a is None and b is None
                break
            assert instance.requests[a.index] == instance.requests[live[b.index]]
            assert a.score == b.score
            assert a.vertices == b.vertices and a.edge_ids == b.edge_ids
            engine.commit(a)
            fresh.commit(b)

    def test_rebind_drops_unroutable_live_requests(self):
        from repro.flows import Request, UFPInstance
        from repro.graphs import CapacitatedGraph

        graph = CapacitatedGraph(3, [(0, 1, 8.0), (1, 2, 8.0)], directed=True)
        duals = DualWeights(graph.capacities, 0.5)
        engine = PathPricingEngine(
            graph, [Request(0, 2, 1.0, 2.0)], duals,
            tie_tolerance=1e-15, index_tie_break=True, remove_selected=True,
        )
        assert engine.is_live(0)
        cut = graph.with_capacities(graph.capacities, disabled_edges=[1])
        engine.rebind_substrate(cut, duals.with_capacities(cut.capacities))
        assert not engine.is_live(0)
        assert engine.select() is None

    def test_rebind_rejects_different_edge_space(self):
        instance, duals, engine = self._setup()
        other = random_digraph(instance.graph.num_vertices + 1, 0.3, 4.0, seed=1)
        with pytest.raises(ValueError, match="same vertex and edge-id space"):
            engine.rebind_substrate(other, duals)

"""Tests for JSON serialization of instances and allocations."""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import io
from repro.auctions import MUCAAllocation, random_auction
from repro.core import bounded_muca, bounded_ufp
from repro.exceptions import InvalidInstanceError
from repro.flows import random_instance, staircase_instance


class TestUFPInstanceRoundTrip:
    def test_round_trip_preserves_everything(self, diamond_instance):
        payload = io.ufp_instance_to_dict(diamond_instance)
        rebuilt = io.ufp_instance_from_dict(payload)
        assert rebuilt.num_vertices == diamond_instance.num_vertices
        assert rebuilt.num_edges == diamond_instance.num_edges
        assert rebuilt.graph == diamond_instance.graph
        assert [r.type for r in rebuilt.requests] == [r.type for r in diamond_instance.requests]
        assert [r.name for r in rebuilt.requests] == [r.name for r in diamond_instance.requests]
        assert rebuilt.name == diamond_instance.name

    def test_round_trip_random_instance_with_metadata(self):
        instance = random_instance(num_vertices=8, num_requests=12, seed=3)
        rebuilt = io.ufp_instance_from_dict(io.ufp_instance_to_dict(instance))
        assert rebuilt.metadata["kind"] == "random"
        assert rebuilt.capacity_bound() == pytest.approx(instance.capacity_bound())

    def test_round_trip_staircase_metadata_layout(self):
        instance = staircase_instance(4, 3)
        rebuilt = io.ufp_instance_from_dict(io.ufp_instance_to_dict(instance))
        assert rebuilt.metadata["known_optimum"] == 12.0
        assert rebuilt.metadata["layout"]["target"] == 8

    def test_payload_is_json_serializable(self, diamond_instance):
        payload = io.ufp_instance_to_dict(diamond_instance)
        text = json.dumps(payload)
        assert "ufp_instance" in text

    def test_schema_and_kind_are_checked(self, diamond_instance):
        payload = io.ufp_instance_to_dict(diamond_instance)
        wrong_schema = dict(payload, schema=99)
        with pytest.raises(InvalidInstanceError):
            io.ufp_instance_from_dict(wrong_schema)
        wrong_kind = dict(payload, kind="muca_instance")
        with pytest.raises(InvalidInstanceError):
            io.ufp_instance_from_dict(wrong_kind)


class TestMUCAInstanceRoundTrip:
    def test_round_trip(self, tiny_auction):
        rebuilt = io.muca_instance_from_dict(io.muca_instance_to_dict(tiny_auction))
        assert rebuilt == tiny_auction

    def test_round_trip_random_auction(self):
        auction = random_auction(num_items=9, num_bids=20, multiplicity=(2.0, 5.0), seed=1)
        rebuilt = io.muca_instance_from_dict(io.muca_instance_to_dict(auction))
        np.testing.assert_allclose(rebuilt.multiplicities, auction.multiplicities)
        assert rebuilt.bids == auction.bids


class TestAllocationRoundTrip:
    def test_ufp_allocation_round_trip(self, contended_instance):
        allocation = bounded_ufp(contended_instance, 1.0)
        payload = io.allocation_to_dict(allocation)
        rebuilt = io.allocation_from_dict(payload)
        assert rebuilt.value == pytest.approx(allocation.value)
        assert rebuilt.selected_indices() == allocation.selected_indices()
        assert [r.edge_ids for r in rebuilt.routed] == [r.edge_ids for r in allocation.routed]
        rebuilt.validate()

    def test_ufp_allocation_with_repetitions(self, roomy_diamond_instance):
        from repro.core import bounded_ufp_repeat

        allocation = bounded_ufp_repeat(roomy_diamond_instance, 1.0, max_iterations=5)
        rebuilt = io.allocation_from_dict(io.allocation_to_dict(allocation))
        assert rebuilt.value == pytest.approx(allocation.value)
        rebuilt.validate(allow_repetitions=True)

    def test_muca_allocation_round_trip(self, tiny_auction):
        allocation = MUCAAllocation.from_winners(tiny_auction, [0, 2], algorithm="manual")
        rebuilt = io.muca_allocation_from_dict(io.muca_allocation_to_dict(allocation))
        assert rebuilt.winners == [0, 2]
        assert rebuilt.value == pytest.approx(allocation.value)
        assert rebuilt.algorithm == "manual"


class TestFiles:
    def test_save_and_load_instance(self, tmp_path, contended_instance):
        path = io.save_json(contended_instance, tmp_path / "instance.json")
        loaded = io.load_json(path)
        assert loaded.num_requests == 3

    def test_save_and_load_allocation(self, tmp_path, contended_instance):
        allocation = bounded_ufp(contended_instance, 1.0)
        path = io.save_json(allocation, tmp_path / "allocation.json")
        loaded = io.load_json(path)
        assert loaded.value == pytest.approx(allocation.value)

    def test_save_and_load_auction_objects(self, tmp_path, tiny_auction):
        io.save_json(tiny_auction, tmp_path / "auction.json")
        loaded = io.load_json(tmp_path / "auction.json")
        assert loaded == tiny_auction
        allocation = bounded_muca(
            random_auction(num_items=6, num_bids=10, multiplicity=20.0, seed=2), 0.5
        )
        io.save_json(allocation, tmp_path / "muca_alloc.json")
        assert io.load_json(tmp_path / "muca_alloc.json").value == pytest.approx(allocation.value)

    def test_save_rejects_unknown_type(self, tmp_path):
        with pytest.raises(TypeError):
            io.save_json({"not": "supported"}, tmp_path / "x.json")

    def test_load_rejects_unknown_kind(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 1, "kind": "mystery"}))
        with pytest.raises(InvalidInstanceError):
            io.load_json(path)


class TestNonFiniteRoundTrip:
    """inf/nan must survive persistence as strict JSON (ISSUE-5 satellite:
    ``harness.ratio`` legitimately returns ``math.inf`` and ``json.dumps``
    would otherwise emit non-standard ``Infinity``/``NaN`` tokens)."""

    def test_encode_decode_inverse(self):
        import math

        payload = {
            "ratio": math.inf,
            "neg": -math.inf,
            "nested": [{"x": math.nan}, 1.5, "plain"],
            "ints": 3,
        }
        encoded = io.encode_nonfinite(payload)
        assert encoded["ratio"] == io.INF_SENTINEL
        assert encoded["neg"] == io.NEG_INF_SENTINEL
        assert encoded["nested"][0]["x"] == io.NAN_SENTINEL
        decoded = io.decode_nonfinite(encoded)
        assert decoded["ratio"] == math.inf
        assert decoded["neg"] == -math.inf
        assert math.isnan(decoded["nested"][0]["x"])
        assert decoded["nested"][1:] == [1.5, "plain"]
        assert decoded["ints"] == 3

    def test_dumps_strict_has_no_nonstandard_tokens(self):
        import math

        text = io.dumps_strict({"a": math.inf, "b": math.nan, "c": 1.0})
        assert "Infinity" not in text and "NaN" not in text
        # A strict parser (rejecting the non-standard constants) accepts it.
        reloaded = json.loads(text, parse_constant=pytest.fail)
        assert io.decode_nonfinite(reloaded)["a"] == math.inf

    def test_save_load_json_round_trips_nonfinite_metadata(self, tmp_path):
        import math

        instance = random_instance(num_vertices=6, num_requests=5, seed=1)
        instance.metadata["achieved_ratio"] = math.inf
        instance.metadata["unmeasured"] = math.nan
        path = io.save_json(instance, tmp_path / "inst.json")
        text = path.read_text()
        assert "Infinity" not in text and "NaN" not in text
        reloaded = io.load_json(path)
        assert reloaded.metadata["achieved_ratio"] == math.inf
        assert math.isnan(reloaded.metadata["unmeasured"])

    def test_dumps_canonical_is_key_order_independent(self):
        assert io.dumps_canonical({"b": 1, "a": 2}) == io.dumps_canonical(
            {"a": 2, "b": 1}
        )


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_round_trip_preserves_algorithm_output(seed):
    """Serializing and reloading an instance never changes what the algorithm
    computes on it (the schema loses no information the algorithm reads)."""
    instance = random_instance(
        num_vertices=6, edge_probability=0.5, capacity=8.0,
        num_requests=8, demand_range=(0.4, 1.0), seed=seed,
    )
    rebuilt = io.ufp_instance_from_dict(io.ufp_instance_to_dict(instance))
    original = bounded_ufp(instance, 0.5)
    again = bounded_ufp(rebuilt, 0.5)
    assert again.value == pytest.approx(original.value)
    assert again.selected_indices() == original.selected_indices()


class TestDisabledEdgesRoundTrip:
    def test_instance_round_trip_preserves_disabled_edges(self):
        instance = random_instance(
            num_vertices=6, edge_probability=0.5, capacity=4.0,
            num_requests=5, seed=2,
        )
        from repro.flows import UFPInstance

        cut = UFPInstance(
            instance.graph.with_disabled_edges([0, 2]),
            instance.requests,
            name=instance.name,
            metadata=instance.metadata,
        )
        clone = io.ufp_instance_from_dict(io.ufp_instance_to_dict(cut))
        assert clone.graph.disabled_edges == frozenset({0, 2})
        assert clone.graph == cut.graph

    def test_fault_free_payload_has_no_disabled_key(self):
        instance = random_instance(
            num_vertices=5, edge_probability=0.5, capacity=4.0,
            num_requests=4, seed=3,
        )
        payload = io.ufp_instance_to_dict(instance)
        assert "disabled_edges" not in json.dumps(payload)
        clone = io.ufp_instance_from_dict(payload)
        assert clone.graph.disabled_edges == frozenset()

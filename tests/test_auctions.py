"""Tests for :mod:`repro.auctions`: bids, instances, allocations, generators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.auctions import (
    Bid,
    MUCAAllocation,
    MUCAInstance,
    correlated_auction,
    partition_instance,
    partition_optimal_value,
    partition_reasonable_upper_bound,
    random_auction,
)
from repro.exceptions import (
    InfeasibleAllocationError,
    InvalidInstanceError,
    InvalidRequestError,
)


class TestBid:
    def test_bundle_sorted_and_deduplicated_rejected(self):
        bid = Bid((3, 1, 2), 5.0)
        assert bid.bundle == (1, 2, 3)
        assert bid.size == 3
        with pytest.raises(InvalidRequestError):
            Bid((1, 1), 2.0)

    def test_rejects_empty_bundle_and_bad_value(self):
        with pytest.raises(InvalidRequestError):
            Bid((), 1.0)
        with pytest.raises(ValueError):
            Bid((0,), 0.0)

    def test_with_value_and_bundle(self):
        bid = Bid((0, 1), 4.0, name="x")
        assert bid.with_value(9.0).value == 9.0
        assert bid.with_bundle((2,)).bundle == (2,)
        assert bid.with_value(9.0).name == "x"

    def test_dominates_type_of(self):
        base = Bid((0, 1, 2), 4.0)
        assert Bid((0, 1), 5.0).dominates_type_of(base)
        assert base.dominates_type_of(base)
        assert not Bid((0, 3), 5.0).dominates_type_of(base)
        assert not Bid((0, 1), 3.0).dominates_type_of(base)


class TestMUCAInstance:
    def test_construction(self, tiny_auction):
        assert tiny_auction.num_items == 3
        assert tiny_auction.num_bids == 4
        assert tiny_auction.capacity_bound() == 2.0
        assert tiny_auction.total_value == 10.0

    def test_rejects_unknown_item(self):
        with pytest.raises(InvalidInstanceError):
            MUCAInstance(np.array([1.0, 1.0]), [Bid((5,), 1.0)])

    def test_rejects_bad_multiplicities(self):
        with pytest.raises(InvalidInstanceError):
            MUCAInstance(np.array([0.0]), [Bid((0,), 1.0)])
        with pytest.raises(InvalidInstanceError):
            MUCAInstance(np.array([]), [])

    def test_bids_from_tuples_get_names(self):
        instance = MUCAInstance(np.array([2.0, 2.0]), [((0,), 1.0), ((1,), 2.0)])
        assert [b.name for b in instance.bids] == ["b0", "b1"]

    def test_replace_bid(self, tiny_auction):
        new = tiny_auction.bids[0].with_value(100.0)
        replaced = tiny_auction.replace_bid(0, new)
        assert replaced.bids[0].value == 100.0
        assert tiny_auction.bids[0].value == 4.0
        with pytest.raises(IndexError):
            tiny_auction.replace_bid(10, new)

    def test_incidence_matrix(self, tiny_auction):
        A = tiny_auction.incidence_matrix()
        assert A.shape == (3, 4)
        assert A[0, 0] == 1.0 and A[1, 0] == 1.0 and A[2, 0] == 0.0
        # Column sums equal bundle sizes.
        np.testing.assert_allclose(A.sum(axis=0), [2, 2, 1, 1])

    def test_capacity_assumption(self):
        instance = MUCAInstance(np.full(5, 100.0), [Bid((0,), 1.0)])
        assert instance.meets_capacity_assumption(0.5)
        assert instance.minimum_epsilon() < 0.5


class TestMUCAAllocation:
    def test_value_and_loads(self, tiny_auction):
        allocation = MUCAAllocation.from_winners(tiny_auction, [0, 1])
        assert allocation.value == 7.0
        np.testing.assert_allclose(allocation.item_loads(), [1.0, 2.0, 1.0])
        assert allocation.is_feasible()
        allocation.validate()

    def test_validate_rejects_overallocation(self, tiny_auction):
        allocation = MUCAAllocation.from_winners(tiny_auction, [0, 0, 1])
        with pytest.raises(InfeasibleAllocationError):
            allocation.validate()

    def test_from_winners_rejects_bad_index(self, tiny_auction):
        with pytest.raises(InvalidInstanceError):
            MUCAAllocation.from_winners(tiny_auction, [9])

    def test_empty(self, tiny_auction):
        allocation = MUCAAllocation.empty(tiny_auction)
        assert allocation.value == 0.0
        assert allocation.num_winners == 0
        assert allocation.is_feasible()

    def test_is_winner_and_winning_bids(self, tiny_auction):
        allocation = MUCAAllocation.from_winners(tiny_auction, [2])
        assert allocation.is_winner(2) and not allocation.is_winner(0)
        assert [b.name for b in allocation.winning_bids()] == ["a"]


class TestAuctionGenerators:
    def test_random_auction_shapes(self):
        auction = random_auction(num_items=10, num_bids=40, multiplicity=5.0,
                                 bundle_size_range=(1, 3), seed=0)
        assert auction.num_items == 10
        assert auction.num_bids == 40
        assert all(1 <= b.size <= 3 for b in auction.bids)
        assert auction.capacity_bound() == 5.0

    def test_random_auction_multiplicity_range(self):
        auction = random_auction(num_items=10, num_bids=5, multiplicity=(3.0, 9.0), seed=1)
        assert np.all(auction.multiplicities >= 3.0)
        assert np.all(auction.multiplicities <= 9.0)

    def test_random_auction_deterministic(self):
        a = random_auction(seed=7)
        b = random_auction(seed=7)
        assert a == b

    def test_random_auction_invalid_args(self):
        with pytest.raises(InvalidInstanceError):
            random_auction(num_items=5, bundle_size_range=(0, 3))
        with pytest.raises(InvalidInstanceError):
            random_auction(num_items=5, bundle_size_range=(2, 9))
        with pytest.raises(InvalidInstanceError):
            random_auction(multiplicity=-1.0)

    def test_correlated_auction_popular_items(self):
        auction = correlated_auction(num_items=12, num_bids=60, num_popular=2,
                                     popular_probability=1.0, seed=2)
        popular = set(auction.metadata["popular_items"])
        hit = sum(1 for b in auction.bids if popular & set(b.bundle))
        assert hit == auction.num_bids

    def test_correlated_auction_invalid_args(self):
        with pytest.raises(InvalidInstanceError):
            correlated_auction(num_items=5, num_popular=9)


class TestPartitionInstance:
    def test_sizes(self):
        p, B = 3, 4
        instance = partition_instance(p, B)
        assert instance.num_items == p * (p + 1)
        # Row bids: p * B/2; column bids: (p+1)/2 pairs * 2 flavours * B/2.
        assert instance.num_bids == p * B // 2 + (p + 1) * B // 2
        assert np.all(instance.multiplicities == B)

    def test_bundle_sizes_are_equal_across_types(self):
        p, B = 5, 2
        instance = partition_instance(p, B)
        sizes = {bid.size for bid in instance.bids}
        # Row bundles have (p+1) groups, column bundles 2 + (p-1) = p+1 groups.
        assert sizes == {p + 1}

    def test_known_optimum_is_feasible(self):
        p, B = 3, 4
        instance = partition_instance(p, B)
        # Select everything except the row-1 bids (the paper's optimum).
        winners = [i for i, bid in enumerate(instance.bids) if not bid.name.startswith("row1_")]
        allocation = MUCAAllocation.from_winners(instance, winners)
        allocation.validate()
        assert allocation.value == partition_optimal_value(p, B)

    def test_bounds_formulae(self):
        assert partition_optimal_value(5, 4) == 20.0
        assert partition_reasonable_upper_bound(5, 4) == 16.0

    def test_invalid_parameters(self):
        with pytest.raises(InvalidInstanceError):
            partition_instance(2, 4)
        with pytest.raises(InvalidInstanceError):
            partition_instance(3, 3)
        with pytest.raises(InvalidInstanceError):
            partition_instance(3, 4, items_per_group=0)

    def test_items_per_group_scales_item_count(self):
        instance = partition_instance(3, 2, items_per_group=2)
        assert instance.num_items == 2 * 3 * 4


@settings(max_examples=25, deadline=None)
@given(
    num_items=st.integers(min_value=2, max_value=10),
    picks=st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=6, unique=True),
    value=st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
)
def test_property_bid_bundle_membership(num_items, picks, value):
    """Any valid bundle round-trips through Bid with sorted distinct items."""
    bundle = tuple(p % num_items for p in picks)
    if len(set(bundle)) != len(bundle):
        with pytest.raises(InvalidRequestError):
            Bid(bundle, value)
    else:
        bid = Bid(bundle, value)
        assert bid.bundle == tuple(sorted(set(bundle)))

"""Differential fuzzing: production solvers vs the reference oracles.

The production solvers run on the lazy-greedy pricing engine; the contract
inherited from PR 1 is that their allocations are **bit-identical** to the
eager reference loops in :mod:`repro.core.reference` — same requests, same
selection order, same paths, same floating-point scores along the way.  The
focused tests in ``test_core_pricing_engine.py`` cover hand-built corner
cases; this module sweeps ~50 random instances per solver (pinned seeds, so
failures reproduce) and asserts exact equality:

* ``bounded_ufp``           vs ``reference_bounded_ufp``
* ``bounded_ufp_repeat``    vs ``reference_bounded_ufp_repeat``
* ``bounded_muca``          vs ``reference_bounded_muca``
* ``single_source_dijkstra`` vs ``reference_dijkstra`` (distances, parents)

The online driver is included too: a whole stream submitted as one batch
must replay offline ``Bounded-UFP`` decision by decision.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.auctions import correlated_auction, random_auction
from repro.core import bounded_muca, bounded_ufp, bounded_ufp_repeat
from repro.core.reference import (
    reference_bounded_muca,
    reference_bounded_ufp,
    reference_bounded_ufp_repeat,
)
from repro.flows import hotspot_instance, random_instance
from repro.graphs import CapacitatedGraph
from repro.graphs.generators import random_digraph, random_graph
from repro.graphs.shortest_path import reference_dijkstra, single_source_dijkstra
from repro.online import Batch, OnlineAuction
from repro.utils.prng import ensure_rng

pytestmark = pytest.mark.fuzz

#: Pinned base seed: every parametrized case derives from it, so the sweep
#: is reproducible run to run and machine to machine.
BASE_SEED = 20070611

_SEED_RNG = ensure_rng(BASE_SEED)
UFP_SEEDS = [int(s) for s in _SEED_RNG.integers(0, 2**31 - 1, size=50)]
REPEAT_SEEDS = [int(s) for s in _SEED_RNG.integers(0, 2**31 - 1, size=50)]
MUCA_SEEDS = [int(s) for s in _SEED_RNG.integers(0, 2**31 - 1, size=50)]
DIJKSTRA_SEEDS = [int(s) for s in _SEED_RNG.integers(0, 2**31 - 1, size=50)]
ONLINE_SEEDS = [int(s) for s in _SEED_RNG.integers(0, 2**31 - 1, size=10)]


def _ufp_instance(seed: int, *, max_requests: int = 24):
    """A small random instance whose shape itself is seed-derived."""
    rng = ensure_rng(seed)
    kind = int(rng.integers(0, 3))
    num_vertices = int(rng.integers(5, 13))
    num_requests = int(rng.integers(3, max_requests + 1))
    capacity = float(rng.uniform(5.0, 25.0))
    if kind == 0:
        return random_instance(
            num_vertices=num_vertices,
            edge_probability=float(rng.uniform(0.15, 0.5)),
            capacity=capacity,
            num_requests=num_requests,
            demand_range=(0.2, 1.0),
            directed=bool(rng.integers(0, 2)),
            seed=rng,
        )
    if kind == 1:
        return random_instance(
            num_vertices=num_vertices,
            edge_probability=float(rng.uniform(0.15, 0.5)),
            capacity=(capacity * 0.5, capacity),
            num_requests=num_requests,
            value_proportional_to_demand=True,
            seed=rng,
        )
    return hotspot_instance(
        num_vertices=num_vertices,
        edge_probability=float(rng.uniform(0.2, 0.4)),
        capacity=capacity,
        num_requests=num_requests,
        num_hotspots=2,
        seed=rng,
    )


def _assert_same_allocation(actual, expected) -> None:
    assert [r.request_index for r in actual.routed] == [
        r.request_index for r in expected.routed
    ]
    assert [r.vertices for r in actual.routed] == [r.vertices for r in expected.routed]
    assert [r.edge_ids for r in actual.routed] == [r.edge_ids for r in expected.routed]
    assert actual.value == expected.value  # exact, not approx


@pytest.mark.parametrize("seed", UFP_SEEDS)
def test_bounded_ufp_matches_reference(seed):
    instance = _ufp_instance(seed)
    epsilon = [0.3, 0.5, 1.0][seed % 3]
    _assert_same_allocation(
        bounded_ufp(instance, epsilon), reference_bounded_ufp(instance, epsilon)
    )


@pytest.mark.parametrize("seed", REPEAT_SEEDS)
def test_bounded_ufp_repeat_matches_reference(seed):
    instance = _ufp_instance(seed, max_requests=10)
    epsilon = [0.5, 1.0][seed % 2]
    _assert_same_allocation(
        bounded_ufp_repeat(instance, epsilon),
        reference_bounded_ufp_repeat(instance, epsilon),
    )


@pytest.mark.parametrize("seed", MUCA_SEEDS)
def test_bounded_muca_matches_reference(seed):
    rng = ensure_rng(seed)
    num_items = int(rng.integers(4, 16))
    if seed % 2:
        auction = random_auction(
            num_items=num_items,
            num_bids=int(rng.integers(3, 40)),
            multiplicity=float(rng.uniform(4.0, 20.0)),
            bundle_size_range=(1, min(4, num_items)),
            seed=rng,
        )
    else:
        auction = correlated_auction(
            num_items=num_items,
            num_bids=int(rng.integers(3, 40)),
            multiplicity=float(rng.uniform(4.0, 20.0)),
            num_popular=min(3, num_items),
            bundle_size_range=(1, min(4, num_items)),
            seed=rng,
        )
    epsilon = [0.3, 0.5, 1.0][seed % 3]
    actual = bounded_muca(auction, epsilon)
    expected = reference_bounded_muca(auction, epsilon)
    assert actual.winners == expected.winners
    assert actual.value == expected.value


@pytest.mark.parametrize("seed", DIJKSTRA_SEEDS)
def test_dijkstra_matches_reference(seed):
    rng = ensure_rng(seed)
    num_vertices = int(rng.integers(4, 20))
    build = random_digraph if seed % 2 else random_graph
    graph = build(
        num_vertices,
        float(rng.uniform(0.1, 0.6)),
        (0.5, 5.0),
        seed=rng,
        ensure_connected=bool(rng.integers(0, 2)),
    )
    weights = rng.uniform(1e-6, 10.0, size=graph.num_edges)
    source = int(rng.integers(0, num_vertices))
    fast = single_source_dijkstra(graph, source, weights)
    oracle = reference_dijkstra(graph, source, weights)
    np.testing.assert_array_equal(fast.distances, oracle.distances)
    np.testing.assert_array_equal(fast.parent_vertex, oracle.parent_vertex)
    np.testing.assert_array_equal(fast.parent_edge, oracle.parent_edge)


@pytest.mark.parametrize("seed", ONLINE_SEEDS)
def test_single_batch_online_stream_matches_reference_offline(seed):
    """The online driver fed the whole workload at once IS Bounded-UFP —
    and therefore must also match the eager reference oracle exactly."""
    instance = _ufp_instance(seed)
    epsilon = [0.3, 0.5, 1.0][seed % 3]
    auction = OnlineAuction(instance.graph, epsilon)
    online = auction.run(iter([Batch(time=0.0, requests=instance.requests)]))
    _assert_same_allocation(online, reference_bounded_ufp(instance, epsilon))

"""Tests of the durable auction service core (``repro.service``).

Covers the WAL (append/replay, torn-tail repair), the job queue (idempotent
content-hashed submission, lease dispatch, heartbeats, lease expiry, the
circuit breaker, crash-replay identity) and the supervisor (zero-fault
bit-identity with a direct ``run_campaign``, abort + lease-expiry resume
with an identical final store hash, poison-job quarantine).  The HTTP layer
is tested separately in ``test_service_api.py`` and the subprocess signal
behaviour in ``test_service_signals.py``.
"""

from __future__ import annotations

import json

import pytest

from repro.exceptions import InvalidInstanceError
from repro.scenarios.runner import run_campaign
from repro.scenarios.specs import enumerate_cells
from repro.scenarios.store import ResultStore
from repro.service import (
    JobQueue,
    LeaseLostError,
    QueueFullError,
    Supervisor,
    SupervisorConfig,
    UnknownJobError,
    WriteAheadLog,
    job_id_for,
    normalize_job_spec,
)
from repro.service.queue import LEASE_EXPIRED_ERROR
from repro.utils.backoff import BackoffPolicy


def _suite(name="svc-tiny", **overrides):
    spec = {
        "name": name,
        "seed": 11,
        "topologies": [{"name": "g", "family": "grid", "rows": 3, "cols": 3}],
        "regimes": [{"name": "r", "capacity": 6.0, "num_requests": 8}],
        "modes": [{"name": "off", "kind": "offline", "bound": "none"}],
    }
    spec.update(overrides)
    return spec


def _multiwave_suite(name="svc-waves"):
    """12 cells -> at least two waves at both ``jobs=1`` (wave size 4) and
    ``jobs=4`` (wave size 8), so an abort at a wave boundary leaves
    genuinely partial progress behind."""
    return _suite(
        name,
        topologies=[
            {"name": "g", "family": "grid", "rows": 3, "cols": 3},
            {"name": "w", "family": "waxman", "num_vertices": 8},
        ],
        regimes=[
            {"name": "lo", "capacity": 4.0, "num_requests": 8},
            {"name": "mid", "capacity": 6.0, "num_requests": 8},
            {"name": "hi", "capacity": 9.0, "num_requests": 8},
        ],
        modes=[
            {"name": "off", "kind": "offline", "bound": "none"},
            {"name": "on", "kind": "online"},
        ],
    )


class FakeClock:
    def __init__(self, start=1_000.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# ---------------------------------------------------------------------- #
# WAL
# ---------------------------------------------------------------------- #
class TestWriteAheadLog:
    def test_append_replay_roundtrip(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.jsonl")
        wal.append("SUBMITTED", "j1", at=1.0, spec={"kind": "campaign"})
        wal.append("LEASED", "j1", worker="w0", expires=31.0)
        wal.append("DONE", "j1", at=5.0)
        events = list(WriteAheadLog(tmp_path / "wal.jsonl").replay())
        assert [e["event"] for e in events] == ["SUBMITTED", "LEASED", "DONE"]
        assert events[1]["worker"] == "w0"
        assert len(wal) == 3
        assert [e["event"] for e in wal.events_for("j1")] == [
            "SUBMITTED",
            "LEASED",
            "DONE",
        ]

    def test_unknown_event_rejected(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.jsonl")
        with pytest.raises(ValueError, match="unknown WAL event"):
            wal.append("EXPLODED", "j1")
        with pytest.raises(ValueError, match="job_id"):
            wal.append("DONE", "")

    def test_torn_tail_repaired_on_open_and_append(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path)
        wal.append("SUBMITTED", "j1", at=1.0)
        with path.open("a") as handle:
            handle.write('{"event": "DONE", "job": "j1", "at"')  # kill mid-write
        # The torn fragment is invisible to replay and truncated before the
        # next append, so the new line can never merge into it.
        reopened = WriteAheadLog(path)
        assert [e["event"] for e in reopened.replay()] == ["SUBMITTED"]
        reopened.append("LEASED", "j1", worker="w0", expires=2.0)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line) for line in lines)


# ---------------------------------------------------------------------- #
# Job specs and ids
# ---------------------------------------------------------------------- #
class TestJobSpecs:
    def test_builtin_name_and_full_dict_share_an_id(self):
        from repro.scenarios.suites import get_suite

        by_name = job_id_for({"kind": "campaign", "suite": "smoke"})
        by_dict = job_id_for({"kind": "campaign", "suite": get_suite("smoke")})
        assert by_name == by_dict

    def test_id_depends_on_knobs_not_submission_order(self):
        base = {"kind": "campaign", "suite": _suite()}
        assert job_id_for(base) == job_id_for(dict(reversed(list(base.items()))))
        assert job_id_for(base) != job_id_for({**base, "jobs": 4})

    def test_cell_kind_wraps_a_single_cell_campaign(self):
        spec = normalize_job_spec(
            {
                "kind": "cell",
                "topology": {"name": "g", "family": "grid", "rows": 3, "cols": 3},
                "regime": {"name": "r", "capacity": 6.0, "num_requests": 8},
                "mode": {"name": "off", "kind": "offline", "bound": "none"},
                "seed": 11,
            }
        )
        assert spec["kind"] == "campaign"
        assert len(enumerate_cells(spec["suite"])) == 1

    def test_unknown_keys_rejected(self):
        with pytest.raises(InvalidInstanceError, match="unknown job spec keys"):
            normalize_job_spec({"suite": _suite(), "retries": 3})
        with pytest.raises(InvalidInstanceError, match="unknown job kind"):
            normalize_job_spec({"kind": "batch", "suite": _suite()})
        with pytest.raises(InvalidInstanceError, match="suite"):
            normalize_job_spec({"kind": "campaign"})


# ---------------------------------------------------------------------- #
# Queue
# ---------------------------------------------------------------------- #
class TestJobQueue:
    def _queue(self, tmp_path, **kwargs):
        clock = kwargs.pop("clock", FakeClock())
        kwargs.setdefault("lease_seconds", 30.0)
        # One fake clock drives both time sources: the tests reason about
        # lease arithmetic (monotonic) and timestamps (wall) together.
        return (
            JobQueue(tmp_path / "svc", clock=clock, monotonic=clock, **kwargs),
            clock,
        )

    def test_submit_is_idempotent(self, tmp_path):
        queue, _ = self._queue(tmp_path)
        job, created = queue.submit({"suite": _suite()})
        again, created_again = queue.submit({"suite": _suite()})
        assert created and not created_again
        assert job.id == again.id
        assert queue.counts()["QUEUED"] == 1

    def test_bounded_queue_sheds_load(self, tmp_path):
        queue, _ = self._queue(tmp_path, max_pending=1, retry_after=7.0)
        queue.submit({"suite": _suite("a")})
        with pytest.raises(QueueFullError) as exc_info:
            queue.submit({"suite": _suite("b")})
        assert exc_info.value.retry_after == 7.0
        assert not queue.accepting()
        # Identical re-submission is still accepted: it maps to the
        # existing job instead of new work.
        _, created = queue.submit({"suite": _suite("a")})
        assert not created

    def test_lease_is_fifo_and_exclusive(self, tmp_path):
        queue, _ = self._queue(tmp_path)
        first, _ = queue.submit({"suite": _suite("a")})
        second, _ = queue.submit({"suite": _suite("b")})
        leased = queue.lease("w0")
        assert leased.id == first.id and leased.state == "RUNNING"
        assert queue.lease("w1").id == second.id
        assert queue.lease("w2") is None

    def test_heartbeat_extends_and_detects_loss(self, tmp_path):
        queue, clock = self._queue(tmp_path)
        job, _ = queue.submit({"suite": _suite()})
        queue.lease("w0")
        clock.advance(20.0)
        extended = queue.heartbeat(job.id, "w0")
        assert extended.lease_expires_at == clock.now + 30.0
        with pytest.raises(LeaseLostError):
            queue.heartbeat(job.id, "w1")
        with pytest.raises(UnknownJobError):
            queue.heartbeat("nope", "w0")

    def test_expired_lease_requeues_and_counts_an_attempt(self, tmp_path):
        queue, clock = self._queue(tmp_path)
        job, _ = queue.submit({"suite": _suite()})
        queue.lease("w0")
        clock.advance(31.0)
        requeued = queue.lease("w1")
        assert requeued.id == job.id
        assert requeued.attempts == 1
        # The original holder discovers the loss at its next heartbeat.
        clock.advance(1.0)
        with pytest.raises(LeaseLostError):
            queue.heartbeat(job.id, "w0")

    def test_circuit_breaker_quarantines_poison_jobs(self, tmp_path):
        queue, clock = self._queue(tmp_path, max_attempts=2)
        job, _ = queue.submit({"suite": _suite()})
        queue.lease("w0")
        queue.report_failure(job.id, "w0", "boom", error_type="ValueError", delay=0.0)
        assert queue.get(job.id).state == "QUEUED"
        queue.lease("w0")
        clock.advance(31.0)  # second attempt dies silently: lease expires
        queue.expire_leases()
        failed = queue.get(job.id)
        assert failed.state == "FAILED"
        assert failed.attempts == 2
        assert failed.error == LEASE_EXPIRED_ERROR
        # Quarantined, not retried: nothing is leasable...
        assert queue.lease("w1") is None
        # ...until an explicit resubmit re-enqueues with attempts reset.
        resubmitted, created = queue.submit({"suite": _suite()})
        assert created and resubmitted.state == "QUEUED"
        assert resubmitted.attempts == 0

    def test_failure_traceback_survives_in_status(self, tmp_path):
        queue, _ = self._queue(tmp_path, max_attempts=1)
        job, _ = queue.submit({"suite": _suite()})
        queue.lease("w0")
        queue.report_failure(
            job.id,
            "w0",
            "ValueError: boom",
            error_type="ValueError",
            traceback="Traceback (most recent call last):\n  ...\nValueError: boom\n",
        )
        status = queue.get(job.id).as_status()
        assert status["state"] == "FAILED"
        assert status["error_type"] == "ValueError"
        assert "Traceback" in status["traceback"]

    def test_cancel_revokes_the_lease(self, tmp_path):
        queue, _ = self._queue(tmp_path)
        job, _ = queue.submit({"suite": _suite()})
        queue.lease("w0")
        queue.cancel(job.id)
        with pytest.raises(LeaseLostError):
            queue.complete(job.id, "w0")
        # Cancelling a terminal job is a no-op, not an error.
        assert queue.cancel(job.id).state == "CANCELLED"

    def test_retry_backoff_holds_the_job_back(self, tmp_path):
        queue, clock = self._queue(tmp_path)
        job, _ = queue.submit({"suite": _suite()})
        queue.lease("w0")
        queue.report_failure(job.id, "w0", "boom", delay=10.0)
        assert queue.lease("w0") is None  # not_before still in the future
        clock.advance(10.0)
        assert queue.lease("w0").id == job.id

    def test_replay_reconstructs_the_exact_state(self, tmp_path):
        """The load-bearing WAL property: a fresh process folds the log to
        precisely the state the previous one had acknowledged."""
        queue, clock = self._queue(tmp_path, max_attempts=3)
        queue.submit({"suite": _suite("a")})
        done, _ = queue.submit({"suite": _suite("b")})
        flaky, _ = queue.submit({"suite": _suite("c")})
        queue.lease("w0")  # a -> RUNNING
        queue.lease("w1")  # b -> RUNNING
        queue.heartbeat(done.id, "w1")
        queue.complete(done.id, "w1")
        queue.lease("w2")  # c -> RUNNING
        queue.report_failure(flaky.id, "w2", "boom", error_type="ValueError", delay=5.0)
        expected = queue.state_snapshot()

        for _ in range(2):  # replay is deterministic, not just correct once
            reopened = JobQueue(tmp_path / "svc", clock=clock, monotonic=clock)
            assert reopened.state_snapshot() == expected

    def test_replay_survives_a_torn_tail(self, tmp_path):
        queue, clock = self._queue(tmp_path)
        job, _ = queue.submit({"suite": _suite()})
        queue.lease("w0")
        expected = queue.state_snapshot()
        with (tmp_path / "svc" / "wal.jsonl").open("a") as handle:
            handle.write('{"event": "DONE", "job": "' + job.id + '"')  # torn
        reopened = JobQueue(tmp_path / "svc", clock=clock, monotonic=clock)
        assert reopened.state_snapshot() == expected
        assert reopened.get(job.id).state == "RUNNING"


# ---------------------------------------------------------------------- #
# Supervisor
# ---------------------------------------------------------------------- #
class TestSupervisor:
    @pytest.mark.parametrize("jobs", [1, 4])
    def test_service_run_is_bit_identical_to_direct_run(self, tmp_path, jobs):
        suite = _multiwave_suite()
        queue = JobQueue(tmp_path / "svc", lease_seconds=60.0)
        supervisor = Supervisor(
            queue, config=SupervisorConfig(backoff=BackoffPolicy())
        )
        job, _ = queue.submit({"suite": suite, "jobs": jobs})
        finished = supervisor.run_until_idle()
        assert [j.id for j in finished] == [job.id]
        assert queue.get(job.id).state == "DONE"
        summary = supervisor.load_result(job.id)

        reference = ResultStore(tmp_path / "ref")
        result = run_campaign(suite, store=reference, jobs=jobs)
        keys = [cell.key for cell in enumerate_cells(result.suite)]
        assert summary["content_hash"] == reference.content_hash(keys)
        assert summary["cells"] == len(keys)
        assert summary["failed_cells"] == []
        assert summary["claims_ok"] is True

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_abort_expire_resume_matches_uninterrupted_hash(self, tmp_path, jobs):
        """The acceptance scenario, in-process: a supervisor is stopped hard
        mid-campaign (no ack — exactly what kill -9 leaves behind), the
        lease expires, a fresh supervisor resumes from the per-job store,
        and the final content hash is bit-identical to an uninterrupted
        run."""
        suite = _multiwave_suite()
        clock = FakeClock()
        queue = JobQueue(
            tmp_path / "svc", lease_seconds=30.0, clock=clock, monotonic=clock
        )
        job, _ = queue.submit({"suite": suite, "jobs": jobs})

        def stop_after_first_wave(seconds):
            # Fires during wave 1's pacing sleep: wave 1 still commits, and
            # the wave-2 boundary check then aborts the run without an ack.
            crashing.stop()

        crashing = Supervisor(
            queue,
            config=SupervisorConfig(wave_delay=1e-6, backoff=BackoffPolicy()),
            sleep=stop_after_first_wave,
        )
        crashing.run_until_idle()  # aborted mid-campaign: nothing acked
        interrupted = queue.get(job.id)
        assert interrupted.state == "RUNNING"  # the lease is still out
        assert crashing.load_result(job.id) is None
        partial = crashing.store_for(job.id, interrupted.fence).completed()
        assert partial, "the abort must land after at least one committed wave"

        clock.advance(31.0)  # the dead worker's lease expires
        fresh = Supervisor(queue, config=SupervisorConfig(backoff=BackoffPolicy()))
        finished = fresh.run_until_idle("worker-restarted")
        assert [j.id for j in finished] == [job.id]
        resumed = queue.get(job.id)
        assert resumed.state == "DONE"
        assert resumed.attempts == 1  # the expiry was counted

        reference = ResultStore(tmp_path / "ref")
        result = run_campaign(suite, store=reference, jobs=jobs)
        keys = [cell.key for cell in enumerate_cells(result.suite)]
        summary = fresh.load_result(job.id)
        assert summary["content_hash"] == reference.content_hash(keys)

    def test_poison_job_trips_the_breaker_with_a_durable_record(self, tmp_path):
        queue = JobQueue(tmp_path / "svc", lease_seconds=60.0, max_attempts=2)
        supervisor = Supervisor(
            queue,
            config=SupervisorConfig(
                job_timeout=1e-9,  # every attempt times out at the first wave
                backoff=BackoffPolicy(),
            ),
        )
        job, _ = queue.submit({"suite": _suite()})
        supervisor.run_until_idle()
        failed = queue.get(job.id)
        assert failed.state == "FAILED"
        assert failed.attempts == 2
        assert failed.error_type == "JobTimeoutError"
        assert "JobTimeoutError" in failed.traceback
        record = supervisor.load_result(job.id)
        assert record["failed"] is True
        assert record["attempts"] == 2
        assert "JobTimeoutError" in record["traceback"]

    def test_drain_stops_leasing_but_not_inflight_work(self, tmp_path):
        queue = JobQueue(tmp_path / "svc", lease_seconds=60.0)
        supervisor = Supervisor(
            queue, config=SupervisorConfig(backoff=BackoffPolicy())
        )
        first, _ = queue.submit({"suite": _suite("a")})
        second, _ = queue.submit({"suite": _suite("b")})
        supervisor.run_one()  # lease + finish the first job...
        supervisor.request_drain()
        supervisor.run_forever()  # ...then the workers refuse new leases
        assert queue.get(first.id).state == "DONE"
        assert queue.get(second.id).state == "QUEUED"

    @pytest.mark.slow
    def test_demo_campaign_service_run_matches_direct(self, tmp_path):
        """ISSUE-8 acceptance: the pinned demo suite through the service is
        bit-identical to a direct ``run_campaign``."""
        queue = JobQueue(tmp_path / "svc", lease_seconds=120.0)
        supervisor = Supervisor(
            queue, config=SupervisorConfig(backoff=BackoffPolicy())
        )
        job, _ = queue.submit({"kind": "campaign", "suite": "demo", "jobs": 2})
        supervisor.run_until_idle()
        assert queue.get(job.id).state == "DONE"

        from repro.scenarios.suites import get_suite

        reference = ResultStore(tmp_path / "ref")
        result = run_campaign(get_suite("demo"), store=reference, jobs=2)
        keys = [cell.key for cell in enumerate_cells(result.suite)]
        summary = supervisor.load_result(job.id)
        assert summary["content_hash"] == reference.content_hash(keys)


# ---------------------------------------------------------------------- #
# Fenced leases
# ---------------------------------------------------------------------- #
class TestFencing:
    def _queue(self, tmp_path, **kwargs):
        clock = kwargs.pop("clock", FakeClock())
        kwargs.setdefault("lease_seconds", 30.0)
        return (
            JobQueue(tmp_path / "svc", clock=clock, monotonic=clock, **kwargs),
            clock,
        )

    def test_tokens_increase_monotonically_across_leases(self, tmp_path):
        queue, clock = self._queue(tmp_path, max_attempts=10)
        a, _ = queue.submit({"suite": _suite("a")})
        b, _ = queue.submit({"suite": _suite("b")})
        first_token = queue.lease("w0").fence
        second_token = queue.lease("w1").fence
        assert (first_token, second_token) == (1, 2)
        clock.advance(31.0)  # both leases expire; re-leases get new tokens
        assert {queue.lease("w2").fence, queue.lease("w3").fence} == {3, 4}

    def test_stale_token_cannot_ack_over_the_thief(self, tmp_path):
        """The fencing contract: once a job is re-leased, every call holding
        the old token is rejected — complete, fail, and heartbeat alike."""
        queue, clock = self._queue(tmp_path, max_attempts=10)
        job, _ = queue.submit({"suite": _suite()})
        # The queue hands out live Job objects; copy the token value now.
        stale_token = queue.lease("w0").fence
        clock.advance(31.0)
        thief_token = queue.lease("w1").fence
        assert thief_token == stale_token + 1
        with pytest.raises(LeaseLostError, match="not held"):
            queue.complete(job.id, "w0", token=stale_token)
        # Same worker name re-leasing does not resurrect the old token.
        clock.advance(31.0)
        again_token = queue.lease("w0").fence
        assert again_token == thief_token + 1
        with pytest.raises(LeaseLostError, match="stale fencing token"):
            queue.complete(job.id, "w0", token=stale_token)
        with pytest.raises(LeaseLostError, match="stale fencing token"):
            queue.heartbeat(job.id, "w0", token=stale_token)
        with pytest.raises(LeaseLostError, match="stale fencing token"):
            queue.report_failure(job.id, "w0", "late", token=stale_token)
        # The current holder's token still works.
        assert queue.complete(job.id, "w0", token=again_token).state == "DONE"

    def test_fence_counter_survives_replay(self, tmp_path):
        queue, clock = self._queue(tmp_path, max_attempts=10)
        job, _ = queue.submit({"suite": _suite()})
        queue.lease("w0")
        clock.advance(31.0)
        queue.lease("w1")
        reopened = JobQueue(
            tmp_path / "svc", clock=clock, monotonic=clock, lease_seconds=30.0
        )
        clock.advance(31.0)
        assert reopened.lease("w2").fence == 3

    def test_done_journals_the_content_hash(self, tmp_path):
        queue, _ = self._queue(tmp_path)
        job, _ = queue.submit({"suite": _suite()})
        leased = queue.lease("w0")
        queue.complete(job.id, "w0", token=leased.fence, content_hash="abc123")
        done_events = [
            e for e in queue.wal.events_for(job.id) if e["event"] == "DONE"
        ]
        assert done_events[0]["content_hash"] == "abc123"
        assert done_events[0]["token"] == leased.fence


# ---------------------------------------------------------------------- #
# Monotonic lease timing (wall-clock jumps must be invisible)
# ---------------------------------------------------------------------- #
class TestClockJumps:
    def _queue(self, tmp_path, **kwargs):
        wall, mono = FakeClock(1_000_000.0), FakeClock(50.0)
        kwargs.setdefault("lease_seconds", 30.0)
        queue = JobQueue(
            tmp_path / "svc", clock=wall, monotonic=mono, **kwargs
        )
        return queue, wall, mono

    def test_backwards_wall_jump_cannot_revive_an_expired_lease(self, tmp_path):
        """Regression for wall-clock lease timing: leases expire on monotonic
        time, so stepping the wall clock back hours changes nothing."""
        queue, wall, mono = self._queue(tmp_path, max_attempts=10)
        job, _ = queue.submit({"suite": _suite()})
        queue.lease("w0")
        wall.advance(-36_000.0)  # operator steps the wall clock back 10h
        mono.advance(31.0)  # ...but 31 real seconds pass
        stolen = queue.lease("w1")
        assert stolen is not None and stolen.id == job.id
        with pytest.raises(LeaseLostError):
            queue.heartbeat(job.id, "w0")

    def test_forward_wall_jump_cannot_expire_a_live_lease(self, tmp_path):
        queue, wall, mono = self._queue(tmp_path)
        job, _ = queue.submit({"suite": _suite()})
        queue.lease("w0")
        wall.advance(36_000.0)  # NTP steps the wall clock forward 10h
        mono.advance(1.0)  # ...one real second later
        assert queue.lease("w1") is None  # the lease is still live
        assert queue.heartbeat(job.id, "w0").state == "RUNNING"

    def test_backwards_wall_jump_cannot_extend_retry_backoff(self, tmp_path):
        queue, wall, mono = self._queue(tmp_path, max_attempts=10)
        job, _ = queue.submit({"suite": _suite()})
        queue.lease("w0")
        queue.report_failure(job.id, "w0", "boom", delay=5.0)
        wall.advance(-36_000.0)
        assert queue.lease("w1") is None  # backoff holds (5 mono seconds)
        mono.advance(5.0)
        assert queue.lease("w1").id == job.id  # and releases on schedule

    def test_reboot_epoch_reset_treats_far_deadlines_as_expired(self, tmp_path):
        """After a reboot the monotonic epoch restarts near zero; persisted
        deadlines may be absurdly far in the future.  They must read as
        expired, not as unexpirable leases pinning jobs forever."""
        queue, wall, mono = self._queue(tmp_path, max_attempts=10)
        job, _ = queue.submit({"suite": _suite()})
        queue.lease("w0")  # deadline = 50 + 30 = 80 on the old epoch
        mono.now = 3.0  # "reboot": the epoch restarted
        stolen = queue.lease("w1")  # 80 - 3 = 77 > lease_seconds -> expired
        assert stolen is not None and stolen.id == job.id


# ---------------------------------------------------------------------- #
# Completion webhooks (at-least-once, WAL-journaled)
# ---------------------------------------------------------------------- #
class TestWebhooks:
    def _served(self, tmp_path, post, **config_kwargs):
        queue = JobQueue(tmp_path / "svc", lease_seconds=60.0)
        config = SupervisorConfig(
            backoff=BackoffPolicy(base=0.0, cap=0.0), **config_kwargs
        )
        return queue, Supervisor(queue, config=config, post=post, sleep=lambda s: None)

    def test_webhook_url_is_delivery_detail_not_work(self):
        with_hook = {"suite": _suite(), "webhook_url": "http://h/x"}
        without = {"suite": _suite()}
        assert job_id_for(with_hook) == job_id_for(without)
        with pytest.raises(InvalidInstanceError, match="webhook_url"):
            normalize_job_spec({"suite": _suite(), "webhook_url": "ftp://h"})

    def test_completion_pushes_once_and_journals_it(self, tmp_path):
        calls = []
        queue, supervisor = self._served(
            tmp_path, lambda url, payload: calls.append((url, dict(payload)))
        )
        job, _ = queue.submit({"suite": _suite(), "webhook_url": "http://h/done"})
        supervisor.run_until_idle()
        assert len(calls) == 1
        url, payload = calls[0]
        assert url == "http://h/done"
        assert payload["job"] == job.id and payload["state"] == "DONE"
        assert payload["content_hash"] == supervisor.load_result(job.id)["content_hash"]
        assert queue.get(job.id).webhook_delivered is True
        # The journal makes re-delivery a no-op, even from a fresh process.
        assert supervisor.pump_webhooks() == 0
        assert len(calls) == 1

    def test_unconfirmed_delivery_is_resent_after_restart(self, tmp_path):
        queue, supervisor = self._served(tmp_path, lambda url, payload: None)
        job, _ = queue.submit({"suite": _suite(), "webhook_url": "http://h/done"})
        leased = queue.lease("w0")
        queue.complete(job.id, "w0", token=leased.fence)
        # DONE was acked but no WEBHOOK_SENT journaled (crash before push):
        # a restarted supervisor's sweep must deliver it.
        calls = []
        reopened = JobQueue(tmp_path / "svc", lease_seconds=60.0)
        fresh = Supervisor(
            reopened,
            config=SupervisorConfig(backoff=BackoffPolicy(base=0.0, cap=0.0)),
            post=lambda url, payload: calls.append(url),
            sleep=lambda s: None,
        )
        assert fresh.pump_webhooks() == 1
        assert calls == ["http://h/done"]
        assert reopened.get(job.id).webhook_delivered is True

    def test_capped_retries_then_journaled_give_up(self, tmp_path):
        attempts = []

        def failing_post(url, payload):
            attempts.append(url)
            raise ConnectionError("refused")

        queue, supervisor = self._served(
            tmp_path, failing_post, webhook_attempts=3
        )
        job, _ = queue.submit({"suite": _suite(), "webhook_url": "http://h/x"})
        supervisor.run_until_idle()
        assert len(attempts) == 3
        failed = queue.get(job.id)
        assert failed.state == "DONE"  # the job itself is unaffected
        assert "ConnectionError" in failed.webhook_failed
        # Given up for good: no re-delivery on later sweeps or restarts.
        assert supervisor.pump_webhooks() == 0
        assert len(attempts) == 3
        assert queue.get(job.id).as_status()["webhook"]["failed"] is not None


# ---------------------------------------------------------------------- #
# Result TTL / garbage collection
# ---------------------------------------------------------------------- #
class TestResultGC:
    def _served(self, tmp_path, wall, **config_kwargs):
        queue = JobQueue(tmp_path / "svc", lease_seconds=60.0, clock=wall)
        config = SupervisorConfig(backoff=BackoffPolicy(), **config_kwargs)
        return queue, Supervisor(queue, config=config)

    def test_gc_deletes_only_expired_terminal_results(self, tmp_path):
        wall = FakeClock()
        queue, supervisor = self._served(tmp_path, wall, gc_ttl=100.0)
        old, _ = queue.submit({"suite": _suite("a")})
        supervisor.run_until_idle()
        wall.advance(150.0)
        fresh_job, _ = queue.submit({"suite": _suite("b")})
        supervisor.run_until_idle()
        running, _ = queue.submit({"suite": _suite("c")})
        queue.lease("w9")  # held, never collectable

        collected = supervisor.collect_garbage()
        assert collected == [old.id]
        assert not (supervisor.results_root / old.id).exists()
        assert (supervisor.results_root / fresh_job.id).exists()
        assert queue.get(old.id).collected is True
        assert queue.get(old.id).state == "DONE"  # GC never changes state
        assert queue.get(running.id).collected is False

    def test_gc_record_survives_restart_and_is_idempotent(self, tmp_path):
        wall = FakeClock()
        queue, supervisor = self._served(tmp_path, wall, gc_ttl=10.0)
        job, _ = queue.submit({"suite": _suite()})
        supervisor.run_until_idle()
        wall.advance(20.0)
        assert supervisor.collect_garbage() == [job.id]
        # A restarted queue replays the GC record: nothing left to collect,
        # and the collected flag is part of the durable state.
        reopened = JobQueue(tmp_path / "svc", lease_seconds=60.0, clock=wall)
        assert reopened.get(job.id).collected is True
        assert reopened.collectable(10.0) == []
        assert reopened.record_gc(job.id).collected is True  # idempotent

    def test_gc_refuses_non_terminal_jobs(self, tmp_path):
        wall = FakeClock()
        queue, _supervisor = self._served(tmp_path, wall)
        job, _ = queue.submit({"suite": _suite()})
        with pytest.raises(ValueError, match="refusing to GC"):
            queue.record_gc(job.id)

"""Shared fixtures for the test suite.

Fixtures build small, fully-understood instances (a diamond graph, a
two-parallel-paths graph, a tiny auction) so individual tests can assert
exact values rather than loose inequalities wherever possible.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

# Allow running the tests from a source checkout without an installed
# package (e.g. when the editable install is unavailable on an offline box).
_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:  # pragma: no cover - environment dependent
    try:
        import repro  # noqa: F401
    except ModuleNotFoundError:
        sys.path.insert(0, str(_SRC))

from repro.auctions import Bid, MUCAInstance
from repro.flows import Request, UFPInstance
from repro.graphs import CapacitatedGraph


@pytest.fixture
def diamond_graph() -> CapacitatedGraph:
    """A directed diamond: 0 -> {1, 2} -> 3, plus a direct 0 -> 3 edge.

    Edge ids: 0: (0,1), 1: (0,2), 2: (1,3), 3: (2,3), 4: (0,3).
    Capacities: 2 on the upper path, 3 on the lower path, 1 on the shortcut.
    """
    edges = [
        (0, 1, 2.0),
        (0, 2, 3.0),
        (1, 3, 2.0),
        (2, 3, 3.0),
        (0, 3, 1.0),
    ]
    return CapacitatedGraph(4, edges, directed=True)


@pytest.fixture
def parallel_paths_graph() -> CapacitatedGraph:
    """An undirected graph with two disjoint 2-hop paths between 0 and 3.

    Edge ids: 0: (0,1), 1: (1,3), 2: (0,2), 3: (2,3); all capacities 4.
    """
    edges = [(0, 1, 4.0), (1, 3, 4.0), (0, 2, 4.0), (2, 3, 4.0)]
    return CapacitatedGraph(4, edges, directed=False)


@pytest.fixture
def diamond_instance(diamond_graph) -> UFPInstance:
    """Three requests from 0 to 3 over the diamond, with distinct types."""
    requests = [
        Request(0, 3, demand=1.0, value=3.0, name="high"),
        Request(0, 3, demand=1.0, value=2.0, name="mid"),
        Request(0, 3, demand=0.5, value=1.0, name="low"),
    ]
    return UFPInstance(diamond_graph, requests, name="diamond")


@pytest.fixture
def roomy_diamond_instance(diamond_graph) -> UFPInstance:
    """The diamond requests on a 20x-scaled graph.

    The scaled capacities give ``B = 10``, so the primal-dual algorithms'
    budget stopping rule (which needs ``e^{eps (B-1)} >= m``) does not fire
    before the instance is exhausted — use this fixture when a test expects
    the algorithms to actually route requests.
    """
    requests = [
        Request(0, 3, demand=1.0, value=3.0, name="high"),
        Request(0, 3, demand=1.0, value=2.0, name="mid"),
        Request(0, 3, demand=0.5, value=1.0, name="low"),
    ]
    return UFPInstance(diamond_graph.scaled(10.0), requests, name="roomy-diamond")


@pytest.fixture
def contended_instance() -> UFPInstance:
    """A single edge of capacity 2 with three unit-demand requests.

    Only two of the three requests can be routed; the optimum picks the two
    most valuable ones (values 5 and 3, total 8).
    """
    graph = CapacitatedGraph(2, [(0, 1, 2.0)], directed=True)
    requests = [
        Request(0, 1, 1.0, 5.0, name="a"),
        Request(0, 1, 1.0, 3.0, name="b"),
        Request(0, 1, 1.0, 2.0, name="c"),
    ]
    return UFPInstance(graph, requests, name="single-edge")


@pytest.fixture
def tiny_auction() -> MUCAInstance:
    """Three items with multiplicity 2 and four single-minded bids."""
    bids = [
        Bid((0, 1), 4.0, name="ab"),
        Bid((1, 2), 3.0, name="bc"),
        Bid((0,), 2.0, name="a"),
        Bid((2,), 1.0, name="c"),
    ]
    return MUCAInstance(np.array([2.0, 2.0, 2.0]), bids, name="tiny")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)

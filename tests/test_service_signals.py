"""Subprocess tests of the service's signal behaviour.

Two contracts a unit test cannot prove from inside the process:

* **SIGTERM drains gracefully** — the server stops leasing, the in-flight
  job finishes and is acknowledged, and the process exits 0.
* **SIGKILL loses nothing** — a kill -9 mid-campaign leaves a WAL that
  replays to the exact acknowledged state; a restarted service reclaims
  the job when its lease expires, resumes the campaign from the per-job
  store, and commits a result whose content hash is bit-identical to an
  uninterrupted run (pinned at ``jobs`` 1 and 4).

``--wave-delay`` paces the campaign (timing only — records are untouched)
so the signals reliably land mid-run.
"""

from __future__ import annotations

import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.scenarios.runner import run_campaign
from repro.scenarios.specs import enumerate_cells
from repro.scenarios.store import ResultStore
from repro.service import JobQueue
from repro.service.client import ServiceClient

SRC = str(Path(repro.__file__).resolve().parents[1])


def _suite():
    """12 cells: multiple waves at both jobs=1 (wave 4) and jobs=4 (wave 8)."""
    return {
        "name": "signals",
        "seed": 11,
        "topologies": [
            {"name": "g", "family": "grid", "rows": 3, "cols": 3},
            {"name": "w", "family": "waxman", "num_vertices": 8},
        ],
        "regimes": [
            {"name": "lo", "capacity": 4.0, "num_requests": 8},
            {"name": "mid", "capacity": 6.0, "num_requests": 8},
            {"name": "hi", "capacity": 9.0, "num_requests": 8},
        ],
        "modes": [
            {"name": "off", "kind": "offline", "bound": "none"},
            {"name": "on", "kind": "online"},
        ],
    }


def _reference_hash(tmp_path, jobs):
    store = ResultStore(tmp_path / f"ref-{jobs}")
    result = run_campaign(_suite(), store=store, jobs=jobs)
    keys = [cell.key for cell in enumerate_cells(result.suite)]
    return store.content_hash(keys)


def _start_serve(root, *extra_args):
    """Start ``repro.service serve`` and return ``(process, client)``.

    The server runs in its own session (= its own process group), so a
    kill -9 can take down the supervisor *and* its forked pmap workers —
    exactly what a machine death or a cgroup kill does.  Killing only the
    supervisor would leave orphaned workers holding the inherited
    listening socket.
    """
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.service",
            "serve",
            "--root",
            str(root),
            "--port",
            "0",
            *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
        start_new_session=True,
    )
    deadline = time.monotonic() + 30.0
    lines = []
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise AssertionError(
                f"serve exited {proc.returncode} before binding:\n"
                + "".join(lines)
                + (proc.stdout.read() or "")
            )
        line = proc.stdout.readline()
        lines.append(line)
        if line.startswith("serving on "):
            url = line.split()[2]
            return proc, ServiceClient(url)
    _kill_group(proc)
    raise AssertionError("serve never printed its URL:\n" + "".join(lines))


def _kill_group(proc):
    """SIGKILL the server's whole process group (supervisor + pool workers)."""
    import os

    try:
        os.killpg(proc.pid, signal.SIGKILL)
    except ProcessLookupError:
        pass


def _wait_for_state(client, job_id, state, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status = client.status(job_id)
        if status["state"] == state:
            return status
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} never reached {state}")


class TestSigterm:
    def test_graceful_drain_finishes_inflight_and_exits_zero(self, tmp_path):
        root = tmp_path / "svc"
        proc, client = _start_serve(
            root, "--jobs", "1", "--wave-delay", "0.3", "--lease-seconds", "60"
        )
        try:
            job = client.submit({"suite": _suite(), "jobs": 1})["job"]
            _wait_for_state(client, job, "RUNNING")
            proc.send_signal(signal.SIGTERM)
            output, _ = proc.communicate(timeout=90)
        finally:
            if proc.poll() is None:
                _kill_group(proc)
        assert proc.returncode == 0
        assert "drained; exiting 0" in output

        # The in-flight job was finished and acknowledged before exit, and
        # its committed result is readable from the durable root alone.
        queue = JobQueue(root)
        assert queue.get(job).state == "DONE"
        result = root / "results" / job / "result.json"
        assert result.exists()
        assert _reference_hash(tmp_path, 1) in result.read_text()


class TestSigkill:
    @pytest.mark.parametrize("jobs", [1, 4])
    def test_kill9_restart_replays_and_resumes_bit_identically(self, tmp_path, jobs):
        root = tmp_path / "svc"
        proc, client = _start_serve(
            root,
            "--jobs",
            str(jobs),
            "--wave-delay",
            "0.8",
            "--lease-seconds",
            "2",
        )
        job = None
        try:
            job = client.submit({"suite": _suite(), "jobs": jobs})["job"]
            _wait_for_state(client, job, "RUNNING")
            time.sleep(0.5)  # well inside the paced campaign
            _kill_group(proc)  # SIGKILL: no handler, no flush, no goodbye
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                _kill_group(proc)
        assert proc.returncode == -signal.SIGKILL

        # The WAL replays to the exact acknowledged state — twice, from two
        # independent reopenings — with the killed worker's lease still out.
        snapshot = JobQueue(root).state_snapshot()
        assert JobQueue(root).state_snapshot() == snapshot
        assert snapshot[job]["state"] == "RUNNING"

        # A restarted service reclaims the job once the lease expires and
        # resumes the campaign from the per-job store.
        proc, client = _start_serve(
            root, "--jobs", str(jobs), "--lease-seconds", "2"
        )
        try:
            final = client.wait(job, timeout=120.0, poll=0.1)
            assert final["state"] == "DONE"
            assert final["attempts"] == 1  # the lease expiry was counted
            result = client.result(job)
        finally:
            proc.send_signal(signal.SIGTERM)
            try:
                proc.wait(timeout=60)
            finally:
                if proc.poll() is None:
                    _kill_group(proc)
        assert proc.returncode == 0
        assert result["content_hash"] == _reference_hash(tmp_path, jobs)
        assert result["failed_cells"] == []


class TestFleetSteal:
    def test_surviving_supervisor_steals_from_a_killed_peer(self, tmp_path):
        """Two real supervisor processes share one root.  The one holding
        the job is SIGKILLed mid-campaign; the survivor reclaims the lease
        (with a fresh fencing token), resumes from the committed attempt
        records, and lands the bit-identical content hash."""
        root = tmp_path / "svc"
        proc_a, client_a = _start_serve(
            root, "--node", "A", "--jobs", "1",
            "--wave-delay", "0.8", "--lease-seconds", "2",
        )
        proc_b = client_b = None
        result = None
        try:
            proc_b, client_b = _start_serve(
                root, "--node", "B", "--jobs", "1",
                "--wave-delay", "0.8", "--lease-seconds", "2",
            )
            job = client_a.submit({"suite": _suite(), "jobs": 1})["job"]
            status = _wait_for_state(client_a, job, "RUNNING")
            holder = status["worker"]
            assert holder.split("/")[0] in ("A", "B")
            first_token = status["fence"]
            time.sleep(0.5)  # well inside the paced first attempt

            victim, survivor_client = (
                (proc_a, client_b) if holder.startswith("A/") else (proc_b, client_a)
            )
            _kill_group(victim)
            victim.wait(timeout=30)

            final = survivor_client.wait(job, timeout=120.0, poll=0.1)
            assert final["state"] == "DONE"
            assert final["attempts"] == 1  # the stolen lease was counted
            result = survivor_client.result(job)
        finally:
            for proc in (proc_a, proc_b):
                if proc is not None and proc.poll() is None:
                    _kill_group(proc)

        assert result["content_hash"] == _reference_hash(tmp_path, 1)
        assert result["failed_cells"] == []
        # The WAL tells the whole story: the survivor's DONE carries a
        # fencing token newer than the killed holder's lease.
        queue = JobQueue(root)
        events = queue.wal.events_for(job)
        done = [e for e in events if e["event"] == "DONE"]
        assert len(done) == 1
        assert done[0]["token"] > first_token
        final_worker = queue.get(job).fence
        assert final_worker == done[0]["token"]

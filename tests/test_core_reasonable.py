"""Tests for the reasonable iterative path/bundle minimizing framework."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.auctions import partition_instance
from repro.core.reasonable import (
    BoundedUFPPriority,
    BundleExponentialPriority,
    HopBiasedPriority,
    ProductPriority,
    ReasonableIterativeBundleMinimizer,
    ReasonableIterativePathMinimizer,
    UnitCapacityPriority,
    partition_tie_break,
    ring7_tie_break,
    staircase_tie_break,
)
from repro.flows import random_instance, ring7_instance, staircase_instance
from repro.graphs.lower_bounds import staircase_reasonable_upper_bound


class TestPriorityFunctions:
    def test_bounded_ufp_priority_matches_formula(self):
        priority = BoundedUFPPriority(epsilon=0.5, capacity_bound=2.0)
        flows = np.array([1.0, 0.0])
        caps = np.array([2.0, 4.0])
        # h = d/v * [ (1/2) e^{0.5*2*1/2} + (1/4) e^0 ] with d=1, v=2.
        expected = 0.5 * (0.5 * math.exp(0.5) + 0.25)
        assert priority(1.0, 2.0, [0, 1], flows, caps) == pytest.approx(expected)

    def test_priority_is_the_algorithms_dual_weight_sum(self):
        """h(p) equals (d/v) * sum of y_e with y_e = (1/c)exp(eps B f/c)."""
        priority = BoundedUFPPriority(epsilon=0.3, capacity_bound=3.0)
        flows = np.array([2.0, 1.0, 0.0])
        caps = np.array([3.0, 5.0, 4.0])
        manual = sum(
            math.exp(0.3 * 3.0 * flows[e] / caps[e]) / caps[e] for e in range(3)
        )
        assert priority(0.7, 1.4, [0, 1, 2], flows, caps) == pytest.approx(0.5 * manual)

    def test_hop_biased_scales_with_length(self):
        base = BoundedUFPPriority(0.5, 2.0)
        biased = HopBiasedPriority(base)
        flows = np.zeros(3)
        caps = np.full(3, 2.0)
        short = biased(1.0, 1.0, [0], flows, caps)
        long = biased(1.0, 1.0, [0, 1, 2], flows, caps)
        assert long > short

    def test_product_priority_zero_when_any_edge_unused(self):
        priority = ProductPriority()
        flows = np.array([0.0, 3.0])
        caps = np.array([4.0, 4.0])
        assert priority(1.0, 1.0, [0, 1], flows, caps) == 0.0
        assert priority(1.0, 1.0, [1], flows, caps) == pytest.approx(0.75)

    def test_unit_capacity_priority_reduced_form(self):
        priority = UnitCapacityPriority(epsilon=0.2, capacity_bound=5.0)
        flows = np.array([1.0, 2.0])
        caps = np.full(2, 5.0)
        expected = (math.exp(0.2) + math.exp(0.4)) / 5.0
        assert priority(1.0, 1.0, [0, 1], flows, caps) == pytest.approx(expected)

    def test_reasonability_monotone_in_load_and_length(self):
        """Definition 3.9 on uniform-capacity unit-type inputs: a path that is
        shorter and coordinate-wise less loaded never has larger priority.

        ``ProductPriority`` (the paper's ``h2``) is checked for the load
        direction only: multiplying in additional factors below one can lower
        a product, so the length direction does not hold for it in general —
        which is consistent with the paper's remark that "it is not clear why
        anyone would like to use it".
        """
        caps = np.full(4, 6.0)
        summing_priorities = (
            BoundedUFPPriority(0.4, 6.0),
            HopBiasedPriority(BoundedUFPPriority(0.4, 6.0)),
            UnitCapacityPriority(0.4, 6.0),
        )
        for priority in summing_priorities + (ProductPriority(),):
            light = priority(1.0, 1.0, [0, 1], np.array([1.0, 1.0, 5.0, 5.0]), caps)
            heavy = priority(1.0, 1.0, [2, 3], np.array([1.0, 1.0, 5.0, 5.0]), caps)
            assert light <= heavy + 1e-12
        for priority in summing_priorities:
            longer = priority(1.0, 1.0, [0, 1, 2], np.array([1.0, 1.0, 1.0, 1.0]), caps)
            shorter = priority(1.0, 1.0, [0, 1], np.array([1.0, 1.0, 1.0, 1.0]), caps)
            assert shorter <= longer + 1e-12

    def test_bundle_priority_matches_algorithm_weight(self):
        priority = BundleExponentialPriority(epsilon=0.5, capacity_bound=2.0)
        flows = np.array([1.0, 0.0])
        mult = np.array([2.0, 4.0])
        expected = (0.5 * math.exp(0.5) + 0.25) / 3.0
        assert priority(3.0, [0, 1], flows, mult) == pytest.approx(expected)


class TestPathMinimizer:
    def test_routes_all_when_uncontended(self, diamond_instance):
        algorithm = ReasonableIterativePathMinimizer(BoundedUFPPriority(0.5, 1.0))
        allocation = algorithm.run(diamond_instance)
        allocation.validate()
        assert allocation.value == pytest.approx(diamond_instance.total_value)

    def test_stops_when_no_candidate_fits(self, contended_instance):
        algorithm = ReasonableIterativePathMinimizer(BoundedUFPPriority(0.5, 2.0))
        allocation = algorithm.run(contended_instance)
        allocation.validate()
        # Exactly two of the three unit requests fit on the capacity-2 edge.
        assert allocation.num_selected == 2

    def test_respects_max_path_hops(self, diamond_instance):
        algorithm = ReasonableIterativePathMinimizer(
            BoundedUFPPriority(0.5, 1.0), max_path_hops=1
        )
        allocation = algorithm.run(diamond_instance)
        # Only the direct 0->3 edge (capacity 1) is available as a path.
        assert all(len(item.edge_ids) == 1 for item in allocation.routed)

    def test_ring7_adversarial_schedule_hits_3B(self):
        for B in (4, 8):
            instance = ring7_instance(B)
            algorithm = ReasonableIterativePathMinimizer(
                UnitCapacityPriority(0.5, float(B)), tie_break=ring7_tie_break
            )
            allocation = algorithm.run(instance)
            allocation.validate()
            assert allocation.value == pytest.approx(3.0 * B)

    def test_staircase_adversarial_schedule_within_paper_bound(self):
        ell, B = 12, 5
        instance = staircase_instance(ell, B)
        algorithm = ReasonableIterativePathMinimizer(
            BoundedUFPPriority(0.5, float(B)), tie_break=staircase_tie_break
        )
        allocation = algorithm.run(instance)
        allocation.validate()
        assert allocation.value <= staircase_reasonable_upper_bound(ell, B) + 1e-9
        assert allocation.value < instance.metadata["known_optimum"]

    def test_staircase_first_phase_follows_the_proof_schedule(self):
        # The first B selections are the B requests of s_1, routed through the
        # highest-index intermediates (Theorem 3.11's schedule).
        ell, B = 6, 3
        instance = staircase_instance(ell, B)
        algorithm = ReasonableIterativePathMinimizer(
            UnitCapacityPriority(0.5, float(B)), tie_break=staircase_tie_break
        )
        allocation = algorithm.run(instance)
        layout = instance.metadata["layout"]
        first_phase = allocation.routed[:B]
        assert all(item.request.source == layout["source_0"] for item in first_phase)
        used_intermediates = [item.vertices[1] for item in first_phase]
        expected = [layout[f"intermediate_{j}"] for j in range(ell - 1, ell - 1 - B, -1)]
        assert used_intermediates == expected

    def test_default_tie_break_prefers_low_index(self, contended_instance):
        algorithm = ReasonableIterativePathMinimizer(ProductPriority())
        allocation = algorithm.run(contended_instance)
        # All three candidates have priority 0 initially (product over empty
        # load); the default tie-break picks request 0 first.
        assert allocation.routed[0].request_index == 0

    def test_random_instance_feasible_and_bounded(self):
        instance = random_instance(
            num_vertices=7, edge_probability=0.4, capacity=4.0,
            num_requests=12, demand_range=(0.5, 1.0), seed=3,
        )
        algorithm = ReasonableIterativePathMinimizer(
            BoundedUFPPriority(0.5, instance.capacity_bound()), max_path_hops=4,
            max_paths_per_pair=50,
        )
        allocation = algorithm.run(instance)
        allocation.validate()
        assert allocation.value <= instance.total_value + 1e-9


class TestBundleMinimizer:
    def test_uncontended(self, tiny_auction):
        algorithm = ReasonableIterativeBundleMinimizer(BundleExponentialPriority(0.5, 2.0))
        allocation = algorithm.run(tiny_auction)
        allocation.validate()
        assert allocation.value == pytest.approx(tiny_auction.total_value)

    def test_partition_adversarial_schedule_matches_theorem(self):
        for p, B in ((3, 4), (5, 6)):
            instance = partition_instance(p, B)
            algorithm = ReasonableIterativeBundleMinimizer(
                BundleExponentialPriority(0.5, float(B)), tie_break=partition_tie_break
            )
            allocation = algorithm.run(instance)
            allocation.validate()
            assert allocation.value == pytest.approx((3 * p + 1) / 4 * B)

    def test_partition_schedule_selects_all_row_bids_first(self):
        p, B = 3, 4
        instance = partition_instance(p, B)
        algorithm = ReasonableIterativeBundleMinimizer(
            BundleExponentialPriority(0.5, float(B)), tie_break=partition_tie_break
        )
        allocation = algorithm.run(instance)
        row_count = p * B // 2
        first = [instance.bids[i].name for i in allocation.winners[:row_count]]
        assert all(name.startswith("row") for name in first)

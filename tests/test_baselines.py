"""Tests for the baseline algorithms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.auctions import Bid, MUCAInstance, random_auction
from repro.baselines import (
    briest_style_muca,
    briest_style_ufp,
    exact_muca,
    exact_ufp,
    greedy_muca_by_density,
    greedy_muca_by_value,
    greedy_ufp_by_density,
    greedy_ufp_by_value,
    randomized_rounding_muca,
    randomized_rounding_ufp,
)
from repro.baselines.briest import BKV_STOP_FRACTION
from repro.core import bounded_ufp
from repro.exceptions import InvalidInstanceError
from repro.flows import Request, UFPInstance, random_instance, staircase_instance
from repro.graphs import CapacitatedGraph
from repro.lp import solve_fractional_muca, solve_fractional_ufp


class TestGreedyUFP:
    def test_by_value_prefers_high_value(self, contended_instance):
        allocation = greedy_ufp_by_value(contended_instance)
        allocation.validate()
        assert allocation.is_selected(0) and allocation.is_selected(1)
        assert not allocation.is_selected(2)
        assert allocation.value == pytest.approx(8.0)

    def test_by_density_ordering(self):
        graph = CapacitatedGraph(2, [(0, 1, 1.0)], directed=True)
        instance = UFPInstance(
            graph,
            [Request(0, 1, 1.0, 3.0), Request(0, 1, 0.25, 1.0)],  # densities 3 and 4
        )
        by_value = greedy_ufp_by_value(instance)
        by_density = greedy_ufp_by_density(instance)
        assert by_value.is_selected(0) and not by_value.is_selected(1)
        assert by_density.is_selected(1)

    def test_feasibility_on_random_instances(self):
        for seed in range(3):
            instance = random_instance(
                num_vertices=8, edge_probability=0.35, capacity=3.0,
                num_requests=25, demand_range=(0.5, 1.0), seed=seed,
            )
            greedy_ufp_by_value(instance).validate()
            greedy_ufp_by_density(instance).validate()

    def test_skips_unroutable_requests(self):
        graph = CapacitatedGraph(3, [(0, 1, 5.0)], directed=True)
        instance = UFPInstance(graph, [Request(0, 2, 1.0, 9.0), Request(0, 1, 1.0, 1.0)])
        allocation = greedy_ufp_by_value(instance)
        assert allocation.value == pytest.approx(1.0)

    def test_graph_without_edges_rejected(self):
        with pytest.raises(InvalidInstanceError):
            greedy_ufp_by_value(UFPInstance(CapacitatedGraph(2, []), []))

    def test_greedy_is_optimal_on_staircase(self):
        # Hop-count shortest paths route s_i through v_i-style direct choices,
        # so greedy reaches the optimum the adversarial schedule misses.
        instance = staircase_instance(8, 4)
        allocation = greedy_ufp_by_value(instance)
        allocation.validate()
        assert allocation.value == pytest.approx(instance.metadata["known_optimum"])


class TestGreedyMUCA:
    def test_by_value(self, tiny_auction):
        allocation = greedy_muca_by_value(tiny_auction)
        allocation.validate()
        assert allocation.value == pytest.approx(tiny_auction.total_value)

    def test_by_density_prefers_small_bundles(self):
        instance = MUCAInstance(
            np.array([1.0, 1.0]),
            [Bid((0, 1), 3.0), Bid((0,), 2.0), Bid((1,), 2.0)],
        )
        by_value = greedy_muca_by_value(instance)
        by_density = greedy_muca_by_density(instance)
        assert by_value.value == pytest.approx(3.0)
        assert by_density.value == pytest.approx(4.0)

    def test_feasible_on_random_auctions(self):
        auction = random_auction(num_items=10, num_bids=60, multiplicity=3.0, seed=1)
        greedy_muca_by_value(auction).validate()
        greedy_muca_by_density(auction).validate()


class TestBriestStyle:
    def test_stop_fraction_constant(self):
        # beta = -ln(1 - 1/e): the value for which 1/(1 - e^{-beta}) = e.
        assert 1.0 / (1.0 - np.exp(-BKV_STOP_FRACTION)) == pytest.approx(np.e)

    def test_feasibility_and_upper_bound(self):
        instance = random_instance(
            num_vertices=6, edge_probability=0.5, capacity=40.0,
            num_requests=120, demand_range=(0.6, 1.0), seed=0,
        )
        allocation = briest_style_ufp(instance, 0.3)
        allocation.validate()
        assert allocation.value <= solve_fractional_ufp(instance).objective + 1e-6

    def test_beta_one_recovers_bounded_ufp(self, contended_instance):
        ours = bounded_ufp(contended_instance, 1.0)
        theirs = briest_style_ufp(contended_instance, 1.0, stop_fraction=1.0)
        assert theirs.value == pytest.approx(ours.value)
        assert [r.request_index for r in theirs.routed] == [
            r.request_index for r in ours.routed
        ]

    def test_never_beats_bounded_ufp_with_smaller_budget(self):
        instance = random_instance(
            num_vertices=6, edge_probability=0.5, capacity=40.0,
            num_requests=200, demand_range=(0.7, 1.0), seed=3,
        )
        conservative = briest_style_ufp(instance, 0.3)
        ours = bounded_ufp(instance, 0.3)
        assert conservative.value <= ours.value + 1e-9

    def test_monotone_in_value_spot_check(self, contended_instance):
        base = briest_style_ufp(contended_instance, 1.0)
        if base.is_selected(0):
            boosted = contended_instance.replace_request(
                0, contended_instance.requests[0].with_value(50.0)
            )
            assert briest_style_ufp(boosted, 1.0).is_selected(0)

    def test_invalid_parameters(self, contended_instance):
        with pytest.raises(ValueError):
            briest_style_ufp(contended_instance, 0.0)
        with pytest.raises(ValueError):
            briest_style_ufp(contended_instance, 0.5, stop_fraction=0.0)

    def test_muca_variant_feasible(self):
        auction = random_auction(num_items=8, num_bids=80, multiplicity=40.0, seed=2)
        allocation = briest_style_muca(auction, 0.3)
        allocation.validate()
        assert allocation.value <= solve_fractional_muca(auction).objective + 1e-6


class TestRandomizedRounding:
    def test_feasible_and_bounded_by_lp(self):
        instance = random_instance(
            num_vertices=8, edge_probability=0.35, capacity=5.0,
            num_requests=20, demand_range=(0.5, 1.0), seed=1,
        )
        allocation = randomized_rounding_ufp(instance, 0.2, seed=7)
        allocation.validate()
        assert allocation.value <= solve_fractional_ufp(instance).objective + 1e-6

    def test_deterministic_given_seed(self, contended_instance):
        a = randomized_rounding_ufp(contended_instance, 0.2, seed=5)
        b = randomized_rounding_ufp(contended_instance, 0.2, seed=5)
        assert a.selected_indices() == b.selected_indices()

    def test_near_optimal_on_large_capacity_instance(self):
        instance = random_instance(
            num_vertices=8, edge_probability=0.4, capacity=50.0,
            num_requests=40, seed=2,
        )
        allocation = randomized_rounding_ufp(instance, 0.1, seed=3)
        lp = solve_fractional_ufp(instance).objective
        # With scaling (1 - eps) = 0.9 and no contention the expected value is
        # ~0.9 * OPT; allow generous slack for the sampling noise.
        assert allocation.value >= 0.6 * lp

    def test_invalid_epsilon(self, contended_instance):
        with pytest.raises(ValueError):
            randomized_rounding_ufp(contended_instance, 0.0)
        with pytest.raises(ValueError):
            randomized_rounding_ufp(contended_instance, 1.0)

    def test_muca_rounding_feasible(self):
        auction = random_auction(num_items=10, num_bids=60, multiplicity=4.0, seed=4)
        allocation = randomized_rounding_muca(auction, 0.2, seed=8)
        allocation.validate()
        assert allocation.value <= solve_fractional_muca(auction).objective + 1e-6


class TestExactSolvers:
    def test_exact_matches_brute_force_on_single_edge(self, contended_instance):
        allocation = exact_ufp(contended_instance)
        allocation.validate()
        assert allocation.value == pytest.approx(8.0)

    def test_exact_beats_or_matches_every_heuristic(self):
        for seed in range(3):
            instance = random_instance(
                num_vertices=6, edge_probability=0.45, capacity=2.0,
                num_requests=9, demand_range=(0.5, 1.0), seed=seed,
            )
            optimum = exact_ufp(instance, max_path_hops=5)
            optimum.validate()
            lp = solve_fractional_ufp(instance).objective
            assert optimum.value <= lp + 1e-6
            for heuristic in (greedy_ufp_by_value, greedy_ufp_by_density):
                assert heuristic(instance).value <= optimum.value + 1e-9
            assert bounded_ufp(instance, 1.0).value <= optimum.value + 1e-9

    def test_exact_rejects_oversized_instances(self):
        instance = random_instance(num_vertices=8, num_requests=40, seed=0)
        with pytest.raises(InvalidInstanceError):
            exact_ufp(instance, max_requests=10)

    def test_exact_muca_matches_known_optimum(self, tiny_auction):
        allocation = exact_muca(tiny_auction)
        allocation.validate()
        assert allocation.value == pytest.approx(tiny_auction.total_value)

    def test_exact_muca_contention(self):
        instance = MUCAInstance(
            np.array([1.0]),
            [Bid((0,), 5.0), Bid((0,), 3.0), Bid((0,), 2.0)],
        )
        allocation = exact_muca(instance)
        assert allocation.value == pytest.approx(5.0)

    def test_exact_muca_beats_greedy(self):
        # Greedy by value picks the big bundle (value 3) and blocks both
        # singletons (2 + 2 = 4), which the exact solver prefers.
        instance = MUCAInstance(
            np.array([1.0, 1.0]),
            [Bid((0, 1), 3.0), Bid((0,), 2.0), Bid((1,), 2.0)],
        )
        assert exact_muca(instance).value == pytest.approx(4.0)
        assert greedy_muca_by_value(instance).value == pytest.approx(3.0)

    def test_exact_muca_size_limit(self):
        auction = random_auction(num_items=5, num_bids=40, multiplicity=2.0, seed=1)
        with pytest.raises(InvalidInstanceError):
            exact_muca(auction, max_bids=10)

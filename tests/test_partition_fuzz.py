"""Differential fuzzing: the partitioned solver vs the global solver.

The bit-identity contract of :mod:`repro.partition` has two layers, both
pinned here on seed corpora:

* **Unconditional**: on any intra-region-only workload, the partitioned
  fast path reproduces — exactly, float for float — the global
  ``bounded_ufp`` run on the substrate with the cut edges disabled.
* **Conditional**: whenever the *plain* global run routes nothing across
  the cut (always true for the trivial 1-region partition, and for most
  intra-only workloads on a multi-region composite's natural cut), the
  partitioned run equals the plain global run.  The premise is checked in
  each test rather than assumed: internal congestion can make a backbone
  detour the cheaper path for an intra request, and one pinned seed in the
  corpus does exactly that.

The 1-region corpus replays the shared pinned-seed instances of
``test_differential_fuzz`` on both shortest-path backends and at
``jobs=1`` vs ``jobs=4``.  Cross-region workloads get no exactness
guarantee; for them the suite pins determinism and physical feasibility of
the hierarchical mode instead.
"""

from __future__ import annotations

import numpy as np
import pytest

from test_differential_fuzz import (  # noqa: E402  (corpus shared with the fuzz suite)
    UFP_SEEDS,
    _assert_same_allocation,
    _ufp_instance,
)

from repro.core import bounded_ufp
from repro.flows import Request, UFPInstance
from repro.graphs import CapacitatedGraph
from repro.graphs.generators import multi_region_leaves, multi_region_topology
from repro.graphs.partition import multi_region_partition
from repro.graphs.shortest_path import use_backend
from repro.partition import partitioned_bounded_ufp
from repro.utils.prng import ensure_rng

pytestmark = pytest.mark.fuzz

#: Seeds for the multi-region corpora (derived from the shared corpus so
#: the whole sweep remains pinned to one base seed).
REGION_SEEDS = UFP_SEEDS[:12]
#: Subset replayed under the scipy backend and under process fan-out —
#: enough to catch a divergence, cheap enough for every CI pass.
SMALL = UFP_SEEDS[:6]

_R, _C, _L = 4, 3, 2  # regions x cores x leaves of the composite corpus


def _intra_instance(seed: int, num_requests: int = 32) -> UFPInstance:
    """A multi-region composite whose requests never leave their region."""
    rng = ensure_rng(seed)
    graph = multi_region_topology(
        _R, _C, _L, 40.0, 20.0, 10.0, seed=int(rng.integers(2**31))
    )
    block = _C * (1 + _L)
    requests = []
    for _ in range(num_requests):
        region = int(rng.integers(_R))
        leaves = np.arange(region * block + _C, (region + 1) * block)
        u, v = rng.choice(leaves, size=2, replace=False)
        requests.append(
            Request(
                int(u),
                int(v),
                demand=float(rng.uniform(0.2, 1.0)),
                value=float(rng.uniform(0.5, 2.0)),
            )
        )
    return UFPInstance(graph, requests)


def _cross_instance(seed: int, num_requests: int = 24) -> UFPInstance:
    """A multi-region composite with unconstrained leaf-to-leaf requests."""
    rng = ensure_rng(seed)
    graph = multi_region_topology(
        _R, _C, _L, 40.0, 20.0, 10.0, seed=int(rng.integers(2**31))
    )
    leaves = multi_region_leaves(_R, _C, _L)
    requests = [
        Request(
            int(u),
            int(v),
            demand=float(rng.uniform(0.2, 1.0)),
            value=float(rng.uniform(0.5, 2.0)),
        )
        for u, v in (
            rng.choice(leaves, size=2, replace=False) for _ in range(num_requests)
        )
    ]
    return UFPInstance(graph, requests)


def _natural_partition(graph):
    return multi_region_partition(graph, _R, _C, _L)


def _cut_disabled(instance: UFPInstance, partition) -> UFPInstance:
    """The same workload on the substrate with the cut edges disabled."""
    graph = instance.graph
    disabled = set(graph.disabled_edges) | set(partition.cut_edge_ids.tolist())
    return UFPInstance(
        CapacitatedGraph(
            graph.num_vertices,
            graph.edge_list(),
            directed=graph.directed,
            disabled_edges=disabled,
        ),
        list(instance.requests),
    )


def _uses_cut(allocation, partition) -> bool:
    cut = set(partition.cut_edge_ids.tolist())
    return any(
        eid in cut for routed in allocation.routed for eid in routed.edge_ids
    )


def _assert_same_budget(actual, expected) -> None:
    assert actual.stats.extra["final_dual_budget"] == (
        expected.stats.extra["final_dual_budget"]
    )
    assert actual.stats.stopped_by_budget == expected.stats.stopped_by_budget


# ---------------------------------------------------------------------- #
# 1-region partition over the shared corpus
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", UFP_SEEDS)
def test_single_region_matches_global(seed):
    instance = _ufp_instance(seed)
    epsilon = [0.3, 0.5, 1.0][seed % 3]
    expected = bounded_ufp(instance, epsilon)
    actual = partitioned_bounded_ufp(instance, epsilon, partition=1)
    _assert_same_allocation(actual, expected)
    _assert_same_budget(actual, expected)


@pytest.mark.parametrize("seed", SMALL)
def test_single_region_matches_global_scipy_backend(seed):
    pytest.importorskip("scipy", reason="the scipy backend needs scipy")
    epsilon = [0.3, 0.5, 1.0][seed % 3]
    # Instances are rebuilt per backend so one run's tree memos cannot mask
    # divergence in the other (same discipline as test_backend_parity).
    with use_backend("scipy"):
        expected = bounded_ufp(_ufp_instance(seed), epsilon)
        actual = partitioned_bounded_ufp(
            _ufp_instance(seed), epsilon, partition=1
        )
    _assert_same_allocation(actual, expected)
    _assert_same_budget(actual, expected)


@pytest.mark.parametrize("seed", SMALL)
def test_single_region_jobs_parity(seed):
    instance = _ufp_instance(seed)
    epsilon = [0.3, 0.5, 1.0][seed % 3]
    serial = partitioned_bounded_ufp(instance, epsilon, partition=1, jobs=1)
    fanned = partitioned_bounded_ufp(instance, epsilon, partition=1, jobs=4)
    _assert_same_allocation(fanned, serial)
    _assert_same_budget(fanned, serial)


# ---------------------------------------------------------------------- #
# Natural multi-region cut, intra-only workloads
# ---------------------------------------------------------------------- #
#: The one corpus seed whose plain global run shortcuts an intra request
#: through the backbone (congestion made the cut cheaper) — it exercises
#: the unconditional cut-disabled differential but not plain-global
#: identity.  Pinned so a drift in either direction is loud.
SHORTCUT_SEEDS = {518363606}


@pytest.mark.parametrize("seed", REGION_SEEDS)
def test_multi_region_intra_only_matches_cut_disabled_global(seed):
    instance = _intra_instance(seed)
    epsilon = [0.3, 0.5, 1.0][seed % 3]
    partition = _natural_partition(instance.graph)
    expected = bounded_ufp(_cut_disabled(instance, partition), epsilon)
    actual = partitioned_bounded_ufp(instance, epsilon, partition=partition)
    _assert_same_allocation(actual, expected)
    _assert_same_budget(actual, expected)
    assert actual.stats.extra["partition_cross_requests"] == 0.0


@pytest.mark.parametrize("seed", REGION_SEEDS)
def test_multi_region_intra_only_matches_plain_global(seed):
    instance = _intra_instance(seed)
    epsilon = [0.3, 0.5, 1.0][seed % 3]
    partition = _natural_partition(instance.graph)
    expected = bounded_ufp(instance, epsilon)
    # Bit-identity with the *plain* global run needs its routes to stay
    # internal; assert the premise matches the pinned expectation so both
    # a new shortcut seed and a vanished one fail loudly.
    assert _uses_cut(expected, partition) == (seed in SHORTCUT_SEEDS)
    if seed in SHORTCUT_SEEDS:
        return
    actual = partitioned_bounded_ufp(instance, epsilon, partition=partition)
    _assert_same_allocation(actual, expected)
    _assert_same_budget(actual, expected)


@pytest.mark.parametrize("seed", SMALL)
def test_multi_region_intra_only_scipy_backend(seed):
    pytest.importorskip("scipy", reason="the scipy backend needs scipy")
    epsilon = [0.3, 0.5, 1.0][seed % 3]
    with use_backend("scipy"):
        instance = _intra_instance(seed)
        partition = _natural_partition(instance.graph)
        expected = bounded_ufp(_cut_disabled(instance, partition), epsilon)
        instance = _intra_instance(seed)
        actual = partitioned_bounded_ufp(
            instance, epsilon, partition=_natural_partition(instance.graph)
        )
    _assert_same_allocation(actual, expected)
    _assert_same_budget(actual, expected)


@pytest.mark.parametrize("seed", SMALL)
def test_multi_region_jobs_parity(seed):
    instance = _intra_instance(seed)
    epsilon = [0.3, 0.5, 1.0][seed % 3]
    partition = _natural_partition(instance.graph)
    serial = partitioned_bounded_ufp(
        instance, epsilon, partition=partition, jobs=1
    )
    fanned = partitioned_bounded_ufp(
        instance, epsilon, partition=partition, jobs=4
    )
    _assert_same_allocation(fanned, serial)
    _assert_same_budget(fanned, serial)


# ---------------------------------------------------------------------- #
# Cross-region workloads: determinism + feasibility (no exactness claim)
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", REGION_SEEDS)
def test_hierarchical_mode_deterministic_and_feasible(seed):
    instance = _cross_instance(seed)
    epsilon = [0.3, 0.5, 1.0][seed % 3]
    partition = _natural_partition(instance.graph)
    first = partitioned_bounded_ufp(instance, epsilon, partition=partition)
    second = partitioned_bounded_ufp(instance, epsilon, partition=partition)
    assert first.is_feasible()
    _assert_same_allocation(first, second)
    assert first.stats.extra["partition_hierarchical"] == 1.0

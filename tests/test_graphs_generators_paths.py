"""Tests for graph generators, path utilities and networkx interop."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InvalidInstanceError, NoPathError
from repro.graphs import (
    CapacitatedGraph,
    barabasi_albert_graph,
    fat_tree_host_range,
    fat_tree_topology,
    from_networkx,
    grid_graph,
    is_simple_path,
    isp_topology,
    multi_region_leaves,
    multi_region_topology,
    path_edge_ids,
    path_length,
    random_digraph,
    random_graph,
    ring_graph,
    shortest_path,
    to_networkx,
    validate_path,
    waxman_graph,
)


class TestRandomGenerators:
    def test_random_digraph_connected_by_default(self):
        graph = random_digraph(15, 0.1, 10.0, seed=0)
        nxg = to_networkx(graph)
        assert nx.is_strongly_connected(nxg)

    def test_random_graph_connected_by_default(self):
        graph = random_graph(15, 0.05, 10.0, seed=0)
        assert nx.is_connected(to_networkx(graph))

    def test_capacity_range_respected(self):
        graph = random_digraph(10, 0.3, (2.0, 7.0), seed=1)
        caps = graph.capacities
        assert np.all(caps >= 2.0) and np.all(caps <= 7.0)

    def test_constant_capacity(self):
        graph = random_graph(8, 0.3, 5.0, seed=2)
        assert np.all(graph.capacities == 5.0)

    def test_deterministic_given_seed(self):
        a = random_digraph(10, 0.3, 4.0, seed=42)
        b = random_digraph(10, 0.3, 4.0, seed=42)
        assert a == b

    def test_different_seeds_differ(self):
        a = random_digraph(10, 0.3, 4.0, seed=1)
        b = random_digraph(10, 0.3, 4.0, seed=2)
        assert a != b

    def test_invalid_probability_rejected(self):
        with pytest.raises(InvalidInstanceError):
            random_digraph(5, 1.5, 1.0)

    def test_invalid_capacity_range_rejected(self):
        with pytest.raises(InvalidInstanceError):
            random_digraph(5, 0.2, (3.0, 1.0))

    def test_too_few_vertices_rejected(self):
        with pytest.raises(InvalidInstanceError):
            random_digraph(1, 0.2, 1.0)


class TestStructuredGenerators:
    def test_grid_undirected_edge_count(self):
        graph = grid_graph(3, 4, 2.0)
        # 3*3 horizontal + 2*4 vertical = 9 + 8 = 17 edges.
        assert graph.num_edges == 17
        assert graph.num_vertices == 12
        assert not graph.directed

    def test_grid_directed_doubles_edges(self):
        undirected = grid_graph(3, 3, 2.0)
        directed = grid_graph(3, 3, 2.0, directed=True)
        assert directed.num_edges == 2 * undirected.num_edges

    def test_grid_rejects_bad_dims(self):
        with pytest.raises(InvalidInstanceError):
            grid_graph(0, 3, 1.0)

    def test_ring(self):
        graph = ring_graph(6, 3.0)
        assert graph.num_edges == 6
        assert graph.num_vertices == 6
        assert graph.min_capacity == 3.0

    def test_ring_too_small(self):
        with pytest.raises(InvalidInstanceError):
            ring_graph(2, 1.0)

    def test_isp_topology_structure(self):
        graph = isp_topology(4, 3, 100.0, 10.0)
        # Core clique: C(4,2) = 6 edges; access: 4 * 3 = 12 edges.
        assert graph.num_edges == 6 + 12
        assert graph.num_vertices == 4 + 12
        assert graph.min_capacity == 10.0
        assert graph.max_capacity == 100.0

    def test_isp_topology_directed(self):
        graph = isp_topology(3, 2, 50.0, 5.0, directed=True)
        assert graph.directed
        assert graph.num_edges == 2 * (3 + 6)


class TestNewTopologyFamilies:
    def test_fat_tree_structure(self):
        graph = fat_tree_topology(4, 8.0, 4.0, 2.0)
        # k=4: 4 cores, 8 agg, 8 edge switches, 16 hosts = 36 vertices;
        # 16 core uplinks + 16 pod-internal + 16 host links = 48 edges.
        assert graph.num_vertices == 36
        assert graph.num_edges == 48
        assert graph.min_capacity == 2.0
        assert graph.max_capacity == 8.0
        hosts = list(fat_tree_host_range(4))
        assert len(hosts) == 16
        assert hosts[0] == 20 and hosts[-1] == 35
        # Any host pair is routable through the tree.
        vertices, _, _ = shortest_path(
            graph, hosts[0], hosts[-1], np.ones(graph.num_edges)
        )
        assert vertices[0] == hosts[0] and vertices[-1] == hosts[-1]

    def test_fat_tree_rejects_odd_arity(self):
        with pytest.raises(InvalidInstanceError):
            fat_tree_topology(3, 8.0, 4.0, 2.0)

    def test_waxman_connectivity_and_bounds(self):
        graph = waxman_graph(15, 3.0, seed=2)
        assert graph.num_vertices == 15
        # ensure_connected adds a spanning cycle, so every pair routes.
        vertices, _, _ = shortest_path(graph, 0, 14, np.ones(graph.num_edges))
        assert vertices[0] == 0 and vertices[-1] == 14

    def test_waxman_parameter_validation(self):
        with pytest.raises(InvalidInstanceError):
            waxman_graph(10, 3.0, alpha=0.0)
        with pytest.raises(InvalidInstanceError):
            waxman_graph(10, 3.0, beta=-1.0)

    def test_barabasi_albert_edge_count_and_hubs(self):
        attachments = 2
        graph = barabasi_albert_graph(30, attachments, 4.0, seed=5)
        # Every vertex past the initial block adds `attachments` edges.
        assert graph.num_edges == (30 - attachments) * attachments
        degrees = np.zeros(30, dtype=int)
        for edge in graph.edges():
            degrees[edge.tail] += 1
            degrees[edge.head] += 1
        # Preferential attachment concentrates degree: the top hub sees
        # far more than the attachment minimum.
        assert degrees.max() >= 3 * attachments

    def test_barabasi_albert_validation(self):
        with pytest.raises(InvalidInstanceError):
            barabasi_albert_graph(3, 3, 1.0)
        with pytest.raises(InvalidInstanceError):
            barabasi_albert_graph(5, 0, 1.0)

    def test_multi_region_structure_and_leaves(self):
        graph = multi_region_topology(3, 3, 2, 16.0, 8.0, 4.0, seed=1)
        # Per region: C(3,2)=3 core + 6 access = 9 edges; backbone:
        # C(3,2) pairs * 1 interlink = 3.
        assert graph.num_edges == 3 * 9 + 3
        assert graph.num_vertices == 3 * 9
        leaves = multi_region_leaves(3, 3, 2)
        assert len(leaves) == 18
        # Leaves of different regions are connected via the backbone.
        vertices, _, _ = shortest_path(
            graph, leaves[0], leaves[-1], np.ones(graph.num_edges)
        )
        assert vertices[0] == leaves[0] and vertices[-1] == leaves[-1]

    def test_multi_region_validation(self):
        with pytest.raises(InvalidInstanceError):
            multi_region_topology(1, 3, 2, 16.0, 8.0, 4.0)


class TestDegenerateGraphs:
    """Edge-less outputs are rejected at construction (ISSUE-5 satellite)."""

    def test_grid_1x1_rejected(self):
        with pytest.raises(InvalidInstanceError, match="no edges"):
            grid_graph(1, 1, 5.0)

    def test_grid_1x2_is_fine(self):
        graph = grid_graph(1, 2, 5.0)
        assert graph.num_edges == 1

    def test_random_generators_reject_empty_edge_sets(self):
        with pytest.raises(InvalidInstanceError, match="no edges"):
            random_digraph(5, 0.0, (1.0, 2.0), ensure_connected=False)
        with pytest.raises(InvalidInstanceError, match="no edges"):
            random_graph(5, 0.0, (1.0, 2.0), ensure_connected=False)

    def test_waxman_rejects_empty_edge_sets(self):
        # alpha tiny + no connectivity cycle => (almost surely) no edges.
        with pytest.raises(InvalidInstanceError, match="no edges"):
            waxman_graph(4, 1.0, alpha=1e-12, beta=1e-3, ensure_connected=False, seed=0)

    def test_connected_variants_always_have_edges(self):
        assert random_digraph(5, 0.0, 1.0).num_edges == 5
        assert random_graph(5, 0.0, 1.0).num_edges == 5
        assert waxman_graph(5, 1.0, alpha=1e-12, beta=1e-3, seed=0).num_edges >= 5


class TestNetworkxInterop:
    def test_round_trip_directed(self, diamond_graph):
        nxg = to_networkx(diamond_graph)
        back, mapping = from_networkx(nxg)
        assert back.num_vertices == diamond_graph.num_vertices
        assert back.num_edges == diamond_graph.num_edges
        assert set(mapping.values()) == set(range(4))

    def test_from_networkx_requires_capacity(self):
        nxg = nx.DiGraph()
        nxg.add_edge("a", "b")
        with pytest.raises(InvalidInstanceError):
            from_networkx(nxg)

    def test_from_networkx_default_capacity(self):
        nxg = nx.Graph()
        nxg.add_edge("a", "b")
        graph, mapping = from_networkx(nxg, default_capacity=7.0)
        assert graph.min_capacity == 7.0
        assert set(mapping) == {"a", "b"}


class TestPathUtilities:
    def test_path_edge_ids_basic(self, diamond_graph):
        assert path_edge_ids(diamond_graph, [0, 1, 3]) == (0, 2)

    def test_path_edge_ids_missing_edge(self, diamond_graph):
        with pytest.raises(NoPathError):
            path_edge_ids(diamond_graph, [1, 0])

    def test_path_edge_ids_parallel_edges_pick_by_weight(self):
        graph = CapacitatedGraph(2, [(0, 1, 1.0), (0, 1, 2.0)], directed=True)
        weights = np.array([5.0, 0.5])
        assert path_edge_ids(graph, [0, 1], weights=weights) == (1,)
        # Without weights the larger-capacity edge is used.
        assert path_edge_ids(graph, [0, 1]) == (1,)

    def test_path_length(self):
        weights = np.array([0.5, 1.5, 2.0])
        assert path_length(weights, [0, 2]) == pytest.approx(2.5)
        assert path_length(weights, []) == 0.0

    def test_is_simple_path(self):
        assert is_simple_path([0, 1, 2])
        assert not is_simple_path([0, 1, 0])

    def test_validate_path_checks_terminals(self, diamond_graph):
        assert validate_path(diamond_graph, [0, 1, 3], source=0, target=3) == (0, 2)
        with pytest.raises(InvalidInstanceError):
            validate_path(diamond_graph, [0, 1, 3], source=1)
        with pytest.raises(InvalidInstanceError):
            validate_path(diamond_graph, [0, 1, 3], target=1)

    def test_validate_path_rejects_non_simple(self, parallel_paths_graph):
        with pytest.raises(InvalidInstanceError):
            validate_path(parallel_paths_graph, [0, 1, 0, 2, 3])

    def test_validate_path_rejects_unknown_vertex(self, diamond_graph):
        with pytest.raises(InvalidInstanceError):
            validate_path(diamond_graph, [0, 9])

    def test_validate_path_rejects_empty(self, diamond_graph):
        with pytest.raises(InvalidInstanceError):
            validate_path(diamond_graph, [])


@settings(max_examples=20, deadline=None)
@given(
    rows=st.integers(min_value=1, max_value=5),
    cols=st.integers(min_value=1, max_value=5),
)
def test_property_grid_edge_count(rows, cols):
    """The mesh has rows*(cols-1) + (rows-1)*cols edges; the edge-less 1x1
    grid is rejected at construction."""
    if rows * cols < 2:
        with pytest.raises(InvalidInstanceError):
            grid_graph(rows, cols, 1.0)
        return
    graph = grid_graph(rows, cols, 1.0)
    assert graph.num_edges == rows * (cols - 1) + (rows - 1) * cols
    assert graph.num_vertices == rows * cols

"""WAL snapshot + compaction tests.

The contract under test: ``compact()`` checkpoints the folded queue state
to a content-hashed snapshot and truncates the log, and **replay =
snapshot + tail** reconstructs bit-identical state at any crash point —
including the window where the snapshot is written but the log is not yet
truncated (entries folded into the snapshot must not double-apply).
"""

from __future__ import annotations

import pytest

from repro.service import JobQueue, SnapshotError, load_snapshot
from repro.service.snapshot import snapshot_path


def _suite(name="snap-tiny"):
    return {
        "name": name,
        "seed": 11,
        "topologies": [{"name": "g", "family": "grid", "rows": 3, "cols": 3}],
        "regimes": [{"name": "r", "capacity": 6.0, "num_requests": 8}],
        "modes": [{"name": "off", "kind": "offline", "bound": "none"}],
    }


class FakeClock:
    def __init__(self, start=1_000.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _busy_queue(tmp_path, **kwargs):
    clock = FakeClock()
    queue = JobQueue(
        tmp_path / "svc",
        clock=clock,
        monotonic=clock,
        lease_seconds=30.0,
        max_attempts=5,
        **kwargs,
    )
    done, _ = queue.submit({"suite": _suite("a")})
    flaky, _ = queue.submit({"suite": _suite("b")})
    running, _ = queue.submit({"suite": _suite("c")})
    queue.lease("w0")
    queue.complete(done.id, "w0")
    queue.lease("w1")
    queue.report_failure(flaky.id, "w1", "boom", delay=5.0)
    queue.lease("w2")  # c -> RUNNING, lease outstanding
    return queue, clock


class TestCompaction:
    def test_compact_truncates_the_log_and_preserves_state(self, tmp_path):
        queue, clock = _busy_queue(tmp_path)
        expected = queue.state_snapshot()
        before = (tmp_path / "svc" / "wal.jsonl").stat().st_size
        stats = queue.compact()
        assert stats["jobs"] == 3
        assert (tmp_path / "svc" / "wal.jsonl").stat().st_size == 0 < before
        assert snapshot_path(tmp_path / "svc").exists()
        # The live handle and a fresh replay both see identical state.
        assert queue.state_snapshot() == expected
        reopened = JobQueue(
            tmp_path / "svc", clock=clock, monotonic=clock, lease_seconds=30.0
        )
        assert reopened.state_snapshot() == expected

    def test_replay_is_snapshot_plus_tail(self, tmp_path):
        queue, clock = _busy_queue(tmp_path)
        queue.compact()
        # Post-compaction activity lands in the (fresh) tail.
        extra, _ = queue.submit({"suite": _suite("d")})
        queue.lease("w3")
        expected = queue.state_snapshot()
        reopened = JobQueue(
            tmp_path / "svc", clock=clock, monotonic=clock, lease_seconds=30.0
        )
        assert reopened.state_snapshot() == expected
        assert reopened.get(extra.id).state == "RUNNING"

    def test_crash_between_snapshot_and_truncate_does_not_double_apply(
        self, tmp_path
    ):
        """The crash window: snapshot durable, log still holding the very
        entries the snapshot folded.  Replay must skip them by ``seq``."""
        queue, clock = _busy_queue(tmp_path)
        expected = queue.state_snapshot()
        wal_path = tmp_path / "svc" / "wal.jsonl"
        log_bytes = wal_path.read_bytes()
        queue.compact()
        wal_path.write_bytes(log_bytes)  # resurrect the un-truncated log
        reopened = JobQueue(
            tmp_path / "svc", clock=clock, monotonic=clock, lease_seconds=30.0
        )
        assert reopened.state_snapshot() == expected
        # Counters resumed exactly: the next lease's token is fresh, and
        # attempts were not double-counted by the replayed duplicates.
        clock.advance(31.0)
        assert reopened.lease("w9") is not None

    def test_auto_compaction_kicks_in_by_entry_count(self, tmp_path):
        clock = FakeClock()
        queue = JobQueue(
            tmp_path / "svc",
            clock=clock,
            monotonic=clock,
            lease_seconds=30.0,
            compact_every=5,
        )
        for index in range(4):
            queue.submit({"suite": _suite(f"s{index}")})
        assert not snapshot_path(tmp_path / "svc").exists()
        queue.submit({"suite": _suite("s4")})  # 5th entry triggers it
        assert snapshot_path(tmp_path / "svc").exists()
        assert (tmp_path / "svc" / "wal.jsonl").stat().st_size == 0
        reopened = JobQueue(
            tmp_path / "svc", clock=clock, monotonic=clock, lease_seconds=30.0
        )
        assert len(reopened.jobs()) == 5

    def test_peer_handle_detects_compaction_under_it(self, tmp_path):
        """Two handles on one root: one compacts, the other's next
        transaction must notice the truncated log and reload from the
        snapshot instead of trusting its stale byte cursor."""
        clock = FakeClock()
        first = JobQueue(
            tmp_path / "svc", clock=clock, monotonic=clock, lease_seconds=30.0
        )
        second = JobQueue(
            tmp_path / "svc", clock=clock, monotonic=clock, lease_seconds=30.0
        )
        job, _ = first.submit({"suite": _suite("a")})
        assert second.get(job.id).state == "QUEUED"  # cursor is warm
        first.lease("w0")
        first.complete(job.id, "w0")
        first.compact()
        b, _ = first.submit({"suite": _suite("b")})
        assert second.get(job.id).state == "DONE"
        assert second.get(b.id).state == "QUEUED"
        assert second.state_snapshot() == first.state_snapshot()


class TestSnapshotIntegrity:
    def test_corrupt_snapshot_refuses_to_load(self, tmp_path):
        queue, clock = _busy_queue(tmp_path)
        queue.compact()
        path = snapshot_path(tmp_path / "svc")
        text = path.read_text().replace('"DONE"', '"GONE"', 1)
        path.write_text(text)
        with pytest.raises(SnapshotError, match="content hash"):
            load_snapshot(tmp_path / "svc")
        with pytest.raises(SnapshotError):
            JobQueue(tmp_path / "svc", clock=clock, monotonic=clock)

    def test_unparseable_snapshot_refuses_to_load(self, tmp_path):
        queue, _clock = _busy_queue(tmp_path)
        queue.compact()
        snapshot_path(tmp_path / "svc").write_text("{torn")
        with pytest.raises(SnapshotError, match="unreadable"):
            load_snapshot(tmp_path / "svc")

    def test_missing_snapshot_is_fine(self, tmp_path):
        assert load_snapshot(tmp_path) is None

"""Tests for the fault-injection subsystem (:mod:`repro.faults`).

Four layers: spec/schedule unit tests (validation, determinism, zero
intensity), the auction's degradation hooks (revocation, refund,
requeue, LIFO shrink, exact revert), the ``run_with_faults`` driver with
its jam/fee accounting, and the differential contract — a zero-intensity
schedule must be bit-identical to the fault-free path across shortest-path
backends and admission policies.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidInstanceError
from repro.faults import (
    FaultEvent,
    FaultSchedule,
    JAM_NAME_PREFIX,
    is_jam_request,
    normalize_fault_spec,
    run_with_faults,
)
from repro.faults.schedule import _scripted_only
from repro.flows import Request, random_instance
from repro.graphs import CapacitatedGraph
from repro.graphs.shortest_path import use_backend
from repro.online import Batch, OnlineAuction, bursty_arrivals


def _two_route_graph() -> CapacitatedGraph:
    # Edge 0 is the direct (and initially cheapest) 0 -> 3 route; edges
    # 1 and 2 form the 0 -> 1 -> 3 detour the auction falls back to.
    # Capacities are roomy (B = 16) so the budget stopping rule
    # e^{eps(B-1)} stays far above the initial budget of m.
    return CapacitatedGraph(
        4, [(0, 3, 16.0), (0, 1, 16.0), (1, 3, 16.0)], directed=True
    )


def _single_edge_graph(capacity: float = 16.0) -> CapacitatedGraph:
    return CapacitatedGraph(2, [(0, 1, capacity)], directed=True)


# ---------------------------------------------------------------------- #
# Spec / schedule
# ---------------------------------------------------------------------- #
class TestFaultSpec:
    def test_defaults_are_zero_intensity(self):
        spec = normalize_fault_spec(None)
        assert spec["edge_failure_rate"] == 0.0
        assert FaultSchedule({}, seed=0).zero_intensity

    def test_unknown_keys_rejected(self):
        with pytest.raises(InvalidInstanceError, match="unknown fault spec"):
            normalize_fault_spec({"edge_fail_rate": 1.0})

    @pytest.mark.parametrize(
        "bad",
        [
            {"edge_failure_rate": -0.1},
            {"jam_rate": -1.0},
            {"failure_duration": -1},
            {"churn_edges": 0},
            {"churn_factor_range": (0.0, 1.0)},
            {"jam_value_range": (2.0, 1.0)},
            {"events": [{"batch": 0, "kind": "explode"}]},
        ],
    )
    def test_invalid_specs_rejected(self, bad):
        with pytest.raises(InvalidInstanceError):
            normalize_fault_spec(bad)

    def test_scripted_events_parsed(self):
        spec = normalize_fault_spec(
            {"events": [{"batch": 2, "kind": "resize", "edges": [1, 3], "factor": 0.5}]}
        )
        (event,) = spec["events"]
        assert event == FaultEvent(batch=2, kind="resize", edge_ids=(1, 3), factor=0.5)

    def test_scripted_events_defeat_zero_intensity(self):
        schedule = FaultSchedule(
            {"events": [{"batch": 0, "kind": "fail", "edges": [0]}]}, seed=0
        )
        assert not schedule.zero_intensity


class TestFaultSchedule:
    def test_zero_intensity_draws_nothing(self):
        graph = _two_route_graph()
        schedule = FaultSchedule({}, seed=123)
        state_before = schedule._rng.bit_generator.state
        for batch in range(5):
            assert schedule.events_before_batch(batch, graph) == []
        assert schedule._rng.bit_generator.state == state_before

    def test_same_seed_same_events(self):
        spec = {
            "edge_failure_rate": 1.0,
            "failure_duration": 2,
            "churn_rate": 0.8,
            "jam_rate": 1.5,
        }
        graph = _two_route_graph()

        def history(seed):
            schedule = FaultSchedule(dict(spec), seed=seed)
            events = []
            for batch in range(6):
                events.extend(schedule.events_before_batch(batch, graph))
            return events

        a, b = history(7), history(7)
        assert a == b
        # FaultEvent equality ignores the jam payloads; compare those too.
        jam_a = [e.requests for e in a if e.kind == "jam"]
        jam_b = [e.requests for e in b if e.kind == "jam"]
        assert jam_a == jam_b
        assert history(8) != a

    def test_failures_schedule_their_repairs(self):
        schedule = FaultSchedule(
            {"edge_failure_rate": 5.0, "failure_duration": 2}, seed=1
        )
        graph = _two_route_graph()
        events0 = schedule.events_before_batch(0, graph)
        fails = [e for e in events0 if e.kind == "fail"]
        assert fails
        repairs = []
        for batch in range(1, 4):
            # The schedule only reads the disabled set from the graph; keep
            # it static here to isolate the deferral logic.
            repairs.extend(
                e
                for e in schedule.events_before_batch(batch, graph)
                if e.kind == "repair"
            )
        assert {e.edge_ids for e in fails} <= {e.edge_ids for e in repairs}
        assert all(e.batch == 2 for e in repairs[:1])

    def test_jam_requests_are_tagged_and_valid(self):
        schedule = FaultSchedule({"jam_rate": 4.0}, seed=3)
        graph = _two_route_graph()
        jams = [
            r
            for batch in range(4)
            for e in schedule.events_before_batch(batch, graph)
            if e.kind == "jam"
            for r in e.requests
        ]
        assert jams
        assert all(is_jam_request(r) for r in jams)
        assert all(r.source != r.target for r in jams)
        names = [r.name for r in jams]
        assert len(set(names)) == len(names)
        assert not is_jam_request(Request(0, 1, 1.0, 1.0, name="honest"))
        assert names[0] == f"{JAM_NAME_PREFIX}0"


# ---------------------------------------------------------------------- #
# Auction degradation hooks
# ---------------------------------------------------------------------- #
class TestAuctionDegradation:
    def test_fail_edge_revokes_and_reroutes(self):
        auction = OnlineAuction(_two_route_graph(), 0.5)
        auction.submit([Request(0, 3, 1.0, 5.0, name="a")])
        assert auction.num_admitted == 1
        events = auction.fail_edges([0])
        assert len(events) == 1
        event = events[0]
        assert event.reason == "edge_failure" and event.requeued
        assert auction.num_admitted == 0
        auction.submit([])  # drain: the requeued victim re-routes
        allocation = auction.finalize()
        assert allocation.num_selected == 1
        (routed,) = allocation.routed
        assert set(routed.edge_ids) == {1, 2}
        assert len(allocation.revocations) == 1

    def test_fail_edge_without_allocations_revokes_nothing(self):
        auction = OnlineAuction(_two_route_graph(), 0.5)
        assert auction.fail_edges([1]) == []
        auction.submit([Request(0, 3, 1.0, 5.0)])
        allocation = auction.finalize()
        assert allocation.num_selected == 1
        assert set(allocation.routed[0].edge_ids) == {0}

    def test_unroutable_victim_is_dropped_not_livelocked(self):
        auction = OnlineAuction(_single_edge_graph(), 0.5)
        auction.submit([Request(0, 1, 1.0, 5.0)])
        (event,) = auction.fail_edges([0])
        assert event.requeued
        auction.submit([])
        allocation = auction.finalize()
        assert allocation.num_selected == 0
        assert len(allocation.revocations) == 1

    def test_repair_restores_routability(self):
        auction = OnlineAuction(_single_edge_graph(), 0.5)
        auction.fail_edges([0])
        auction.submit([Request(0, 1, 1.0, 5.0)])
        assert auction.num_admitted == 0
        auction.repair_edges([0])
        auction.submit([Request(0, 1, 1.0, 4.0)])
        allocation = auction.finalize()
        assert allocation.num_selected == 1

    def test_requeue_budget_exhausts(self):
        auction = OnlineAuction(_two_route_graph(), 0.5, max_requeues=0)
        auction.submit([Request(0, 3, 1.0, 5.0)])
        (event,) = auction.fail_edges([0])
        assert not event.requeued
        auction.submit([])
        allocation = auction.finalize()
        # A detour exists, but the victim's requeue budget was zero.
        assert allocation.num_selected == 0

    def test_resize_shrink_revokes_lifo(self):
        auction = OnlineAuction(_single_edge_graph(2.0), 1.0, max_requeues=0)
        auction.submit([Request(0, 1, 1.0, 5.0, name="first")])
        auction.submit([Request(0, 1, 1.0, 4.0, name="second")])
        assert auction.num_admitted == 2
        events = auction.resize_edges([0], 0.5)
        assert [e.reason for e in events] == ["capacity_shrink"]
        allocation = auction.finalize()
        assert [item.request.name for item in allocation.routed] == ["first"]
        assert allocation.is_feasible()

    def test_capacity_guard_blocks_overload_after_shrink(self):
        """Lemma 3.3 guarantees feasibility only while c_e >= B; after a
        shrink below B the dual price lags one admission behind, so the
        fault-mode capacity guard must physically reject the admission
        that would overload the shrunk edge (and drop it, not requeue —
        the no-livelock rule)."""
        auction = OnlineAuction(_single_edge_graph(16.0), 0.5)
        auction.submit([Request(0, 1, 1.0, 5.0, name="r0")])
        # Shrink to 1.6: r0's load of 1.0 still fits, no revocation.
        assert auction.resize_edges([0], 0.1) == []
        # The edge's dual weight is still near its roomy 1/16-scale value,
        # so the price alone would admit r1 — and overload the edge.
        auction.submit([Request(0, 1, 1.0, 5.0, name="r1")])
        allocation = auction.finalize()
        assert [item.request.name for item in allocation.routed] == ["r0"]
        assert allocation.is_feasible()

    def test_resize_rejects_nonpositive_factor(self):
        auction = OnlineAuction(_single_edge_graph(), 0.5)
        with pytest.raises(InvalidInstanceError):
            auction.resize_edges([0], 0.0)

    def test_revert_is_bit_exact(self):
        graph = _two_route_graph()
        original = graph.capacities.copy()
        auction = OnlineAuction(graph, 0.5)
        auction.resize_edges([0, 2], 1.0 / 3.0)
        auction.resize_edges([0], 7.0)
        auction.revert_edges([0, 2])
        assert np.array_equal(auction.graph.capacities, original)

    def test_budget_is_preserved_across_resize(self):
        auction = OnlineAuction(_two_route_graph(), 0.5)
        auction.submit([Request(0, 3, 1.0, 5.0)])
        budget_before = auction.duals.budget
        auction.resize_edges([1], 3.0)
        # c_e * y_e is invariant under the rescale, so the stopping rule
        # sees no jump from the churn itself.
        assert auction.duals.budget == pytest.approx(budget_before, rel=1e-12)

    def test_failed_edge_remembers_its_price(self):
        auction = OnlineAuction(_single_edge_graph(2.0), 1.0)
        auction.submit([Request(0, 1, 1.0, 5.0)])
        weight_before = auction.duals.weights[0]
        assert weight_before > 0.5  # the admission raised it
        auction.fail_edges([0])
        auction.repair_edges([0])
        assert auction.duals.weights[0] == weight_before

    def test_refund_and_compensation_accounting(self):
        auction = OnlineAuction(
            _single_edge_graph(2.0),
            1.0,
            compute_payments=True,
            compensation_rate=0.25,
            max_requeues=0,
        )
        # Three rivals for two units of capacity: the two winners each pay
        # (up to bisection tolerance) the displaced value 2.
        auction.submit(
            [
                Request(0, 1, 1.0, 5.0, name="a"),
                Request(0, 1, 1.0, 3.0, name="b"),
                Request(0, 1, 1.0, 2.0, name="c"),
            ]
        )
        assert auction.num_admitted == 2
        revenue_before = float(sum(auction._payments.values()))
        assert revenue_before == pytest.approx(4.0, abs=1e-2)
        events = auction.fail_edges([0])
        assert len(events) == 2
        assert sum(e.refunded for e in events) == pytest.approx(revenue_before)
        assert sum(e.compensation for e in events) == pytest.approx(
            0.25 * revenue_before
        )
        allocation = auction.finalize()
        assert allocation.revenue == 0.0
        assert allocation.total_refunded == pytest.approx(revenue_before)
        assert allocation.total_compensation == pytest.approx(0.25 * revenue_before)
        assert allocation.value_revoked == pytest.approx(8.0)
        assert allocation.stats.extra["fault_revocations"] == 2.0

    def test_mutation_noop_does_not_flip_fault_mode(self):
        auction = OnlineAuction(_two_route_graph(), 0.5)
        assert auction.repair_edges([0]) == []  # nothing was failed
        assert auction.resize_edges([1], 1.0) == []
        assert not auction._faults_active


# ---------------------------------------------------------------------- #
# The fault-run driver
# ---------------------------------------------------------------------- #
class TestRunWithFaults:
    def _stream(self, requests, size=3):
        return bursty_arrivals(requests, burst_size=size, shuffle=False)

    def test_scripted_outage_window(self):
        # The only edge fails before batch 1 and is repaired before batch 2.
        # r0 (admitted in batch 0) is revoked and — being unroutable at that
        # moment — dropped, like r1 which arrives during the outage; no
        # victim is parked waiting for a repair (the no-livelock rule).
        # r2 arrives after the repair and is admitted normally.
        auction = OnlineAuction(_single_edge_graph(), 0.5)
        requests = [Request(0, 1, 1.0, 4.0, name=f"r{i}") for i in range(3)]
        schedule = _scripted_only(
            [
                FaultEvent(batch=1, kind="fail", edge_ids=(0,)),
                FaultEvent(batch=2, kind="repair", edge_ids=(0,)),
            ]
        )
        allocation, report = run_with_faults(
            auction, self._stream(requests, size=1), schedule
        )
        assert [item.request.name for item in allocation.routed] == ["r2"]
        assert report.revocations == 1
        assert report.num_batches == 3

    def test_jam_and_fee_accounting(self):
        instance = random_instance(num_vertices=12, capacity=6.0, num_requests=10, seed=5)
        auction = OnlineAuction(
            instance.graph, 0.5, compute_payments=True, name=instance.name
        )
        schedule = FaultSchedule(
            {
                "jam_rate": 2.0,
                "jam_value_range": (0.01, 0.05),
                "upfront_fee": 0.1,
            },
            seed=11,
        )
        allocation, report = run_with_faults(
            auction, self._stream(list(instance.requests)), schedule
        )
        assert report.jam_arrived > 0
        total_requests = allocation.instance.num_requests
        assert total_requests == 10 + report.jam_arrived
        assert report.upfront_fees == pytest.approx(0.1 * total_requests)
        assert report.upfront_fees_jam == pytest.approx(0.1 * report.jam_arrived)
        assert report.honest_admitted + report.jam_admitted == allocation.num_selected
        assert report.honest_value + report.jam_value_admitted == pytest.approx(
            float(allocation.value)
        )
        assert report.net_revenue == pytest.approx(
            allocation.revenue + report.upfront_fees - report.compensation
        )
        extra = report.as_extra()
        assert extra["fault_jam_arrived"] == float(report.jam_arrived)
        assert extra["fault_net_revenue"] == pytest.approx(report.net_revenue)

    def test_same_seed_is_bit_identical(self):
        def run():
            instance = random_instance(num_vertices=10, capacity=4.0, num_requests=12, seed=9)
            auction = OnlineAuction(instance.graph, 0.5, compute_payments=True)
            schedule = FaultSchedule(
                {
                    "edge_failure_rate": 0.8,
                    "failure_duration": 1,
                    "churn_rate": 0.5,
                    "churn_factor_range": (0.3, 1.4),
                    "jam_rate": 1.0,
                },
                seed=21,
            )
            return run_with_faults(
                auction, self._stream(list(instance.requests)), schedule
            )

        alloc_a, report_a = run()
        alloc_b, report_b = run()
        assert [i.request_index for i in alloc_a.routed] == [
            i.request_index for i in alloc_b.routed
        ]
        assert [i.edge_ids for i in alloc_a.routed] == [
            i.edge_ids for i in alloc_b.routed
        ]
        assert np.array_equal(alloc_a.payments, alloc_b.payments)
        assert report_a.as_extra() == report_b.as_extra()

    def test_faulted_run_stays_feasible(self):
        instance = random_instance(num_vertices=10, capacity=3.0, num_requests=16, seed=13)
        auction = OnlineAuction(instance.graph, 0.5)
        schedule = FaultSchedule(
            {
                "edge_failure_rate": 1.0,
                "failure_duration": 1,
                "churn_rate": 1.0,
                "churn_factor_range": (0.1, 0.5),
                "churn_duration": 1,
            },
            seed=17,
        )
        allocation, _report = run_with_faults(
            auction, self._stream(list(instance.requests)), schedule
        )
        assert allocation.is_feasible()


# ---------------------------------------------------------------------- #
# Differential: zero intensity == fault-free, bit for bit
# ---------------------------------------------------------------------- #
class TestZeroIntensityDifferential:
    def _instance(self):
        # Fresh per call: the per-graph tree memo must not be shared between
        # the two runs under comparison, or the shortest-path counters of
        # the second run would be masked by the first run's warm cache.
        # The parameters give real contention (some rejections, nonzero
        # payments), so the comparison is not vacuous.
        return random_instance(
            num_vertices=8,
            capacity=10.0,
            num_requests=40,
            demand_range=(0.5, 1.0),
            seed=3,
        )

    def _auction(self, graph, admission):
        return OnlineAuction(
            graph, 0.5, admission=admission, compute_payments=True
        )

    @pytest.mark.parametrize("admission", ["greedy", "threshold"])
    @pytest.mark.parametrize("backend", ["lists", "scipy"])
    def test_bit_identity(self, admission, backend):
        if backend == "scipy":
            pytest.importorskip("scipy")
        with use_backend(backend):
            base_instance = self._instance()
            baseline = self._auction(base_instance.graph, admission).run(
                bursty_arrivals(
                    list(base_instance.requests), burst_size=4, shuffle=False
                )
            )
            fault_instance = self._instance()
            faulted, report = run_with_faults(
                self._auction(fault_instance.graph, admission),
                bursty_arrivals(
                    list(fault_instance.requests), burst_size=4, shuffle=False
                ),
                FaultSchedule({}, seed=999),
            )
        assert [i.request_index for i in baseline.routed] == [
            i.request_index for i in faulted.routed
        ]
        assert [i.edge_ids for i in baseline.routed] == [
            i.edge_ids for i in faulted.routed
        ]
        assert np.array_equal(baseline.payments, faulted.payments)
        assert float(baseline.value) == float(faulted.value)
        assert baseline.stats.shortest_path_calls == faulted.stats.shortest_path_calls
        assert faulted.revocations == []
        assert "fault_revocations" not in faulted.stats.extra
        assert report.events == [] and report.jam_arrived == 0

    def test_none_schedule_is_the_fault_free_driver(self):
        base_instance = self._instance()
        baseline = self._auction(base_instance.graph, "greedy").run(
            bursty_arrivals(list(base_instance.requests), burst_size=4, shuffle=False)
        )
        fault_instance = self._instance()
        faulted, _ = run_with_faults(
            self._auction(fault_instance.graph, "greedy"),
            bursty_arrivals(list(fault_instance.requests), burst_size=4, shuffle=False),
            None,
        )
        assert np.array_equal(baseline.payments, faulted.payments)
        assert float(baseline.value) == float(faulted.value)

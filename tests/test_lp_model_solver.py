"""Tests for the LP builder and the HiGHS solve wrapper."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import LPSolveError
from repro.lp import LinearProgram, solve_lp
from repro.types import SolverStatus


class TestLinearProgramBuilder:
    def test_variable_bookkeeping(self):
        lp = LinearProgram()
        x = lp.add_variable(objective=1.0, upper=2.0, name="x")
        y = lp.add_variable(objective=0.5)
        assert (x, y) == (0, 1)
        assert lp.num_variables == 2
        ids = lp.add_variables(3, objective=[1, 2, 3])
        assert ids == [2, 3, 4]

    def test_add_variables_scalar_objective(self):
        lp = LinearProgram()
        ids = lp.add_variables(4, objective=2.0)
        assert lp.num_variables == 4
        mats = lp.matrices()
        np.testing.assert_allclose(mats["c"], [2, 2, 2, 2])
        assert ids == [0, 1, 2, 3]

    def test_rejects_empty_bounds(self):
        lp = LinearProgram()
        with pytest.raises(LPSolveError):
            lp.add_variable(lower=2.0, upper=1.0)

    def test_rejects_unknown_variable_in_constraint(self):
        lp = LinearProgram()
        lp.add_variable()
        with pytest.raises(LPSolveError):
            lp.add_le_constraint({5: 1.0}, 1.0)

    def test_matrices_shapes(self):
        lp = LinearProgram()
        x = lp.add_variable(objective=1.0)
        y = lp.add_variable(objective=1.0)
        lp.add_le_constraint({x: 1.0, y: 2.0}, 4.0)
        lp.add_eq_constraint({x: 1.0}, 1.0)
        mats = lp.matrices()
        assert mats["A_ub"].shape == (1, 2)
        assert mats["A_eq"].shape == (1, 2)
        np.testing.assert_allclose(mats["b_ub"], [4.0])
        np.testing.assert_allclose(mats["b_eq"], [1.0])

    def test_objective_mismatch_rejected(self):
        lp = LinearProgram()
        with pytest.raises(LPSolveError):
            lp.add_variables(2, objective=[1.0])


class TestSolver:
    def test_simple_maximization(self):
        lp = LinearProgram()
        x = lp.add_variable(objective=1.0, upper=2.0)
        y = lp.add_variable(objective=1.0, upper=2.0)
        lp.add_le_constraint({x: 1.0, y: 1.0}, 3.0)
        sol = solve_lp(lp)
        assert sol.ok
        assert sol.objective == pytest.approx(3.0)
        assert sol.x[x] + sol.x[y] == pytest.approx(3.0)

    def test_empty_program(self):
        sol = solve_lp(LinearProgram())
        assert sol.ok and sol.objective == 0.0

    def test_equality_constraints(self):
        lp = LinearProgram()
        x = lp.add_variable(objective=2.0, upper=10.0)
        y = lp.add_variable(objective=1.0, upper=10.0)
        lp.add_eq_constraint({x: 1.0, y: 1.0}, 5.0)
        sol = solve_lp(lp)
        assert sol.objective == pytest.approx(10.0)  # x = 5, y = 0
        assert sol.x[x] == pytest.approx(5.0)

    def test_infeasible_raises_by_default(self):
        lp = LinearProgram()
        x = lp.add_variable(objective=1.0)
        lp.add_le_constraint({x: 1.0}, -5.0)  # x >= 0 and x <= -5
        with pytest.raises(LPSolveError):
            solve_lp(lp)
        sol = solve_lp(lp, raise_on_failure=False)
        assert sol.status is SolverStatus.INFEASIBLE
        assert not sol.ok

    def test_unbounded_detected(self):
        lp = LinearProgram()
        lp.add_variable(objective=1.0)  # no upper bound, no constraints
        sol = solve_lp(lp, raise_on_failure=False)
        assert sol.status in (SolverStatus.UNBOUNDED, SolverStatus.ERROR)

    def test_duals_of_knapsack_constraint(self):
        # max 3a + 2b  s.t. a + b <= 1, 0 <= a, b <= 1: dual of the packing
        # constraint is 2 (the second-best density), a classic shadow price.
        lp = LinearProgram()
        a = lp.add_variable(objective=3.0, upper=1.0)
        b = lp.add_variable(objective=2.0, upper=1.0)
        row = lp.add_le_constraint({a: 1.0, b: 1.0}, 1.0)
        sol = solve_lp(lp)
        assert sol.objective == pytest.approx(3.0)
        assert sol.ineq_duals[row] >= 2.0 - 1e-6
        assert sol.ineq_duals[row] <= 3.0 + 1e-6

    def test_value_of_subset(self):
        lp = LinearProgram()
        ids = lp.add_variables(3, objective=[1.0, 2.0, 3.0], upper=1.0)
        sol = solve_lp(lp)
        np.testing.assert_allclose(sol.value_of(ids[1:]), [1.0, 1.0])

    def test_program_solve_shortcut(self):
        lp = LinearProgram()
        lp.add_variable(objective=4.0, upper=2.5)
        assert lp.solve().objective == pytest.approx(10.0)


@settings(max_examples=25, deadline=None)
@given(
    capacities=st.lists(st.floats(min_value=0.5, max_value=10.0), min_size=1, max_size=4),
    values=st.lists(st.floats(min_value=0.1, max_value=5.0), min_size=1, max_size=6),
)
def test_property_fractional_knapsack_matches_greedy(capacities, values):
    """For a single packing constraint the LP optimum equals the greedy
    fractional-knapsack value (items have unit weight)."""
    capacity = float(capacities[0])
    lp = LinearProgram()
    ids = [lp.add_variable(objective=v, upper=1.0) for v in values]
    lp.add_le_constraint({i: 1.0 for i in ids}, capacity)
    sol = solve_lp(lp)

    remaining = capacity
    expected = 0.0
    for v in sorted(values, reverse=True):
        take = min(1.0, remaining)
        if take <= 0:
            break
        expected += v * take
        remaining -= take
    assert sol.objective == pytest.approx(expected, rel=1e-6, abs=1e-6)

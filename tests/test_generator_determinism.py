"""Regression tests for the generator determinism contract.

Every stochastic generator accepts ``seed`` as an ``int``, a shared
:class:`numpy.random.Generator`, or ``None`` (fixed default), and the same
seed must reproduce the identical object bit for bit — experiments, the
differential fuzz sweep and the arrival processes all rely on it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.auctions import correlated_auction, random_auction
from repro.flows import (
    hotspot_instance,
    isp_instance,
    random_instance,
    random_requests,
)
from repro.graphs.generators import (
    barabasi_albert_graph,
    fat_tree_topology,
    grid_graph,
    isp_topology,
    multi_region_topology,
    random_digraph,
    random_graph,
    ring_graph,
    waxman_graph,
)
from repro.online import bursty_arrivals, poisson_arrivals
from repro.utils.prng import DEFAULT_SEED, ensure_rng


def _same_graph(a, b) -> bool:
    return (
        a.num_vertices == b.num_vertices
        and a.directed == b.directed
        and a.edge_list() == b.edge_list()
    )


def _same_requests(a, b) -> bool:
    return [(r.source, r.target, r.demand, r.value, r.name) for r in a] == [
        (r.source, r.target, r.demand, r.value, r.name) for r in b
    ]


def _same_instance(a, b) -> bool:
    return _same_graph(a.graph, b.graph) and _same_requests(a.requests, b.requests)


GRAPH_BUILDERS = {
    "random_digraph": lambda seed: random_digraph(10, 0.3, (2.0, 9.0), seed=seed),
    "random_graph": lambda seed: random_graph(10, 0.3, (2.0, 9.0), seed=seed),
    "grid_graph": lambda seed: grid_graph(3, 4, (1.0, 5.0), seed=seed),
    "ring_graph": lambda seed: ring_graph(6, (1.0, 5.0), seed=seed),
    "isp_topology": lambda seed: isp_topology(3, 2, 20.0, 10.0, seed=seed),
    "fat_tree_topology": lambda seed: fat_tree_topology(
        4, (8.0, 16.0), (4.0, 8.0), (2.0, 4.0), seed=seed
    ),
    "waxman_graph": lambda seed: waxman_graph(14, (1.0, 5.0), seed=seed),
    "barabasi_albert_graph": lambda seed: barabasi_albert_graph(
        15, 2, (1.0, 5.0), seed=seed
    ),
    "multi_region_topology": lambda seed: multi_region_topology(
        3, 3, 2, (12.0, 16.0), (6.0, 9.0), (2.0, 4.0), seed=seed
    ),
}

INSTANCE_BUILDERS = {
    "random_instance": lambda seed: random_instance(
        num_vertices=9, num_requests=15, seed=seed
    ),
    "hotspot_instance": lambda seed: hotspot_instance(
        num_vertices=10, num_requests=12, seed=seed
    ),
    "isp_instance": lambda seed: isp_instance(num_requests=14, seed=seed),
}

AUCTION_BUILDERS = {
    "random_auction": lambda seed: random_auction(
        num_items=8, num_bids=15, multiplicity=(4.0, 9.0), seed=seed
    ),
    "correlated_auction": lambda seed: correlated_auction(
        num_items=8, num_bids=15, seed=seed
    ),
}


@pytest.mark.parametrize("name", sorted(GRAPH_BUILDERS))
def test_graph_generators_reproduce_per_seed(name):
    build = GRAPH_BUILDERS[name]
    assert _same_graph(build(123), build(123))
    # An int seed and a Generator constructed from it are interchangeable.
    assert _same_graph(build(123), build(np.random.default_rng(123)))
    # None means the fixed library default, not nondeterminism.
    assert _same_graph(build(None), build(DEFAULT_SEED))


@pytest.mark.parametrize("name", sorted(INSTANCE_BUILDERS))
def test_instance_generators_reproduce_per_seed(name):
    build = INSTANCE_BUILDERS[name]
    assert _same_instance(build(321), build(321))
    assert _same_instance(build(321), build(np.random.default_rng(321)))
    assert _same_instance(build(None), build(DEFAULT_SEED))


@pytest.mark.parametrize("name", sorted(AUCTION_BUILDERS))
def test_auction_generators_reproduce_per_seed(name):
    build = AUCTION_BUILDERS[name]
    a, b = build(77), build(77)
    assert np.array_equal(a.multiplicities, b.multiplicities)
    assert [(x.bundle, x.value, x.name) for x in a.bids] == [
        (x.bundle, x.value, x.name) for x in b.bids
    ]
    c = build(np.random.default_rng(77))
    assert [(x.bundle, x.value) for x in a.bids] == [(x.bundle, x.value) for x in c.bids]


def test_shared_generator_threads_one_deterministic_stream():
    """Passing one Generator through several generators consumes it in
    sequence, and the whole composite is reproducible from the single seed."""

    def composite(seed):
        rng = ensure_rng(seed)
        graph = random_digraph(8, 0.3, (2.0, 8.0), seed=rng)
        requests = random_requests(graph, 10, seed=rng)
        auction = random_auction(num_items=5, num_bids=8, seed=rng)
        return graph, requests, auction

    g1, r1, a1 = composite(9)
    g2, r2, a2 = composite(9)
    assert _same_graph(g1, g2)
    assert _same_requests(r1, r2)
    assert [(x.bundle, x.value) for x in a1.bids] == [
        (x.bundle, x.value) for x in a2.bids
    ]
    # The graph draw must have advanced the stream: a fresh generator at the
    # request stage would produce different requests.
    _, r_fresh, _ = composite(9)
    fresh_requests = random_requests(g1, 10, seed=9)
    assert not _same_requests(r_fresh, fresh_requests)


CONSTANT_CAPACITY_BUILDERS = {
    "ring_graph": lambda seed: ring_graph(6, 5.0, seed=seed),
    "grid_graph": lambda seed: grid_graph(3, 4, 5.0, seed=seed),
    "fat_tree_topology": lambda seed: fat_tree_topology(4, 8.0, 4.0, 2.0, seed=seed),
}


@pytest.mark.parametrize("name", sorted(CONSTANT_CAPACITY_BUILDERS))
def test_constant_capacity_generators_pass_rng_through(name):
    """Deterministic-topology generators with constant capacities consume no
    randomness: a shared Generator passes through unperturbed (the
    documented ring_graph contract, extended to the new families)."""
    build = CONSTANT_CAPACITY_BUILDERS[name]
    rng = np.random.default_rng(31)
    build(rng)
    untouched = np.random.default_rng(31)
    assert rng.integers(0, 2**31) == untouched.integers(0, 2**31)


def _scipy_available() -> bool:
    try:
        import scipy  # noqa: F401
    except ImportError:  # pragma: no cover - scipy is a test dependency
        return False
    return True


@pytest.mark.skipif(not _scipy_available(), reason="scipy backend unavailable")
@pytest.mark.parametrize("family", ["waxman", "fat_tree"])
def test_backend_parity_on_new_topologies(family):
    """scipy and lists shortest-path backends must produce bit-identical
    Bounded-UFP allocations on the new topology families."""
    from repro.core import bounded_ufp
    from repro.flows import UFPInstance
    from repro.graphs import use_backend

    if family == "waxman":
        graph = waxman_graph(16, 12.0, seed=21)
        terminals = None
    else:
        graph = fat_tree_topology(4, 48.0, 24.0, 12.0, seed=21)
        from repro.graphs import fat_tree_host_range

        terminals = list(fat_tree_host_range(4))
    requests = random_requests(
        graph, 40, seed=22, sources=terminals, targets=terminals
    )
    instance = UFPInstance(graph, requests, name=f"parity-{family}")

    allocations = {}
    for backend in ("lists", "scipy"):
        with use_backend(backend):
            allocation = bounded_ufp(instance, 0.4)
        allocations[backend] = [
            (item.request_index, tuple(item.vertices)) for item in allocation.routed
        ]
    assert allocations["lists"] == allocations["scipy"]


def test_arrival_processes_reproduce_per_seed():
    instance = random_instance(num_vertices=8, num_requests=20, seed=6)
    p1 = [(b.time, b.requests) for b in poisson_arrivals(instance.requests, seed=4)]
    p2 = [(b.time, b.requests) for b in poisson_arrivals(instance.requests, seed=4)]
    assert p1 == p2
    b1 = [b.requests for b in bursty_arrivals(instance.requests, burst_size=5, shuffle=True, seed=4)]
    b2 = [b.requests for b in bursty_arrivals(instance.requests, burst_size=5, shuffle=True, seed=4)]
    assert b1 == b2

"""Campaign-runner correctness fixes, pinned by regression tests.

Three fixes ride with the partitioned-solver PR:

* the retry backoff sleeps ``retry_backoff * 2**(attempt - 1)`` seconds
  before retry attempt ``attempt`` (the docstring used to promise a
  different schedule than the code ran — the recorded-sleep test pins the
  actual schedule);
* ``_guarded_run_cell`` must not touch ``signal.setitimer`` /
  ``signal.signal`` off the main thread (``ValueError``); it degrades to
  the no-timeout path instead, so dashboards and test harnesses can drive
  campaigns from worker threads;
* a cell retried after a mid-solve timeout rebuilds *everything* from the
  cell spec — no dual state, engine heap or substrate cache survives the
  interrupted attempt — so the retried record is bit-identical to a run
  that never timed out.
"""

from __future__ import annotations

import threading

import pytest

from repro.core import bounded_ufp as real_bounded_ufp
from repro.scenarios import runner
from repro.scenarios.runner import (
    CellTimeoutError,
    _guarded_run_cell,
    run_campaign,
    run_cell,
)
from repro.scenarios.specs import enumerate_cells, normalize_suite


def _tiny_suite(**mode_extra):
    return {
        "name": "tiny",
        "seed": 5,
        "topologies": [{"name": "grid", "family": "grid", "rows": 3, "cols": 3}],
        "regimes": [{"name": "r", "capacity": 6.0, "num_requests": 6}],
        "modes": [
            {
                "name": "m",
                "kind": "offline",
                "epsilon": 0.5,
                "bound": "none",
                **mode_extra,
            }
        ],
    }


class TestRetryBackoff:
    def test_backoff_doubles_from_retry_backoff(self, monkeypatch):
        """The sleep before retry ``attempt`` is ``backoff * 2**(attempt-1)``."""
        sleeps: list[float] = []
        monkeypatch.setattr(runner._time, "sleep", sleeps.append)
        suite = _tiny_suite(inject_failure="exception")
        result = run_campaign(suite, jobs=1, retries=3, retry_backoff=0.25)
        # Every attempt fails, so all three retries fire: 0.25, 0.5, 1.0.
        assert sleeps == [0.25, 0.5, 1.0]
        assert result.failed == list(result.records)
        record = next(iter(result.records.values()))
        assert record["failed"] is True
        assert record["attempts"] == 4

    def test_no_sleep_without_backoff(self, monkeypatch):
        sleeps: list[float] = []
        monkeypatch.setattr(runner._time, "sleep", sleeps.append)
        run_campaign(
            _tiny_suite(inject_failure="exception"), jobs=1, retries=2
        )
        assert sleeps == []


class TestGuardedRunCellOffMainThread:
    def test_worker_thread_falls_back_to_untimed_path(self):
        """With a timeout set, a worker thread must not die on
        ``signal.signal``'s main-thread-only ``ValueError`` — it runs the
        cell without a timeout and returns the identical record."""
        cell = enumerate_cells(normalize_suite(_tiny_suite()))[0]
        expected = run_cell(cell).rows[0]
        box: dict[str, object] = {}

        def _drive():
            try:
                box["outcome"] = _guarded_run_cell((cell, 30.0))
            except BaseException as error:  # pragma: no cover - the regression
                box["error"] = error

        thread = threading.Thread(target=_drive)
        thread.start()
        thread.join(timeout=60.0)
        assert not thread.is_alive()
        assert "error" not in box, f"worker thread raised {box.get('error')!r}"
        assert box["outcome"].rows[0] == expected

    def test_main_thread_still_arms_the_timer(self):
        # The off-main-thread fallback must not have disabled the guarded
        # path where it is legal: on the main thread the cell still runs
        # (and the timer is disarmed afterwards).
        cell = enumerate_cells(normalize_suite(_tiny_suite()))[0]
        expected = run_cell(cell).rows[0]
        assert _guarded_run_cell((cell, 30.0)).rows[0] == expected


class TestRetryRebuildsFromSpec:
    def test_record_after_mid_solve_timeout_is_bit_identical(self, monkeypatch):
        """A retry after a mid-solve interrupt must equal an untimed run.

        The first solver call does real work (one committed iteration —
        duals updated, engine heap populated) and then raises the timeout,
        exactly like ``SIGALRM`` landing mid-solve; the retry must see none
        of that state.
        """
        suite = _tiny_suite()
        clean = run_campaign(suite, jobs=1)

        calls = {"count": 0}

        def flaky_bounded_ufp(instance, *args, **kwargs):
            calls["count"] += 1
            if calls["count"] == 1:
                real_bounded_ufp(instance, *args, max_iterations=1, **kwargs)
                raise CellTimeoutError("simulated SIGALRM mid-solve")
            return real_bounded_ufp(instance, *args, **kwargs)

        monkeypatch.setattr(runner, "bounded_ufp", flaky_bounded_ufp)
        retried = run_campaign(suite, jobs=1, retries=1)

        assert calls["count"] == 2  # one interrupted attempt + one retry
        assert retried.failed == []
        assert retried.records == clean.records  # bit for bit

    def test_exhausted_retries_quarantine_with_timeout_type(self, monkeypatch):
        def always_times_out(instance, *args, **kwargs):
            raise CellTimeoutError("simulated SIGALRM mid-solve")

        monkeypatch.setattr(runner, "bounded_ufp", always_times_out)
        result = run_campaign(_tiny_suite(), jobs=1, retries=1)
        assert result.failed == list(result.records)
        record = next(iter(result.records.values()))
        assert record["error_type"] == "CellTimeoutError"
        assert record["attempts"] == 2


class TestInjectedTimeoutEndToEnd:
    @pytest.mark.slow
    def test_sigalrm_interrupts_and_retry_recovers(self, monkeypatch):
        """The real signal path: a cell that sleeps past ``cell_timeout``
        is interrupted by ``SIGALRM``; dropping the injection for the
        retry yields the clean record."""
        clean = run_campaign(_tiny_suite(), jobs=1)

        calls = {"count": 0}
        original = runner.build_cell_instance

        def sleepy_then_clean(cell):
            calls["count"] += 1
            if calls["count"] == 1:
                runner._time.sleep(30.0)  # SIGALRM lands here
            return original(cell)

        monkeypatch.setattr(runner, "build_cell_instance", sleepy_then_clean)
        result = run_campaign(
            _tiny_suite(), jobs=1, retries=1, cell_timeout=0.2
        )
        assert calls["count"] == 2
        assert result.failed == []
        assert result.records == clean.records

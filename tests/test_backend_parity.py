"""Parity matrix: compute kernels × shortest-path backends vs the reference.

Two process-global registries can change *how* the hot loops run without
being allowed to change a single output bit: the shortest-path backend
registry of :mod:`repro.graphs.shortest_path` (``lists`` / ``scipy``) and
the compute-kernel registry of :mod:`repro.kernels` (``lists`` / ``numpy``
/ ``numba``).  This suite replays the differential-fuzz corpus (the same
pinned-seed instance distribution as ``test_differential_fuzz``) once per
(backend, kernel) combination and compares every run exactly against the
memoized ``(lists, lists)`` reference.  Instances are rebuilt from the
seed for each combination so the per-graph tree memo of one run cannot
mask divergence in another.

Combinations whose optional dependency is missing are skipped with a
reason (scipy rows without scipy, numba rows without numba) — the *silent
env fallback* path for a missing numba is covered separately in
``test_env_precedence.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from test_differential_fuzz import (  # noqa: E402  (corpus shared with the fuzz suite)
    DIJKSTRA_SEEDS,
    MUCA_SEEDS,
    ONLINE_SEEDS,
    REPEAT_SEEDS,
    UFP_SEEDS,
    _assert_same_allocation,
    _ufp_instance,
)

from repro.auctions import correlated_auction, random_auction  # noqa: E402
from repro.core import bounded_muca, bounded_ufp, bounded_ufp_repeat  # noqa: E402
from repro.graphs.generators import random_digraph, random_graph  # noqa: E402
from repro.graphs.shortest_path import (  # noqa: E402
    multi_source_dijkstra,
    single_source_dijkstra,
    use_backend,
)
from repro.kernels import kernel_available, use_kernel  # noqa: E402
from repro.online import Batch, OnlineAuction  # noqa: E402
from repro.utils.prng import ensure_rng  # noqa: E402

pytestmark = pytest.mark.fuzz

_HAVE_SCIPY = True
try:
    import scipy  # noqa: F401
except ImportError:
    _HAVE_SCIPY = False
_HAVE_NUMBA = kernel_available("numba")


def _combo_params():
    """Every non-reference (backend, kernel) combination, each skipped with
    a reason when its optional dependency is absent."""
    params = []
    for backend in ("lists", "scipy"):
        for kernel in ("lists", "numpy", "numba"):
            if (backend, kernel) == ("lists", "lists"):
                continue  # the reference itself
            marks = []
            if backend == "scipy" and not _HAVE_SCIPY:
                marks.append(
                    pytest.mark.skip(reason="the scipy backend needs scipy")
                )
            if kernel == "numba" and not _HAVE_NUMBA:
                marks.append(
                    pytest.mark.skip(
                        reason="the numba kernel needs numba (env resolution "
                        "would fall back to numpy, covered elsewhere)"
                    )
                )
            params.append(
                pytest.param((backend, kernel), id=f"{backend}-{kernel}", marks=marks)
            )
    return params


COMBOS = _combo_params()


# One memoized reference result per (family, seed): the reference run is
# shared by every combination of that seed instead of recomputed five times
# (seeds are the outer parametrize, so a seed's combos run back to back).
_REFERENCE_CACHE: dict = {}


def _run_combo(family, seed, combo, make_instance, solve):
    backend, kernel = combo
    key = (family, seed)
    expected = _REFERENCE_CACHE.get(key)
    if expected is None:
        with use_backend("lists"), use_kernel("lists"):
            expected = _REFERENCE_CACHE[key] = solve(make_instance())
    with use_backend(backend), use_kernel(kernel):
        actual = solve(make_instance())
    return actual, expected


@pytest.mark.parametrize("combo", COMBOS)
@pytest.mark.parametrize("seed", UFP_SEEDS)
def test_bounded_ufp_parity(seed, combo):
    epsilon = [0.3, 0.5, 1.0][seed % 3]
    actual, expected = _run_combo(
        "ufp", seed, combo,
        lambda: _ufp_instance(seed),
        lambda inst: bounded_ufp(inst, epsilon),
    )
    _assert_same_allocation(actual, expected)


@pytest.mark.parametrize("combo", COMBOS)
@pytest.mark.parametrize("seed", REPEAT_SEEDS)
def test_bounded_ufp_repeat_parity(seed, combo):
    epsilon = [0.5, 1.0][seed % 2]
    actual, expected = _run_combo(
        "repeat", seed, combo,
        lambda: _ufp_instance(seed, max_requests=10),
        lambda inst: bounded_ufp_repeat(inst, epsilon),
    )
    _assert_same_allocation(actual, expected)


def _muca_auction(seed):
    rng = ensure_rng(seed)
    num_items = int(rng.integers(4, 16))
    if seed % 2:
        return random_auction(
            num_items=num_items,
            num_bids=int(rng.integers(3, 40)),
            multiplicity=float(rng.uniform(4.0, 20.0)),
            bundle_size_range=(1, min(4, num_items)),
            seed=rng,
        )
    return correlated_auction(
        num_items=num_items,
        num_bids=int(rng.integers(3, 40)),
        multiplicity=float(rng.uniform(4.0, 20.0)),
        num_popular=min(3, num_items),
        bundle_size_range=(1, min(4, num_items)),
        seed=rng,
    )


@pytest.mark.parametrize("combo", COMBOS)
@pytest.mark.parametrize("seed", MUCA_SEEDS)
def test_bounded_muca_parity(seed, combo):
    # MUCA never touches the graph backend (bundle sums, not paths), but it
    # does run the kernel's bundle-scoring sweep and dual updates; either
    # registry flipping must leave the auction untouched.
    epsilon = [0.3, 0.5, 1.0][seed % 3]
    actual, expected = _run_combo(
        "muca", seed, combo,
        lambda: _muca_auction(seed),
        lambda auction: bounded_muca(auction, epsilon),
    )
    assert actual.winners == expected.winners
    assert actual.value == expected.value


@pytest.mark.parametrize("combo", COMBOS)
@pytest.mark.parametrize("seed", DIJKSTRA_SEEDS)
def test_dijkstra_parity(seed, combo):
    backend, kernel = combo
    rng = ensure_rng(seed)
    num_vertices = int(rng.integers(4, 20))
    build = random_digraph if seed % 2 else random_graph
    graph = build(
        num_vertices,
        float(rng.uniform(0.1, 0.6)),
        (0.5, 5.0),
        seed=rng,
        ensure_connected=bool(rng.integers(0, 2)),
    )
    weights = rng.uniform(1e-6, 10.0, size=graph.num_edges)
    source = int(rng.integers(0, num_vertices))
    with use_backend("lists"), use_kernel("lists"):
        expected = single_source_dijkstra(graph, source, weights)
    with use_backend(backend), use_kernel(kernel):
        actual = single_source_dijkstra(graph, source, weights)
        batch = multi_source_dijkstra(graph, range(num_vertices), weights)
    for result in [actual, batch[source]]:
        np.testing.assert_array_equal(result.distances, expected.distances)
        np.testing.assert_array_equal(result.parent_vertex, expected.parent_vertex)
        np.testing.assert_array_equal(result.parent_edge, expected.parent_edge)


@pytest.mark.parametrize("combo", COMBOS)
@pytest.mark.parametrize("seed", ONLINE_SEEDS)
def test_online_stream_parity(seed, combo):
    epsilon = [0.3, 0.5, 1.0][seed % 3]

    def solve(instance):
        auction = OnlineAuction(instance.graph, epsilon)
        return auction.run(iter([Batch(time=0.0, requests=instance.requests)]))

    actual, expected = _run_combo(
        "online", seed, combo, lambda: _ufp_instance(seed), solve
    )
    _assert_same_allocation(actual, expected)

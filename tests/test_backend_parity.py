"""Backend parity: the scipy shortest-path backend vs the lists kernel.

The contract of :mod:`repro.graphs.shortest_path`'s backend registry is that
the ``"scipy"`` backend is **bit-identical** to the default ``"lists"``
kernel — distances, parents, and therefore every allocation downstream.
This suite replays the differential-fuzz corpus (the same pinned-seed
instance distribution as ``test_differential_fuzz``) once per backend and
compares the two runs exactly.  Instances are rebuilt from the seed for each
backend so the per-graph tree memo of one run cannot mask divergence in the
other.
"""

from __future__ import annotations

import numpy as np
import pytest

pytest.importorskip("scipy", reason="the scipy backend needs scipy")

from test_differential_fuzz import (  # noqa: E402  (corpus shared with the fuzz suite)
    DIJKSTRA_SEEDS,
    MUCA_SEEDS,
    ONLINE_SEEDS,
    REPEAT_SEEDS,
    UFP_SEEDS,
    _assert_same_allocation,
    _ufp_instance,
)

from repro.auctions import correlated_auction, random_auction  # noqa: E402
from repro.core import bounded_muca, bounded_ufp, bounded_ufp_repeat  # noqa: E402
from repro.graphs.generators import random_digraph, random_graph  # noqa: E402
from repro.graphs.shortest_path import (  # noqa: E402
    multi_source_dijkstra,
    single_source_dijkstra,
    use_backend,
)
from repro.online import Batch, OnlineAuction  # noqa: E402
from repro.utils.prng import ensure_rng  # noqa: E402

pytestmark = pytest.mark.fuzz


def _run_both(make_instance, solve):
    """Run ``solve`` on freshly-built instances under each backend."""
    with use_backend("lists"):
        expected = solve(make_instance())
    with use_backend("scipy"):
        actual = solve(make_instance())
    return actual, expected


@pytest.mark.parametrize("seed", UFP_SEEDS)
def test_bounded_ufp_backend_parity(seed):
    epsilon = [0.3, 0.5, 1.0][seed % 3]
    actual, expected = _run_both(
        lambda: _ufp_instance(seed), lambda inst: bounded_ufp(inst, epsilon)
    )
    _assert_same_allocation(actual, expected)


@pytest.mark.parametrize("seed", REPEAT_SEEDS)
def test_bounded_ufp_repeat_backend_parity(seed):
    epsilon = [0.5, 1.0][seed % 2]
    actual, expected = _run_both(
        lambda: _ufp_instance(seed, max_requests=10),
        lambda inst: bounded_ufp_repeat(inst, epsilon),
    )
    _assert_same_allocation(actual, expected)


def _muca_auction(seed):
    rng = ensure_rng(seed)
    num_items = int(rng.integers(4, 16))
    if seed % 2:
        return random_auction(
            num_items=num_items,
            num_bids=int(rng.integers(3, 40)),
            multiplicity=float(rng.uniform(4.0, 20.0)),
            bundle_size_range=(1, min(4, num_items)),
            seed=rng,
        )
    return correlated_auction(
        num_items=num_items,
        num_bids=int(rng.integers(3, 40)),
        multiplicity=float(rng.uniform(4.0, 20.0)),
        num_popular=min(3, num_items),
        bundle_size_range=(1, min(4, num_items)),
        seed=rng,
    )


@pytest.mark.parametrize("seed", MUCA_SEEDS)
def test_bounded_muca_backend_parity(seed):
    # MUCA never touches the graph backend (bundle sums, not paths), so this
    # guards that flipping the backend cannot perturb the auction either.
    epsilon = [0.3, 0.5, 1.0][seed % 3]
    actual, expected = _run_both(
        lambda: _muca_auction(seed), lambda auction: bounded_muca(auction, epsilon)
    )
    assert actual.winners == expected.winners
    assert actual.value == expected.value


@pytest.mark.parametrize("seed", DIJKSTRA_SEEDS)
def test_dijkstra_backend_parity(seed):
    rng = ensure_rng(seed)
    num_vertices = int(rng.integers(4, 20))
    build = random_digraph if seed % 2 else random_graph
    graph = build(
        num_vertices,
        float(rng.uniform(0.1, 0.6)),
        (0.5, 5.0),
        seed=rng,
        ensure_connected=bool(rng.integers(0, 2)),
    )
    weights = rng.uniform(1e-6, 10.0, size=graph.num_edges)
    source = int(rng.integers(0, num_vertices))
    with use_backend("lists"):
        expected = single_source_dijkstra(graph, source, weights)
    with use_backend("scipy"):
        actual = single_source_dijkstra(graph, source, weights)
        batch = multi_source_dijkstra(graph, range(num_vertices), weights)
    for result in [actual, batch[source]]:
        np.testing.assert_array_equal(result.distances, expected.distances)
        np.testing.assert_array_equal(result.parent_vertex, expected.parent_vertex)
        np.testing.assert_array_equal(result.parent_edge, expected.parent_edge)


@pytest.mark.parametrize("seed", ONLINE_SEEDS)
def test_online_stream_backend_parity(seed):
    epsilon = [0.3, 0.5, 1.0][seed % 3]

    def solve(instance):
        auction = OnlineAuction(instance.graph, epsilon)
        return auction.run(iter([Batch(time=0.0, requests=instance.requests)]))

    actual, expected = _run_both(lambda: _ufp_instance(seed), solve)
    _assert_same_allocation(actual, expected)

"""Tests of the HTTP front door (``repro.service.api``/``client``).

The server runs in-process on an ephemeral port; the supervisor is driven
explicitly (``run_until_idle``) so every test is deterministic — no
background worker races the assertions.
"""

from __future__ import annotations

import urllib.error
import urllib.request

import pytest

from repro.service import JobQueue, Supervisor, SupervisorConfig
from repro.service.api import build_server, serve_in_thread
from repro.service.client import ServiceClient, ServiceError, ServiceUnavailable
from repro.utils.backoff import BackoffPolicy


def _suite(name="api-tiny"):
    return {
        "name": name,
        "seed": 11,
        "topologies": [{"name": "g", "family": "grid", "rows": 3, "cols": 3}],
        "regimes": [{"name": "r", "capacity": 6.0, "num_requests": 8}],
        "modes": [{"name": "off", "kind": "offline", "bound": "none"}],
    }


@pytest.fixture()
def service(tmp_path):
    queue = JobQueue(
        tmp_path / "svc", max_pending=2, lease_seconds=60.0, retry_after=3.0
    )
    supervisor = Supervisor(queue, config=SupervisorConfig(backoff=BackoffPolicy()))
    server = build_server(queue, supervisor)
    serve_in_thread(server)
    try:
        yield queue, supervisor, ServiceClient(server.url), server
    finally:
        server.shutdown()
        server.server_close()


class TestJobsEndpoints:
    def test_submit_run_result_roundtrip(self, service):
        queue, supervisor, client, _ = service
        status = client.submit({"kind": "campaign", "suite": _suite(), "jobs": 1})
        assert status["state"] == "QUEUED" and status["created"] is True

        # Identical re-submission maps to the same job (HTTP 200, not 202).
        again = client.submit({"kind": "campaign", "suite": _suite(), "jobs": 1})
        assert again["job"] == status["job"] and again["created"] is False

        # No committed result yet -> 409 with the current state.
        with pytest.raises(ServiceError) as exc_info:
            client.result(status["job"])
        assert exc_info.value.status == 409

        supervisor.run_until_idle()
        final = client.wait(status["job"], timeout=30.0)
        assert final["state"] == "DONE" and final["has_result"] is True
        result = client.result(status["job"])
        assert result["state"] == "DONE"
        assert result["cells"] == 1 and result["failed_cells"] == []
        assert len(result["records"]) == 1
        assert result["content_hash"]

    def test_listing_and_unknown_job(self, service):
        _, _, client, _ = service
        assert client.jobs() == []
        with pytest.raises(ServiceError) as exc_info:
            client.status("feedfacecafebeef")
        assert exc_info.value.status == 404
        client.submit({"suite": _suite()})
        assert [job["state"] for job in client.jobs()] == ["QUEUED"]

    def test_bad_specs_are_rejected_with_400(self, service):
        _, _, client, _ = service
        for spec in (
            {"kind": "campaign"},  # no suite
            {"kind": "campaign", "suite": "no-such-builtin"},
            {"kind": "campaign", "suite": _suite(), "typo_knob": 1},
            {"kind": "batch", "suite": _suite()},
        ):
            with pytest.raises(ServiceError) as exc_info:
                client.submit(spec)
            assert exc_info.value.status == 400

    def test_full_queue_returns_429_with_retry_after(self, service):
        _, _, client, server = service
        client.submit({"suite": _suite("a")})
        client.submit({"suite": _suite("b")})  # max_pending=2: now full
        with pytest.raises(ServiceUnavailable) as exc_info:
            client.submit({"suite": _suite("c")})
        assert exc_info.value.status == 429
        assert exc_info.value.retry_after == 3.0

        # The Retry-After *header* is what generic HTTP clients honor.
        request = urllib.request.Request(
            server.url + "/jobs",
            data=b'{"suite": "smoke"}',
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as http_info:
            urllib.request.urlopen(request)
        assert http_info.value.code == 429
        assert http_info.value.headers["Retry-After"] == "3"

    def test_cancel(self, service):
        _, _, client, _ = service
        job = client.submit({"suite": _suite()})["job"]
        cancelled = client.cancel(job)
        assert cancelled["state"] == "CANCELLED"
        # Idempotent: cancelling again reports the same terminal state.
        assert client.cancel(job)["state"] == "CANCELLED"

    def test_failed_job_serves_its_traceback(self, service):
        queue, _, client, _ = service
        # A poison job: every attempt times out instantly at the first wave.
        supervisor = Supervisor(
            queue,
            config=SupervisorConfig(job_timeout=1e-9, backoff=BackoffPolicy()),
        )
        job = client.submit({"suite": _suite()})["job"]
        supervisor.run_until_idle()
        status = client.status(job)
        assert status["state"] == "FAILED"
        assert status["error_type"] == "JobTimeoutError"
        assert "JobTimeoutError" in status["traceback"]
        result = client.result(job)
        assert result["failed"] is True and result["attempts"] == 3


class TestHealthEndpoints:
    def test_healthz_and_readyz(self, service):
        _, supervisor, client, _ = service
        health = client.health()
        assert health["status"] == "ok" and health["draining"] is False
        assert health["counts"]["QUEUED"] == 0
        assert client.ready() is True

        supervisor.request_drain()
        # Liveness stays 200 while draining; readiness flips to 503 so load
        # balancers stop routing while in-flight work finishes.
        assert client.health()["draining"] is True
        assert client.ready() is False

    def test_readyz_flips_when_the_queue_fills(self, service):
        _, _, client, _ = service
        client.submit({"suite": _suite("a")})
        assert client.ready() is True
        client.submit({"suite": _suite("b")})
        assert client.ready() is False

    def test_drain_endpoint(self, service):
        _, supervisor, client, _ = service
        assert supervisor.draining is False
        client.drain()
        assert supervisor.draining is True

    def test_unknown_endpoint_404s(self, service):
        _, _, client, _ = service
        with pytest.raises(ServiceError) as exc_info:
            client._request("GET", "/no/such/thing")
        assert exc_info.value.status == 404


class TestCli:
    def test_submit_wait_status_drain_roundtrip(self, service, tmp_path, capsys):
        import json
        import threading
        import time

        from repro.service.cli import main as service_main

        _, supervisor, client, server = service
        spec = tmp_path / "job.json"
        spec.write_text(json.dumps({"kind": "campaign", "suite": _suite(), "jobs": 1}))

        worker = threading.Thread(
            target=lambda: (time.sleep(0.3), supervisor.run_until_idle())
        )
        worker.start()
        try:
            code = service_main(["submit", "--url", server.url, str(spec), "--wait"])
        finally:
            worker.join()
        out = capsys.readouterr().out
        assert code == 0
        assert "DONE" in out and "store hash:" in out

        job = client.jobs()[0]["job"]
        assert service_main(["status", "--url", server.url, job]) == 0
        assert "store hash:" in capsys.readouterr().out
        assert service_main(["status", "--url", server.url]) == 0
        assert job in capsys.readouterr().out
        assert service_main(["drain", "--url", server.url]) == 0
        assert supervisor.draining

    def test_submit_rejects_bad_spec_without_traceback(self, service, tmp_path, capsys):
        from repro.service.cli import main as service_main

        _, _, _, server = service
        assert service_main(["submit", "--url", server.url, "no-such-suite"]) == 2
        assert "rejected" in capsys.readouterr().err

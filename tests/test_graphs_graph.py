"""Unit tests for :mod:`repro.graphs.graph`."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InvalidInstanceError
from repro.graphs import CapacitatedGraph
from repro.types import Direction


class TestConstruction:
    def test_basic_directed(self, diamond_graph):
        assert diamond_graph.num_vertices == 4
        assert diamond_graph.num_edges == 5
        assert diamond_graph.directed
        assert diamond_graph.direction is Direction.DIRECTED

    def test_basic_undirected(self, parallel_paths_graph):
        assert parallel_paths_graph.num_vertices == 4
        assert parallel_paths_graph.num_edges == 4
        assert not parallel_paths_graph.directed
        assert parallel_paths_graph.direction is Direction.UNDIRECTED

    def test_min_and_max_capacity(self, diamond_graph):
        assert diamond_graph.min_capacity == 1.0
        assert diamond_graph.max_capacity == 3.0

    def test_rejects_zero_vertices(self):
        with pytest.raises(InvalidInstanceError):
            CapacitatedGraph(0, [])

    def test_rejects_self_loop(self):
        with pytest.raises(InvalidInstanceError):
            CapacitatedGraph(2, [(0, 0, 1.0)])

    def test_rejects_out_of_range_endpoint(self):
        with pytest.raises(InvalidInstanceError):
            CapacitatedGraph(2, [(0, 5, 1.0)])

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(InvalidInstanceError):
            CapacitatedGraph(2, [(0, 1, 0.0)])
        with pytest.raises(InvalidInstanceError):
            CapacitatedGraph(2, [(0, 1, -2.0)])
        with pytest.raises(InvalidInstanceError):
            CapacitatedGraph(2, [(0, 1, float("nan"))])

    def test_min_capacity_undefined_for_empty_edge_set(self):
        graph = CapacitatedGraph(3, [])
        with pytest.raises(InvalidInstanceError):
            _ = graph.min_capacity

    def test_parallel_edges_get_distinct_ids(self):
        graph = CapacitatedGraph(2, [(0, 1, 1.0), (0, 1, 2.0)], directed=True)
        assert graph.num_edges == 2
        assert set(graph.edge_ids_between(0, 1)) == {0, 1}


class TestAdjacency:
    def test_out_arcs_directed(self, diamond_graph):
        heads, edge_ids = diamond_graph.out_arcs(0)
        assert sorted(int(h) for h in heads) == [1, 2, 3]
        assert sorted(int(e) for e in edge_ids) == [0, 1, 4]
        assert diamond_graph.out_degree(0) == 3
        assert diamond_graph.out_degree(3) == 0

    def test_out_arcs_undirected_bidirectional(self, parallel_paths_graph):
        heads, _ = parallel_paths_graph.out_arcs(1)
        assert sorted(int(h) for h in heads) == [0, 3]
        # Vertex 3 can also reach vertex 1 through the same edge.
        heads3, _ = parallel_paths_graph.out_arcs(3)
        assert 1 in [int(h) for h in heads3]

    def test_edge_endpoints_and_capacity(self, diamond_graph):
        assert diamond_graph.edge_endpoints(4) == (0, 3)
        assert diamond_graph.edge_capacity(4) == 1.0

    def test_edge_ids_between_orientation(self, diamond_graph):
        assert diamond_graph.edge_ids_between(0, 1) == (0,)
        assert diamond_graph.edge_ids_between(1, 0) == ()

    def test_edge_ids_between_undirected_symmetric(self, parallel_paths_graph):
        assert parallel_paths_graph.edge_ids_between(0, 1) == (0,)
        assert parallel_paths_graph.edge_ids_between(1, 0) == (0,)

    def test_has_edge(self, diamond_graph):
        assert diamond_graph.has_edge(0, 3)
        assert not diamond_graph.has_edge(3, 0)

    def test_edges_iterator_matches_edge_list(self, diamond_graph):
        views = list(diamond_graph.edges())
        assert len(views) == diamond_graph.num_edges
        assert [v.endpoints() for v in views] == [
            (u, w) for u, w, _ in diamond_graph.edge_list()
        ]
        assert views[0].edge_id == 0

    def test_capacities_array_is_readonly(self, diamond_graph):
        with pytest.raises(ValueError):
            diamond_graph.capacities[0] = 99.0

    def test_csr_indptr_consistency(self, diamond_graph):
        indptr = diamond_graph.indptr
        assert indptr[0] == 0
        assert indptr[-1] == diamond_graph.adjacency_heads.shape[0]
        assert np.all(np.diff(indptr) >= 0)


class TestDerivedGraphs:
    def test_with_capacities(self, diamond_graph):
        new = diamond_graph.with_capacities([5, 5, 5, 5, 5])
        assert new.min_capacity == 5.0
        assert new.num_edges == diamond_graph.num_edges
        # Original untouched.
        assert diamond_graph.min_capacity == 1.0

    def test_with_capacities_wrong_shape(self, diamond_graph):
        with pytest.raises(InvalidInstanceError):
            diamond_graph.with_capacities([1.0, 2.0])

    def test_scaled(self, diamond_graph):
        doubled = diamond_graph.scaled(2.0)
        assert doubled.min_capacity == 2.0
        assert doubled.max_capacity == 6.0

    def test_scaled_rejects_nonpositive(self, diamond_graph):
        with pytest.raises(InvalidInstanceError):
            diamond_graph.scaled(0.0)

    def test_equality(self, diamond_graph):
        clone = CapacitatedGraph(4, diamond_graph.edge_list(), directed=True)
        assert clone == diamond_graph
        assert clone != diamond_graph.scaled(2.0)


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=12),
    edges=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=11),
            st.integers(min_value=0, max_value=11),
            st.floats(min_value=0.1, max_value=50.0, allow_nan=False),
        ),
        max_size=30,
    ),
    directed=st.booleans(),
)
def test_property_construction_invariants(n, edges, directed):
    """Any accepted edge list yields a graph whose CSR structure is coherent."""
    valid_edges = [(u % n, v % n, c) for u, v, c in edges if u % n != v % n]
    graph = CapacitatedGraph(n, valid_edges, directed=directed)
    assert graph.num_edges == len(valid_edges)
    # The CSR arc table contains each logical edge once (directed) or twice
    # (undirected), and every arc's edge id is valid.
    expected_arcs = len(valid_edges) if directed else 2 * len(valid_edges)
    assert graph.adjacency_heads.shape[0] == expected_arcs
    if valid_edges:
        assert int(graph.adjacency_edge_ids.max()) < graph.num_edges
    total_out_degree = sum(graph.out_degree(v) for v in range(n))
    assert total_out_degree == expected_arcs


class TestDisabledEdges:
    """Substrate faults: disabled edges keep their id and capacity but
    contribute no arcs to the routing adjacency (see repro.faults)."""

    def _triangle(self, directed=True, disabled=()):
        return CapacitatedGraph(
            3,
            [(0, 1, 2.0), (1, 2, 3.0), (0, 2, 5.0)],
            directed=directed,
            disabled_edges=disabled,
        )

    def test_disabled_edges_property(self):
        graph = self._triangle(disabled=[1])
        assert graph.disabled_edges == frozenset({1})
        assert self._triangle().disabled_edges == frozenset()

    def test_disabled_edge_keeps_id_and_capacity(self):
        graph = self._triangle(disabled=[1])
        assert graph.num_edges == 3
        assert graph.edge_endpoints(1) == (1, 2)
        assert graph.edge_capacity(1) == 3.0
        np.testing.assert_allclose(graph.capacities, [2.0, 3.0, 5.0])

    def test_disabled_edge_drops_arcs_directed(self):
        graph = self._triangle(disabled=[0])
        heads, edge_ids = graph.out_arcs(0)
        assert [int(h) for h in heads] == [2]
        assert [int(e) for e in edge_ids] == [2]
        assert graph.out_degree(0) == 1

    def test_disabled_edge_drops_both_arcs_undirected(self):
        graph = self._triangle(directed=False, disabled=[1])
        assert 2 not in [int(h) for h in graph.out_arcs(1)[0]]
        assert 1 not in [int(h) for h in graph.out_arcs(2)[0]]

    def test_with_disabled_edges_replaces_the_set(self):
        graph = self._triangle(disabled=[0])
        cut_more = graph.with_disabled_edges([0, 2])
        assert cut_more.disabled_edges == frozenset({0, 2})
        healed = cut_more.with_disabled_edges(())
        assert healed.disabled_edges == frozenset()
        assert healed == self._triangle()

    def test_with_capacities_inherits_or_replaces_disabled(self):
        graph = self._triangle(disabled=[1])
        resized = graph.with_capacities([2.0, 3.0, 9.0])
        assert resized.disabled_edges == frozenset({1})
        replaced = graph.with_capacities([2.0, 3.0, 9.0], disabled_edges=[2])
        assert replaced.disabled_edges == frozenset({2})

    def test_out_of_range_disabled_id_rejected(self):
        with pytest.raises(InvalidInstanceError, match="out of range"):
            self._triangle(disabled=[3])
        with pytest.raises(InvalidInstanceError, match="out of range"):
            self._triangle(disabled=[-1])

    def test_equality_includes_disabled_set(self):
        assert self._triangle(disabled=[1]) != self._triangle()
        assert self._triangle(disabled=[1]) == self._triangle(disabled=[1])

    def test_disabled_edges_excluded_from_bellman_ford_arcs(self):
        graph = self._triangle(disabled=[1])
        arcs = graph.bellman_ford_arcs()
        assert all(eid != 1 for _, _, eid in arcs)

"""Tests of the deterministic process-pool fan-out (:mod:`repro.parallel`).

Two layers: unit tests of ``pmap``'s contract (ordering, payload shipping,
jobs resolution, nested suppression), and end-to-end ``jobs=4 == jobs=1``
determinism tests for every fan-out point wired into the stack — payments,
truthfulness grids, and one experiment per family.
"""

from __future__ import annotations

import math
import os
import signal
from functools import partial

import numpy as np
import pytest

from repro import parallel
from repro.core import bounded_muca, bounded_ufp
from repro.auctions import random_auction
from repro.experiments import registry
from repro.flows import random_instance
from repro.flows.generators import isp_instance
from repro.mechanism import compute_muca_payments, compute_ufp_payments
from repro.mechanism.verification import (
    audit_muca_truthfulness,
    audit_ufp_truthfulness,
)


def _square(x):
    return x * x


def _payload_plus(x):
    return x + parallel.worker_payload()


def _nested_probe(x):
    # Inside a worker, nested fan-out must degrade to serial.
    inner = parallel.pmap(_square, [x, x + 1], jobs=4)
    return (parallel.in_worker(), parallel.resolve_jobs(4), inner)


class TestPmap:
    def test_serial_matches_plain_map(self):
        assert parallel.pmap(_square, range(10), jobs=1) == [x * x for x in range(10)]

    def test_parallel_preserves_task_order(self):
        assert parallel.pmap(_square, range(23), jobs=4) == [x * x for x in range(23)]

    def test_empty_task_list(self):
        assert parallel.pmap(_square, [], jobs=4) == []

    def test_payload_visible_in_workers_and_serial(self):
        assert parallel.pmap(_payload_plus, [1, 2], jobs=1, payload=10) == [11, 12]
        assert parallel.pmap(_payload_plus, [1, 2], jobs=2, payload=10) == [11, 12]

    def test_payload_restored_after_call(self):
        parallel.pmap(_payload_plus, [1], jobs=1, payload=99)
        assert parallel.worker_payload() is None

    def test_closures_work_under_fork(self):
        if "fork" not in __import__("multiprocessing").get_all_start_methods():
            pytest.skip("no fork start method")
        offset = 7
        assert parallel.pmap(lambda x: x + offset, range(5), jobs=2) == [
            x + 7 for x in range(5)
        ]

    def test_worker_exceptions_propagate(self):
        def boom(x):
            raise ValueError("task failed")

        with pytest.raises(ValueError, match="task failed"):
            parallel.pmap(boom, [1, 2, 3], jobs=2)

    def test_single_task_runs_serial(self):
        # jobs is clamped to the task count, so one task never pays for a pool.
        (probe,) = parallel.pmap(_nested_probe, [3], jobs=4)
        assert probe[0] is False  # ran in-process

    def test_nested_pmap_runs_serial_in_worker(self):
        results = parallel.pmap(_nested_probe, [3, 4], jobs=2)
        in_worker, resolved, inner = results[0]
        assert in_worker is True
        assert resolved == 1
        assert inner == [9, 16]
        assert results[1][2] == [16, 25]

    def test_resolve_jobs(self, monkeypatch):
        monkeypatch.delenv(parallel.JOBS_ENV_VAR, raising=False)
        assert parallel.resolve_jobs(None) == 1
        assert parallel.resolve_jobs(3) == 3
        assert parallel.resolve_jobs(0) == (os.cpu_count() or 1)
        monkeypatch.setenv(parallel.JOBS_ENV_VAR, "5")
        assert parallel.resolve_jobs(None) == 5
        monkeypatch.setenv(parallel.JOBS_ENV_VAR, "nope")
        with pytest.warns(UserWarning):
            assert parallel.resolve_jobs(None) == 1

    def test_derive_seeds_matches_spawn_rngs(self):
        from repro.utils.prng import spawn_rngs

        seeds = parallel.derive_seeds(123, 6)
        rngs = spawn_rngs(123, 6)
        rebuilt = [np.random.default_rng(s) for s in seeds]
        for a, b in zip(rebuilt, rngs):
            assert a.integers(0, 2**31).item() == b.integers(0, 2**31).item()


class TestPaymentsJobsDeterminism:
    def test_ufp_payments_bit_identical_across_jobs(self):
        # Contended ISP cell (same shape as E10's payment cell): the
        # mechanism actually charges, so the comparison is not vacuous.
        instance = isp_instance(
            num_core=3, leaves_per_core=2, core_capacity=10.0,
            access_capacity=7.0, num_requests=25, seed=42,
        )
        algorithm = partial(bounded_ufp, epsilon=0.5)
        allocation = bounded_ufp(instance, 0.5)
        serial = compute_ufp_payments(algorithm, instance, allocation, jobs=1)
        fanned = compute_ufp_payments(algorithm, instance, allocation, jobs=4)
        assert fanned.tobytes() == serial.tobytes()
        assert np.any(serial > 0)  # the cell actually charges someone

    def test_ufp_payments_accept_unpicklable_algorithm_under_fork(self):
        if "fork" not in __import__("multiprocessing").get_all_start_methods():
            pytest.skip("no fork start method")
        instance = random_instance(
            num_vertices=7, edge_probability=0.4, capacity=8.0,
            num_requests=10, demand_range=(0.5, 1.0), seed=11,
        )
        allocation = bounded_ufp(instance, 0.5)
        algorithm = lambda declared: bounded_ufp(declared, 0.5)  # noqa: E731
        serial = compute_ufp_payments(algorithm, instance, allocation, jobs=1)
        fanned = compute_ufp_payments(algorithm, instance, allocation, jobs=3)
        assert fanned.tobytes() == serial.tobytes()

    def test_muca_payments_bit_identical_across_jobs(self):
        auction = random_auction(
            num_items=12, num_bids=30, multiplicity=8.0,
            bundle_size_range=(1, 3), seed=5,
        )
        algorithm = partial(bounded_muca, epsilon=0.4)
        allocation = bounded_muca(auction, 0.4)
        serial = compute_muca_payments(algorithm, auction, allocation, jobs=1)
        fanned = compute_muca_payments(algorithm, auction, allocation, jobs=4)
        assert fanned.tobytes() == serial.tobytes()


def _report_fingerprint(report):
    return (
        report.agents_audited,
        report.misreports_tried,
        report.max_gain,
        [
            (d.agent_index, d.true_type, d.misreported_type,
             d.truthful_utility, d.deviating_utility)
            for d in report.profitable_deviations
        ],
    )


class TestVerificationJobsDeterminism:
    def test_ufp_audit_identical_across_jobs(self):
        instance = random_instance(
            num_vertices=8, edge_probability=0.35, capacity=12.0,
            num_requests=10, demand_range=(0.4, 1.0), seed=17,
        )
        algorithm = partial(bounded_ufp, epsilon=0.4)
        kwargs = dict(
            agents=[0, 1, 2, 3],
            misreports_per_agent=2,
            misreport_grid=[(0.5, 2.0), (1.0, 0.5)],
            seed=99,
        )
        serial = audit_ufp_truthfulness(algorithm, instance, jobs=1, **kwargs)
        fanned = audit_ufp_truthfulness(algorithm, instance, jobs=4, **kwargs)
        assert _report_fingerprint(serial) == _report_fingerprint(fanned)
        assert serial.is_truthful

    def test_muca_audit_identical_across_jobs(self):
        auction = random_auction(
            num_items=10, num_bids=18, multiplicity=10.0,
            bundle_size_range=(1, 3), seed=23,
        )
        algorithm = partial(bounded_muca, epsilon=0.4)
        kwargs = dict(
            agents=[0, 1, 2],
            misreports_per_agent=2,
            value_grid=[0.5, 2.0],
            seed=7,
        )
        serial = audit_muca_truthfulness(algorithm, auction, jobs=1, **kwargs)
        fanned = audit_muca_truthfulness(algorithm, auction, jobs=4, **kwargs)
        assert _report_fingerprint(serial) == _report_fingerprint(fanned)
        assert serial.is_truthful


def _canonical_rows(result):
    """Rows minus wall-clock noise, with NaN made comparable."""
    rows = []
    for row in result.rows:
        canonical = {}
        for key, value in row.items():
            if "time" in key:
                continue
            if isinstance(value, float) and math.isnan(value):
                value = "nan"
            canonical[key] = value
        rows.append(canonical)
    return rows


class TestExperimentJobsDeterminism:
    """``--jobs 4`` must reproduce the serial sweep — one experiment per
    family: approximation (E1), lower bound (E3), mechanism audits (E4),
    scaling (E9) and (slow lane) online streaming (E10)."""

    @pytest.mark.parametrize("experiment_id", ["E1", "E3", "E4", "E9"])
    def test_jobs4_matches_serial(self, experiment_id):
        serial = registry.run_experiment(experiment_id, quick=True, seed=7, jobs=1)
        fanned = registry.run_experiment(experiment_id, quick=True, seed=7, jobs=4)
        assert _canonical_rows(serial) == _canonical_rows(fanned)
        assert serial.claims == fanned.claims
        assert serial.all_claims_hold

    @pytest.mark.slow
    def test_jobs4_matches_serial_online(self):
        serial = registry.run_experiment("E10", quick=True, seed=7, jobs=1)
        fanned = registry.run_experiment("E10", quick=True, seed=7, jobs=4)
        assert _canonical_rows(serial) == _canonical_rows(fanned)
        assert serial.claims == fanned.claims
        assert serial.all_claims_hold


def _boom(x):
    if x % 3 == 1:
        raise ValueError(f"boom at {x}")
    return x * x


def _kill_self(x):
    # Dies only inside a pmap worker process — at jobs=1 the "crash" task
    # degenerates to an ordinary exception, which is the documented serial
    # analogue of a worker death.
    if x == 2:
        if parallel.in_worker():
            os.kill(os.getpid(), signal.SIGKILL)
        raise RuntimeError("would have crashed the worker")
    return x * x


class TestCaptureMode:
    def test_on_error_validated(self):
        with pytest.raises(ValueError, match="on_error"):
            parallel.pmap(_square, [1], on_error="ignore")

    def test_raise_mode_propagates_first_failure(self):
        with pytest.raises(ValueError, match="boom at 1"):
            parallel.pmap(_boom, range(6), jobs=1)

    def test_capture_wraps_failures_in_task_order(self):
        results = parallel.pmap(_boom, range(7), jobs=1, on_error="capture")
        for x, result in zip(range(7), results):
            if x % 3 == 1:
                assert isinstance(result, parallel.WorkerError)
                assert result.error_type == "ValueError"
                assert f"boom at {x}" in str(result)
            else:
                assert result == x * x

    def test_capture_serial_matches_parallel(self):
        serial = parallel.pmap(_boom, range(11), jobs=1, on_error="capture")
        pooled = parallel.pmap(_boom, range(11), jobs=3, on_error="capture")
        assert [
            (type(r).__name__, getattr(r, "error_type", None), str(r))
            for r in serial
        ] == [
            (type(r).__name__, getattr(r, "error_type", None), str(r))
            for r in pooled
        ]

    def test_worker_error_pickles_with_error_type(self):
        import pickle

        err = parallel.WorkerError("msg", error_type="KeyError")
        clone = pickle.loads(pickle.dumps(err))
        assert isinstance(clone, parallel.WorkerError)
        assert clone.error_type == "KeyError"
        assert str(clone) == "msg"

    def test_worker_crash_is_captured_and_neighbors_survive(self):
        # Task 2 SIGKILLs its worker.  Capture mode must report exactly that
        # task as a WorkerCrash and still return every other task's result
        # (via the isolated per-task retry of the poisoned chunks).
        results = parallel.pmap(
            _kill_self, range(6), jobs=2, chunk_size=1, on_error="capture"
        )
        assert isinstance(results[2], parallel.WorkerError)
        assert results[2].error_type == "WorkerCrash"
        for x in (0, 1, 3, 4, 5):
            assert results[x] == x * x

    def test_worker_crash_raise_mode_breaks_pool(self):
        from concurrent.futures.process import BrokenProcessPool

        with pytest.raises(BrokenProcessPool):
            parallel.pmap(_kill_self, range(6), jobs=2, chunk_size=1)


class TestCapturedTracebacks:
    """ISSUE-8 satellite: the worker's full traceback crosses the pickle
    boundary, so a quarantined failure is debuggable from the record alone."""

    def test_capture_preserves_the_raising_frame(self):
        results = parallel.pmap(_boom, range(4), jobs=2, chunk_size=1, on_error="capture")
        error = results[1]
        assert isinstance(error, parallel.WorkerError)
        assert "ValueError: boom at 1" in error.traceback
        assert "in _boom" in error.traceback

    def test_traceback_identical_serial_vs_pool(self):
        """jobs=1 and jobs=N captures must be the same bytes — the capture
        site's own frame is trimmed so only the task's frames remain."""
        serial = parallel.pmap(_boom, range(4), jobs=1, on_error="capture")
        pooled = parallel.pmap(_boom, range(4), jobs=2, chunk_size=1, on_error="capture")
        assert serial[1].traceback == pooled[1].traceback

    def test_pickle_roundtrip_keeps_the_traceback(self):
        import pickle

        error = parallel.WorkerError(
            "msg", error_type="KeyError", traceback="Traceback ...\nKeyError: 'msg'\n"
        )
        clone = pickle.loads(pickle.dumps(error))
        assert clone.traceback == error.traceback
        assert clone.error_type == "KeyError"

"""Tests of the scenario campaign subsystem (``repro.scenarios``).

Covers the spec layer (normalization, stable seeds, content hashes), the
result store (durability protocol, inf/nan-safe persistence, resume), the
runner (determinism across ``jobs``, skip/invalidate semantics) and the
CLI — including the ISSUE-5 acceptance scenario: the pinned demo campaign
(4 topology families × 3 capacity regimes × offline+online) runs to
completion, and resuming after deleting the final manifest entry
recomputes exactly the missing cell with a store hash bit-identical to an
uninterrupted run at ``--jobs 1`` and ``--jobs 4``.
"""

from __future__ import annotations

import json
import math

import pytest

from repro import scenarios
from repro.exceptions import InvalidInstanceError
from repro.scenarios.cli import main as scenarios_main
from repro.scenarios.regimes import build_cell_instance, resolve_base_capacity
from repro.scenarios.runner import run_cell
from repro.scenarios.store import ResultStore


def _tiny_suite(**overrides):
    suite = {
        "name": "tiny",
        "seed": 5,
        "topologies": [{"name": "g", "family": "grid", "rows": 3, "cols": 3}],
        "regimes": [{"name": "r", "capacity": 6.0, "num_requests": 8}],
        "modes": [{"name": "off", "kind": "offline", "bound": "none"}],
    }
    suite.update(overrides)
    return suite


# ---------------------------------------------------------------------- #
# Specs
# ---------------------------------------------------------------------- #
class TestSpecs:
    def test_enumerate_cells_is_the_cross_product(self):
        cells = scenarios.enumerate_cells(scenarios.get_suite("demo"))
        assert len(cells) == 4 * 3 * 2
        assert cells[0].key == "clos/adversarial-tiny/offline"
        assert len({c.key for c in cells}) == len(cells)

    def test_unknown_suite_keys_rejected(self):
        with pytest.raises(InvalidInstanceError, match="unknown suite keys"):
            scenarios.normalize_suite(_tiny_suite(topologys=[]))

    def test_missing_section_rejected(self):
        spec = _tiny_suite()
        del spec["modes"]
        with pytest.raises(InvalidInstanceError, match="missing"):
            scenarios.normalize_suite(spec)

    def test_duplicate_names_rejected(self):
        spec = _tiny_suite(
            regimes=[{"name": "r", "capacity": 4.0}, {"name": "r", "capacity": 8.0}]
        )
        with pytest.raises(InvalidInstanceError, match="duplicate"):
            scenarios.normalize_suite(spec)

    def test_cell_seeds_stable_under_reordering(self):
        """Adding a topology must not change existing cells' seeds."""
        base = scenarios.enumerate_cells(_tiny_suite())
        extended = scenarios.enumerate_cells(
            _tiny_suite(
                topologies=[
                    {"name": "w", "family": "waxman", "num_vertices": 8},
                    {"name": "g", "family": "grid", "rows": 3, "cols": 3},
                ]
            )
        )
        by_key = {c.key: c for c in extended}
        assert by_key["g/r/off"].topology_seed == base[0].topology_seed
        assert by_key["g/r/off"].workload_seed == base[0].workload_seed

    def test_cell_hash_tracks_spec_changes(self):
        a = scenarios.enumerate_cells(_tiny_suite())[0]
        b = scenarios.enumerate_cells(
            _tiny_suite(regimes=[{"name": "r", "capacity": 7.0, "num_requests": 8}])
        )[0]
        assert a.key == b.key
        assert scenarios.cell_hash(a) != scenarios.cell_hash(b)

    def test_modes_share_workload_topologies_share_structure(self):
        """Offline and online modes of one (topology, regime) pair must see
        the same instance; regimes sweep capacity over the same structure."""
        suite = _tiny_suite(
            regimes=[
                {"name": "lo", "capacity": 4.0, "num_requests": 8},
                {"name": "hi", "capacity": 9.0, "num_requests": 8},
            ],
            modes=[
                {"name": "off", "kind": "offline", "bound": "none"},
                {"name": "on", "kind": "online"},
            ],
        )
        cells = {c.key: c for c in scenarios.enumerate_cells(suite)}
        inst_off, _, _ = build_cell_instance(cells["g/lo/off"])
        inst_on, _, _ = build_cell_instance(cells["g/lo/on"])
        assert [r.type for r in inst_off.requests] == [r.type for r in inst_on.requests]
        inst_hi, _, _ = build_cell_instance(cells["g/hi/off"])
        assert [(e.tail, e.head) for e in inst_off.graph.edges()] == [
            (e.tail, e.head) for e in inst_hi.graph.edges()
        ]
        assert inst_off.graph.capacities[0] != inst_hi.graph.capacities[0]


class TestRegimes:
    def test_resolve_capacity_forms(self):
        assert resolve_base_capacity({"capacity": 5.0}, 0) == 5.0
        assert resolve_base_capacity({"capacity": {"value": 3.0}}, 0) == 3.0
        scaled = resolve_base_capacity(
            {"capacity": {"scale_log_m": 2.0, "min": 1.0}}, 100
        )
        assert scaled == pytest.approx(2.0 * math.log(100))
        # The floor kicks in on tiny graphs.
        assert resolve_base_capacity(
            {"capacity": {"scale_log_m": 0.1, "min": 2.0}}, 10
        ) == 2.0

    def test_bad_capacity_specs(self):
        with pytest.raises(InvalidInstanceError):
            resolve_base_capacity({"capacity": {"bogus": 1}}, 10)
        with pytest.raises(InvalidInstanceError):
            resolve_base_capacity({"capacity": -1.0}, 10)

    def test_terminal_pools_respected(self):
        """ISP-style families place request endpoints on leaves/hosts."""
        suite = _tiny_suite(
            topologies=[{"name": "ft", "family": "fat_tree", "k": 4}]
        )
        cell = scenarios.enumerate_cells(suite)[0]
        instance, topology, _ = build_cell_instance(cell)
        terminals = set(topology.terminals)
        for request in instance.requests:
            assert request.source in terminals
            assert request.target in terminals


# ---------------------------------------------------------------------- #
# Store
# ---------------------------------------------------------------------- #
class TestResultStore:
    def test_append_and_read_back(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.initialize(_tiny_suite())
        store.append("a/b/c", "h1", {"value": 1.5, "ratio": math.inf})
        assert store.completed() == {"a/b/c": "h1"}
        record = store.records()["a/b/c"]
        assert record["value"] == 1.5
        assert record["ratio"] == math.inf

    def test_store_files_are_strict_json(self, tmp_path):
        """No Infinity/NaN tokens ever reach disk (ISSUE-5 satellite)."""
        store = ResultStore(tmp_path / "s")
        store.initialize(_tiny_suite())
        store.append("k", "h", {"ratio": math.inf, "x": math.nan, "lo": -math.inf})
        for path in (store.results_path, store.manifest_path, store.suite_path):
            text = path.read_text()
            assert "Infinity" not in text and "NaN" not in text
            for line in text.strip().splitlines():
                json.loads(line, parse_constant=pytest.fail)  # strict parse
        record = store.records()["k"]
        assert record["ratio"] == math.inf
        assert record["lo"] == -math.inf
        assert math.isnan(record["x"])

    def test_orphan_record_is_ignored(self, tmp_path):
        """A record line without its manifest entry (crash between the two
        appends) is invisible — the manifest is the source of truth."""
        store = ResultStore(tmp_path / "s")
        store.initialize(_tiny_suite())
        store.append("good", "h", {"v": 1})
        # Simulate the crash: record written, manifest lost.
        with store.results_path.open("a") as handle:
            handle.write('{"key": "torn", "cell": "h2", "record": {"v": 2}}\n')
        assert set(store.records()) == {"good"}
        assert set(store.completed()) == {"good"}

    def test_torn_trailing_line_is_tolerated(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.initialize(_tiny_suite())
        store.append("good", "h", {"v": 1})
        with store.manifest_path.open("a") as handle:
            handle.write('{"key": "half')  # no newline, cut mid-write
        assert store.completed() == {"good": "h"}

    def test_mismatched_suite_rejected_fresh_wipes(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.initialize(_tiny_suite())
        store.append("k", "h", {"v": 1})
        other = _tiny_suite(name="other")
        with pytest.raises(InvalidInstanceError, match="different suite"):
            store.initialize(other)
        store.initialize(other, fresh=True)
        assert store.completed() == {}

    def test_edited_suite_same_name_updates_spec(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.initialize(_tiny_suite())
        edited = _tiny_suite(seed=99)
        store.initialize(edited)
        assert store.load_suite()["seed"] == 99


class TestStoreDurability:
    """ISSUE-8 satellite: commits survive *power loss*, not just process
    death.  fsync on the file makes the bytes durable, but a freshly
    created file can vanish with its (unsynced) directory entry — so
    creating a store file must fsync the parent directory too."""

    def test_creating_store_files_fsyncs_their_directory(self, tmp_path, monkeypatch):
        import os
        import stat

        real_fsync = os.fsync
        synced_dir_inodes = set()

        def spying_fsync(fd):
            status = os.fstat(fd)
            if stat.S_ISDIR(status.st_mode):
                synced_dir_inodes.add(status.st_ino)
            return real_fsync(fd)

        monkeypatch.setattr("os.fsync", spying_fsync)
        store = ResultStore(tmp_path / "s")
        store.initialize(_tiny_suite())
        store.append("k", "h", {"v": 1})
        assert (tmp_path / "s").stat().st_ino in synced_dir_inodes

    def test_commit_then_reopen_sees_identical_content(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.initialize(_tiny_suite())
        store.append("k", "h", {"v": 1.5})
        committed_hash = store.content_hash()
        reopened = ResultStore(tmp_path / "s")
        assert reopened.completed() == {"k": "h"}
        assert reopened.records()["k"]["v"] == 1.5
        assert reopened.content_hash() == committed_hash


# ---------------------------------------------------------------------- #
# Runner
# ---------------------------------------------------------------------- #
class TestRunner:
    def test_records_are_deterministic_and_timing_free(self):
        cell = scenarios.enumerate_cells(_tiny_suite())[0]
        a = run_cell(cell).rows[0]
        b = run_cell(cell).rows[0]
        assert a == b  # bit-identical, no wall-clock columns

    def test_smoke_campaign_in_memory(self):
        result = scenarios.run_campaign(scenarios.get_suite("smoke"))
        assert result.num_cells == 8
        assert result.all_cells_ok
        assert not result.skipped

    def test_resume_skips_everything_on_complete_store(self, tmp_path):
        suite = _tiny_suite()
        store = ResultStore(tmp_path / "s")
        first = scenarios.run_campaign(suite, store=store)
        assert len(first.computed) == 1
        second = scenarios.run_campaign(suite, store=store)
        assert not second.computed
        assert len(second.skipped) == 1
        assert second.records == first.records

    def test_spec_change_invalidates_only_affected_cells(self, tmp_path):
        """Editing one regime recomputes only its cells; editing the suite
        name is rejected (a different campaign must not share a store)."""
        suite = _tiny_suite(
            regimes=[
                {"name": "a", "capacity": 5.0, "num_requests": 8},
                {"name": "b", "capacity": 6.0, "num_requests": 8},
            ]
        )
        store = ResultStore(tmp_path / "s")
        first = scenarios.run_campaign(suite, store=store)
        assert len(first.computed) == 2

        suite["regimes"][1]["capacity"] = 7.0
        resumed = scenarios.run_campaign(suite, store=store)
        assert resumed.computed == ["g/b/off"]
        assert resumed.skipped == ["g/a/off"]
        assert resumed.invalidated == ["g/b/off"]
        assert resumed.records["g/b/off"]["B"] == 7.0

        with pytest.raises(InvalidInstanceError, match="different suite"):
            scenarios.run_campaign(_tiny_suite(name="other"), store=store)

    def test_damaged_results_file_degrades_to_recompute(self, tmp_path):
        """A manifest-committed cell whose results line is lost must be
        recomputed on resume, not crash the campaign."""
        suite = _tiny_suite()
        store = ResultStore(tmp_path / "s")
        first = scenarios.run_campaign(suite, store=store)
        store.results_path.write_text("")  # damage: records gone, manifest intact
        resumed = scenarios.run_campaign(suite, store=store)
        assert resumed.computed == ["g/r/off"]
        assert resumed.records == first.records

    def test_renamed_cells_do_not_linger_in_reports(self, tmp_path):
        """After renaming a regime, the old cell's record stays in the store
        but is excluded from the current suite's records and hash."""
        suite = _tiny_suite()
        store = ResultStore(tmp_path / "s")
        scenarios.run_campaign(suite, store=store)
        suite["regimes"][0]["name"] = "renamed"
        resumed = scenarios.run_campaign(suite, store=store)
        assert list(resumed.records) == ["g/renamed/off"]
        assert set(store.records(resumed.records)) == {"g/renamed/off"}
        # A fresh store running the edited suite hashes identically.
        fresh = ResultStore(tmp_path / "fresh")
        scenarios.run_campaign(suite, store=fresh)
        assert store.content_hash(resumed.records) == fresh.content_hash()

    def test_failed_claims_surface_in_record(self):
        # An online cell comparing against offline cannot fail its claims on
        # a sane instance, so check the plumbing instead: claims_ok present.
        result = scenarios.run_campaign(_tiny_suite())
        record = next(iter(result.records.values()))
        assert record["claims_ok"] is True


@pytest.mark.slow
class TestDemoCampaignAcceptance:
    """The ISSUE-5 acceptance scenario on the pinned demo campaign."""

    def test_demo_run_kill_resume_hash_identity(self, tmp_path):
        suite = scenarios.get_suite("demo")
        cells = scenarios.enumerate_cells(suite)
        assert len({c.topology["name"] for c in cells}) >= 4
        assert len({c.regime["name"] for c in cells}) >= 3
        assert {c.mode["kind"] for c in cells} == {"offline", "online"}

        store1 = ResultStore(tmp_path / "jobs1")
        result1 = scenarios.run_campaign(suite, store=store1, jobs=1)
        assert result1.all_cells_ok and len(result1.computed) == len(cells)
        reference_hash = store1.content_hash()

        store4 = ResultStore(tmp_path / "jobs4")
        result4 = scenarios.run_campaign(suite, store=store4, jobs=4)
        assert store4.content_hash() == reference_hash
        assert result4.records == result1.records

        # Kill: drop the final manifest entry; resume must recompute
        # exactly that cell and restore the exact store hash, at jobs=1
        # and jobs=4.
        for store, jobs in ((store1, 1), (store4, 4)):
            lines = store.manifest_path.read_text().strip().splitlines()
            dropped = json.loads(lines[-1])["key"]
            store.manifest_path.write_text("\n".join(lines[:-1]) + "\n")
            resumed = scenarios.run_campaign(suite, store=store, jobs=jobs)
            assert resumed.computed == [dropped]
            assert len(resumed.skipped) == len(cells) - 1
            assert store.content_hash() == reference_hash

    def test_demo_exercises_nonfinite_persistence(self, tmp_path):
        """The adversarial-tiny regime yields inf ratios that must
        round-trip through the store."""
        store = ResultStore(tmp_path / "s")
        scenarios.run_campaign(scenarios.get_suite("demo"), store=store, jobs=1)
        records = store.records()
        assert any(
            record.get("ratio") == math.inf for record in records.values()
        ), "expected at least one inf ratio in the demo campaign"
        assert "Infinity" not in store.results_path.read_text()


# ---------------------------------------------------------------------- #
# CLI
# ---------------------------------------------------------------------- #
class TestCLI:
    def test_list(self, capsys):
        assert scenarios_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "demo" in out and "fat_tree" in out

    def test_run_report_resume_roundtrip(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        assert scenarios_main(["run", "smoke", "--store", store_dir]) == 0
        out = capsys.readouterr().out
        assert "8 total, 8 computed, 0 skipped" in out
        assert "store hash:" in out

        assert scenarios_main(["resume", "--store", store_dir]) == 0
        out = capsys.readouterr().out
        assert "8 total, 0 computed, 8 skipped" in out

        assert scenarios_main(["report", "--store", store_dir]) == 0
        out = capsys.readouterr().out
        assert "Scenario campaign: smoke" in out

    def test_run_suite_from_json_file(self, tmp_path, capsys):
        spec_path = tmp_path / "suite.json"
        spec_path.write_text(json.dumps(_tiny_suite()))
        assert scenarios_main(["run", str(spec_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["suite"] == "tiny"
        assert payload["records"]["g/r/off"]["claims_ok"] is True

    def test_unknown_suite_errors(self):
        with pytest.raises(SystemExit):
            scenarios_main(["run", "no-such-suite"])

    def test_missing_suite_file_errors_cleanly(self):
        with pytest.raises(SystemExit, match="not found"):
            scenarios_main(["run", "/nonexistent/suite.json"])

    def test_resume_json_is_parseable_with_pending_cells(self, tmp_path, capsys):
        """resume --json must not interleave progress lines with the JSON."""
        store_dir = str(tmp_path / "store")
        assert scenarios_main(["run", "smoke", "--store", store_dir, "--json"]) == 0
        capsys.readouterr()
        manifest = ResultStore(store_dir).manifest_path
        lines = manifest.read_text().strip().splitlines()
        manifest.write_text("\n".join(lines[:-1]) + "\n")
        assert scenarios_main(["resume", "--store", store_dir, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["computed"]) == 1

    def test_seed_override_changes_workload(self, tmp_path, capsys):
        spec_path = tmp_path / "suite.json"
        spec_path.write_text(json.dumps(_tiny_suite()))
        assert scenarios_main(["run", str(spec_path), "--json", "--seed", "6"]) == 0
        a = json.loads(capsys.readouterr().out)["records"]["g/r/off"]
        assert scenarios_main(["run", str(spec_path), "--json", "--seed", "7"]) == 0
        b = json.loads(capsys.readouterr().out)["records"]["g/r/off"]
        assert a != b


# ---------------------------------------------------------------------- #
# Store torn-append repair (ISSUE-6 satellite)
# ---------------------------------------------------------------------- #
class TestTornAppendRepair:
    def test_append_onto_torn_tail_repairs_first(self, tmp_path):
        """A kill mid-write leaves an unterminated line; the next append
        must truncate it instead of merging the new record into the
        fragment (which would silently lose a committed cell)."""
        store = ResultStore(tmp_path / "s")
        store.initialize(_tiny_suite())
        store.append("k1", "h1", {"v": 1})
        with store.results_path.open("a") as handle:
            handle.write('{"key": "torn", "cell": "hx", "record"')
        with store.manifest_path.open("a") as handle:
            handle.write('{"key": "torn"')
        store.append("k3", "h3", {"v": 3})
        assert set(store.records()) == {"k1", "k3"}
        assert store.completed() == {"k1": "h1", "k3": "h3"}
        # Every surviving line is complete, parseable JSON.
        for path in (store.results_path, store.manifest_path):
            text = path.read_text()
            assert text.endswith("\n")
            for line in text.strip().splitlines():
                json.loads(line)

    def test_repair_is_noop_on_clean_and_missing_files(self, tmp_path):
        from repro.scenarios.store import _repair_trailing

        store = ResultStore(tmp_path / "s")
        store.initialize(_tiny_suite())
        store.append("k", "h", {"v": 1})
        before = store.results_path.read_text()
        assert _repair_trailing(store.results_path) is False
        assert store.results_path.read_text() == before
        assert _repair_trailing(tmp_path / "missing.jsonl") is False
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert _repair_trailing(empty) is False

    def test_repair_of_fragment_only_file(self, tmp_path):
        from repro.scenarios.store import _repair_trailing

        path = tmp_path / "frag.jsonl"
        path.write_text('{"key": "torn"')  # no complete line at all
        assert _repair_trailing(path) is True
        assert path.read_text() == ""

    def test_torn_tail_then_append_preserves_store_hash(self, tmp_path):
        """Resume over a repaired store must hash identically to an
        uninterrupted run — the torn cell is just recomputed."""
        suite = _tiny_suite()
        clean = ResultStore(tmp_path / "clean")
        scenarios.run_campaign(suite, store=clean)
        reference = clean.content_hash()

        torn = ResultStore(tmp_path / "torn")
        scenarios.run_campaign(suite, store=torn)
        # Tear off the (only) manifest line mid-write.
        text = torn.manifest_path.read_text().strip()
        torn.manifest_path.write_text(text[: len(text) // 2])
        resumed = scenarios.run_campaign(suite, store=torn)
        assert resumed.computed == ["g/r/off"]
        assert torn.content_hash() == reference


# ---------------------------------------------------------------------- #
# Crash-tolerant campaign runner (ISSUE-6 tentpole)
# ---------------------------------------------------------------------- #
def _chaos_tiny_suite(inject="exception", **mode_extra):
    bad = {
        "name": "bad",
        "kind": "offline",
        "bound": "none",
        "inject_failure": inject,
        **mode_extra,
    }
    good = {"name": "off", "kind": "offline", "bound": "none"}
    return _tiny_suite(modes=[good, bad])


class TestQuarantine:
    def test_failing_cell_is_quarantined_and_campaign_completes(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        result = scenarios.run_campaign(
            _chaos_tiny_suite(), store=store, retries=1
        )
        assert result.failed == ["g/r/bad"]
        assert not result.all_cells_ok
        assert "1 FAILED (quarantined)" in result.summary_line()
        record = result.records["g/r/bad"]
        assert record["failed"] is True
        assert record["claims_ok"] is False
        assert record["error_type"] == "RuntimeError"
        assert record["attempts"] == 2  # initial try + one retry
        assert "injected failure" in record["error"]
        # The healthy cell is unaffected.
        assert result.records["g/r/off"]["claims_ok"] is True
        # The quarantine record is durably committed.
        assert store.records()["g/r/bad"]["failed"] is True

    def test_quarantined_cell_is_retried_on_resume(self, tmp_path):
        suite = _chaos_tiny_suite()
        store = ResultStore(tmp_path / "s")
        scenarios.run_campaign(suite, store=store)
        resumed = scenarios.run_campaign(suite, store=store)
        # The healthy cell is skipped; the quarantined one is never
        # skipped — resume retries it instead of trusting the failure.
        assert resumed.skipped == ["g/r/off"]
        assert resumed.computed == ["g/r/bad"]
        assert resumed.failed == ["g/r/bad"]

    def test_quarantine_records_hash_deterministically(self, tmp_path):
        suite = _chaos_tiny_suite()
        a = ResultStore(tmp_path / "a")
        b = ResultStore(tmp_path / "b")
        scenarios.run_campaign(suite, store=a, retries=1)
        scenarios.run_campaign(suite, store=b, retries=1)
        assert a.content_hash() == b.content_hash()

    def test_worker_crash_quarantined_under_jobs(self, tmp_path):
        """A cell that SIGKILLs its worker process is captured as a
        WorkerCrash; the other cells' results survive the poisoned pool."""
        store = ResultStore(tmp_path / "s")
        result = scenarios.run_campaign(
            _chaos_tiny_suite(inject="sigkill"), store=store, jobs=2
        )
        assert result.failed == ["g/r/bad"]
        assert result.records["g/r/bad"]["error_type"] == "WorkerCrash"
        assert result.records["g/r/off"]["claims_ok"] is True

    def test_cell_timeout_quarantines_hung_cell(self):
        result = scenarios.run_campaign(
            _chaos_tiny_suite(inject="timeout"), cell_timeout=0.2
        )
        assert result.failed == ["g/r/bad"]
        assert result.records["g/r/bad"]["error_type"] == "CellTimeoutError"
        assert result.records["g/r/off"]["claims_ok"] is True


# ---------------------------------------------------------------------- #
# Fault regimes in suites (ISSUE-6 tentpole)
# ---------------------------------------------------------------------- #
def _online_mode(**extra):
    return {
        "name": "stream",
        "kind": "online",
        "epsilon": "auto",
        "arrivals": "bursty",
        "burst_size": 4,
        **extra,
    }


class TestFaultModes:
    def test_chaos_suite_is_builtin(self):
        assert "chaos" in scenarios.available_suites()
        suite = scenarios.get_suite("chaos")
        mode_names = {mode["name"] for mode in suite["modes"]}
        assert {"stream", "failures", "churn", "jam", "everything"} <= mode_names

    def test_zero_intensity_faults_record_identical_to_fault_free(self):
        """A mode carrying ``faults: {}`` must produce a record dict-equal
        to the fault-free mode (different cell hash, same physics) — the
        differential guarantee the whole fault layer is built on."""
        plain = scenarios.run_campaign(_tiny_suite(modes=[_online_mode()]))
        faulted = scenarios.run_campaign(
            _tiny_suite(modes=[_online_mode(faults={})])
        )
        a = plain.records["g/r/stream"]
        b = faulted.records["g/r/stream"]
        assert a == b
        assert "fault_events" not in b

    def test_fault_mode_emits_degradation_columns(self):
        result = scenarios.run_campaign(
            _tiny_suite(
                modes=[
                    _online_mode(
                        faults={"edge_failure_rate": 1.5, "failure_duration": 2}
                    )
                ]
            )
        )
        record = result.records["g/r/stream"]
        assert record["claims_ok"] is True
        assert record["fault_events"] > 0

    def test_chaos_suite_store_hash_jobs_invariant(self, tmp_path):
        suite = scenarios.get_suite("chaos")
        s1 = ResultStore(tmp_path / "j1")
        s4 = ResultStore(tmp_path / "j4")
        r1 = scenarios.run_campaign(suite, store=s1, jobs=1)
        r4 = scenarios.run_campaign(suite, store=s4, jobs=4)
        assert r1.all_cells_ok and not r1.failed
        assert r1.records == r4.records
        assert s1.content_hash() == s4.content_hash()
        # The violent modes actually exercise the degradation paths.
        revocations = sum(
            record.get("fault_revocations", 0) for record in r1.records.values()
        )
        jammed = sum(
            record.get("fault_jam_arrived", 0) for record in r1.records.values()
        )
        assert revocations > 0 and jammed > 0


# ---------------------------------------------------------------------- #
# CLI robustness flags + failure-aware exit codes (ISSUE-6 satellite)
# ---------------------------------------------------------------------- #
class TestCLIRobustness:
    def test_failed_cells_make_run_and_resume_exit_nonzero(
        self, tmp_path, capsys
    ):
        spec_path = tmp_path / "suite.json"
        spec_path.write_text(json.dumps(_chaos_tiny_suite()))
        store_dir = str(tmp_path / "store")
        assert (
            scenarios_main(
                ["run", str(spec_path), "--store", store_dir, "--retries", "1"]
            )
            == 1
        )
        out = capsys.readouterr().out
        assert "1 FAILED (quarantined)" in out
        assert scenarios_main(["resume", "--store", store_dir]) == 1
        out = capsys.readouterr().out
        assert "1 FAILED (quarantined)" in out

    def test_failed_cells_surface_in_json_payload(self, tmp_path, capsys):
        spec_path = tmp_path / "suite.json"
        spec_path.write_text(json.dumps(_chaos_tiny_suite()))
        assert scenarios_main(["run", str(spec_path), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["failed"] == ["g/r/bad"]
        assert payload["records"]["g/r/bad"]["failed"] is True

    def test_clean_run_with_robustness_flags_exits_zero(self, tmp_path, capsys):
        spec_path = tmp_path / "suite.json"
        spec_path.write_text(json.dumps(_tiny_suite()))
        assert (
            scenarios_main(
                [
                    "run",
                    str(spec_path),
                    "--json",
                    "--retries",
                    "2",
                    "--retry-backoff",
                    "0.01",
                    "--cell-timeout",
                    "300",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["failed"] == []

    def test_cell_timeout_flag_quarantines(self, tmp_path, capsys):
        spec_path = tmp_path / "suite.json"
        spec_path.write_text(json.dumps(_chaos_tiny_suite(inject="timeout")))
        assert (
            scenarios_main(
                ["run", str(spec_path), "--json", "--cell-timeout", "0.2"]
            )
            == 1
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["records"]["g/r/bad"]["error_type"] == "CellTimeoutError"

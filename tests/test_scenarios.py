"""Tests of the scenario campaign subsystem (``repro.scenarios``).

Covers the spec layer (normalization, stable seeds, content hashes), the
result store (durability protocol, inf/nan-safe persistence, resume), the
runner (determinism across ``jobs``, skip/invalidate semantics) and the
CLI — including the ISSUE-5 acceptance scenario: the pinned demo campaign
(4 topology families × 3 capacity regimes × offline+online) runs to
completion, and resuming after deleting the final manifest entry
recomputes exactly the missing cell with a store hash bit-identical to an
uninterrupted run at ``--jobs 1`` and ``--jobs 4``.
"""

from __future__ import annotations

import json
import math

import pytest

from repro import scenarios
from repro.exceptions import InvalidInstanceError
from repro.scenarios.cli import main as scenarios_main
from repro.scenarios.regimes import build_cell_instance, resolve_base_capacity
from repro.scenarios.runner import run_cell
from repro.scenarios.store import ResultStore


def _tiny_suite(**overrides):
    suite = {
        "name": "tiny",
        "seed": 5,
        "topologies": [{"name": "g", "family": "grid", "rows": 3, "cols": 3}],
        "regimes": [{"name": "r", "capacity": 6.0, "num_requests": 8}],
        "modes": [{"name": "off", "kind": "offline", "bound": "none"}],
    }
    suite.update(overrides)
    return suite


# ---------------------------------------------------------------------- #
# Specs
# ---------------------------------------------------------------------- #
class TestSpecs:
    def test_enumerate_cells_is_the_cross_product(self):
        cells = scenarios.enumerate_cells(scenarios.get_suite("demo"))
        assert len(cells) == 4 * 3 * 2
        assert cells[0].key == "clos/adversarial-tiny/offline"
        assert len({c.key for c in cells}) == len(cells)

    def test_unknown_suite_keys_rejected(self):
        with pytest.raises(InvalidInstanceError, match="unknown suite keys"):
            scenarios.normalize_suite(_tiny_suite(topologys=[]))

    def test_missing_section_rejected(self):
        spec = _tiny_suite()
        del spec["modes"]
        with pytest.raises(InvalidInstanceError, match="missing"):
            scenarios.normalize_suite(spec)

    def test_duplicate_names_rejected(self):
        spec = _tiny_suite(
            regimes=[{"name": "r", "capacity": 4.0}, {"name": "r", "capacity": 8.0}]
        )
        with pytest.raises(InvalidInstanceError, match="duplicate"):
            scenarios.normalize_suite(spec)

    def test_cell_seeds_stable_under_reordering(self):
        """Adding a topology must not change existing cells' seeds."""
        base = scenarios.enumerate_cells(_tiny_suite())
        extended = scenarios.enumerate_cells(
            _tiny_suite(
                topologies=[
                    {"name": "w", "family": "waxman", "num_vertices": 8},
                    {"name": "g", "family": "grid", "rows": 3, "cols": 3},
                ]
            )
        )
        by_key = {c.key: c for c in extended}
        assert by_key["g/r/off"].topology_seed == base[0].topology_seed
        assert by_key["g/r/off"].workload_seed == base[0].workload_seed

    def test_cell_hash_tracks_spec_changes(self):
        a = scenarios.enumerate_cells(_tiny_suite())[0]
        b = scenarios.enumerate_cells(
            _tiny_suite(regimes=[{"name": "r", "capacity": 7.0, "num_requests": 8}])
        )[0]
        assert a.key == b.key
        assert scenarios.cell_hash(a) != scenarios.cell_hash(b)

    def test_modes_share_workload_topologies_share_structure(self):
        """Offline and online modes of one (topology, regime) pair must see
        the same instance; regimes sweep capacity over the same structure."""
        suite = _tiny_suite(
            regimes=[
                {"name": "lo", "capacity": 4.0, "num_requests": 8},
                {"name": "hi", "capacity": 9.0, "num_requests": 8},
            ],
            modes=[
                {"name": "off", "kind": "offline", "bound": "none"},
                {"name": "on", "kind": "online"},
            ],
        )
        cells = {c.key: c for c in scenarios.enumerate_cells(suite)}
        inst_off, _, _ = build_cell_instance(cells["g/lo/off"])
        inst_on, _, _ = build_cell_instance(cells["g/lo/on"])
        assert [r.type for r in inst_off.requests] == [r.type for r in inst_on.requests]
        inst_hi, _, _ = build_cell_instance(cells["g/hi/off"])
        assert [(e.tail, e.head) for e in inst_off.graph.edges()] == [
            (e.tail, e.head) for e in inst_hi.graph.edges()
        ]
        assert inst_off.graph.capacities[0] != inst_hi.graph.capacities[0]


class TestRegimes:
    def test_resolve_capacity_forms(self):
        assert resolve_base_capacity({"capacity": 5.0}, 0) == 5.0
        assert resolve_base_capacity({"capacity": {"value": 3.0}}, 0) == 3.0
        scaled = resolve_base_capacity(
            {"capacity": {"scale_log_m": 2.0, "min": 1.0}}, 100
        )
        assert scaled == pytest.approx(2.0 * math.log(100))
        # The floor kicks in on tiny graphs.
        assert resolve_base_capacity(
            {"capacity": {"scale_log_m": 0.1, "min": 2.0}}, 10
        ) == 2.0

    def test_bad_capacity_specs(self):
        with pytest.raises(InvalidInstanceError):
            resolve_base_capacity({"capacity": {"bogus": 1}}, 10)
        with pytest.raises(InvalidInstanceError):
            resolve_base_capacity({"capacity": -1.0}, 10)

    def test_terminal_pools_respected(self):
        """ISP-style families place request endpoints on leaves/hosts."""
        suite = _tiny_suite(
            topologies=[{"name": "ft", "family": "fat_tree", "k": 4}]
        )
        cell = scenarios.enumerate_cells(suite)[0]
        instance, topology, _ = build_cell_instance(cell)
        terminals = set(topology.terminals)
        for request in instance.requests:
            assert request.source in terminals
            assert request.target in terminals


# ---------------------------------------------------------------------- #
# Store
# ---------------------------------------------------------------------- #
class TestResultStore:
    def test_append_and_read_back(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.initialize(_tiny_suite())
        store.append("a/b/c", "h1", {"value": 1.5, "ratio": math.inf})
        assert store.completed() == {"a/b/c": "h1"}
        record = store.records()["a/b/c"]
        assert record["value"] == 1.5
        assert record["ratio"] == math.inf

    def test_store_files_are_strict_json(self, tmp_path):
        """No Infinity/NaN tokens ever reach disk (ISSUE-5 satellite)."""
        store = ResultStore(tmp_path / "s")
        store.initialize(_tiny_suite())
        store.append("k", "h", {"ratio": math.inf, "x": math.nan, "lo": -math.inf})
        for path in (store.results_path, store.manifest_path, store.suite_path):
            text = path.read_text()
            assert "Infinity" not in text and "NaN" not in text
            for line in text.strip().splitlines():
                json.loads(line, parse_constant=pytest.fail)  # strict parse
        record = store.records()["k"]
        assert record["ratio"] == math.inf
        assert record["lo"] == -math.inf
        assert math.isnan(record["x"])

    def test_orphan_record_is_ignored(self, tmp_path):
        """A record line without its manifest entry (crash between the two
        appends) is invisible — the manifest is the source of truth."""
        store = ResultStore(tmp_path / "s")
        store.initialize(_tiny_suite())
        store.append("good", "h", {"v": 1})
        # Simulate the crash: record written, manifest lost.
        with store.results_path.open("a") as handle:
            handle.write('{"key": "torn", "cell": "h2", "record": {"v": 2}}\n')
        assert set(store.records()) == {"good"}
        assert set(store.completed()) == {"good"}

    def test_torn_trailing_line_is_tolerated(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.initialize(_tiny_suite())
        store.append("good", "h", {"v": 1})
        with store.manifest_path.open("a") as handle:
            handle.write('{"key": "half')  # no newline, cut mid-write
        assert store.completed() == {"good": "h"}

    def test_mismatched_suite_rejected_fresh_wipes(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.initialize(_tiny_suite())
        store.append("k", "h", {"v": 1})
        other = _tiny_suite(name="other")
        with pytest.raises(InvalidInstanceError, match="different suite"):
            store.initialize(other)
        store.initialize(other, fresh=True)
        assert store.completed() == {}

    def test_edited_suite_same_name_updates_spec(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.initialize(_tiny_suite())
        edited = _tiny_suite(seed=99)
        store.initialize(edited)
        assert store.load_suite()["seed"] == 99


# ---------------------------------------------------------------------- #
# Runner
# ---------------------------------------------------------------------- #
class TestRunner:
    def test_records_are_deterministic_and_timing_free(self):
        cell = scenarios.enumerate_cells(_tiny_suite())[0]
        a = run_cell(cell).rows[0]
        b = run_cell(cell).rows[0]
        assert a == b  # bit-identical, no wall-clock columns

    def test_smoke_campaign_in_memory(self):
        result = scenarios.run_campaign(scenarios.get_suite("smoke"))
        assert result.num_cells == 8
        assert result.all_cells_ok
        assert not result.skipped

    def test_resume_skips_everything_on_complete_store(self, tmp_path):
        suite = _tiny_suite()
        store = ResultStore(tmp_path / "s")
        first = scenarios.run_campaign(suite, store=store)
        assert len(first.computed) == 1
        second = scenarios.run_campaign(suite, store=store)
        assert not second.computed
        assert len(second.skipped) == 1
        assert second.records == first.records

    def test_spec_change_invalidates_only_affected_cells(self, tmp_path):
        """Editing one regime recomputes only its cells; editing the suite
        name is rejected (a different campaign must not share a store)."""
        suite = _tiny_suite(
            regimes=[
                {"name": "a", "capacity": 5.0, "num_requests": 8},
                {"name": "b", "capacity": 6.0, "num_requests": 8},
            ]
        )
        store = ResultStore(tmp_path / "s")
        first = scenarios.run_campaign(suite, store=store)
        assert len(first.computed) == 2

        suite["regimes"][1]["capacity"] = 7.0
        resumed = scenarios.run_campaign(suite, store=store)
        assert resumed.computed == ["g/b/off"]
        assert resumed.skipped == ["g/a/off"]
        assert resumed.invalidated == ["g/b/off"]
        assert resumed.records["g/b/off"]["B"] == 7.0

        with pytest.raises(InvalidInstanceError, match="different suite"):
            scenarios.run_campaign(_tiny_suite(name="other"), store=store)

    def test_damaged_results_file_degrades_to_recompute(self, tmp_path):
        """A manifest-committed cell whose results line is lost must be
        recomputed on resume, not crash the campaign."""
        suite = _tiny_suite()
        store = ResultStore(tmp_path / "s")
        first = scenarios.run_campaign(suite, store=store)
        store.results_path.write_text("")  # damage: records gone, manifest intact
        resumed = scenarios.run_campaign(suite, store=store)
        assert resumed.computed == ["g/r/off"]
        assert resumed.records == first.records

    def test_renamed_cells_do_not_linger_in_reports(self, tmp_path):
        """After renaming a regime, the old cell's record stays in the store
        but is excluded from the current suite's records and hash."""
        suite = _tiny_suite()
        store = ResultStore(tmp_path / "s")
        scenarios.run_campaign(suite, store=store)
        suite["regimes"][0]["name"] = "renamed"
        resumed = scenarios.run_campaign(suite, store=store)
        assert list(resumed.records) == ["g/renamed/off"]
        assert set(store.records(resumed.records)) == {"g/renamed/off"}
        # A fresh store running the edited suite hashes identically.
        fresh = ResultStore(tmp_path / "fresh")
        scenarios.run_campaign(suite, store=fresh)
        assert store.content_hash(resumed.records) == fresh.content_hash()

    def test_failed_claims_surface_in_record(self):
        # An online cell comparing against offline cannot fail its claims on
        # a sane instance, so check the plumbing instead: claims_ok present.
        result = scenarios.run_campaign(_tiny_suite())
        record = next(iter(result.records.values()))
        assert record["claims_ok"] is True


@pytest.mark.slow
class TestDemoCampaignAcceptance:
    """The ISSUE-5 acceptance scenario on the pinned demo campaign."""

    def test_demo_run_kill_resume_hash_identity(self, tmp_path):
        suite = scenarios.get_suite("demo")
        cells = scenarios.enumerate_cells(suite)
        assert len({c.topology["name"] for c in cells}) >= 4
        assert len({c.regime["name"] for c in cells}) >= 3
        assert {c.mode["kind"] for c in cells} == {"offline", "online"}

        store1 = ResultStore(tmp_path / "jobs1")
        result1 = scenarios.run_campaign(suite, store=store1, jobs=1)
        assert result1.all_cells_ok and len(result1.computed) == len(cells)
        reference_hash = store1.content_hash()

        store4 = ResultStore(tmp_path / "jobs4")
        result4 = scenarios.run_campaign(suite, store=store4, jobs=4)
        assert store4.content_hash() == reference_hash
        assert result4.records == result1.records

        # Kill: drop the final manifest entry; resume must recompute
        # exactly that cell and restore the exact store hash, at jobs=1
        # and jobs=4.
        for store, jobs in ((store1, 1), (store4, 4)):
            lines = store.manifest_path.read_text().strip().splitlines()
            dropped = json.loads(lines[-1])["key"]
            store.manifest_path.write_text("\n".join(lines[:-1]) + "\n")
            resumed = scenarios.run_campaign(suite, store=store, jobs=jobs)
            assert resumed.computed == [dropped]
            assert len(resumed.skipped) == len(cells) - 1
            assert store.content_hash() == reference_hash

    def test_demo_exercises_nonfinite_persistence(self, tmp_path):
        """The adversarial-tiny regime yields inf ratios that must
        round-trip through the store."""
        store = ResultStore(tmp_path / "s")
        scenarios.run_campaign(scenarios.get_suite("demo"), store=store, jobs=1)
        records = store.records()
        assert any(
            record.get("ratio") == math.inf for record in records.values()
        ), "expected at least one inf ratio in the demo campaign"
        assert "Infinity" not in store.results_path.read_text()


# ---------------------------------------------------------------------- #
# CLI
# ---------------------------------------------------------------------- #
class TestCLI:
    def test_list(self, capsys):
        assert scenarios_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "demo" in out and "fat_tree" in out

    def test_run_report_resume_roundtrip(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        assert scenarios_main(["run", "smoke", "--store", store_dir]) == 0
        out = capsys.readouterr().out
        assert "8 total, 8 computed, 0 skipped" in out
        assert "store hash:" in out

        assert scenarios_main(["resume", "--store", store_dir]) == 0
        out = capsys.readouterr().out
        assert "8 total, 0 computed, 8 skipped" in out

        assert scenarios_main(["report", "--store", store_dir]) == 0
        out = capsys.readouterr().out
        assert "Scenario campaign: smoke" in out

    def test_run_suite_from_json_file(self, tmp_path, capsys):
        spec_path = tmp_path / "suite.json"
        spec_path.write_text(json.dumps(_tiny_suite()))
        assert scenarios_main(["run", str(spec_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["suite"] == "tiny"
        assert payload["records"]["g/r/off"]["claims_ok"] is True

    def test_unknown_suite_errors(self):
        with pytest.raises(SystemExit):
            scenarios_main(["run", "no-such-suite"])

    def test_missing_suite_file_errors_cleanly(self):
        with pytest.raises(SystemExit, match="not found"):
            scenarios_main(["run", "/nonexistent/suite.json"])

    def test_resume_json_is_parseable_with_pending_cells(self, tmp_path, capsys):
        """resume --json must not interleave progress lines with the JSON."""
        store_dir = str(tmp_path / "store")
        assert scenarios_main(["run", "smoke", "--store", store_dir, "--json"]) == 0
        capsys.readouterr()
        manifest = ResultStore(store_dir).manifest_path
        lines = manifest.read_text().strip().splitlines()
        manifest.write_text("\n".join(lines[:-1]) + "\n")
        assert scenarios_main(["resume", "--store", store_dir, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["computed"]) == 1

    def test_seed_override_changes_workload(self, tmp_path, capsys):
        spec_path = tmp_path / "suite.json"
        spec_path.write_text(json.dumps(_tiny_suite()))
        assert scenarios_main(["run", str(spec_path), "--json", "--seed", "6"]) == 0
        a = json.loads(capsys.readouterr().out)["records"]["g/r/off"]
        assert scenarios_main(["run", str(spec_path), "--json", "--seed", "7"]) == 0
        b = json.loads(capsys.readouterr().out)["records"]["g/r/off"]
        assert a != b

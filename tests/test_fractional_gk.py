"""Tests for the Garg–Könemann fractional FPTAS."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidInstanceError
from repro.flows import Request, UFPInstance, random_instance
from repro.fractional import garg_konemann_fractional_ufp
from repro.graphs import CapacitatedGraph
from repro.lp import solve_fractional_ufp


class TestGargKonemann:
    def test_primal_never_exceeds_lp_and_dual_bound_covers_it(self):
        for seed in range(3):
            instance = random_instance(
                num_vertices=8, edge_probability=0.35, capacity=4.0,
                num_requests=15, demand_range=(0.5, 1.0), seed=seed,
            )
            lp = solve_fractional_ufp(instance).objective
            gk = garg_konemann_fractional_ufp(instance, 0.15)
            assert gk.objective <= lp + 1e-6
            assert gk.dual_bound >= lp - 1e-6
            assert gk.certified_gap >= 1.0 - 1e-9

    def test_reasonable_primal_quality(self):
        instance = random_instance(
            num_vertices=8, edge_probability=0.4, capacity=6.0,
            num_requests=20, demand_range=(0.4, 1.0), seed=7,
        )
        lp = solve_fractional_ufp(instance).objective
        gk = garg_konemann_fractional_ufp(instance, 0.1)
        # The theoretical guarantee is (1 - O(eps)); assert a conservative
        # two-thirds to keep the test robust to the scaling correction.
        assert gk.objective >= 0.66 * lp

    def test_feasibility_of_scaled_solution(self):
        instance = random_instance(
            num_vertices=7, edge_probability=0.4, capacity=3.0,
            num_requests=18, demand_range=(0.5, 1.0), seed=3,
        )
        gk = garg_konemann_fractional_ufp(instance, 0.2)
        capacities = instance.graph.capacities
        assert (gk.edge_loads <= capacities + 1e-9).all()
        # Per-request caps respected in the no-repetitions mode.
        assert (gk.routed_fraction <= 1.0 + 1e-9).all()

    def test_repetitions_mode_can_exceed_per_request_cap(self):
        graph = CapacitatedGraph(2, [(0, 1, 10.0)], directed=True)
        instance = UFPInstance(graph, [Request(0, 1, 1.0, 2.0)])
        plain = garg_konemann_fractional_ufp(instance, 0.1)
        repeat = garg_konemann_fractional_ufp(instance, 0.1, repetitions=True)
        assert plain.routed_fraction[0] <= 1.0 + 1e-9
        assert repeat.routed_fraction[0] > 1.0
        assert repeat.objective > plain.objective

    def test_paths_used_are_consistent(self, contended_instance):
        gk = garg_konemann_fractional_ufp(contended_instance, 0.2)
        total_by_request = {}
        for request_index, edge_ids, flow in gk.paths_used:
            assert flow >= 0.0
            assert all(0 <= e < contended_instance.num_edges for e in edge_ids)
            total_by_request[request_index] = total_by_request.get(request_index, 0.0) + flow
        for idx, total in total_by_request.items():
            assert total == pytest.approx(gk.routed_fraction[idx], rel=1e-6, abs=1e-9)

    def test_empty_requests(self, diamond_graph):
        gk = garg_konemann_fractional_ufp(UFPInstance(diamond_graph, []), 0.2)
        assert gk.objective == 0.0
        assert gk.dual_bound == 0.0

    def test_invalid_epsilon(self, contended_instance):
        with pytest.raises(ValueError):
            garg_konemann_fractional_ufp(contended_instance, 0.0)
        with pytest.raises(ValueError):
            garg_konemann_fractional_ufp(contended_instance, 1.0)

    def test_graph_without_edges_rejected(self):
        with pytest.raises(InvalidInstanceError):
            garg_konemann_fractional_ufp(UFPInstance(CapacitatedGraph(2, []), []), 0.2)

    def test_stats_recorded(self, contended_instance):
        gk = garg_konemann_fractional_ufp(contended_instance, 0.2)
        assert gk.stats.iterations > 0
        assert gk.stats.shortest_path_calls >= gk.stats.iterations
        assert gk.stats.extra["epsilon"] == 0.2

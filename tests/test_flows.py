"""Tests for :mod:`repro.flows`: requests, instances, allocations, generators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import (
    InfeasibleAllocationError,
    InvalidInstanceError,
    InvalidRequestError,
)
from repro.flows import (
    Allocation,
    Request,
    UFPInstance,
    hotspot_instance,
    isp_instance,
    random_instance,
    random_requests,
    ring7_instance,
    staircase_instance,
)
from repro.flows.request import normalize_requests
from repro.graphs import CapacitatedGraph


class TestRequest:
    def test_basic_properties(self):
        r = Request(0, 1, 0.5, 2.0, name="x")
        assert r.type == (0.5, 2.0)
        assert r.density == 4.0

    def test_rejects_nonpositive_demand_or_value(self):
        with pytest.raises(ValueError):
            Request(0, 1, 0.0, 1.0)
        with pytest.raises(ValueError):
            Request(0, 1, 1.0, -1.0)

    def test_rejects_equal_terminals(self):
        with pytest.raises(InvalidRequestError):
            Request(2, 2, 1.0, 1.0)

    def test_with_type_preserves_terminals_and_name(self):
        r = Request(0, 1, 0.5, 2.0, name="x")
        r2 = r.with_type(demand=0.25, value=9.0)
        assert (r2.source, r2.target, r2.name) == (0, 1, "x")
        assert r2.type == (0.25, 9.0)
        # Original is unchanged (frozen dataclass).
        assert r.type == (0.5, 2.0)

    def test_with_value_and_with_demand(self):
        r = Request(0, 1, 0.5, 2.0)
        assert r.with_value(7.0).value == 7.0
        assert r.with_demand(0.1).demand == 0.1

    def test_dominates_type_of(self):
        base = Request(0, 1, 0.5, 2.0)
        assert base.with_type(demand=0.4, value=3.0).dominates_type_of(base)
        assert base.dominates_type_of(base)
        assert not base.with_type(demand=0.9).dominates_type_of(base)
        assert not Request(0, 2, 0.4, 3.0).dominates_type_of(base)

    def test_normalize_requests_from_tuples(self):
        reqs = normalize_requests([(0, 1, 0.5, 2.0), Request(1, 2, 1.0, 1.0, name="keep")])
        assert reqs[0].name == "r0"
        assert reqs[1].name == "keep"
        with pytest.raises(InvalidRequestError):
            normalize_requests([(0, 1, 0.5)])


class TestUFPInstance:
    def test_construction_and_sizes(self, diamond_instance):
        assert diamond_instance.num_requests == 3
        assert diamond_instance.num_edges == 5
        assert diamond_instance.num_vertices == 4
        assert diamond_instance.max_demand == 1.0
        assert diamond_instance.min_demand == 0.5
        assert diamond_instance.total_value == 6.0

    def test_rejects_out_of_range_terminals(self, diamond_graph):
        with pytest.raises(InvalidInstanceError):
            UFPInstance(diamond_graph, [Request(0, 9, 1.0, 1.0)])

    def test_capacity_bound(self, diamond_instance):
        # B = min capacity / max demand = 1.0 / 1.0.
        assert diamond_instance.capacity_bound() == 1.0

    def test_capacity_assumption_and_minimum_epsilon(self):
        graph = CapacitatedGraph(2, [(0, 1, 100.0)], directed=True)
        instance = UFPInstance(graph, [Request(0, 1, 1.0, 1.0)])
        assert instance.meets_capacity_assumption(0.5)
        assert instance.minimum_epsilon() < 0.5
        tight = UFPInstance(
            CapacitatedGraph(2, [(0, 1, 0.5)], directed=True), [Request(0, 1, 0.4, 1.0)]
        )
        assert not tight.meets_capacity_assumption(0.2)

    def test_normalized_scales_demands_and_capacities(self, diamond_graph):
        instance = UFPInstance(diamond_graph, [Request(0, 3, 2.0, 1.0)])
        normalized = instance.normalized()
        assert normalized.max_demand == pytest.approx(1.0)
        assert normalized.graph.min_capacity == pytest.approx(0.5)
        # Capacity bound (a ratio) is invariant under normalization.
        assert normalized.capacity_bound() == pytest.approx(instance.capacity_bound())

    def test_normalized_noop_when_already_normalized(self, diamond_instance):
        assert diamond_instance.normalized() is diamond_instance

    def test_replace_request_keeps_position(self, diamond_instance):
        new = diamond_instance.requests[1].with_value(99.0)
        replaced = diamond_instance.replace_request(1, new)
        assert replaced.requests[1].value == 99.0
        assert replaced.requests[0] == diamond_instance.requests[0]
        assert diamond_instance.requests[1].value == 2.0
        with pytest.raises(IndexError):
            diamond_instance.replace_request(9, new)

    def test_request_index(self, diamond_instance):
        assert diamond_instance.request_index(diamond_instance.requests[2]) == 2
        with pytest.raises(KeyError):
            diamond_instance.request_index(Request(0, 3, 1.0, 1.0, name="ghost"))

    def test_arrays(self, diamond_instance):
        np.testing.assert_allclose(diamond_instance.demands_array(), [1.0, 1.0, 0.5])
        np.testing.assert_allclose(diamond_instance.values_array(), [3.0, 2.0, 1.0])


class TestAllocation:
    def test_from_paths_and_value(self, diamond_instance):
        allocation = Allocation.from_paths(
            diamond_instance, [(0, [0, 1, 3]), (2, [0, 2, 3])], algorithm="manual"
        )
        assert allocation.value == 4.0
        assert allocation.num_selected == 2
        assert allocation.is_selected(0) and not allocation.is_selected(1)
        assert len(allocation) == 2

    def test_edge_loads_and_utilization(self, diamond_instance):
        allocation = Allocation.from_paths(
            diamond_instance, [(0, [0, 1, 3]), (1, [0, 1, 3])]
        )
        loads = allocation.edge_loads()
        np.testing.assert_allclose(loads, [2.0, 0.0, 2.0, 0.0, 0.0])
        assert allocation.max_utilization() == pytest.approx(1.0)

    def test_validate_rejects_overload(self, diamond_instance):
        allocation = Allocation.from_paths(
            diamond_instance, [(0, [0, 3]), (1, [0, 3])]
        )
        # The 0 -> 3 shortcut has capacity 1 but carries demand 2.
        assert not allocation.is_feasible()
        with pytest.raises(InfeasibleAllocationError):
            allocation.validate()

    def test_validate_rejects_duplicate_selection_without_repetitions(self, diamond_instance):
        allocation = Allocation.from_paths(
            diamond_instance, [(0, [0, 1, 3]), (0, [0, 2, 3])]
        )
        with pytest.raises(InfeasibleAllocationError):
            allocation.validate()
        allocation.validate(allow_repetitions=True)

    def test_from_paths_validates_terminals(self, diamond_instance):
        with pytest.raises(InvalidInstanceError):
            Allocation.from_paths(diamond_instance, [(0, [1, 3])])

    def test_from_paths_rejects_bad_index(self, diamond_instance):
        with pytest.raises(InvalidInstanceError):
            Allocation.from_paths(diamond_instance, [(7, [0, 3])])

    def test_empty_allocation(self, diamond_instance):
        allocation = Allocation.empty(diamond_instance)
        assert allocation.value == 0.0
        assert allocation.is_feasible()
        assert allocation.max_utilization() == 0.0

    def test_copies_multiply_value(self, diamond_instance):
        allocation = Allocation.from_paths(
            diamond_instance, [(2, [0, 2, 3])], copies=[3]
        )
        assert allocation.value == 3.0
        assert allocation.edge_loads()[1] == pytest.approx(1.5)


class TestGenerators:
    def test_random_requests_respect_pools_and_ranges(self, diamond_graph):
        reqs = random_requests(
            diamond_graph, 20, demand_range=(0.2, 0.4), value_range=(1.0, 2.0),
            sources=[0], targets=[3], seed=1,
        )
        assert len(reqs) == 20
        assert all(r.source == 0 and r.target == 3 for r in reqs)
        assert all(0.2 <= r.demand <= 0.4 for r in reqs)
        assert all(1.0 <= r.value <= 2.0 for r in reqs)

    def test_random_requests_value_proportional(self, diamond_graph):
        reqs = random_requests(
            diamond_graph, 30, value_proportional_to_demand=True,
            value_range=(1.0, 1.0), demand_range=(0.5, 0.5), seed=2,
        )
        assert all(r.value == pytest.approx(0.5) for r in reqs)

    def test_random_instance_metadata_and_determinism(self):
        a = random_instance(num_vertices=8, num_requests=10, seed=5)
        b = random_instance(num_vertices=8, num_requests=10, seed=5)
        assert a.metadata["kind"] == "random"
        assert [r.type for r in a.requests] == [r.type for r in b.requests]

    def test_hotspot_instance_targets_concentrated(self):
        instance = hotspot_instance(num_requests=50, num_hotspots=2, hotspot_fraction=1.0, seed=3)
        hotspots = set(instance.metadata["hotspots"])
        assert all(r.target in hotspots for r in instance.requests)

    def test_isp_instance_requests_between_leaves(self):
        instance = isp_instance(num_core=3, leaves_per_core=2, num_requests=20, seed=4)
        leaves = set(range(3, instance.num_vertices))
        assert all(r.source in leaves and r.target in leaves for r in instance.requests)

    def test_staircase_instance_metadata(self):
        instance = staircase_instance(5, 4)
        assert instance.metadata["known_optimum"] == 20.0
        assert instance.num_requests == 20
        assert instance.capacity_bound() == 4.0

    def test_ring7_instance_metadata(self):
        instance = ring7_instance(6)
        assert instance.metadata["known_optimum"] == 24.0
        assert instance.num_requests == 24

    def test_invalid_generator_arguments(self, diamond_graph):
        with pytest.raises(InvalidInstanceError):
            random_requests(diamond_graph, 5, demand_range=(0.0, 0.5))
        with pytest.raises(InvalidInstanceError):
            random_requests(diamond_graph, 5, value_range=(2.0, 1.0))
        with pytest.raises(InvalidInstanceError):
            hotspot_instance(hotspot_fraction=0.0)


@settings(max_examples=25, deadline=None)
@given(
    demand=st.floats(min_value=1e-3, max_value=1.0, allow_nan=False),
    value=st.floats(min_value=1e-3, max_value=100.0, allow_nan=False),
    factor_d=st.floats(min_value=0.1, max_value=1.0, allow_nan=False),
    factor_v=st.floats(min_value=1.0, max_value=10.0, allow_nan=False),
)
def test_property_domination_is_reflexive_and_directional(demand, value, factor_d, factor_v):
    """Lowering demand and raising value always dominates the original type."""
    base = Request(0, 1, demand, value)
    stronger = base.with_type(demand=demand * factor_d, value=value * factor_v)
    assert stronger.dominates_type_of(base)
    if factor_d < 0.999 or factor_v > 1.001:
        assert not base.dominates_type_of(stronger)

"""Tests for Algorithm 2 (``Bounded-MUCA``) and Algorithm 3 (``Bounded-UFP-Repeat``)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.auctions import Bid, MUCAInstance, partition_instance, random_auction
from repro.core import bounded_muca, bounded_ufp, bounded_ufp_repeat
from repro.exceptions import CapacityBoundError, InvalidInstanceError
from repro.flows import Request, UFPInstance, random_instance
from repro.graphs import CapacitatedGraph
from repro.lp import solve_fractional_muca, solve_fractional_ufp
from repro.types import E_OVER_E_MINUS_1


class TestBoundedMUCA:
    def test_uncontended_accepts_everything(self):
        # Multiplicity 6 keeps the budget rule (e^{eps (B-1)} >= m) inactive,
        # so every bid fits and is accepted.
        instance = MUCAInstance(
            np.full(3, 6.0),
            [Bid((0, 1), 4.0), Bid((1, 2), 3.0), Bid((0,), 2.0), Bid((2,), 1.0)],
        )
        allocation = bounded_muca(instance, 1.0)
        assert allocation.value == pytest.approx(instance.total_value)
        allocation.validate()

    def test_contention_prefers_high_value_per_weight(self):
        instance = MUCAInstance(
            np.array([2.0]),
            [Bid((0,), 5.0), Bid((0,), 3.0), Bid((0,), 1.0)],
        )
        allocation = bounded_muca(instance, 1.0)
        allocation.validate()
        assert allocation.is_winner(0)
        assert allocation.value >= 5.0

    def test_never_exceeds_fractional_optimum(self):
        for seed in range(3):
            auction = random_auction(
                num_items=12, num_bids=60, multiplicity=4.0,
                bundle_size_range=(1, 4), seed=seed,
            )
            allocation = bounded_muca(auction, 0.5)
            allocation.validate()
            bound = solve_fractional_muca(auction).objective
            assert allocation.value <= bound + 1e-6

    def test_guarantee_in_valid_regime(self):
        auction = random_auction(
            num_items=10, num_bids=200, multiplicity=30.0,
            bundle_size_range=(2, 5), value_range=(0.5, 2.0), seed=7,
        )
        eps = 0.35
        assert auction.meets_capacity_assumption(eps)
        allocation = bounded_muca(auction, eps)
        bound = solve_fractional_muca(auction).objective
        assert bound / max(allocation.value, 1e-12) <= (1 + 6 * eps) * E_OVER_E_MINUS_1 + 1e-9

    def test_monotone_in_value_single_agent(self):
        instance = MUCAInstance(
            np.array([1.0, 1.0]),
            [Bid((0, 1), 4.0), Bid((0,), 3.0), Bid((1,), 3.5)],
        )
        base = bounded_muca(instance, 1.0)
        for idx in range(instance.num_bids):
            if base.is_winner(idx):
                boosted = instance.replace_bid(idx, instance.bids[idx].with_value(40.0))
                assert bounded_muca(boosted, 1.0).is_winner(idx)

    def test_monotone_in_bundle_shrinking(self):
        # The unknown single-minded extension: declaring a sub-bundle can only
        # help (Corollary 4.2 discussion).
        instance = MUCAInstance(
            np.array([4.0, 4.0, 4.0]),
            [Bid((0, 1, 2), 3.0), Bid((0, 1), 2.0), Bid((2,), 1.0)],
        )
        base = bounded_muca(instance, 1.0)
        assert base.is_winner(0)
        shrunk = instance.replace_bid(0, instance.bids[0].with_bundle((0, 2)))
        assert bounded_muca(shrunk, 1.0).is_winner(0)

    def test_capacity_check_modes(self):
        auction = random_auction(num_items=20, num_bids=10, multiplicity=2.0, seed=0)
        with pytest.raises(CapacityBoundError):
            bounded_muca(auction, 0.1, capacity_check="strict")
        with pytest.warns(UserWarning):
            bounded_muca(auction, 0.1, capacity_check="warn")

    def test_empty_auction(self):
        allocation = bounded_muca(MUCAInstance(np.array([3.0]), []), 0.5)
        assert allocation.value == 0.0

    def test_iteration_bound_and_determinism(self):
        auction = random_auction(num_items=15, num_bids=50, multiplicity=30.0, seed=3)
        a = bounded_muca(auction, 0.4)
        b = bounded_muca(auction, 0.4)
        assert a.winners == b.winners
        assert a.stats.iterations <= auction.num_bids

    def test_partition_instance_stays_feasible(self):
        instance = partition_instance(3, 4)
        allocation = bounded_muca(instance, 1.0)
        allocation.validate()
        assert allocation.value <= instance.metadata["known_optimum"] + 1e-9


class TestBoundedUFPRepeat:
    def test_repeats_profitable_request(self, roomy_diamond_instance):
        allocation = bounded_ufp_repeat(roomy_diamond_instance, 1.0)
        allocation.validate(allow_repetitions=True)
        # With repetitions allowed the total value can exceed the sum of the
        # request values (requests are satisfied multiple times).
        assert allocation.value > roomy_diamond_instance.total_value

    def test_feasibility(self):
        for seed in range(2):
            instance = random_instance(
                num_vertices=7, edge_probability=0.4, capacity=6.0,
                num_requests=10, demand_range=(0.4, 1.0), seed=seed,
            )
            allocation = bounded_ufp_repeat(instance, 0.5)
            allocation.validate(allow_repetitions=True)

    def test_never_exceeds_repetition_lp(self):
        instance = random_instance(
            num_vertices=7, edge_probability=0.4, capacity=8.0,
            num_requests=8, demand_range=(0.5, 1.0), seed=5,
        )
        allocation = bounded_ufp_repeat(instance, 0.4)
        bound = solve_fractional_ufp(instance, repetitions=True).objective
        assert allocation.value <= bound + 1e-6

    def test_one_plus_eps_guarantee_in_valid_regime(self):
        instance = random_instance(
            num_vertices=6, edge_probability=0.5, capacity=25.0,
            num_requests=12, demand_range=(0.5, 1.0), seed=2,
        )
        eps = 0.4
        assert instance.meets_capacity_assumption(eps)
        allocation = bounded_ufp_repeat(instance, eps)
        bound = solve_fractional_ufp(instance, repetitions=True).objective
        assert bound / allocation.value <= 1.0 + 6.0 * eps + 1e-9

    def test_beats_or_matches_no_repetition_variant(self):
        instance = random_instance(
            num_vertices=7, edge_probability=0.4, capacity=15.0,
            num_requests=10, seed=9,
        )
        with_rep = bounded_ufp_repeat(instance, 0.4)
        without = bounded_ufp(instance, 0.4)
        assert with_rep.value >= without.value - 1e-9

    def test_iteration_bound(self):
        instance = random_instance(
            num_vertices=6, edge_probability=0.5, capacity=10.0,
            num_requests=6, demand_range=(0.5, 1.0), seed=4,
        )
        allocation = bounded_ufp_repeat(instance, 0.5)
        bound = instance.num_edges * instance.graph.max_capacity / instance.min_demand
        assert allocation.stats.iterations <= bound + instance.num_edges

    def test_max_iterations_cap(self, roomy_diamond_instance):
        allocation = bounded_ufp_repeat(roomy_diamond_instance, 1.0, max_iterations=2)
        assert allocation.stats.iterations == 2

    def test_rejects_unnormalized_demands(self, diamond_graph):
        instance = UFPInstance(diamond_graph, [Request(0, 3, 3.0, 1.0)])
        with pytest.raises(InvalidInstanceError):
            bounded_ufp_repeat(instance, 0.5)

    def test_rejects_graph_without_edges(self):
        with pytest.raises(InvalidInstanceError):
            bounded_ufp_repeat(UFPInstance(CapacitatedGraph(2, []), []), 0.5)

    def test_unroutable_requests_skipped(self):
        graph = CapacitatedGraph(3, [(0, 1, 20.0)], directed=True)
        instance = UFPInstance(graph, [Request(0, 2, 1.0, 5.0), Request(0, 1, 1.0, 1.0)])
        allocation = bounded_ufp_repeat(instance, 1.0)
        allocation.validate(allow_repetitions=True)
        assert all(item.request_index == 1 for item in allocation.routed)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=500))
def test_property_repeat_dominates_plain(seed):
    """Allowing repetitions never reduces the achievable value, and both
    outputs stay feasible."""
    instance = random_instance(
        num_vertices=6, edge_probability=0.5, capacity=6.0,
        num_requests=8, demand_range=(0.4, 1.0), seed=seed,
    )
    plain = bounded_ufp(instance, 0.5)
    repeat = bounded_ufp_repeat(instance, 0.5)
    plain.validate()
    repeat.validate(allow_repetitions=True)
    assert repeat.value >= plain.value - 1e-9

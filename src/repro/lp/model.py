"""A small sparse linear-program builder.

The builder exists so that LP assembly code reads like the mathematical
formulation (named variables, one constraint per call) while the matrices
handed to the solver are sparse CSR from the start — per the hpc-parallel
guides, no dense intermediate is ever materialized.

The canonical form used internally is::

    maximize     c @ x
    subject to   A_ub @ x <= b_ub
                 A_eq @ x == b_eq
                 lb <= x <= ub
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np
from scipy import sparse

from repro.exceptions import LPSolveError
from repro.types import SolverStatus

__all__ = ["LinearProgram", "LPSolution"]


@dataclass(frozen=True)
class LPSolution:
    """The result of solving a :class:`LinearProgram`.

    Attributes
    ----------
    status:
        Normalized solver status.
    objective:
        Objective value of the returned point (in the *maximization* sense
        used by the builder), ``nan`` when no point is available.
    x:
        Primal values indexed like the builder's variables.
    ineq_duals:
        Dual multipliers of the ``<=`` constraints, one per constraint in the
        order added, with the sign convention that they are non-negative for
        a maximization problem (shadow price of relaxing the constraint).
    eq_duals:
        Dual multipliers of the ``==`` constraints.
    """

    status: SolverStatus
    objective: float
    x: np.ndarray
    ineq_duals: np.ndarray
    eq_duals: np.ndarray

    @property
    def ok(self) -> bool:
        return self.status.ok

    def value_of(self, indices: Sequence[int]) -> np.ndarray:
        """Primal values of a subset of variables."""
        return self.x[np.asarray(indices, dtype=np.int64)]


@dataclass
class LinearProgram:
    """Incrementally build a sparse LP in maximization form.

    Examples
    --------
    >>> lp = LinearProgram()
    >>> x = lp.add_variable(objective=1.0, upper=2.0)
    >>> y = lp.add_variable(objective=1.0, upper=2.0)
    >>> _ = lp.add_le_constraint({x: 1.0, y: 1.0}, 3.0)
    >>> sol = lp.solve()
    >>> round(sol.objective, 6)
    3.0
    """

    _objective: list[float] = field(default_factory=list)
    _lower: list[float] = field(default_factory=list)
    _upper: list[float] = field(default_factory=list)
    _names: list[str] = field(default_factory=list)
    # COO triplets for <= and == constraints.
    _ub_rows: list[int] = field(default_factory=list)
    _ub_cols: list[int] = field(default_factory=list)
    _ub_vals: list[float] = field(default_factory=list)
    _ub_rhs: list[float] = field(default_factory=list)
    _eq_rows: list[int] = field(default_factory=list)
    _eq_cols: list[int] = field(default_factory=list)
    _eq_vals: list[float] = field(default_factory=list)
    _eq_rhs: list[float] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # Building
    # ------------------------------------------------------------------ #
    @property
    def num_variables(self) -> int:
        return len(self._objective)

    @property
    def num_le_constraints(self) -> int:
        return len(self._ub_rhs)

    @property
    def num_eq_constraints(self) -> int:
        return len(self._eq_rhs)

    def add_variable(
        self,
        *,
        objective: float = 0.0,
        lower: float = 0.0,
        upper: float = np.inf,
        name: str = "",
    ) -> int:
        """Add a variable and return its index."""
        if lower > upper:
            raise LPSolveError(f"variable bounds [{lower}, {upper}] are empty")
        self._objective.append(float(objective))
        self._lower.append(float(lower))
        self._upper.append(float(upper))
        self._names.append(name or f"x{len(self._objective) - 1}")
        return len(self._objective) - 1

    def add_variables(
        self,
        count: int,
        *,
        objective: float | Sequence[float] = 0.0,
        lower: float = 0.0,
        upper: float = np.inf,
        prefix: str = "x",
    ) -> list[int]:
        """Add ``count`` variables sharing bounds; returns their indices."""
        if np.isscalar(objective):
            objective = [float(objective)] * count
        objective = list(objective)
        if len(objective) != count:
            raise LPSolveError("objective vector length mismatch")
        return [
            self.add_variable(objective=objective[i], lower=lower, upper=upper,
                              name=f"{prefix}{i}")
            for i in range(count)
        ]

    def _check_terms(self, terms: Mapping[int, float]) -> None:
        for var in terms:
            if not 0 <= int(var) < self.num_variables:
                raise LPSolveError(f"unknown variable index {var}")

    def add_le_constraint(self, terms: Mapping[int, float], rhs: float) -> int:
        """Add ``sum_j terms[j] * x_j <= rhs``; returns the constraint row index."""
        self._check_terms(terms)
        row = len(self._ub_rhs)
        for var, coeff in terms.items():
            if coeff != 0.0:
                self._ub_rows.append(row)
                self._ub_cols.append(int(var))
                self._ub_vals.append(float(coeff))
        self._ub_rhs.append(float(rhs))
        return row

    def add_eq_constraint(self, terms: Mapping[int, float], rhs: float) -> int:
        """Add ``sum_j terms[j] * x_j == rhs``; returns the constraint row index."""
        self._check_terms(terms)
        row = len(self._eq_rhs)
        for var, coeff in terms.items():
            if coeff != 0.0:
                self._eq_rows.append(row)
                self._eq_cols.append(int(var))
                self._eq_vals.append(float(coeff))
        self._eq_rhs.append(float(rhs))
        return row

    # ------------------------------------------------------------------ #
    # Assembly / solving
    # ------------------------------------------------------------------ #
    def matrices(self) -> dict:
        """Return the assembled sparse matrices and vectors.

        Keys: ``c`` (maximization objective), ``A_ub``, ``b_ub``, ``A_eq``,
        ``b_eq``, ``bounds`` (list of ``(lb, ub)`` pairs).  Empty constraint
        blocks are returned as ``None`` to match :func:`scipy.optimize.linprog`.
        """
        n = self.num_variables
        c = np.asarray(self._objective, dtype=np.float64)
        A_ub = None
        b_ub = None
        if self._ub_rhs:
            A_ub = sparse.coo_matrix(
                (self._ub_vals, (self._ub_rows, self._ub_cols)),
                shape=(len(self._ub_rhs), n),
            ).tocsr()
            b_ub = np.asarray(self._ub_rhs, dtype=np.float64)
        A_eq = None
        b_eq = None
        if self._eq_rhs:
            A_eq = sparse.coo_matrix(
                (self._eq_vals, (self._eq_rows, self._eq_cols)),
                shape=(len(self._eq_rhs), n),
            ).tocsr()
            b_eq = np.asarray(self._eq_rhs, dtype=np.float64)
        bounds = list(zip(self._lower, self._upper))
        return {"c": c, "A_ub": A_ub, "b_ub": b_ub, "A_eq": A_eq, "b_eq": b_eq, "bounds": bounds}

    def solve(self, **solver_options) -> LPSolution:
        """Solve the LP with HiGHS; see :func:`repro.lp.solver.solve_lp`."""
        from repro.lp.solver import solve_lp

        return solve_lp(self, **solver_options)

"""The fractional relaxation of the multi-unit combinatorial auction ILP.

The auction ILP is the "paths are fixed" special case of the Figure 1 ILP:
each bid ``r`` has a single 0/1 variable ``x_r``, items ``u`` constrain
``sum_{r : u in U_r} x_r <= c_u``.  Its relaxation is a plain packing LP and
is solved directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.auctions.instance import MUCAInstance
from repro.lp.model import LinearProgram
from repro.lp.solver import solve_lp
from repro.types import SolverStatus

__all__ = ["FractionalMUCAResult", "solve_fractional_muca"]


@dataclass(frozen=True)
class FractionalMUCAResult:
    """Solution of the fractional auction relaxation.

    Attributes
    ----------
    objective:
        The fractional optimum ``sum_r v_r x_r``.
    fractions:
        Array over bids with the fractional acceptance ``x_r in [0, 1]``.
    item_duals:
        Dual prices ``y_u`` of the multiplicity constraints.
    status:
        Solver status.
    """

    objective: float
    fractions: np.ndarray
    item_duals: np.ndarray
    status: SolverStatus

    @property
    def ok(self) -> bool:
        return self.status.ok


def solve_fractional_muca(
    instance: MUCAInstance,
    *,
    raise_on_failure: bool = True,
) -> FractionalMUCAResult:
    """Solve the fractional relaxation of a multi-unit auction instance."""
    num_bids = instance.num_bids
    num_items = instance.num_items

    if num_bids == 0:
        return FractionalMUCAResult(
            objective=0.0,
            fractions=np.zeros(0),
            item_duals=np.zeros(num_items),
            status=SolverStatus.OPTIMAL,
        )

    lp = LinearProgram()
    x_vars = [
        lp.add_variable(objective=bid.value, lower=0.0, upper=1.0, name=f"x_{r}")
        for r, bid in enumerate(instance.bids)
    ]

    # One packing constraint per item: sum of accepted bids containing it.
    bids_of_item: list[list[int]] = [[] for _ in range(num_items)]
    for r, bid in enumerate(instance.bids):
        for u in bid.bundle:
            bids_of_item[u].append(r)

    item_rows: list[int] = []
    for u in range(num_items):
        terms = {x_vars[r]: 1.0 for r in bids_of_item[u]}
        if terms:
            row = lp.add_le_constraint(terms, float(instance.multiplicities[u]))
        else:
            # An item no bid wants: add a trivial constraint so dual indexing
            # stays aligned with item ids.
            row = lp.add_le_constraint({}, float(instance.multiplicities[u]))
        item_rows.append(row)

    solution = solve_lp(lp, raise_on_failure=raise_on_failure)

    if not solution.ok:
        return FractionalMUCAResult(
            objective=float("nan"),
            fractions=np.full(num_bids, np.nan),
            item_duals=np.full(num_items, np.nan),
            status=solution.status,
        )

    fractions = np.array([solution.x[i] for i in x_vars], dtype=np.float64)
    item_duals = solution.ineq_duals[np.asarray(item_rows, dtype=np.int64)]
    return FractionalMUCAResult(
        objective=float(solution.objective),
        fractions=fractions,
        item_duals=item_duals,
        status=solution.status,
    )

"""Dual-objective helpers for the Figure 1 / Figure 5 linear programs.

The paper's analysis runs entirely on the dual: the algorithm maintains edge
variables ``y_e`` and request variables ``z_r`` and argues that (a scaled
version of) them is dual feasible, so that weak duality bounds the optimum by
``sum_e c_e y_e + sum_r z_r``.  These helpers compute that dual objective and
check feasibility/duality relations; tests and experiments use them to verify
the invariants of the analysis (Claims 3.6 and 5.2) on real executions.
"""

from __future__ import annotations

import numpy as np

from repro.flows.instance import UFPInstance
from repro.graphs.shortest_path import single_source_dijkstra

__all__ = [
    "ufp_dual_objective",
    "ufp_dual_is_feasible",
    "minimum_normalized_path_length",
    "check_weak_duality",
]


def ufp_dual_objective(
    instance: UFPInstance,
    edge_duals: np.ndarray,
    request_duals: np.ndarray | None = None,
) -> float:
    """The dual objective ``sum_e c_e y_e + sum_r z_r`` of Figure 1.

    With ``request_duals=None`` the second sum is taken as zero, which is the
    Figure 5 (repetitions) dual objective.
    """
    edge_duals = np.asarray(edge_duals, dtype=np.float64)
    total = float(instance.graph.capacities @ edge_duals)
    if request_duals is not None:
        total += float(np.asarray(request_duals, dtype=np.float64).sum())
    return total


def minimum_normalized_path_length(
    instance: UFPInstance,
    edge_duals: np.ndarray,
    *,
    request_subset: set[int] | None = None,
) -> float:
    """``alpha = min_r (d_r / v_r) * dist_y(s_r, t_r)`` over the given requests.

    This is the quantity the paper calls ``alpha(i)``: the most violated dual
    constraint corresponds to the request attaining this minimum.  Requests
    with no path are skipped; ``inf`` is returned when no request is routable.
    """
    edge_duals = np.asarray(edge_duals, dtype=np.float64)
    indices = (
        range(instance.num_requests) if request_subset is None else sorted(request_subset)
    )
    by_source: dict[int, list[int]] = {}
    for i in indices:
        by_source.setdefault(instance.requests[i].source, []).append(i)

    best = float("inf")
    for source, idxs in by_source.items():
        targets = {instance.requests[i].target for i in idxs}
        tree = single_source_dijkstra(instance.graph, source, edge_duals, targets=targets)
        for i in idxs:
            req = instance.requests[i]
            if tree.reachable(req.target):
                best = min(best, req.demand / req.value * tree.distance(req.target))
    return best


def ufp_dual_is_feasible(
    instance: UFPInstance,
    edge_duals: np.ndarray,
    request_duals: np.ndarray | None = None,
    *,
    tolerance: float = 1e-9,
) -> bool:
    """Check dual feasibility: ``z_r + d_r * dist_y(s_r, t_r) >= v_r`` for all r.

    Checking every simple path is equivalent to checking the shortest one, so
    a single Dijkstra per source suffices.  In repetitions mode
    (``request_duals=None``) the condition is ``d_r * dist >= v_r``.
    """
    edge_duals = np.asarray(edge_duals, dtype=np.float64)
    z = (
        np.zeros(instance.num_requests)
        if request_duals is None
        else np.asarray(request_duals, dtype=np.float64)
    )
    by_source: dict[int, list[int]] = {}
    for i, req in enumerate(instance.requests):
        by_source.setdefault(req.source, []).append(i)
    for source, idxs in by_source.items():
        targets = {instance.requests[i].target for i in idxs}
        tree = single_source_dijkstra(instance.graph, source, edge_duals, targets=targets)
        for i in idxs:
            req = instance.requests[i]
            if not tree.reachable(req.target):
                continue  # constraint vacuously satisfiable: no simple path exists
            if z[i] + req.demand * tree.distance(req.target) < req.value - tolerance:
                return False
    return True


def check_weak_duality(
    primal_value: float,
    dual_value: float,
    *,
    tolerance: float = 1e-6,
) -> bool:
    """Weak LP duality for a max primal / min dual pair: primal <= dual."""
    return primal_value <= dual_value + tolerance

"""Linear-programming substrate.

Everything LP-shaped in the reproduction goes through this package:

* :mod:`repro.lp.model` — a small sparse LP builder (variables, linear
  constraints, objective) assembled as COO triplets.
* :mod:`repro.lp.solver` — the scipy/HiGHS solve wrapper with normalized
  statuses and dual extraction.
* :mod:`repro.lp.fractional_ufp` — the relaxation of the Figure 1 ILP
  (edge-flow formulation), used as the fractional optimum / upper bound in
  every UFP experiment, with a "repetitions" mode matching Figure 5.
* :mod:`repro.lp.fractional_muca` — the relaxation of the auction ILP.
* :mod:`repro.lp.path_lp` — the path formulation solved by column
  generation (pricing = shortest path under the capacity duals), which also
  yields per-request path distributions for randomized rounding.
* :mod:`repro.lp.duality` — helpers for checking weak duality and building
  dual objective values from ``(y, z)`` variable sets.
"""

from repro.lp.model import LinearProgram, LPSolution
from repro.lp.solver import solve_lp
from repro.lp.fractional_ufp import FractionalUFPResult, solve_fractional_ufp
from repro.lp.fractional_muca import FractionalMUCAResult, solve_fractional_muca
from repro.lp.path_lp import PathLPResult, solve_path_lp
from repro.lp.duality import ufp_dual_objective, check_weak_duality

__all__ = [
    "LinearProgram",
    "LPSolution",
    "solve_lp",
    "FractionalUFPResult",
    "solve_fractional_ufp",
    "FractionalMUCAResult",
    "solve_fractional_muca",
    "PathLPResult",
    "solve_path_lp",
    "ufp_dual_objective",
    "check_weak_duality",
]

"""scipy/HiGHS solve wrapper with normalized statuses and duals."""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog

from repro.exceptions import LPSolveError
from repro.lp.model import LinearProgram, LPSolution
from repro.types import SolverStatus

__all__ = ["solve_lp"]

_STATUS_MAP = {
    0: SolverStatus.OPTIMAL,
    1: SolverStatus.ITERATION_LIMIT,
    2: SolverStatus.INFEASIBLE,
    3: SolverStatus.UNBOUNDED,
    4: SolverStatus.ERROR,
}


def solve_lp(
    program: LinearProgram,
    *,
    method: str = "highs",
    raise_on_failure: bool = True,
    **options,
) -> LPSolution:
    """Solve a :class:`~repro.lp.model.LinearProgram` (maximization form).

    Parameters
    ----------
    program:
        The assembled program.
    method:
        scipy ``linprog`` method; HiGHS (the default) is the only one the
        library is tested with.
    raise_on_failure:
        When ``True`` (default) a non-optimal status raises
        :class:`~repro.exceptions.LPSolveError`; otherwise the failed status
        is returned in the solution object.

    Notes
    -----
    scipy minimizes, so the objective is negated on the way in and the
    returned objective / duals are flipped back to the maximization
    convention: inequality duals are reported non-negative (shadow price of
    relaxing ``<=`` by one unit increases the maximum by that price).
    """
    if program.num_variables == 0:
        return LPSolution(
            status=SolverStatus.OPTIMAL,
            objective=0.0,
            x=np.zeros(0),
            ineq_duals=np.zeros(0),
            eq_duals=np.zeros(0),
        )

    mats = program.matrices()
    result = linprog(
        c=-mats["c"],
        A_ub=mats["A_ub"],
        b_ub=mats["b_ub"],
        A_eq=mats["A_eq"],
        b_eq=mats["b_eq"],
        bounds=mats["bounds"],
        method=method,
        options=options or None,
    )

    status = _STATUS_MAP.get(int(result.status), SolverStatus.ERROR)
    if not status.ok and raise_on_failure:
        raise LPSolveError(
            f"LP solve failed with status {status.value!r}: {result.message}"
        )

    n_ub = program.num_le_constraints
    n_eq = program.num_eq_constraints
    if status.ok:
        x = np.asarray(result.x, dtype=np.float64)
        objective = float(-result.fun)
        # HiGHS reports marginals for the minimization problem; for the
        # maximization problem the shadow price of a <= constraint is the
        # negated marginal, which is non-negative.
        if n_ub and result.ineqlin is not None:
            ineq_duals = -np.asarray(result.ineqlin.marginals, dtype=np.float64)
        else:
            ineq_duals = np.zeros(n_ub)
        if n_eq and result.eqlin is not None:
            eq_duals = -np.asarray(result.eqlin.marginals, dtype=np.float64)
        else:
            eq_duals = np.zeros(n_eq)
    else:
        x = np.full(program.num_variables, np.nan)
        objective = float("nan")
        ineq_duals = np.full(n_ub, np.nan)
        eq_duals = np.full(n_eq, np.nan)

    return LPSolution(
        status=status,
        objective=objective,
        x=x,
        ineq_duals=ineq_duals,
        eq_duals=eq_duals,
    )

"""The fractional relaxation of the unsplittable flow ILP (Figure 1).

The paper's primal program (Figure 1) is written over simple paths; the
edge-flow formulation solved here is its standard polynomial-size
equivalent: for every request ``r`` and every arc ``a`` a variable
``g_{r,a} in [0, 1]`` gives the *fraction* of the request's demand routed
through that arc, with flow conservation at every vertex other than the
terminals and a per-request variable ``X_r in [0, 1]`` for the total routed
fraction.  Capacities couple the requests: ``sum_r d_r * (flow of r on edge
e) <= c_e``, where for an undirected edge both arc orientations count toward
the same capacity.

The objective ``max sum_r v_r X_r`` equals the optimum of the relaxation of
the Figure 1 ILP, so it upper bounds the integral optimum — which is how
every experiment uses it.  With ``repetitions=True`` the per-request cap
``X_r <= 1`` is dropped, matching the relaxation of the Figure 5 ILP
(unsplittable flow with repetitions).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import LPSolveError
from repro.flows.instance import UFPInstance
from repro.lp.model import LinearProgram, LPSolution
from repro.lp.solver import solve_lp
from repro.types import SolverStatus

__all__ = ["FractionalUFPResult", "solve_fractional_ufp"]


@dataclass(frozen=True)
class FractionalUFPResult:
    """Solution of the fractional UFP relaxation.

    Attributes
    ----------
    objective:
        The fractional optimum ``sum_r v_r X_r``.
    routed_fraction:
        Array over requests: the fraction ``X_r`` of each request routed
        (may exceed 1 in repetitions mode).
    edge_flows:
        Array of shape ``(num_requests, num_edges)`` with the demand units of
        each request crossing each logical edge (both orientations summed for
        undirected graphs).
    capacity_duals:
        Dual values ``y_e`` of the capacity constraints (the LP analogue of
        the algorithm's edge weights).
    status:
        Solver status (always optimal unless ``raise_on_failure=False``).
    """

    objective: float
    routed_fraction: np.ndarray
    edge_flows: np.ndarray
    capacity_duals: np.ndarray
    status: SolverStatus

    @property
    def ok(self) -> bool:
        return self.status.ok

    def edge_loads(self) -> np.ndarray:
        """Total demand load per edge of the fractional solution."""
        return self.edge_flows.sum(axis=0)


def solve_fractional_ufp(
    instance: UFPInstance,
    *,
    repetitions: bool = False,
    raise_on_failure: bool = True,
) -> FractionalUFPResult:
    """Solve the fractional relaxation of ``instance``.

    Parameters
    ----------
    instance:
        The UFP instance.
    repetitions:
        When ``True`` the per-request cap ``X_r <= 1`` is dropped (Figure 5
        relaxation); the optimum is then only bounded by the capacities.
    raise_on_failure:
        Raise :class:`~repro.exceptions.LPSolveError` on non-optimal status.

    Notes
    -----
    The multicommodity-flow relaxation may route a request along several
    paths or even around cycles; cycles never help the objective so the
    optimal basis returned by HiGHS does not contain them, but no
    post-processing relies on their absence.
    """
    graph = instance.graph
    n = graph.num_vertices
    m = graph.num_edges
    num_requests = instance.num_requests

    if m == 0:
        raise LPSolveError("cannot solve the relaxation of a graph with no edges")
    if num_requests == 0:
        return FractionalUFPResult(
            objective=0.0,
            routed_fraction=np.zeros(0),
            edge_flows=np.zeros((0, m)),
            capacity_duals=np.zeros(m),
            status=SolverStatus.OPTIMAL,
        )

    # Arc table: directed graphs use one arc per edge; undirected graphs two.
    arc_tails: list[int] = []
    arc_heads: list[int] = []
    arc_edge: list[int] = []
    for eid in range(m):
        u, v = graph.edge_endpoints(eid)
        arc_tails.append(u)
        arc_heads.append(v)
        arc_edge.append(eid)
        if not graph.directed:
            arc_tails.append(v)
            arc_heads.append(u)
            arc_edge.append(eid)
    num_arcs = len(arc_edge)

    lp = LinearProgram()

    # Variables: X_r (routed fraction) then g_{r,a} (per-arc fractions).
    x_upper = np.inf if repetitions else 1.0
    x_vars = [
        lp.add_variable(objective=req.value, lower=0.0, upper=x_upper, name=f"X_{r}")
        for r, req in enumerate(instance.requests)
    ]
    g_vars = np.empty((num_requests, num_arcs), dtype=np.int64)
    for r in range(num_requests):
        g_upper = np.inf if repetitions else 1.0
        for a in range(num_arcs):
            g_vars[r, a] = lp.add_variable(
                objective=0.0, lower=0.0, upper=g_upper, name=f"g_{r}_{a}"
            )

    # Flow conservation: out - in = X_r at the source, -X_r at the target,
    # 0 elsewhere, for every request.
    out_arcs_of: list[list[int]] = [[] for _ in range(n)]
    in_arcs_of: list[list[int]] = [[] for _ in range(n)]
    for a in range(num_arcs):
        out_arcs_of[arc_tails[a]].append(a)
        in_arcs_of[arc_heads[a]].append(a)

    for r, req in enumerate(instance.requests):
        for v in range(n):
            terms: dict[int, float] = {}
            for a in out_arcs_of[v]:
                terms[int(g_vars[r, a])] = terms.get(int(g_vars[r, a]), 0.0) + 1.0
            for a in in_arcs_of[v]:
                terms[int(g_vars[r, a])] = terms.get(int(g_vars[r, a]), 0.0) - 1.0
            if v == req.source:
                terms[x_vars[r]] = terms.get(x_vars[r], 0.0) - 1.0
                lp.add_eq_constraint(terms, 0.0)
            elif v == req.target:
                terms[x_vars[r]] = terms.get(x_vars[r], 0.0) + 1.0
                lp.add_eq_constraint(terms, 0.0)
            else:
                if terms:
                    lp.add_eq_constraint(terms, 0.0)

    # Capacity constraints per logical edge:
    #     sum_r d_r * sum_{arcs a of e} g_{r,a} <= c_e.
    capacity_rows: list[int] = []
    arcs_of_edge: list[list[int]] = [[] for _ in range(m)]
    for a in range(num_arcs):
        arcs_of_edge[arc_edge[a]].append(a)
    for eid in range(m):
        terms = {}
        for r, req in enumerate(instance.requests):
            for a in arcs_of_edge[eid]:
                terms[int(g_vars[r, a])] = req.demand
        row = lp.add_le_constraint(terms, graph.edge_capacity(eid))
        capacity_rows.append(row)

    solution: LPSolution = solve_lp(lp, raise_on_failure=raise_on_failure)

    if not solution.ok:
        return FractionalUFPResult(
            objective=float("nan"),
            routed_fraction=np.full(num_requests, np.nan),
            edge_flows=np.full((num_requests, m), np.nan),
            capacity_duals=np.full(m, np.nan),
            status=solution.status,
        )

    routed = np.array([solution.x[i] for i in x_vars], dtype=np.float64)
    edge_flows = np.zeros((num_requests, m), dtype=np.float64)
    for r, req in enumerate(instance.requests):
        for eid in range(m):
            total = 0.0
            for a in arcs_of_edge[eid]:
                total += float(solution.x[int(g_vars[r, a])])
            edge_flows[r, eid] = req.demand * total
    capacity_duals = solution.ineq_duals[np.asarray(capacity_rows, dtype=np.int64)]

    return FractionalUFPResult(
        objective=float(solution.objective),
        routed_fraction=routed,
        edge_flows=edge_flows,
        capacity_duals=capacity_duals,
        status=solution.status,
    )

"""Path formulation of the fractional UFP, solved by column generation.

This is the LP exactly as written in Figure 1 of the paper (variables indexed
by simple paths), solved without enumerating all paths: a restricted master
problem over a growing set of path columns is re-solved, and new columns are
priced in with a shortest-path computation under the current capacity duals
``y_e`` — a path of request ``r`` has positive reduced cost exactly when
``v_r - z_r - d_r * sum_{e in p} y_e > 0``, i.e. when the corresponding dual
constraint is violated, the same "most violated constraint" view that drives
the paper's primal-dual algorithm.

Besides the optimum (which matches the edge formulation of
:mod:`repro.lp.fractional_ufp` and is cross-checked in the tests), the result
keeps the per-request path distribution ``{path: x_s}``, which is what the
randomized-rounding baseline samples from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import LPSolveError
from repro.flows.instance import UFPInstance
from repro.graphs.shortest_path import single_source_dijkstra
from repro.lp.model import LinearProgram
from repro.lp.solver import solve_lp
from repro.types import SolverStatus

__all__ = ["PathColumn", "PathLPResult", "solve_path_lp"]


@dataclass(frozen=True)
class PathColumn:
    """One path column of the restricted master problem."""

    request_index: int
    vertices: tuple[int, ...]
    edge_ids: tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "vertices", tuple(int(v) for v in self.vertices))
        object.__setattr__(self, "edge_ids", tuple(int(e) for e in self.edge_ids))


@dataclass(frozen=True)
class PathLPResult:
    """Solution of the path LP.

    Attributes
    ----------
    objective:
        The fractional optimum.
    columns:
        All generated path columns.
    weights:
        Array aligned with ``columns``: the optimal ``x_s`` of each column.
    capacity_duals:
        Final dual prices ``y_e`` of the capacity constraints.
    request_duals:
        Final dual prices ``z_r`` of the per-request constraints.
    iterations:
        Number of master re-solves performed.
    status:
        Solver status of the final master solve.
    """

    objective: float
    columns: tuple[PathColumn, ...]
    weights: np.ndarray
    capacity_duals: np.ndarray
    request_duals: np.ndarray
    iterations: int
    status: SolverStatus = SolverStatus.OPTIMAL

    @property
    def ok(self) -> bool:
        return self.status.ok

    def path_distribution(self, request_index: int) -> list[tuple[PathColumn, float]]:
        """The ``(column, weight)`` pairs of one request with positive weight."""
        out: list[tuple[PathColumn, float]] = []
        for col, w in zip(self.columns, self.weights):
            if col.request_index == int(request_index) and w > 1e-12:
                out.append((col, float(w)))
        return out

    def routed_fraction(self, request_index: int) -> float:
        """Total fractional acceptance ``sum_s x_s`` of one request."""
        return float(sum(w for _, w in self.path_distribution(request_index)))


def _initial_columns(instance: UFPInstance) -> list[PathColumn]:
    """Seed the master with the hop-count shortest path of every routable request."""
    graph = instance.graph
    unit = np.ones(graph.num_edges, dtype=np.float64)
    columns: list[PathColumn] = []
    by_source: dict[int, list[int]] = {}
    for idx, req in enumerate(instance.requests):
        by_source.setdefault(req.source, []).append(idx)
    for source, idxs in by_source.items():
        targets = {instance.requests[i].target for i in idxs}
        tree = single_source_dijkstra(graph, source, unit, targets=targets)
        for i in idxs:
            target = instance.requests[i].target
            if tree.reachable(target):
                vertices, edges = tree.path_to(target)
                columns.append(PathColumn(i, vertices, edges))
    return columns


def solve_path_lp(
    instance: UFPInstance,
    *,
    max_iterations: int = 200,
    tolerance: float = 1e-7,
    raise_on_failure: bool = True,
) -> PathLPResult:
    """Solve the Figure 1 relaxation by column generation.

    Parameters
    ----------
    max_iterations:
        Safety cap on the number of master re-solves; exceeding it raises
        :class:`~repro.exceptions.LPSolveError` because a truncated column
        generation would silently under-estimate the optimum.
    tolerance:
        Reduced-cost tolerance for admitting new columns.
    """
    graph = instance.graph
    m = graph.num_edges
    num_requests = instance.num_requests
    if num_requests == 0:
        return PathLPResult(
            objective=0.0,
            columns=(),
            weights=np.zeros(0),
            capacity_duals=np.zeros(m),
            request_duals=np.zeros(0),
            iterations=0,
        )

    columns: list[PathColumn] = _initial_columns(instance)
    known: set[tuple[int, tuple[int, ...]]] = {
        (c.request_index, c.edge_ids) for c in columns
    }

    if not columns:
        # No request is routable at all.
        return PathLPResult(
            objective=0.0,
            columns=(),
            weights=np.zeros(0),
            capacity_duals=np.zeros(m),
            request_duals=np.zeros(num_requests),
            iterations=0,
        )

    last_solution = None
    capacity_rows: list[int] = []
    request_rows: list[int] = []
    iterations = 0

    for iterations in range(1, max_iterations + 1):
        # Build and solve the restricted master problem.
        lp = LinearProgram()
        col_vars = [
            lp.add_variable(
                objective=instance.requests[col.request_index].value,
                lower=0.0,
                upper=np.inf,
                name=f"x_s{ci}",
            )
            for ci, col in enumerate(columns)
        ]
        capacity_rows = []
        for eid in range(m):
            terms = {}
            for ci, col in enumerate(columns):
                if eid in col.edge_ids:
                    terms[col_vars[ci]] = instance.requests[col.request_index].demand
            capacity_rows.append(lp.add_le_constraint(terms, graph.edge_capacity(eid)))
        request_rows = []
        for r in range(num_requests):
            terms = {
                col_vars[ci]: 1.0
                for ci, col in enumerate(columns)
                if col.request_index == r
            }
            request_rows.append(lp.add_le_constraint(terms, 1.0))

        last_solution = solve_lp(lp, raise_on_failure=raise_on_failure)
        if not last_solution.ok:
            return PathLPResult(
                objective=float("nan"),
                columns=tuple(columns),
                weights=np.full(len(columns), np.nan),
                capacity_duals=np.full(m, np.nan),
                request_duals=np.full(num_requests, np.nan),
                iterations=iterations,
                status=last_solution.status,
            )

        y = last_solution.ineq_duals[np.asarray(capacity_rows, dtype=np.int64)]
        z = last_solution.ineq_duals[np.asarray(request_rows, dtype=np.int64)]
        # Guard against tiny negative duals from the solver.
        y = np.maximum(y, 0.0)

        # Pricing: for every request, the shortest path under y; add it when
        # its reduced cost v_r - z_r - d_r * len is positive.
        added = False
        by_source: dict[int, list[int]] = {}
        for idx, req in enumerate(instance.requests):
            by_source.setdefault(req.source, []).append(idx)
        for source, idxs in by_source.items():
            targets = {instance.requests[i].target for i in idxs}
            tree = single_source_dijkstra(graph, source, y, targets=targets)
            for i in idxs:
                req = instance.requests[i]
                if not tree.reachable(req.target):
                    continue
                length = tree.distance(req.target)
                reduced_cost = req.value - z[i] - req.demand * length
                if reduced_cost > tolerance:
                    vertices, edges = tree.path_to(req.target)
                    key = (i, tuple(edges))
                    if key not in known:
                        known.add(key)
                        columns.append(PathColumn(i, vertices, edges))
                        added = True
        if not added:
            break
    else:
        raise LPSolveError(
            f"column generation did not converge within {max_iterations} iterations"
        )

    weights = np.asarray(last_solution.x[: len(columns)], dtype=np.float64)
    capacity_duals = last_solution.ineq_duals[np.asarray(capacity_rows, dtype=np.int64)]
    request_duals = last_solution.ineq_duals[np.asarray(request_rows, dtype=np.int64)]
    return PathLPResult(
        objective=float(last_solution.objective),
        columns=tuple(columns),
        weights=weights,
        capacity_duals=capacity_duals,
        request_duals=request_duals,
        iterations=iterations,
        status=last_solution.status,
    )

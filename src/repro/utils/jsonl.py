"""Durable JSONL primitives shared by every append-only log in the repo.

The campaign :class:`~repro.scenarios.store.ResultStore` and the service
:class:`~repro.service.wal.WriteAheadLog` persist the same way: one JSON
document per line, appended with flush + fsync, read back by skipping
anything unparseable.  This module is the single implementation of that
protocol, including its two crash-hardening details:

* **Torn-tail repair** (:func:`repair_trailing`) — a kill mid-write leaves
  an unterminated final line.  Readers skip it, but an *append* onto it
  would merge the new record into the fragment, silently corrupting a
  committed line.  Every append therefore truncates back to the last
  complete line first.
* **Directory fsync** (:func:`fsync_dir`) — ``fsync`` on the file makes the
  *bytes* durable, but a file created (or first written) moments before a
  power loss can vanish with its directory entry: the parent directory's
  metadata is a separate write.  :func:`append_line` fsyncs the parent
  directory whenever the append created the file, and
  :func:`write_durable` does the same for whole-file writes, so an
  acknowledged commit survives power loss — not just process death.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

try:  # POSIX only; the service degrades to in-process locking without it.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from repro.io import loads_strict

__all__ = [
    "append_line",
    "fsync_dir",
    "iter_jsonl",
    "locked_file",
    "read_complete_lines",
    "repair_trailing",
    "write_durable",
]


def fsync_dir(directory: Path) -> None:
    """fsync a directory so entries created in it survive power loss.

    Best-effort: platforms/filesystems that cannot open a directory for
    reading (or reject fsync on one) are skipped silently — the file-level
    fsync already happened, and process-crash durability never needed this.
    """
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:  # pragma: no cover - platform dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform dependent
        pass
    finally:
        os.close(fd)


def repair_trailing(path: Path) -> bool:
    """Truncate a torn trailing line (kill mid-write left no ``\\n``).

    Readers already skip unparseable lines, but an *append* onto a torn
    tail would merge the new record into the fragment — losing committed
    work and making content hashes diverge.  Truncating back to the last
    complete line turns the crash artifact into a plain missing entry,
    which the caller's resume/replay path then recomputes.  Returns
    whether a repair happened.
    """
    if not path.exists():
        return False
    with path.open("rb+") as handle:
        handle.seek(0, os.SEEK_END)
        size = handle.tell()
        if size == 0:
            return False
        handle.seek(size - 1)
        if handle.read(1) == b"\n":
            return False
        # Scan backwards for the last newline and cut everything after it.
        position = size
        last_newline = -1
        while position > 0 and last_newline < 0:
            start = max(0, position - 4096)
            handle.seek(start)
            data = handle.read(position - start)
            index = data.rfind(b"\n")
            if index >= 0:
                last_newline = start + index
            position = start
        handle.truncate(last_newline + 1 if last_newline >= 0 else 0)
        handle.flush()
        os.fsync(handle.fileno())
    return True


def append_line(path: Path, line: str) -> None:
    """Append one JSONL line durably.

    A torn final line is repaired first (so the new line can never merge
    with a crash fragment), the write is flushed and fsynced, and — when
    this append *created* the file — the parent directory is fsynced too,
    so a power loss right after the commit cannot lose the directory
    entry.  A lost-but-acknowledged line is never tolerated.
    """
    repair_trailing(path)
    created = not path.exists()
    with path.open("a", encoding="utf-8") as handle:
        handle.write(line + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    if created:
        fsync_dir(path.parent)


def write_durable(path: Path, text: str) -> None:
    """Replace ``path``'s contents durably (fsync file, then directory).

    Written via a same-directory temp file + atomic rename, so a crash
    mid-write can never leave a half-written file under the real name.
    """
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    fsync_dir(path.parent)


def read_complete_lines(path: Path, offset: int = 0) -> tuple[list[dict], int]:
    """Parseable dict lines from byte ``offset``, plus the next offset.

    Only *complete* (newline-terminated) lines are consumed: a torn tail —
    a crash fragment or a line still being written — is left untouched and
    the returned offset stops right before it, so a tail-following reader
    picks the line up once it is finished (or repaired away).  Complete
    but unparseable lines advance the offset and yield nothing, matching
    :func:`iter_jsonl`.  A missing file reads as empty at offset 0.
    """
    if not path.exists():
        return [], 0
    with path.open("rb") as handle:
        handle.seek(offset)
        data = handle.read()
    end = data.rfind(b"\n") + 1  # 0 when no complete line follows offset
    entries: list[dict] = []
    for raw in data[:end].splitlines():
        raw = raw.strip()
        if not raw:
            continue
        try:
            payload: Any = loads_strict(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            continue
        if isinstance(payload, dict):
            entries.append(payload)
    return entries, offset + end


@contextmanager
def locked_file(path: Path) -> Iterator[int]:
    """Hold an exclusive ``flock`` on ``path`` (created if missing).

    ``flock`` contends between distinct file descriptors even inside one
    process, so two :class:`~repro.service.queue.JobQueue` handles on the
    same root exclude each other whether they live in one process (tests,
    the chaos harness) or many (a real supervisor fleet).  On platforms
    without ``fcntl`` the lock degrades to creation-only — single-process
    use stays correct via the callers' thread locks.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd = os.open(str(path), os.O_RDWR | os.O_CREAT, 0o644)
    try:
        if fcntl is not None:
            fcntl.flock(fd, fcntl.LOCK_EX)
        yield fd
    finally:
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)


def iter_jsonl(path: Path) -> Iterator[dict]:
    """Yield the parseable dict lines of a JSONL file (missing file → empty).

    Unparseable lines — a torn tail from a crash mid-write — are skipped;
    every complete line before them is still valid.
    """
    if not path.exists():
        return
    with path.open("r", encoding="utf-8") as handle:
        for raw in handle:
            raw = raw.strip()
            if not raw:
                continue
            try:
                payload: Any = loads_strict(raw)
            except ValueError:
                continue
            if isinstance(payload, dict):
                yield payload

"""Small shared utilities: deterministic randomness, timing, tables,
retry backoff, durable JSONL."""

from repro.utils.backoff import BackoffPolicy
from repro.utils.prng import ensure_rng, spawn_rngs
from repro.utils.timing import Timer
from repro.utils.tables import Table, format_float
from repro.utils.validation import (
    check_finite,
    check_positive,
    check_probability,
    check_in_unit_interval,
)

__all__ = [
    "BackoffPolicy",
    "ensure_rng",
    "spawn_rngs",
    "Timer",
    "Table",
    "format_float",
    "check_finite",
    "check_positive",
    "check_probability",
    "check_in_unit_interval",
]

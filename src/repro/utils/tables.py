"""Plain-text table rendering for experiment and benchmark output.

The experiment harness prints the same rows the paper's theorems/figures
describe; this module keeps that output readable without any plotting
dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

__all__ = ["Table", "format_float"]


def format_float(value: Any, precision: int = 4) -> str:
    """Format a numeric cell with ``precision`` significant decimals.

    Non-numeric values are passed through ``str``; ``None`` renders as ``-``.
    """
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1e6 or (abs(value) < 1e-4 and value != 0.0):
            return f"{value:.{precision}e}"
        return f"{value:.{precision}f}"
    return str(value)


@dataclass
class Table:
    """A simple column-aligned text table.

    Parameters
    ----------
    columns:
        Ordered column names.
    title:
        Optional heading printed above the table.
    precision:
        Number of decimals used for float cells.
    """

    columns: Sequence[str]
    title: str = ""
    precision: int = 4
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, values: Sequence[Any] | Mapping[str, Any]) -> None:
        """Append a row given either a sequence (column order) or a mapping."""
        if isinstance(values, Mapping):
            ordered = [values.get(col) for col in self.columns]
        else:
            ordered = list(values)
            if len(ordered) != len(self.columns):
                raise ValueError(
                    f"row has {len(ordered)} cells, table has {len(self.columns)} columns"
                )
        self.rows.append([format_float(v, self.precision) for v in ordered])

    def extend(self, rows: Iterable[Sequence[Any] | Mapping[str, Any]]) -> None:
        for row in rows:
            self.add_row(row)

    def render(self) -> str:
        """Return the table as an aligned multi-line string."""
        headers = [str(c) for c in self.columns]
        widths = [len(h) for h in headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt_line(cells: Sequence[str]) -> str:
            return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(fmt_line(headers))
        lines.append("  ".join("-" * w for w in widths))
        lines.extend(fmt_line(row) for row in self.rows)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()

"""Scalar validation helpers shared by instance constructors."""

from __future__ import annotations

import math
from typing import Any

__all__ = [
    "check_finite",
    "check_positive",
    "check_nonnegative",
    "check_probability",
    "check_in_unit_interval",
    "check_integer",
]


def check_finite(value: float, name: str) -> float:
    """Return ``value`` as float, raising ``ValueError`` if NaN or infinite."""
    value = float(value)
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return value


def check_positive(value: float, name: str) -> float:
    """Return ``value`` as float, requiring it to be strictly positive."""
    value = check_finite(value, name)
    if value <= 0.0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_nonnegative(value: float, name: str) -> float:
    """Return ``value`` as float, requiring it to be >= 0."""
    value = check_finite(value, name)
    if value < 0.0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_probability(value: float, name: str) -> float:
    """Return ``value`` as float, requiring it to lie in ``[0, 1]``."""
    value = check_finite(value, name)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return value


def check_in_unit_interval(value: float, name: str, *, open_left: bool = True) -> float:
    """Return ``value`` as float, requiring it to lie in ``(0, 1]`` (default)
    or ``[0, 1]`` when ``open_left`` is False."""
    value = check_finite(value, name)
    low_ok = value > 0.0 if open_left else value >= 0.0
    if not (low_ok and value <= 1.0):
        interval = "(0, 1]" if open_left else "[0, 1]"
        raise ValueError(f"{name} must lie in {interval}, got {value!r}")
    return value


def check_integer(value: Any, name: str, *, minimum: int | None = None) -> int:
    """Return ``value`` as int, optionally enforcing a lower bound."""
    if isinstance(value, bool) or not isinstance(value, (int,)) and not float(value).is_integer():
        raise ValueError(f"{name} must be an integer, got {value!r}")
    ivalue = int(value)
    if minimum is not None and ivalue < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {ivalue}")
    return ivalue

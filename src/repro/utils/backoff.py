"""One retry-backoff policy for the whole repo (runner and service).

Capped exponential backoff with *deterministic* seeded jitter: the delay
before retry ``attempt`` (1-based) is::

    min(cap, base * factor ** (attempt - 1)) * (1 - jitter * u)

where ``u ∈ [0, 1)`` is a pure hash of ``(seed, scope, attempt)`` — no
ambient RNG, no wall clock.  Two processes retrying the same job therefore
compute the *same* schedule (replayable, testable with a recorded sleep),
while different jobs (different ``scope``) decorrelate, which is the whole
point of jitter: a crashed supervisor restarting fifty jobs must not have
them all retry in lockstep.

``jitter`` shrinks the delay (never grows it), so ``cap`` is a hard upper
bound and ``jitter=0`` reproduces the classic doubling schedule exactly —
the campaign runner's recorded-sleep regression test pins that equivalence.

The clock and sleep are injectable throughout, so every consumer is
testable without wall-clock waits.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Callable

__all__ = ["BackoffPolicy", "jitter_fraction"]


def jitter_fraction(seed: int, scope: str, attempt: int) -> float:
    """A deterministic draw in ``[0, 1)`` from ``(seed, scope, attempt)``."""
    digest = hashlib.sha256(f"{seed}:{scope}:{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class BackoffPolicy:
    """Capped exponential backoff with deterministic seeded jitter.

    Parameters
    ----------
    base:
        Delay in seconds before the first retry (attempt 1).  ``0`` makes
        every delay zero — "retry immediately", the runner's default.
    factor:
        Multiplier applied per further attempt (default: doubling).
    cap:
        Hard upper bound on the undithered delay; ``None`` means uncapped.
    jitter:
        Fraction of the delay eligible for removal, in ``[0, 1]``.  The
        jittered delay lies in ``[(1 - jitter) * d, d]``.
    seed:
        Root of the jitter stream; combined with the per-call ``scope``
        label (e.g. a job id) so distinct jobs decorrelate while repeated
        runs of one job reproduce bit-identically.
    """

    base: float = 0.0
    factor: float = 2.0
    cap: float | None = None
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base < 0:
            raise ValueError(f"base must be >= 0, got {self.base}")
        if self.factor < 1:
            raise ValueError(f"factor must be >= 1, got {self.factor}")
        if self.cap is not None and self.cap < 0:
            raise ValueError(f"cap must be >= 0, got {self.cap}")
        if not 0 <= self.jitter <= 1:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, attempt: int, *, scope: str = "") -> float:
        """Seconds to wait before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        raw = self.base * self.factor ** (attempt - 1)
        if self.cap is not None:
            raw = min(raw, self.cap)
        if self.jitter and raw > 0:
            raw *= 1.0 - self.jitter * jitter_fraction(self.seed, scope, attempt)
        return raw

    def delays(self, attempts: int, *, scope: str = "") -> list[float]:
        """The full schedule for ``attempts`` retries (handy in tests)."""
        return [self.delay(k, scope=scope) for k in range(1, attempts + 1)]

    def sleep_for(
        self,
        attempt: int,
        *,
        scope: str = "",
        sleep: Callable[[float], None] = time.sleep,
    ) -> float:
        """Sleep the attempt's delay (skipping zero) and return it."""
        seconds = self.delay(attempt, scope=scope)
        if seconds > 0:
            sleep(seconds)
        return seconds

"""Lightweight wall-clock timing helpers."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Timer"]


@dataclass
class Timer:
    """A context-manager stopwatch with accumulation.

    Examples
    --------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True

    The same timer can be entered repeatedly; ``elapsed`` accumulates across
    uses, which is convenient for timing only the hot section of a loop.
    """

    elapsed: float = 0.0
    _start: float | None = field(default=None, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._start is not None:
            self.elapsed += time.perf_counter() - self._start
            self._start = None

    def reset(self) -> None:
        """Zero the accumulated time."""
        self.elapsed = 0.0
        self._start = None

    @property
    def running(self) -> bool:
        """Whether the timer is currently inside a ``with`` block."""
        return self._start is not None

"""Deterministic pseudo-random number handling.

Every stochastic component of the library accepts either a seed (``int``),
``None`` (meaning "use a fixed default seed" — experiments must be
reproducible by default), or an already-constructed
:class:`numpy.random.Generator`.  This module normalizes the three forms.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["DEFAULT_SEED", "ensure_rng", "spawn_rngs", "random_seed_sequence"]

#: Seed used when the caller passes ``None``.  Chosen arbitrarily but fixed so
#: that "no seed" still yields reproducible experiments.
DEFAULT_SEED: int = 20070611  # SPAA'07 took place June 9-11, 2007.


def ensure_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (use :data:`DEFAULT_SEED`), an integer seed, or an existing
        generator which is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    if not isinstance(seed, (int, np.integer)):
        raise TypeError(f"seed must be an int, Generator or None, got {type(seed)!r}")
    return np.random.default_rng(int(seed))


def spawn_rngs(seed: int | np.random.Generator | None, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent child generators.

    Useful for parameter sweeps where each cell must be reproducible on its
    own regardless of evaluation order.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    parent = ensure_rng(seed)
    seeds = parent.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def random_seed_sequence(seed: int | None, labels: Sequence[str] | Iterable[str]) -> dict[str, int]:
    """Map each label to a derived integer seed.

    The mapping depends only on ``seed`` and the order of ``labels``; it is
    used by the experiment harness to give every experiment cell a stable
    seed that survives re-ordering of unrelated cells.
    """
    labels = list(labels)
    rng = ensure_rng(seed)
    seeds = rng.integers(0, 2**31 - 1, size=len(labels), dtype=np.int64)
    return {label: int(s) for label, s in zip(labels, seeds)}

"""Streaming allocations: the output of an *online* unsplittable-flow auction.

An offline :class:`~repro.flows.allocation.Allocation` is a set of (request,
path) pairs; a streaming run additionally has a *history* — when each request
arrived, in which batch it was admitted, what its normalized price was at
admission time, and what it was charged.  :class:`StreamingAllocation`
extends :class:`Allocation` with that history, so everything that consumes
allocations (feasibility validation, edge loads, value accounting, the
experiment harness) works on online results unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.flows.allocation import Allocation

__all__ = ["AdmissionEvent", "StreamingAllocation"]


@dataclass(frozen=True)
class AdmissionEvent:
    """One irrevocable admission decision of an online auction.

    Attributes
    ----------
    request_index:
        Index of the request in arrival order (the index space of the
        finalized instance).
    batch:
        Index of the arrival batch whose processing admitted the request.
        For the built-in policies this always equals ``arrival_batch``
        (greedy defers only past budget exhaustion, which is final, and
        threshold prices out monotonically); the field exists so future
        policies that genuinely defer admissions stay representable.
    arrival_batch:
        Index of the batch the request arrived in.
    arrival_time:
        Timestamp attached to the arrival batch by the arrival process.
    score:
        The exact normalized score ``(d_r / v_r) * dist_y(s_r, t_r)`` at the
        moment of admission.
    payment:
        The online critical-value payment charged (0 when payments were not
        computed).
    """

    request_index: int
    batch: int
    arrival_batch: int
    arrival_time: float
    score: float
    payment: float = 0.0


@dataclass
class StreamingAllocation(Allocation):
    """An :class:`Allocation` plus the admission history that produced it.

    Attributes
    ----------
    events:
        One :class:`AdmissionEvent` per routed request, in admission order
        (aligned with ``routed``).
    rejected:
        Arrival-order indices of requests that were *not* admitted — either
        explicitly priced out by the admission policy, unroutable, or still
        pending when the stream ended.
    num_batches:
        Number of arrival batches processed.
    payments:
        Per-request payments aligned with the finalized instance's request
        order (all zeros when payments were not computed).
    """

    events: list[AdmissionEvent] = field(default_factory=list)
    rejected: tuple[int, ...] = ()
    num_batches: int = 0
    payments: np.ndarray = field(default_factory=lambda: np.zeros(0))

    @property
    def revenue(self) -> float:
        """Total online payments collected."""
        return float(self.payments.sum()) if self.payments.size else 0.0

    @property
    def admission_rate(self) -> float:
        """Fraction of arrived requests that were admitted (1.0 when no
        requests arrived)."""
        total = self.instance.num_requests
        return (self.num_selected / total) if total else 1.0

    def admission_times(self) -> list[float]:
        """Arrival timestamps of the admitted requests, in admission order."""
        return [event.arrival_time for event in self.events]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StreamingAllocation(algorithm={self.algorithm!r}, "
            f"selected={self.num_selected}/{self.instance.num_requests}, "
            f"batches={self.num_batches}, value={self.value:g}, "
            f"revenue={self.revenue:g})"
        )

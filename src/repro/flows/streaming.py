"""Streaming allocations: the output of an *online* unsplittable-flow auction.

An offline :class:`~repro.flows.allocation.Allocation` is a set of (request,
path) pairs; a streaming run additionally has a *history* — when each request
arrived, in which batch it was admitted, what its normalized price was at
admission time, and what it was charged.  :class:`StreamingAllocation`
extends :class:`Allocation` with that history, so everything that consumes
allocations (feasibility validation, edge loads, value accounting, the
experiment harness) works on online results unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.flows.allocation import Allocation

__all__ = ["AdmissionEvent", "RevocationEvent", "StreamingAllocation"]


@dataclass(frozen=True)
class AdmissionEvent:
    """One irrevocable admission decision of an online auction.

    Attributes
    ----------
    request_index:
        Index of the request in arrival order (the index space of the
        finalized instance).
    batch:
        Index of the arrival batch whose processing admitted the request.
        For the built-in policies this always equals ``arrival_batch``
        (greedy defers only past budget exhaustion, which is final, and
        threshold prices out monotonically); the field exists so future
        policies that genuinely defer admissions stay representable.
    arrival_batch:
        Index of the batch the request arrived in.
    arrival_time:
        Timestamp attached to the arrival batch by the arrival process.
    score:
        The exact normalized score ``(d_r / v_r) * dist_y(s_r, t_r)`` at the
        moment of admission.
    payment:
        The online critical-value payment charged (0 when payments were not
        computed).
    """

    request_index: int
    batch: int
    arrival_batch: int
    arrival_time: float
    score: float
    payment: float = 0.0


@dataclass(frozen=True)
class RevocationEvent:
    """One allocation revoked by a substrate fault (never by the mechanism).

    Admissions are irrevocable under the paper's model; revocations exist
    only in the fault-injection extension, where an edge failing or
    shrinking mid-stream can physically strand an already-routed request.

    Attributes
    ----------
    request_index:
        Index of the victim in arrival order.
    batch:
        Index of the batch *about to be processed* when the fault fired
        (faults apply between batches).
    reason:
        ``"edge_failure"`` or ``"capacity_shrink"``.
    edge_ids:
        The path the victim was routed on when revoked.
    value:
        The victim's declared value (the welfare lost if it never re-routes).
    refunded:
        The online payment returned to the victim (0 when payments were off
        or the victim had not been charged).
    compensation:
        Extra damages paid by the operator on top of the refund
        (``compensation_rate * refunded``).
    requeued:
        Whether the victim re-entered the live pool for possible
        re-admission (false once its requeue budget is exhausted).
    """

    request_index: int
    batch: int
    reason: str
    edge_ids: tuple[int, ...]
    value: float
    refunded: float
    compensation: float
    requeued: bool


@dataclass
class StreamingAllocation(Allocation):
    """An :class:`Allocation` plus the admission history that produced it.

    Attributes
    ----------
    events:
        One :class:`AdmissionEvent` per routed request, in admission order
        (aligned with ``routed``).
    rejected:
        Arrival-order indices of requests that were *not* admitted — either
        explicitly priced out by the admission policy, unroutable, or still
        pending when the stream ended.
    num_batches:
        Number of arrival batches processed.
    payments:
        Per-request payments aligned with the finalized instance's request
        order (all zeros when payments were not computed).
    """

    events: list[AdmissionEvent] = field(default_factory=list)
    rejected: tuple[int, ...] = ()
    num_batches: int = 0
    payments: np.ndarray = field(default_factory=lambda: np.zeros(0))
    revocations: list[RevocationEvent] = field(default_factory=list)

    @property
    def revenue(self) -> float:
        """Total online payments collected (refunds already netted out)."""
        return float(self.payments.sum()) if self.payments.size else 0.0

    @property
    def total_refunded(self) -> float:
        """Payments returned to fault-revoked winners."""
        return sum(event.refunded for event in self.revocations)

    @property
    def total_compensation(self) -> float:
        """Damages paid on top of refunds to fault-revoked winners."""
        return sum(event.compensation for event in self.revocations)

    @property
    def value_revoked(self) -> float:
        """Declared value stranded by revocations that never re-routed.

        A victim that was later re-admitted (it appears in ``routed``) does
        not count — its value made it into the final allocation after all.
        """
        final = {item.request_index for item in self.routed}
        victims = {event.request_index: event.value for event in self.revocations}
        return sum(
            value for index, value in victims.items() if index not in final
        )

    @property
    def admission_rate(self) -> float:
        """Fraction of arrived requests that were admitted (1.0 when no
        requests arrived)."""
        total = self.instance.num_requests
        return (self.num_selected / total) if total else 1.0

    def admission_times(self) -> list[float]:
        """Arrival timestamps of the admitted requests, in admission order."""
        return [event.arrival_time for event in self.events]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StreamingAllocation(algorithm={self.algorithm!r}, "
            f"selected={self.num_selected}/{self.instance.num_requests}, "
            f"batches={self.num_batches}, value={self.value:g}, "
            f"revenue={self.revenue:g})"
        )

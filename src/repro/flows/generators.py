"""Workload generators for the unsplittable flow experiments.

Random workloads draw request terminals, demands and values from simple
distributions over a given topology; the adversarial workloads wrap the
Figure 2 / Figure 3 constructions of :mod:`repro.graphs.lower_bounds` into
ready-to-run :class:`~repro.flows.instance.UFPInstance` objects.

All stochastic generators here follow the library-wide determinism
contract (see :mod:`repro.graphs.generators`): ``seed`` is an ``int``, a
shared :class:`numpy.random.Generator`, or ``None`` for the fixed default;
identical seeds reproduce identical instances bit for bit.  The
lower-bound constructions (:func:`staircase_instance`,
:func:`ring7_instance`) are fully deterministic and take no seed at all.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.exceptions import InvalidInstanceError
from repro.flows.instance import UFPInstance
from repro.flows.request import Request
from repro.graphs import generators as graph_generators
from repro.graphs import lower_bounds
from repro.graphs.graph import CapacitatedGraph
from repro.utils.prng import ensure_rng

__all__ = [
    "random_requests",
    "mixed_random_requests",
    "random_instance",
    "hotspot_instance",
    "staircase_instance",
    "ring7_instance",
    "isp_instance",
]


def random_requests(
    graph: CapacitatedGraph,
    num_requests: int,
    *,
    demand_range: tuple[float, float] = (0.1, 1.0),
    value_range: tuple[float, float] = (0.5, 2.0),
    value_proportional_to_demand: bool = False,
    seed: int | np.random.Generator | None = None,
    sources: Sequence[int] | None = None,
    targets: Sequence[int] | None = None,
) -> list[Request]:
    """Draw ``num_requests`` random requests over ``graph``.

    Parameters
    ----------
    demand_range:
        Uniform range for demands; the default keeps demands in ``(0, 1]`` so
        ``B`` equals the minimum edge capacity.
    value_range:
        Uniform range for values, or — when ``value_proportional_to_demand``
        is set — the range of the value *density* so that
        ``v_r = density * d_r``.
    sources, targets:
        Optional vertex pools to draw terminals from (defaults to all
        vertices).  Source and target of one request are always distinct.
    """
    if num_requests < 0:
        raise InvalidInstanceError("num_requests must be non-negative")
    d_lo, d_hi = float(demand_range[0]), float(demand_range[1])
    v_lo, v_hi = float(value_range[0]), float(value_range[1])
    if not 0 < d_lo <= d_hi:
        raise InvalidInstanceError(f"invalid demand range {demand_range!r}")
    if not 0 < v_lo <= v_hi:
        raise InvalidInstanceError(f"invalid value range {value_range!r}")
    rng = ensure_rng(seed)

    source_pool = np.asarray(
        sources if sources is not None else np.arange(graph.num_vertices), dtype=np.int64
    )
    target_pool = np.asarray(
        targets if targets is not None else np.arange(graph.num_vertices), dtype=np.int64
    )
    if source_pool.size == 0 or target_pool.size == 0:
        raise InvalidInstanceError("source/target pools must be non-empty")

    requests: list[Request] = []
    while len(requests) < num_requests:
        s = int(rng.choice(source_pool))
        t = int(rng.choice(target_pool))
        if s == t:
            continue
        d = float(rng.uniform(d_lo, d_hi))
        if value_proportional_to_demand:
            v = float(rng.uniform(v_lo, v_hi)) * d
        else:
            v = float(rng.uniform(v_lo, v_hi))
        requests.append(Request(s, t, d, v, name=f"r{len(requests)}"))
    return requests


def mixed_random_requests(
    graph: CapacitatedGraph,
    num_requests: int,
    groups: Sequence[dict],
    *,
    seed: int | np.random.Generator | None = None,
    sources: Sequence[int] | None = None,
    targets: Sequence[int] | None = None,
) -> list[Request]:
    """Draw a heterogeneous request mix: several bidder populations at once.

    Each group dict describes one population::

        {"fraction": 0.8, "demand_range": [0.05, 0.2],
         "value_range": [0.5, 1.5],
         "value_proportional_to_demand": True}   # last two optional

    ``fraction`` values are normalized and converted to per-group counts by
    largest remainder, so the counts always sum to ``num_requests``.  Groups
    are drawn in order from one shared rng stream (deterministic per the
    library seed contract) and the returned list keeps the group blocks in
    order, renamed ``r0 .. r{n-1}``; feed it to an arrival process for a
    shuffled order.

    This is the "heterogeneous bid mix" regime of the scenario campaigns:
    e.g. many small cheap flows plus a few elephant flows with high values,
    which stresses the mechanism differently from a uniform population.
    """
    if num_requests < 0:
        raise InvalidInstanceError("num_requests must be non-negative")
    if not groups:
        raise InvalidInstanceError("mixed_random_requests needs at least one group")
    fractions = [float(group.get("fraction", 1.0)) for group in groups]
    if any(f < 0 for f in fractions) or sum(fractions) <= 0:
        raise InvalidInstanceError("group fractions must be non-negative, sum > 0")
    total = sum(fractions)

    # Largest-remainder apportionment of num_requests over the groups.
    quotas = [f / total * num_requests for f in fractions]
    counts = [int(q) for q in quotas]
    remainders = sorted(
        range(len(groups)), key=lambda i: (quotas[i] - counts[i], -i), reverse=True
    )
    for i in remainders[: num_requests - sum(counts)]:
        counts[i] += 1

    rng = ensure_rng(seed)
    requests: list[Request] = []
    for group, count in zip(groups, counts):
        block = random_requests(
            graph,
            count,
            demand_range=tuple(group.get("demand_range", (0.1, 1.0))),
            value_range=tuple(group.get("value_range", (0.5, 2.0))),
            value_proportional_to_demand=bool(
                group.get("value_proportional_to_demand", False)
            ),
            seed=rng,
            sources=sources,
            targets=targets,
        )
        requests.extend(block)
    return [
        Request(r.source, r.target, r.demand, r.value, name=f"r{i}")
        for i, r in enumerate(requests)
    ]


def random_instance(
    *,
    num_vertices: int = 20,
    edge_probability: float = 0.25,
    capacity: float = 60.0,
    num_requests: int = 80,
    directed: bool = True,
    demand_range: tuple[float, float] = (0.1, 1.0),
    value_range: tuple[float, float] = (0.5, 2.0),
    value_proportional_to_demand: bool = False,
    seed: int | np.random.Generator | None = None,
    name: str = "random",
) -> UFPInstance:
    """A random large-capacity UFP instance on a random (di)graph.

    The default capacity of 60 with up to unit demands gives ``B = 60``,
    which satisfies ``B >= ln(m)/eps^2`` for ``eps ~ 0.3`` on graphs with a
    few hundred edges — the regime Theorem 3.1 addresses.
    """
    rng = ensure_rng(seed)
    if directed:
        graph = graph_generators.random_digraph(
            num_vertices, edge_probability, capacity, seed=rng
        )
    else:
        graph = graph_generators.random_graph(
            num_vertices, edge_probability, capacity, seed=rng
        )
    requests = random_requests(
        graph,
        num_requests,
        demand_range=demand_range,
        value_range=value_range,
        value_proportional_to_demand=value_proportional_to_demand,
        seed=rng,
    )
    return UFPInstance(
        graph,
        requests,
        name=name,
        metadata={
            "kind": "random",
            "num_vertices": num_vertices,
            "edge_probability": edge_probability,
            "capacity": capacity,
            "num_requests": num_requests,
            "directed": directed,
        },
    )


def hotspot_instance(
    *,
    num_vertices: int = 24,
    edge_probability: float = 0.2,
    capacity: float = 50.0,
    num_requests: int = 100,
    num_hotspots: int = 3,
    hotspot_fraction: float = 0.7,
    seed: int | np.random.Generator | None = None,
    name: str = "hotspot",
) -> UFPInstance:
    """A skewed workload where most requests target a few "hotspot" vertices.

    This models the data-center / content-server traffic pattern: a
    ``hotspot_fraction`` of requests pick their target uniformly among
    ``num_hotspots`` designated vertices, which concentrates contention on
    the edges around those vertices and separates the algorithms more
    sharply than the uniform workload.
    """
    if not 0 < hotspot_fraction <= 1:
        raise InvalidInstanceError("hotspot_fraction must lie in (0, 1]")
    if num_hotspots < 1:
        raise InvalidInstanceError("need at least one hotspot")
    rng = ensure_rng(seed)
    graph = graph_generators.random_digraph(num_vertices, edge_probability, capacity, seed=rng)
    hotspots = rng.choice(num_vertices, size=min(num_hotspots, num_vertices), replace=False)

    hot_count = int(round(hotspot_fraction * num_requests))
    cold_count = num_requests - hot_count
    hot = random_requests(graph, hot_count, targets=[int(h) for h in hotspots], seed=rng)
    cold = random_requests(graph, cold_count, seed=rng)
    requests = hot + cold
    for i, req in enumerate(requests):
        requests[i] = Request(req.source, req.target, req.demand, req.value, name=f"r{i}")
    return UFPInstance(
        graph,
        requests,
        name=name,
        metadata={
            "kind": "hotspot",
            "hotspots": [int(h) for h in hotspots],
            "capacity": capacity,
        },
    )


def isp_instance(
    *,
    num_core: int = 6,
    leaves_per_core: int = 4,
    core_capacity: float = 80.0,
    access_capacity: float = 40.0,
    num_requests: int = 120,
    seed: int | np.random.Generator | None = None,
    name: str = "isp",
) -> UFPInstance:
    """Bandwidth-auction workload on the two-level ISP topology.

    Requests originate at access leaves and terminate at other access leaves,
    so every routing path crosses the backbone — the scenario in which an ISP
    would auction bandwidth to selfish customers, i.e. the paper's motivating
    application of a truthful UFP mechanism.
    """
    rng = ensure_rng(seed)
    graph = graph_generators.isp_topology(
        num_core, leaves_per_core, core_capacity, access_capacity, seed=rng
    )
    leaves = list(range(num_core, graph.num_vertices))
    if len(leaves) < 2:
        raise InvalidInstanceError("ISP instance needs at least 2 access leaves")
    requests = random_requests(
        graph,
        num_requests,
        sources=leaves,
        targets=leaves,
        value_proportional_to_demand=True,
        value_range=(0.8, 3.0),
        seed=rng,
    )
    return UFPInstance(
        graph,
        requests,
        name=name,
        metadata={"kind": "isp", "num_core": num_core, "leaves_per_core": leaves_per_core},
    )


def staircase_instance(
    num_sources: int, capacity: int, *, subdivide: bool = False, name: str = ""
) -> UFPInstance:
    """The Figure 2 directed staircase as a ready-to-run instance.

    See :func:`repro.graphs.lower_bounds.directed_staircase`.  The known
    optimum ``B * ell`` and the reasonable-algorithm upper bound are recorded
    in the instance metadata for the experiment harness.  With
    ``subdivide=True`` the tie-elimination variant (edges replaced by paths)
    is built instead.
    """
    graph, quads, layout = lower_bounds.directed_staircase(
        num_sources, capacity, subdivide=subdivide
    )
    metadata = {
        "kind": "staircase",
        "ell": int(num_sources),
        "B": int(capacity),
        "subdivided": bool(subdivide),
        "layout": layout,
        "known_optimum": lower_bounds.staircase_optimal_value(num_sources, capacity),
        "reasonable_upper_bound": lower_bounds.staircase_reasonable_upper_bound(
            num_sources, capacity
        ),
    }
    return UFPInstance(
        graph,
        quads,
        name=name
        or f"staircase(ell={num_sources}, B={capacity}{', subdivided' if subdivide else ''})",
        metadata=metadata,
    )


def ring7_instance(capacity: int, *, name: str = "") -> UFPInstance:
    """The Figure 3 undirected 7-vertex instance as a ready-to-run instance."""
    graph, quads, layout = lower_bounds.undirected_ring7(capacity)
    metadata = {
        "kind": "ring7",
        "B": int(capacity),
        "layout": layout,
        "known_optimum": lower_bounds.ring7_optimal_value(capacity),
        "reasonable_upper_bound": lower_bounds.ring7_reasonable_upper_bound(capacity),
    }
    return UFPInstance(
        graph,
        quads,
        name=name or f"ring7(B={capacity})",
        metadata=metadata,
    )

"""Allocations: the output of an unsplittable-flow algorithm.

An :class:`Allocation` is the set ``W`` of (request, path) pairs produced by
an algorithm, in selection order.  It knows how to compute edge loads, verify
feasibility against the capacities and report its total value — the quantity
every experiment compares against an optimum.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import InfeasibleAllocationError, InvalidInstanceError
from repro.flows.instance import UFPInstance
from repro.flows.request import Request
from repro.graphs.graph import CapacitatedGraph
from repro.graphs.paths import validate_path
from repro.types import RunStats

__all__ = ["RoutedRequest", "Allocation", "edge_loads"]


@dataclass(frozen=True)
class RoutedRequest:
    """One selected request together with the path that routes it.

    Attributes
    ----------
    request_index:
        Index of the request in the instance's request list.
    request:
        The request object as declared to the algorithm.
    vertices:
        The vertex sequence of the routing path (``s_r`` first, ``t_r`` last).
    edge_ids:
        The edge ids of the path, aligned with consecutive vertex pairs.
    copies:
        How many times the request is satisfied along this path — always 1
        for the plain problem, possibly larger for the *with repetitions*
        variant (Section 5).
    """

    request_index: int
    request: Request
    vertices: tuple[int, ...]
    edge_ids: tuple[int, ...]
    copies: int = 1

    @property
    def value(self) -> float:
        """Total value contributed: ``copies * v_r``."""
        return self.copies * self.request.value

    @property
    def demand(self) -> float:
        return self.request.demand

    @property
    def hop_count(self) -> int:
        return len(self.edge_ids)


def edge_loads(
    graph: CapacitatedGraph,
    routed: Iterable[RoutedRequest],
) -> np.ndarray:
    """Total demand routed through every edge, as an array indexed by edge id.

    Vectorized as one ``np.bincount`` over the concatenated per-path edge-id
    arrays (this runs after every solve and inside every property test, so
    the nested Python loop it replaces was a fixed tax on the whole suite).
    ``bincount`` accumulates its weights in input order — item by item, edge
    by edge — so the result is bit-identical to the sequential loop.
    """
    routed = list(routed)
    if not routed:
        return np.zeros(graph.num_edges, dtype=np.float64)
    ids = np.concatenate(
        [np.asarray(item.edge_ids, dtype=np.int64) for item in routed]
    )
    demands = np.concatenate(
        [
            np.full(len(item.edge_ids), item.copies * item.request.demand)
            for item in routed
        ]
    )
    return np.bincount(ids, weights=demands, minlength=graph.num_edges)


@dataclass
class Allocation:
    """The outcome of running an unsplittable-flow algorithm on an instance.

    Attributes
    ----------
    instance:
        The instance (as declared) the allocation was computed for.
    routed:
        Selected (request, path) pairs in selection order.
    stats:
        Execution statistics of the producing algorithm.
    algorithm:
        Human-readable name of the algorithm that produced the allocation.
    """

    instance: UFPInstance
    routed: list[RoutedRequest] = field(default_factory=list)
    stats: RunStats = field(default_factory=RunStats)
    algorithm: str = ""

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_paths(
        cls,
        instance: UFPInstance,
        paths: Sequence[tuple[int, Sequence[int]]],
        *,
        algorithm: str = "",
        copies: Sequence[int] | None = None,
        stats: RunStats | None = None,
    ) -> "Allocation":
        """Build an allocation from ``(request_index, vertex_path)`` pairs.

        Every path is validated against the graph and the request terminals;
        feasibility against capacities is *not* checked here — call
        :meth:`validate` for that.
        """
        routed: list[RoutedRequest] = []
        for pos, (idx, vertex_path) in enumerate(paths):
            if not 0 <= idx < instance.num_requests:
                raise InvalidInstanceError(f"request index {idx} out of range")
            request = instance.requests[idx]
            edge_ids = validate_path(
                instance.graph,
                vertex_path,
                source=request.source,
                target=request.target,
            )
            reps = 1 if copies is None else int(copies[pos])
            if reps < 1:
                raise InvalidInstanceError("copies must be >= 1")
            routed.append(
                RoutedRequest(
                    request_index=idx,
                    request=request,
                    vertices=tuple(int(v) for v in vertex_path),
                    edge_ids=edge_ids,
                    copies=reps,
                )
            )
        return cls(
            instance=instance,
            routed=routed,
            stats=stats or RunStats(),
            algorithm=algorithm,
        )

    @classmethod
    def empty(cls, instance: UFPInstance, *, algorithm: str = "") -> "Allocation":
        """An allocation that selects nothing."""
        return cls(instance=instance, routed=[], algorithm=algorithm)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def value(self) -> float:
        """Total value of the allocation, ``sum_{(r, p) in W} copies * v_r``."""
        return float(sum(item.value for item in self.routed))

    @property
    def num_selected(self) -> int:
        """Number of distinct requests selected at least once."""
        return len(self.selected_indices())

    def selected_indices(self) -> set[int]:
        """Indices of selected requests."""
        return {item.request_index for item in self.routed}

    def is_selected(self, request_index: int) -> bool:
        return request_index in self.selected_indices()

    def routed_for(self, request_index: int) -> list[RoutedRequest]:
        """All routed entries of one request (more than one only with repetitions)."""
        return [item for item in self.routed if item.request_index == request_index]

    def edge_loads(self) -> np.ndarray:
        """Demand routed through every edge."""
        return edge_loads(self.instance.graph, self.routed)

    def edge_utilization(self) -> np.ndarray:
        """Per-edge load divided by capacity."""
        caps = self.instance.graph.capacities
        loads = self.edge_loads()
        return np.divide(loads, caps, out=np.zeros_like(loads), where=caps > 0)

    def max_utilization(self) -> float:
        """The largest load-to-capacity ratio over all edges (0 when empty)."""
        util = self.edge_utilization()
        return float(util.max()) if util.size else 0.0

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def is_feasible(self, *, tolerance: float = 1e-9) -> bool:
        """Whether every edge load is within capacity (up to ``tolerance``)."""
        loads = self.edge_loads()
        caps = self.instance.graph.capacities
        return bool(np.all(loads <= caps + tolerance))

    def validate(self, *, tolerance: float = 1e-9, allow_repetitions: bool = False) -> None:
        """Raise :class:`InfeasibleAllocationError` if the allocation violates
        capacities, routes a request more than once without
        ``allow_repetitions``, or routes along a non-simple path."""
        if not allow_repetitions:
            seen: set[int] = set()
            for item in self.routed:
                if item.request_index in seen or item.copies != 1:
                    raise InfeasibleAllocationError(
                        f"request {item.request_index} routed more than once in a "
                        "no-repetitions allocation"
                    )
                seen.add(item.request_index)
        for item in self.routed:
            if len(set(item.vertices)) != len(item.vertices):
                raise InfeasibleAllocationError(
                    f"request {item.request_index} routed along a non-simple path"
                )
        loads = self.edge_loads()
        caps = self.instance.graph.capacities
        over = np.nonzero(loads > caps + tolerance)[0]
        if over.size:
            eid = int(over[0])
            raise InfeasibleAllocationError(
                f"edge {eid} overloaded: load {loads[eid]:.6g} > capacity "
                f"{caps[eid]:.6g} (and {over.size - 1} more overloaded edges)"
            )

    # ------------------------------------------------------------------ #
    # Dunder
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[RoutedRequest]:
        return iter(self.routed)

    def __len__(self) -> int:
        return len(self.routed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Allocation(algorithm={self.algorithm!r}, selected={self.num_selected}, "
            f"value={self.value:g})"
        )

"""The B-bounded unsplittable flow instance."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import InvalidInstanceError
from repro.flows.request import Request, normalize_requests
from repro.graphs.graph import CapacitatedGraph
from repro.types import ufp_capacity_threshold

__all__ = ["UFPInstance"]


@dataclass(frozen=True)
class UFPInstance:
    """A complete instance of the B-bounded unsplittable flow problem.

    Attributes
    ----------
    graph:
        The edge-capacitated graph ``G = (V, E)``.
    requests:
        The connection requests ``R``; each has public terminals and an
        agent-controlled ``(demand, value)`` type.
    name:
        Optional label used by the experiment harness.

    Notes
    -----
    The paper normalizes demands to ``(0, 1]`` so that the capacity bound is
    simply ``B = min_e c_e``.  The constructor validates vertex ranges and
    positivity but deliberately does *not* reject demands above 1 — the
    normalized form is obtained with :meth:`normalized`, and algorithms that
    require it call :meth:`capacity_bound` / :meth:`meets_capacity_assumption`
    to decide whether the large-capacity assumption holds.
    """

    graph: CapacitatedGraph
    requests: tuple[Request, ...]
    name: str = ""
    metadata: dict = field(default_factory=dict, compare=False)

    def __init__(
        self,
        graph: CapacitatedGraph,
        requests: Iterable[Request | Sequence[float]],
        *,
        name: str = "",
        metadata: dict | None = None,
    ) -> None:
        reqs = tuple(normalize_requests(requests))
        for req in reqs:
            for vertex in (req.source, req.target):
                if not 0 <= vertex < graph.num_vertices:
                    raise InvalidInstanceError(
                        f"request {req.name!r} references vertex {vertex}, but the "
                        f"graph has only {graph.num_vertices} vertices"
                    )
        object.__setattr__(self, "graph", graph)
        object.__setattr__(self, "requests", reqs)
        object.__setattr__(self, "name", str(name))
        object.__setattr__(self, "metadata", dict(metadata or {}))

    # ------------------------------------------------------------------ #
    # Sizes and bounds
    # ------------------------------------------------------------------ #
    @property
    def num_requests(self) -> int:
        return len(self.requests)

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    @property
    def max_demand(self) -> float:
        """``max_r d_r`` over the declared demands (0 when there are none)."""
        if not self.requests:
            return 0.0
        return max(r.demand for r in self.requests)

    @property
    def min_demand(self) -> float:
        if not self.requests:
            return 0.0
        return min(r.demand for r in self.requests)

    @property
    def total_value(self) -> float:
        return float(sum(r.value for r in self.requests))

    def capacity_bound(self) -> float:
        """``B`` — the ratio ``min_e c_e / max_r d_r``.

        With demands normalized to ``(0, 1]`` and ``max_r d_r = 1`` this is
        exactly ``min_e c_e`` as in the paper; for unnormalized instances the
        ratio form is the meaningful quantity.
        """
        if self.graph.num_edges == 0:
            raise InvalidInstanceError("instance graph has no edges")
        max_d = self.max_demand
        if max_d <= 0.0:
            return self.graph.min_capacity
        return self.graph.min_capacity / max_d

    def meets_capacity_assumption(self, epsilon: float) -> bool:
        """Whether ``B >= ln(m) / eps^2`` (the Theorem 3.1 assumption)."""
        return self.capacity_bound() >= ufp_capacity_threshold(self.num_edges, epsilon)

    def minimum_epsilon(self) -> float:
        """The smallest ``eps`` for which the capacity assumption holds
        (``sqrt(ln m / B)``), clipped to ``(0, 1]``.  Returns ``inf`` when
        even ``eps = 1`` is insufficient."""
        b = self.capacity_bound()
        if b <= 0:
            return math.inf
        eps = math.sqrt(math.log(max(self.num_edges, 2)) / b)
        return eps if eps <= 1.0 else math.inf

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #
    def normalized(self) -> "UFPInstance":
        """Return an equivalent instance with demands scaled into ``(0, 1]``.

        Both the demands and the capacities are divided by ``max_r d_r``,
        which leaves the set of feasible solutions (and their values)
        unchanged while matching the paper's normalized formulation.
        """
        max_d = self.max_demand
        if max_d <= 0.0 or math.isclose(max_d, 1.0):
            return self
        graph = self.graph.with_capacities(self.graph.capacities / max_d)
        requests = [r.with_demand(r.demand / max_d) for r in self.requests]
        return UFPInstance(graph, requests, name=self.name, metadata=dict(self.metadata))

    def with_requests(self, requests: Iterable[Request | Sequence[float]]) -> "UFPInstance":
        """Return a copy of the instance with a different request list."""
        return UFPInstance(self.graph, requests, name=self.name, metadata=dict(self.metadata))

    def replace_request(self, index: int, new_request: Request) -> "UFPInstance":
        """Return a copy with the request at ``index`` replaced.

        The replacement keeps its position so that algorithms that break ties
        by list order see the same ordering — important when auditing
        monotonicity, where only one agent's declaration may change.
        """
        if not 0 <= index < len(self.requests):
            raise IndexError(index)
        reqs = list(self.requests)
        reqs[index] = new_request
        return UFPInstance(self.graph, reqs, name=self.name, metadata=dict(self.metadata))

    def request_index(self, request: Request) -> int:
        """Index of ``request`` in the instance (by name when set, else identity)."""
        for i, r in enumerate(self.requests):
            if r is request or (request.name and r.name == request.name):
                return i
        raise KeyError(f"request {request!r} not part of this instance")

    def demands_array(self) -> np.ndarray:
        """Demands as a numpy array aligned with request order."""
        return np.array([r.demand for r in self.requests], dtype=np.float64)

    def values_array(self) -> np.ndarray:
        """Values as a numpy array aligned with request order."""
        return np.array([r.value for r in self.requests], dtype=np.float64)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" {self.name!r}" if self.name else ""
        return (
            f"UFPInstance({label} n={self.num_vertices}, m={self.num_edges}, "
            f"|R|={self.num_requests})"
        )

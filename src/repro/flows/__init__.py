"""Unsplittable-flow instance model: requests, instances, allocations.

The B-bounded unsplittable flow problem of the paper is represented by a
:class:`~repro.flows.instance.UFPInstance` — a capacitated graph plus a list
of :class:`~repro.flows.request.Request` objects ``(s_r, t_r, d_r, v_r)``.
Solutions are :class:`~repro.flows.allocation.Allocation` objects mapping
selected requests to simple paths, with feasibility checking against the
edge capacities.
"""

from repro.flows.request import Request, normalize_requests
from repro.flows.instance import UFPInstance
from repro.flows.allocation import Allocation, RoutedRequest, edge_loads
from repro.flows.streaming import AdmissionEvent, StreamingAllocation
from repro.flows.generators import (
    random_requests,
    mixed_random_requests,
    random_instance,
    hotspot_instance,
    staircase_instance,
    ring7_instance,
    isp_instance,
)

__all__ = [
    "Request",
    "normalize_requests",
    "UFPInstance",
    "Allocation",
    "RoutedRequest",
    "edge_loads",
    "AdmissionEvent",
    "StreamingAllocation",
    "random_requests",
    "mixed_random_requests",
    "random_instance",
    "hotspot_instance",
    "staircase_instance",
    "ring7_instance",
    "isp_instance",
]

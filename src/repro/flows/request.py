"""Connection requests.

A request ``r`` is the quadruple ``(s_r, t_r, d_r, v_r)`` of the paper: a
source vertex, a target vertex, a positive demand ``d_r`` (normalized to lie
in ``(0, 1]`` in the B-bounded formulation) and a positive value ``v_r``.

In the mechanism-design setting the *type* of a request — the part a selfish
agent may lie about — is the pair ``(d_r, v_r)``; the terminals are public
knowledge.  :meth:`Request.with_type` produces the declared-type variant used
throughout the mechanism layer.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Sequence

from repro.exceptions import InvalidRequestError
from repro.utils.validation import check_positive

__all__ = ["Request", "normalize_requests"]


@dataclass(frozen=True)
class Request:
    """A single unsplittable-flow connection request.

    Attributes
    ----------
    source, target:
        The public terminal vertices ``s_r`` and ``t_r``.
    demand:
        The (declared) demand ``d_r``; must be positive.  In the B-bounded
        formulation demands are normalized to ``(0, 1]`` but the class does
        not enforce the upper bound — :class:`~repro.flows.instance.UFPInstance`
        checks it where it matters.
    value:
        The (declared) value ``v_r``; must be positive.
    name:
        Optional identifier used in reports; defaults to the empty string.
    """

    source: int
    target: int
    demand: float
    value: float
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "source", int(self.source))
        object.__setattr__(self, "target", int(self.target))
        object.__setattr__(self, "demand", check_positive(self.demand, "demand"))
        object.__setattr__(self, "value", check_positive(self.value, "value"))
        if self.source == self.target:
            raise InvalidRequestError(
                f"request {self.name or ''!r} has identical source and target "
                f"{self.source}"
            )

    # ------------------------------------------------------------------ #
    # Type manipulation (mechanism design)
    # ------------------------------------------------------------------ #
    @property
    def type(self) -> tuple[float, float]:
        """The agent-controlled type ``(demand, value)``."""
        return (self.demand, self.value)

    @property
    def density(self) -> float:
        """Value per unit of demand, ``v_r / d_r``."""
        return self.value / self.demand

    def with_type(self, demand: float | None = None, value: float | None = None) -> "Request":
        """Return a copy with the declared demand and/or value replaced.

        The terminals and name are preserved; this is the canonical way the
        mechanism layer builds misreported declarations.
        """
        return replace(
            self,
            demand=self.demand if demand is None else demand,
            value=self.value if value is None else value,
        )

    def with_value(self, value: float) -> "Request":
        """Return a copy with the declared value replaced."""
        return self.with_type(value=value)

    def with_demand(self, demand: float) -> "Request":
        """Return a copy with the declared demand replaced."""
        return self.with_type(demand=demand)

    def dominates_type_of(self, other: "Request") -> bool:
        """True when this declaration is at least as strong as ``other``'s:
        same terminals, demand no larger and value no smaller.

        Monotonicity (Definition 2.1) states that if an algorithm selects
        ``other`` then it must also select any request whose declaration
        dominates it.
        """
        return (
            self.source == other.source
            and self.target == other.target
            and self.demand <= other.demand + 1e-15
            and self.value >= other.value - 1e-15
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        label = f"{self.name}: " if self.name else ""
        return (
            f"{label}{self.source}->{self.target} "
            f"(d={self.demand:g}, v={self.value:g})"
        )


def normalize_requests(requests: Iterable[Request | Sequence[float]]) -> list[Request]:
    """Coerce an iterable of requests or ``(s, t, d, v)`` tuples to
    :class:`Request` objects, assigning positional names ``r0, r1, ...`` to
    unnamed ones."""
    normalized: list[Request] = []
    for idx, item in enumerate(requests):
        if isinstance(item, Request):
            req = item
        else:
            seq = tuple(item)
            if len(seq) != 4:
                raise InvalidRequestError(
                    f"request tuples must be (source, target, demand, value); got {seq!r}"
                )
            req = Request(int(seq[0]), int(seq[1]), float(seq[2]), float(seq[3]))
        if not req.name:
            req = replace(req, name=f"r{idx}")
        normalized.append(req)
    return normalized

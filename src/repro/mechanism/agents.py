"""Agents, true types, declarations and quasi-linear utilities.

The library separates the *true* type of an agent from what it *declares* to
the mechanism.  For the unsplittable flow problem the type is the pair
``(demand, value)``; for the (known) single-minded auction it is the value
(and optionally the bundle, in the unknown single-minded setting).

Utility model (standard single-minded quasi-linear utilities):

* a winning UFP agent obtains its true value only if the declared demand it
  was allocated covers its true demand (declaring a *smaller* demand yields
  an allocation too small to carry the agent's traffic, hence worthless);
  it always pays its payment;
* a winning auction agent obtains its true value only if the allocated
  (declared) bundle contains its true bundle;
* a losing agent obtains zero and pays zero (the mechanisms are normalized).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.auctions.instance import Bid
from repro.flows.request import Request

__all__ = ["AgentReport", "UFPAgent", "MUCAAgent"]


@dataclass(frozen=True)
class AgentReport:
    """Outcome of one agent under a mechanism run.

    Attributes
    ----------
    agent_index:
        Index of the agent (request or bid) in the instance.
    selected:
        Whether the declaration was selected / won.
    payment:
        The payment charged (zero for losers).
    utility:
        Quasi-linear utility with respect to the agent's *true* type.
    """

    agent_index: int
    selected: bool
    payment: float
    utility: float


@dataclass(frozen=True)
class UFPAgent:
    """An unsplittable-flow agent: a true request plus a declaration."""

    true_request: Request
    declared_request: Request

    @classmethod
    def truthful(cls, request: Request) -> "UFPAgent":
        """An agent that declares its true type."""
        return cls(true_request=request, declared_request=request)

    @property
    def is_truthful(self) -> bool:
        return (
            abs(self.declared_request.demand - self.true_request.demand) < 1e-15
            and abs(self.declared_request.value - self.true_request.value) < 1e-15
        )

    def allocation_serves_agent(self, selected: bool) -> bool:
        """Whether a selection under the declared type actually serves the
        agent's true need (the exactness model: the mechanism reserves exactly
        the declared demand)."""
        return selected and self.declared_request.demand >= self.true_request.demand - 1e-12

    def utility(self, selected: bool, payment: float) -> float:
        """Quasi-linear utility of the outcome with respect to the true type."""
        gained = self.true_request.value if self.allocation_serves_agent(selected) else 0.0
        paid = payment if selected else 0.0
        return gained - paid


@dataclass(frozen=True)
class MUCAAgent:
    """A single-minded auction agent: a true bid plus a declaration."""

    true_bid: Bid
    declared_bid: Bid

    @classmethod
    def truthful(cls, bid: Bid) -> "MUCAAgent":
        return cls(true_bid=bid, declared_bid=bid)

    @property
    def is_truthful(self) -> bool:
        return (
            self.declared_bid.bundle == self.true_bid.bundle
            and abs(self.declared_bid.value - self.true_bid.value) < 1e-15
        )

    def allocation_serves_agent(self, selected: bool) -> bool:
        """A winning declared bundle serves the agent only if it contains the
        true bundle (unknown single-minded model, cf. Corollary 4.2)."""
        return selected and set(self.true_bid.bundle) <= set(self.declared_bid.bundle)

    def utility(self, selected: bool, payment: float) -> float:
        gained = self.true_bid.value if self.allocation_serves_agent(selected) else 0.0
        paid = payment if selected else 0.0
        return gained - paid

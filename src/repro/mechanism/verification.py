"""Truthfulness audits: can any sampled misreport beat truth-telling?

Theorem 2.3 guarantees that under a monotone, exact allocation rule with
critical-value payments, no misreport ever increases an agent's utility.
The audits here test that guarantee end to end on concrete instances: for a
sample of agents and a sample of misreports, the utility of lying (computed
with the *true* type, the mechanism outcome under the *lie*, and the payment
charged under the lie) must not exceed the utility of truth-telling by more
than a numerical tolerance.

Running the audit against a *non*-monotone rule (e.g. randomized rounding)
produces positive-utility lies, which is exactly the phenomenon that makes
such rules unusable as mechanisms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro import parallel
from repro.auctions.allocation import MUCAAllocation
from repro.auctions.instance import MUCAInstance
from repro.exceptions import MechanismError
from repro.flows.allocation import Allocation
from repro.flows.instance import UFPInstance
from repro.mechanism.agents import MUCAAgent, UFPAgent
from repro.mechanism.payments import (
    _record_base_run,
    _trace_critical_value_muca,
    _trace_critical_value_ufp,
    critical_value_muca,
    critical_value_ufp,
)
from repro.utils.prng import ensure_rng

__all__ = [
    "ProfitableDeviation",
    "TruthfulnessReport",
    "audit_ufp_truthfulness",
    "audit_muca_truthfulness",
]


@dataclass(frozen=True)
class ProfitableDeviation:
    """A sampled misreport that strictly increased an agent's utility."""

    agent_index: int
    true_type: tuple
    misreported_type: tuple
    truthful_utility: float
    deviating_utility: float

    @property
    def gain(self) -> float:
        return self.deviating_utility - self.truthful_utility


@dataclass
class TruthfulnessReport:
    """Result of a truthfulness audit."""

    agents_audited: int = 0
    misreports_tried: int = 0
    profitable_deviations: list[ProfitableDeviation] = field(default_factory=list)
    max_gain: float = 0.0

    @property
    def is_truthful(self) -> bool:
        """No sampled misreport was (numerically significantly) profitable."""
        return not self.profitable_deviations

    def summary(self) -> str:
        status = "truthful" if self.is_truthful else "NOT truthful"
        return (
            f"{status}: {len(self.profitable_deviations)} profitable deviation(s) "
            f"out of {self.misreports_tried} misreports over {self.agents_audited} "
            f"agents (max gain {self.max_gain:.3g})"
        )


def _ufp_outcome(
    algorithm: Callable[[UFPInstance], Allocation],
    instance: UFPInstance,
    index: int,
) -> tuple[bool, float]:
    """(selected, payment) of agent ``index`` when the declared instance is
    ``instance``.  Payment is the critical value when selected, else 0."""
    allocation = algorithm(instance)
    if not allocation.is_selected(index):
        return False, 0.0
    payment = critical_value_ufp(algorithm, instance, index)
    return True, payment


def _ufp_outcome_trace(replayer, index: int, declared) -> tuple[bool, float]:
    """Trace-replay twin of :func:`_ufp_outcome`: the declared instance is
    the audit's base instance with agent ``index``'s declaration replaced
    by ``declared`` — a single-index perturbation, so both the selection
    question and every payment-bisection probe replay from the one recorded
    base run.  Outcomes are bit-identical to the from-scratch path."""
    if not replayer.probe_selected(index, declared):
        return False, 0.0
    payment = _trace_critical_value_ufp(
        replayer,
        index,
        relative_tolerance=1e-6,
        absolute_tolerance=1e-9,
        declared=declared,
    )
    return True, payment


def _audit_ufp_agent(task: tuple[int, list[tuple[float, float]]]):
    """Audit one agent: evaluate the truthful outcome plus every misreport.

    The per-agent random ``(demand, value)`` draws arrive pre-derived in the
    task (drawn in agent order from the audit's single RNG stream *before*
    the fan-out), so the expensive mechanism evaluations are a pure function
    of the task — the fan-out contract of :func:`repro.parallel.pmap` — and
    the report is bit-identical at any ``jobs``.
    """
    idx, random_misreports = task
    algorithm, instance, misreport_grid, tolerance, replayer = parallel.worker_payload()
    true_request = instance.requests[idx]
    agent = UFPAgent.truthful(true_request)
    if replayer is not None:
        truthful_selected, truthful_payment = _ufp_outcome_trace(
            replayer, idx, true_request
        )
    else:
        truthful_selected, truthful_payment = _ufp_outcome(algorithm, instance, idx)
    truthful_utility = agent.utility(truthful_selected, truthful_payment)
    if truthful_utility < -tolerance:
        raise MechanismError(
            f"truth-telling yields negative utility {truthful_utility:.4g} for agent "
            f"{idx}; the payment rule is not individually rational"
        )

    misreports: list[tuple[float, float]] = list(random_misreports)
    for demand_factor, value_factor in misreport_grid or ():
        misreports.append(
            (
                float(np.clip(true_request.demand * demand_factor, 1e-6, 1.0)),
                float(true_request.value * value_factor),
            )
        )
    # Structured misreports: inflate the value a lot (try to force a win),
    # and shade the value down towards the payment (try to pay less).
    misreports.append((true_request.demand, true_request.value * 10.0))
    if truthful_selected and truthful_payment > 0:
        misreports.append((true_request.demand, truthful_payment * 1.01))

    deviations: list[ProfitableDeviation] = []
    max_gain = 0.0
    for demand, value in misreports:
        lie = true_request.with_type(demand=demand, value=value)
        lie_agent = UFPAgent(true_request=true_request, declared_request=lie)
        if replayer is not None:
            lie_selected, lie_payment = _ufp_outcome_trace(replayer, idx, lie)
        else:
            lie_instance = instance.replace_request(idx, lie)
            lie_selected, lie_payment = _ufp_outcome(algorithm, lie_instance, idx)
        lie_utility = lie_agent.utility(lie_selected, lie_payment)
        gain = lie_utility - truthful_utility
        max_gain = max(max_gain, gain)
        if gain > tolerance:
            deviations.append(
                ProfitableDeviation(
                    agent_index=idx,
                    true_type=(true_request.demand, true_request.value),
                    misreported_type=(demand, value),
                    truthful_utility=truthful_utility,
                    deviating_utility=lie_utility,
                )
            )
    return len(misreports), deviations, max_gain


def audit_ufp_truthfulness(
    algorithm: Callable[[UFPInstance], Allocation],
    instance: UFPInstance,
    *,
    agents: list[int] | None = None,
    misreports_per_agent: int = 6,
    misreport_grid: Sequence[tuple[float, float]] | None = None,
    tolerance: float = 1e-4,
    seed: int | np.random.Generator | None = None,
    jobs: int | None = None,
    use_trace: bool = False,
) -> TruthfulnessReport:
    """Audit the mechanism induced by ``algorithm`` + critical-value payments.

    Parameters
    ----------
    algorithm:
        The allocation rule (assumed deterministic).
    instance:
        The instance of *true* types.
    agents:
        Which request indices to audit (default: all).
    misreports_per_agent:
        How many random ``(demand, value)`` misreports to try per agent, in
        addition to two structured ones (value inflated to win, value deflated
        just above the truthful payment).
    misreport_grid:
        Optional deterministic ``(demand_factor, value_factor)`` multipliers
        applied to each agent's *true* type and tried for every audited
        agent, on top of the random draws.  A grid makes the audit's
        coverage explicit and seed-independent (the property tests sweep
        e.g. ``{0.5, 1, 2} x {0.25, 0.5, 1, 2, 4}``); demand factors are
        clipped into the normalized ``(0, 1]`` demand range.
    tolerance:
        Utility gains below this threshold are attributed to the payment
        bisection tolerance and not reported.
    jobs:
        Worker processes for the per-agent audits (``None`` → the
        ``REPRO_JOBS`` environment default → serial).  The random draws
        happen up front in agent order from the single RNG stream, so the
        report is bit-identical at any ``jobs``.
    use_trace:
        Record the truthful base run once and answer every audit
        evaluation — the lie allocations *and* all their payment-bisection
        probes, each a single-declaration perturbation of the base
        instance — by checkpointed suffix-resume replay
        (:mod:`repro.core.trace`).  The report is bit-identical with or
        without tracing; only wall-clock changes.  Falls back silently
        when ``algorithm`` does not accept a ``trace=`` keyword.
    """
    rng = ensure_rng(seed)
    indices = list(range(instance.num_requests)) if agents is None else [int(a) for a in agents]
    report = TruthfulnessReport()

    replayer = _record_base_run(algorithm, instance, None) if use_trace else None

    # Pre-derive every agent's random misreports in agent order — the RNG
    # consumption is exactly that of the historical sequential loop (the
    # evaluations in between never touched the stream), and the expensive
    # per-agent evaluations become independent tasks.
    tasks: list[tuple[int, list[tuple[float, float]]]] = []
    for idx in indices:
        true_request = instance.requests[idx]
        draws: list[tuple[float, float]] = []
        for _ in range(int(misreports_per_agent)):
            demand = float(
                np.clip(true_request.demand * rng.uniform(0.3, 1.5), 1e-6, 1.0)
            )
            value = float(true_request.value * rng.uniform(0.3, 3.0))
            draws.append((demand, value))
        tasks.append((idx, draws))

    outcomes = parallel.pmap(
        _audit_ufp_agent,
        tasks,
        jobs=jobs,
        payload=(algorithm, instance, misreport_grid, tolerance, replayer),
    )
    for tried, deviations, max_gain in outcomes:
        report.agents_audited += 1
        report.misreports_tried += tried
        report.profitable_deviations.extend(deviations)
        report.max_gain = max(report.max_gain, max_gain)
    return report


def _muca_outcome(
    algorithm: Callable[[MUCAInstance], MUCAAllocation],
    instance: MUCAInstance,
    index: int,
) -> tuple[bool, float]:
    allocation = algorithm(instance)
    if not allocation.is_winner(index):
        return False, 0.0
    payment = critical_value_muca(algorithm, instance, index)
    return True, payment


def _muca_outcome_trace(replayer, index: int, declared_value: float) -> tuple[bool, float]:
    """Trace-replay twin of :func:`_muca_outcome` (value-only probes)."""
    if not replayer.probe_selected(index, declared_value):
        return False, 0.0
    payment = _trace_critical_value_muca(
        replayer,
        index,
        relative_tolerance=1e-6,
        absolute_tolerance=1e-9,
        declared_value=declared_value,
    )
    return True, payment


def _audit_muca_agent(task: tuple[int, list[float]]):
    """Audit one bid; the MUCA analogue of :func:`_audit_ufp_agent`."""
    idx, random_values = task
    algorithm, instance, value_grid, tolerance, replayer = parallel.worker_payload()
    true_bid = instance.bids[idx]
    agent = MUCAAgent.truthful(true_bid)
    if replayer is not None:
        truthful_selected, truthful_payment = _muca_outcome_trace(
            replayer, idx, true_bid.value
        )
    else:
        truthful_selected, truthful_payment = _muca_outcome(algorithm, instance, idx)
    truthful_utility = agent.utility(truthful_selected, truthful_payment)
    if truthful_utility < -tolerance:
        raise MechanismError(
            f"truth-telling yields negative utility for bid {idx}; the payment "
            "rule is not individually rational"
        )

    values = list(random_values)
    values.extend(float(true_bid.value * factor) for factor in value_grid or ())
    values.append(true_bid.value * 10.0)
    if truthful_selected and truthful_payment > 0:
        values.append(truthful_payment * 1.01)

    deviations: list[ProfitableDeviation] = []
    max_gain = 0.0
    for value in values:
        lie = true_bid.with_value(value)
        lie_agent = MUCAAgent(true_bid=true_bid, declared_bid=lie)
        if replayer is not None:
            lie_selected, lie_payment = _muca_outcome_trace(replayer, idx, value)
        else:
            lie_instance = instance.replace_bid(idx, lie)
            lie_selected, lie_payment = _muca_outcome(algorithm, lie_instance, idx)
        lie_utility = lie_agent.utility(lie_selected, lie_payment)
        gain = lie_utility - truthful_utility
        max_gain = max(max_gain, gain)
        if gain > tolerance:
            deviations.append(
                ProfitableDeviation(
                    agent_index=idx,
                    true_type=(true_bid.value,),
                    misreported_type=(value,),
                    truthful_utility=truthful_utility,
                    deviating_utility=lie_utility,
                )
            )
    return len(values), deviations, max_gain


def audit_muca_truthfulness(
    algorithm: Callable[[MUCAInstance], MUCAAllocation],
    instance: MUCAInstance,
    *,
    agents: list[int] | None = None,
    misreports_per_agent: int = 6,
    value_grid: Sequence[float] | None = None,
    tolerance: float = 1e-4,
    seed: int | np.random.Generator | None = None,
    jobs: int | None = None,
    use_trace: bool = False,
) -> TruthfulnessReport:
    """Value-misreport audit of the auction mechanism (known single-minded).

    ``value_grid`` optionally adds deterministic value *multipliers* tried
    for every audited bid on top of the random draws (the MUCA analogue of
    :func:`audit_ufp_truthfulness`'s ``misreport_grid``); ``jobs`` fans the
    per-bid audits out with the same bit-identical contract, and
    ``use_trace`` answers every evaluation by checkpointed suffix-resume
    replay of one recorded base run (bit-identical report, less work)."""
    rng = ensure_rng(seed)
    indices = list(range(instance.num_bids)) if agents is None else [int(a) for a in agents]
    report = TruthfulnessReport()

    replayer = _record_base_run(algorithm, instance, None) if use_trace else None

    tasks: list[tuple[int, list[float]]] = []
    for idx in indices:
        true_bid = instance.bids[idx]
        draws = [
            float(true_bid.value * rng.uniform(0.3, 3.0))
            for _ in range(int(misreports_per_agent))
        ]
        tasks.append((idx, draws))

    outcomes = parallel.pmap(
        _audit_muca_agent,
        tasks,
        jobs=jobs,
        payload=(algorithm, instance, value_grid, tolerance, replayer),
    )
    for tried, deviations, max_gain in outcomes:
        report.agents_audited += 1
        report.misreports_tried += tried
        report.profitable_deviations.extend(deviations)
        report.max_gain = max(report.max_gain, max_gain)
    return report

"""Empirical monotonicity and exactness audits.

Lemma 3.4 proves ``Bounded-UFP`` monotone analytically; these audits verify
the property *empirically* on concrete instances and — more importantly —
expose the *non*-monotonicity of baselines such as randomized LP rounding,
which is the paper's motivation for avoiding them.

Monotonicity (Definition 2.1): if a request is selected with declaration
``(d, v)``, it must still be selected with any declaration ``(d', v')`` where
``d' <= d`` and ``v' >= v``, all other declarations fixed.  The audit samples
such dominating declarations for winners (and, symmetrically, dominated
declarations for losers, which must stay losing) and reports violations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.auctions.allocation import MUCAAllocation
from repro.auctions.instance import MUCAInstance
from repro.flows.allocation import Allocation
from repro.flows.instance import UFPInstance
from repro.utils.prng import ensure_rng

__all__ = [
    "MonotonicityViolation",
    "MonotonicityReport",
    "check_ufp_monotonicity",
    "check_muca_monotonicity",
    "check_exactness",
]


@dataclass(frozen=True)
class MonotonicityViolation:
    """One witnessed violation of Definition 2.1."""

    agent_index: int
    original_type: tuple
    deviated_type: tuple
    originally_selected: bool
    deviated_selected: bool

    def describe(self) -> str:
        direction = "winner dropped" if self.originally_selected else "loser promoted"
        return (
            f"agent {self.agent_index}: {direction} when type changed from "
            f"{self.original_type} to {self.deviated_type}"
        )


@dataclass
class MonotonicityReport:
    """Result of a monotonicity audit."""

    trials: int = 0
    violations: list[MonotonicityViolation] = field(default_factory=list)

    @property
    def is_monotone(self) -> bool:
        """Whether no violation was found (within the sampled deviations)."""
        return not self.violations

    @property
    def violation_rate(self) -> float:
        return len(self.violations) / self.trials if self.trials else 0.0

    def summary(self) -> str:
        status = "monotone" if self.is_monotone else "NOT monotone"
        return (
            f"{status}: {len(self.violations)} violation(s) in {self.trials} sampled "
            "deviations"
        )


def check_ufp_monotonicity(
    algorithm: Callable[[UFPInstance], Allocation],
    instance: UFPInstance,
    *,
    trials_per_request: int = 5,
    include_losers: bool = True,
    seed: int | np.random.Generator | None = None,
) -> MonotonicityReport:
    """Sample type deviations and check Definition 2.1 for every request.

    For each *winner* the sampled deviations lower the demand and raise the
    value (the winner must stay selected); for each *loser* (when
    ``include_losers``) they raise the demand and lower the value (the loser
    must stay unselected) — the contrapositive of the same property.
    """
    rng = ensure_rng(seed)
    base = algorithm(instance)
    winners = base.selected_indices()
    report = MonotonicityReport()

    for idx, request in enumerate(instance.requests):
        selected = idx in winners
        if not selected and not include_losers:
            continue
        for _ in range(int(trials_per_request)):
            if selected:
                new_demand = float(request.demand * rng.uniform(0.3, 1.0))
                new_value = float(request.value * rng.uniform(1.0, 3.0))
            else:
                new_demand = float(min(request.demand * rng.uniform(1.0, 2.0), 1.0))
                new_value = float(request.value * rng.uniform(0.2, 1.0))
            deviated = request.with_type(demand=new_demand, value=new_value)
            trial_instance = instance.replace_request(idx, deviated)
            trial = algorithm(trial_instance)
            trial_selected = trial.is_selected(idx)
            report.trials += 1
            violated = (selected and not trial_selected) or (
                not selected and trial_selected
            )
            if violated:
                report.violations.append(
                    MonotonicityViolation(
                        agent_index=idx,
                        original_type=(request.demand, request.value),
                        deviated_type=(new_demand, new_value),
                        originally_selected=selected,
                        deviated_selected=trial_selected,
                    )
                )
    return report


def check_muca_monotonicity(
    algorithm: Callable[[MUCAInstance], MUCAAllocation],
    instance: MUCAInstance,
    *,
    trials_per_bid: int = 5,
    include_losers: bool = True,
    seed: int | np.random.Generator | None = None,
) -> MonotonicityReport:
    """Value-monotonicity audit for auction algorithms (winners must survive
    value increases; losers must not win after value decreases)."""
    rng = ensure_rng(seed)
    base = algorithm(instance)
    winners = set(base.winners)
    report = MonotonicityReport()

    for idx, bid in enumerate(instance.bids):
        selected = idx in winners
        if not selected and not include_losers:
            continue
        for _ in range(int(trials_per_bid)):
            if selected:
                new_value = float(bid.value * rng.uniform(1.0, 3.0))
            else:
                new_value = float(bid.value * rng.uniform(0.2, 1.0))
            trial_instance = instance.replace_bid(idx, bid.with_value(new_value))
            trial = algorithm(trial_instance)
            trial_selected = trial.is_winner(idx)
            report.trials += 1
            violated = (selected and not trial_selected) or (
                not selected and trial_selected
            )
            if violated:
                report.violations.append(
                    MonotonicityViolation(
                        agent_index=idx,
                        original_type=(bid.value,),
                        deviated_type=(new_value,),
                        originally_selected=selected,
                        deviated_selected=trial_selected,
                    )
                )
    return report


def check_exactness(allocation: Allocation) -> bool:
    """Exactness (Definition 2.2): every selected request is routed exactly
    once along a single path carrying its full demand, and unselected
    requests receive nothing.  For the allocation objects of this library
    the only way to violate exactness is to route a request more than once,
    so the check reduces to that."""
    seen: set[int] = set()
    for item in allocation.routed:
        if item.request_index in seen or item.copies != 1:
            return False
        seen.add(item.request_index)
    return True

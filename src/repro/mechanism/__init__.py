"""Mechanism-design layer: from monotone algorithms to truthful mechanisms.

Theorem 2.3 (Lehmann et al. / Briest et al.): a monotone and exact
allocation algorithm, combined with *critical-value* payments, is a truthful
mechanism.  This package implements that construction generically:

* :mod:`repro.mechanism.agents` — true vs. declared types and agent utility.
* :mod:`repro.mechanism.payments` — critical-value computation by bisection
  over the declared value (re-running the allocation algorithm).
* :mod:`repro.mechanism.truthful` — the full mechanisms
  (:func:`~repro.mechanism.truthful.run_truthful_ufp_mechanism`,
  :func:`~repro.mechanism.truthful.run_truthful_muca_mechanism`).
* :mod:`repro.mechanism.monotonicity` — empirical monotonicity / exactness
  audits of arbitrary allocation algorithms.
* :mod:`repro.mechanism.verification` — truthfulness audits: no sampled
  misreport may beat truth-telling under the computed payments.
"""

from repro.mechanism.agents import AgentReport, UFPAgent, MUCAAgent
from repro.mechanism.payments import (
    critical_value_ufp,
    critical_value_muca,
    compute_ufp_payments,
    compute_muca_payments,
)
from repro.mechanism.truthful import (
    MechanismResult,
    run_truthful_ufp_mechanism,
    run_truthful_muca_mechanism,
)
from repro.mechanism.monotonicity import (
    MonotonicityReport,
    check_ufp_monotonicity,
    check_muca_monotonicity,
    check_exactness,
)
from repro.mechanism.verification import (
    TruthfulnessReport,
    audit_ufp_truthfulness,
    audit_muca_truthfulness,
)

__all__ = [
    "AgentReport",
    "UFPAgent",
    "MUCAAgent",
    "critical_value_ufp",
    "critical_value_muca",
    "compute_ufp_payments",
    "compute_muca_payments",
    "MechanismResult",
    "run_truthful_ufp_mechanism",
    "run_truthful_muca_mechanism",
    "MonotonicityReport",
    "check_ufp_monotonicity",
    "check_muca_monotonicity",
    "check_exactness",
    "TruthfulnessReport",
    "audit_ufp_truthfulness",
    "audit_muca_truthfulness",
]

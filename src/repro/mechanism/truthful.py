"""The truthful mechanisms of Corollaries 3.2 and 4.2.

A mechanism is an allocation rule plus a payment rule.  Here the allocation
rule is ``Bounded-UFP`` / ``Bounded-MUCA`` (monotone and exact by Lemma 3.4 /
Theorem 4.1) and the payment rule charges every winner its critical value,
so by Theorem 2.3 reporting the true type is a dominant strategy.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable

import numpy as np

from repro.auctions.allocation import MUCAAllocation
from repro.auctions.instance import MUCAInstance
from repro.core.bounded_muca import bounded_muca
from repro.core.bounded_ufp import bounded_ufp
from repro.flows.allocation import Allocation
from repro.flows.instance import UFPInstance
from repro.mechanism.payments import compute_muca_payments, compute_ufp_payments

__all__ = ["MechanismResult", "run_truthful_ufp_mechanism", "run_truthful_muca_mechanism"]


@dataclass(frozen=True)
class MechanismResult:
    """Outcome of a truthful mechanism run.

    Attributes
    ----------
    allocation:
        The allocation under the declared types (an
        :class:`~repro.flows.allocation.Allocation` or
        :class:`~repro.auctions.allocation.MUCAAllocation`).
    payments:
        Per-agent payments; losers pay zero.
    """

    allocation: Allocation | MUCAAllocation
    payments: np.ndarray

    @property
    def social_welfare(self) -> float:
        """Total declared value of the selected agents."""
        return float(self.allocation.value)

    @property
    def revenue(self) -> float:
        """Total payments collected."""
        return float(self.payments.sum())

    def utility_of(self, agent_index: int, true_value: float) -> float:
        """Quasi-linear utility of one agent whose true value is
        ``true_value`` and whose declared allocation fully serves it."""
        agent_index = int(agent_index)
        if isinstance(self.allocation, Allocation):
            selected = self.allocation.is_selected(agent_index)
        else:
            selected = self.allocation.is_winner(agent_index)
        return (true_value - float(self.payments[agent_index])) if selected else 0.0


def run_truthful_ufp_mechanism(
    instance: UFPInstance,
    epsilon: float,
    *,
    compute_payments: bool = True,
    algorithm: Callable[[UFPInstance], Allocation] | None = None,
) -> MechanismResult:
    """Run the Corollary 3.2 mechanism on the declared instance.

    Parameters
    ----------
    instance:
        The instance as *declared* by the agents.
    epsilon:
        The accuracy parameter passed to ``Bounded-UFP``.
    compute_payments:
        Set to ``False`` to skip the (algorithm-rerunning) payment
        computation when only the allocation matters.
    algorithm:
        Override the allocation rule (must be monotone and exact for the
        result to be truthful); defaults to ``Bounded-UFP(epsilon)``.
    """
    rule = algorithm or partial(bounded_ufp, epsilon=epsilon)
    allocation = rule(instance)
    if compute_payments:
        payments = compute_ufp_payments(rule, instance, allocation)
    else:
        payments = np.zeros(instance.num_requests, dtype=np.float64)
    return MechanismResult(allocation=allocation, payments=payments)


def run_truthful_muca_mechanism(
    instance: MUCAInstance,
    epsilon: float,
    *,
    compute_payments: bool = True,
    algorithm: Callable[[MUCAInstance], MUCAAllocation] | None = None,
) -> MechanismResult:
    """Run the Corollary 4.2 mechanism on the declared auction."""
    rule = algorithm or partial(bounded_muca, epsilon=epsilon)
    allocation = rule(instance)
    if compute_payments:
        payments = compute_muca_payments(rule, instance, allocation)
    else:
        payments = np.zeros(instance.num_bids, dtype=np.float64)
    return MechanismResult(allocation=allocation, payments=payments)

"""Critical-value payments.

For a monotone allocation rule the selection of agent ``r`` is, with every
other declaration fixed, monotone in ``r``'s declared value: there is a
threshold (the *critical value*) above which ``r`` is selected and below
which it is not.  Charging every winner its critical value — and losers
nothing — yields the truthful mechanism of Theorem 2.3.

The critical value is found by bisection over the declared value, re-running
the allocation algorithm with the single declaration changed.  The number of
algorithm runs per winner is ``O(log((v_hi - v_lo) / tol))``; experiments
that only need allocations (not payments) should not compute payments.

Every probe instance produced by :meth:`UFPInstance.replace_request` shares
the original (immutable) graph object, so the probe runs all share one
pricing-engine substrate: the shortest-path trees under the initial dual
weights ``y = 1/c`` — the most expensive pricing sweep of each run — are
memoized on :attr:`CapacitatedGraph.substrate_cache
<repro.graphs.graph.CapacitatedGraph.substrate_cache>` by the
:mod:`~repro.core.pricing_engine` and computed exactly once across the whole
bisection, not once per probe.  (They depend only on the graph, never on the
declarations being probed, so reuse is sound and bit-exact.)
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from repro import parallel
from repro.auctions.allocation import MUCAAllocation
from repro.auctions.instance import MUCAInstance
from repro.exceptions import MechanismError
from repro.flows.allocation import Allocation
from repro.flows.instance import UFPInstance

__all__ = [
    "critical_value_ufp",
    "critical_value_muca",
    "compute_ufp_payments",
    "compute_muca_payments",
]

UFPAlgorithm = Callable[[UFPInstance], Allocation]
MUCAAlgorithm = Callable[[MUCAInstance], MUCAAllocation]


def _bisect_critical_value(
    is_selected_at: Callable[[float], bool],
    declared_value: float,
    *,
    relative_tolerance: float,
    absolute_tolerance: float,
    max_iterations: int,
    known_selected: bool = False,
) -> float:
    """Find the selection threshold of a monotone-in-value selection predicate.

    ``is_selected_at(v)`` must be monotone non-decreasing in ``v`` and true at
    ``declared_value``.  The returned value ``c`` satisfies: the agent is
    selected at ``c + tol`` and (unless ``c`` is effectively zero) not
    selected at ``c - tol``.

    ``known_selected=True`` asserts the caller has already observed the agent
    selected at its declaration (e.g. it is iterating the winners of the
    allocation the same deterministic algorithm produced), so the redundant
    confirming run is skipped — one full mechanism re-run saved per winner.
    """
    if not known_selected and not is_selected_at(declared_value):
        raise MechanismError(
            "critical value requested for a declaration that is not selected"
        )
    low = 0.0
    high = float(declared_value)
    # Quick exit: selected even at a negligible positive value -> payment ~ 0.
    tiny = max(absolute_tolerance, relative_tolerance * high) * 0.5
    if is_selected_at(tiny):
        return 0.0
    for _ in range(max_iterations):
        if high - low <= max(absolute_tolerance, relative_tolerance * high):
            break
        mid = 0.5 * (low + high)
        if is_selected_at(mid):
            high = mid
        else:
            low = mid
    return high


def critical_value_ufp(
    algorithm: UFPAlgorithm,
    instance: UFPInstance,
    request_index: int,
    *,
    relative_tolerance: float = 1e-6,
    absolute_tolerance: float = 1e-9,
    max_iterations: int = 60,
    assume_selected: bool = False,
) -> float:
    """Critical value of one *winning* request under ``algorithm``.

    The declared demand is held fixed; only the declared value is varied.
    Raises :class:`~repro.exceptions.MechanismError` when the request is not
    selected under its declaration (losers pay nothing — do not call this).

    All probe instances share ``instance.graph``, so when ``algorithm`` is an
    engine-backed solver (:func:`repro.core.bounded_ufp`, ...) the bisection
    re-runs reuse the warm per-graph initial-weight tree cache — see the
    module docstring.
    """
    request_index = int(request_index)
    declared = instance.requests[request_index]

    def is_selected_at(value: float) -> bool:
        if value <= 0.0:
            return False
        trial = instance.replace_request(request_index, declared.with_value(value))
        return algorithm(trial).is_selected(request_index)

    return _bisect_critical_value(
        is_selected_at,
        declared.value,
        relative_tolerance=relative_tolerance,
        absolute_tolerance=absolute_tolerance,
        max_iterations=max_iterations,
        known_selected=assume_selected,
    )


def critical_value_muca(
    algorithm: MUCAAlgorithm,
    instance: MUCAInstance,
    bid_index: int,
    *,
    relative_tolerance: float = 1e-6,
    absolute_tolerance: float = 1e-9,
    max_iterations: int = 60,
    assume_selected: bool = False,
) -> float:
    """Critical value of one *winning* bid under ``algorithm``."""
    bid_index = int(bid_index)
    declared = instance.bids[bid_index]

    def is_selected_at(value: float) -> bool:
        if value <= 0.0:
            return False
        trial = instance.replace_bid(bid_index, declared.with_value(value))
        return algorithm(trial).is_winner(bid_index)

    return _bisect_critical_value(
        is_selected_at,
        declared.value,
        relative_tolerance=relative_tolerance,
        absolute_tolerance=absolute_tolerance,
        max_iterations=max_iterations,
        known_selected=assume_selected,
    )


def _ufp_payment_task(idx: int) -> float:
    """One winner's critical value, with the shared state read from the
    :mod:`repro.parallel` worker payload (shipped once per worker)."""
    algorithm, instance, kwargs = parallel.worker_payload()
    return critical_value_ufp(algorithm, instance, idx, **kwargs)


def _muca_payment_task(idx: int) -> float:
    algorithm, instance, kwargs = parallel.worker_payload()
    return critical_value_muca(algorithm, instance, idx, **kwargs)


def compute_ufp_payments(
    algorithm: UFPAlgorithm,
    instance: UFPInstance,
    allocation: Allocation,
    *,
    winners: Iterable[int] | None = None,
    relative_tolerance: float = 1e-6,
    absolute_tolerance: float = 1e-9,
    verify_winners: bool = False,
    jobs: int | None = None,
) -> np.ndarray:
    """Critical-value payments for every request (losers pay zero).

    Parameters
    ----------
    algorithm:
        The (monotone, exact) allocation rule; **must** be the same
        deterministic callable that produced ``allocation``.  This
        precondition is relied on, not just documented: each winner is known
        to be selected at its declaration, so the confirming mechanism
        re-run is skipped (``assume_selected=True``).  Passing a mismatched
        algorithm/allocation pair yields meaningless payments rather than
        the :class:`~repro.exceptions.MechanismError` that
        :func:`critical_value_ufp` raises for non-winners.
    allocation:
        The allocation under the declared types.
    winners:
        Restrict payment computation to these winning request indices
        (default: all winners).
    verify_winners:
        Re-enable the confirming mechanism run per winner (one extra
        ``algorithm`` call each), restoring the loud
        :class:`~repro.exceptions.MechanismError` on an algorithm/allocation
        mismatch at the cost of the saved run.
    jobs:
        Worker processes for the per-winner bisections (``None`` → the
        ``REPRO_JOBS`` environment default → serial).  Every winner's
        bisection is an independent deterministic function of ``(algorithm,
        instance, winner)``, so fan-out changes wall-clock only: the payment
        vector is byte-identical at any ``jobs``.  The instance and
        algorithm ship once per worker (inherited copy-on-write under
        ``fork``, together with the warm per-graph tree memo), not once per
        winner.
    """
    payments = np.zeros(instance.num_requests, dtype=np.float64)
    winner_set = allocation.selected_indices()
    targets = winner_set if winners is None else (set(int(w) for w in winners) & winner_set)
    ordered = sorted(targets)
    # Each ``idx`` is a winner of the allocation this same (deterministic)
    # algorithm produced, so it is selected at its declared value by
    # construction — skip the confirming re-run unless the caller asked
    # for the guard back.
    kwargs = dict(
        relative_tolerance=relative_tolerance,
        absolute_tolerance=absolute_tolerance,
        assume_selected=not verify_winners,
    )
    values = parallel.pmap(
        _ufp_payment_task, ordered, jobs=jobs, payload=(algorithm, instance, kwargs)
    )
    for idx, value in zip(ordered, values):
        payments[idx] = value
    return payments


def compute_muca_payments(
    algorithm: MUCAAlgorithm,
    instance: MUCAInstance,
    allocation: MUCAAllocation,
    *,
    winners: Iterable[int] | None = None,
    relative_tolerance: float = 1e-6,
    absolute_tolerance: float = 1e-9,
    verify_winners: bool = False,
    jobs: int | None = None,
) -> np.ndarray:
    """Critical-value payments for every bid (losers pay zero).

    ``algorithm`` must be the deterministic callable that produced
    ``allocation``; see :func:`compute_ufp_payments` for the
    ``verify_winners`` escape hatch and the ``jobs`` fan-out contract.
    """
    payments = np.zeros(instance.num_bids, dtype=np.float64)
    winner_set = set(allocation.winners)
    targets = winner_set if winners is None else (set(int(w) for w in winners) & winner_set)
    ordered = sorted(targets)
    kwargs = dict(
        relative_tolerance=relative_tolerance,
        absolute_tolerance=absolute_tolerance,
        assume_selected=not verify_winners,
    )
    values = parallel.pmap(
        _muca_payment_task, ordered, jobs=jobs, payload=(algorithm, instance, kwargs)
    )
    for idx, value in zip(ordered, values):
        payments[idx] = value
    return payments

"""Critical-value payments.

For a monotone allocation rule the selection of agent ``r`` is, with every
other declaration fixed, monotone in ``r``'s declared value: there is a
threshold (the *critical value*) above which ``r`` is selected and below
which it is not.  Charging every winner its critical value — and losers
nothing — yields the truthful mechanism of Theorem 2.3.

The critical value is found by bisection over the declared value, re-running
the allocation algorithm with the single declaration changed.  The number of
algorithm runs per winner is ``O(log((v_hi - v_lo) / tol))``; experiments
that only need allocations (not payments) should not compute payments.

Every probe instance produced by :meth:`UFPInstance.replace_request` shares
the original (immutable) graph object, so the probe runs all share one
pricing-engine substrate: the shortest-path trees under the initial dual
weights ``y = 1/c`` — the most expensive pricing sweep of each run — are
memoized on :attr:`CapacitatedGraph.substrate_cache
<repro.graphs.graph.CapacitatedGraph.substrate_cache>` by the
:mod:`~repro.core.pricing_engine` and computed exactly once across the whole
bisection, not once per probe.  (They depend only on the graph, never on the
declarations being probed, so reuse is sound and bit-exact.)
"""

from __future__ import annotations

import warnings
from typing import Callable, Iterable, Sequence

import numpy as np

from repro import parallel
from repro.auctions.allocation import MUCAAllocation
from repro.auctions.instance import MUCAInstance
from repro.core.trace import TraceRecorder, make_replayer, supports_trace
from repro.exceptions import MechanismError
from repro.flows.allocation import Allocation
from repro.flows.instance import UFPInstance

__all__ = [
    "critical_value_ufp",
    "critical_value_muca",
    "compute_ufp_payments",
    "compute_muca_payments",
]

UFPAlgorithm = Callable[[UFPInstance], Allocation]
MUCAAlgorithm = Callable[[MUCAInstance], MUCAAllocation]

#: Bisection iteration cap shared by every critical-value entry point.
_MAX_BISECTIONS = 60


def _bisect_critical_value(
    is_selected_at: Callable[[float], bool],
    declared_value: float,
    *,
    relative_tolerance: float,
    absolute_tolerance: float,
    max_iterations: int,
    known_selected: bool = False,
) -> float:
    """Find the selection threshold of a monotone-in-value selection predicate.

    ``is_selected_at(v)`` must be monotone non-decreasing in ``v`` and true at
    ``declared_value``.  The returned value ``c`` satisfies: the agent is
    selected at ``c + tol`` and (unless ``c`` is effectively zero) not
    selected at ``c - tol``.

    ``known_selected=True`` asserts the caller has already observed the agent
    selected at its declaration (e.g. it is iterating the winners of the
    allocation the same deterministic algorithm produced, or a trace
    replayer certified the declaration's winning round), so the redundant
    confirming run is skipped — one full mechanism re-run saved per winner.
    This is a *contract*, not a hint: with a predicate that is false at the
    declaration the bisection silently returns a meaningless bound instead
    of raising :class:`~repro.exceptions.MechanismError`.

    Probes are memoized on the exact probed value, so the ``tiny``
    quick-exit probe, the confirming probe and any midpoint that lands on a
    previously-probed value never run the mechanism twice.  The probe
    *sequence* is deliberately kept identical whatever extra knowledge the
    caller has (trace certificates answer probes, they never move the
    brackets), so the returned float is bit-identical across the
    from-scratch, trace-replay and any-``jobs`` paths.
    """
    cache: dict[float, bool] = {}

    def probe(value: float) -> bool:
        hit = cache.get(value)
        if hit is None:
            hit = cache[value] = bool(is_selected_at(value))
        return hit

    if not known_selected and not probe(declared_value):
        raise MechanismError(
            "critical value requested for a declaration that is not selected"
        )
    low = 0.0
    high = float(declared_value)
    # Quick exit: selected even at a negligible positive value -> payment ~ 0.
    tiny = max(absolute_tolerance, relative_tolerance * high) * 0.5
    if probe(tiny):
        return 0.0
    for _ in range(max_iterations):
        if high - low <= max(absolute_tolerance, relative_tolerance * high):
            break
        mid = 0.5 * (low + high)
        if probe(mid):
            high = mid
        else:
            low = mid
    return high


def critical_value_ufp(
    algorithm: UFPAlgorithm,
    instance: UFPInstance,
    request_index: int,
    *,
    relative_tolerance: float = 1e-6,
    absolute_tolerance: float = 1e-9,
    max_iterations: int = 60,
    assume_selected: bool = False,
) -> float:
    """Critical value of one *winning* request under ``algorithm``.

    The declared demand is held fixed; only the declared value is varied.
    Raises :class:`~repro.exceptions.MechanismError` when the request is not
    selected under its declaration (losers pay nothing — do not call this).

    All probe instances share ``instance.graph``, so when ``algorithm`` is an
    engine-backed solver (:func:`repro.core.bounded_ufp`, ...) the bisection
    re-runs reuse the warm per-graph initial-weight tree cache — see the
    module docstring.
    """
    request_index = int(request_index)
    declared = instance.requests[request_index]

    def is_selected_at(value: float) -> bool:
        if value <= 0.0:
            return False
        trial = instance.replace_request(request_index, declared.with_value(value))
        return algorithm(trial).is_selected(request_index)

    return _bisect_critical_value(
        is_selected_at,
        declared.value,
        relative_tolerance=relative_tolerance,
        absolute_tolerance=absolute_tolerance,
        max_iterations=max_iterations,
        known_selected=assume_selected,
    )


def critical_value_muca(
    algorithm: MUCAAlgorithm,
    instance: MUCAInstance,
    bid_index: int,
    *,
    relative_tolerance: float = 1e-6,
    absolute_tolerance: float = 1e-9,
    max_iterations: int = 60,
    assume_selected: bool = False,
) -> float:
    """Critical value of one *winning* bid under ``algorithm``."""
    bid_index = int(bid_index)
    declared = instance.bids[bid_index]

    def is_selected_at(value: float) -> bool:
        if value <= 0.0:
            return False
        trial = instance.replace_bid(bid_index, declared.with_value(value))
        return algorithm(trial).is_winner(bid_index)

    return _bisect_critical_value(
        is_selected_at,
        declared.value,
        relative_tolerance=relative_tolerance,
        absolute_tolerance=absolute_tolerance,
        max_iterations=max_iterations,
        known_selected=assume_selected,
    )


def _trace_critical_value_ufp(
    replayer,
    index: int,
    *,
    relative_tolerance: float,
    absolute_tolerance: float,
    max_iterations: int = _MAX_BISECTIONS,
    declared=None,
) -> float:
    """Critical value of a (known-selected) declaration via trace replay.

    ``declared`` defaults to the base run's declaration at ``index``; audit
    callers pass the misreported request instead (probes then vary its
    value at its declared demand).  Two trace certificates answer bracket
    probes without replaying — the probe *sequence* stays identical to the
    from-scratch bisection, so the returned float is bit-identical:

    * values inside :meth:`~repro.core.trace.TraceReplayer
      .certified_selected_interval` are selected by the recorded winning
      round's score margin;
    * values at or below :meth:`~repro.core.trace.TraceReplayer
      .not_selected_below` can never be admitted (online threshold policy).
    """
    declared = replayer.declared(index) if declared is None else declared
    demand = declared.demand
    cert = replayer.certified_selected_interval(index, demand)
    floor = replayer.not_selected_below(index, demand)
    stats = replayer.stats

    def is_selected_at(value: float) -> bool:
        if value <= 0.0:
            return False
        if cert is not None and cert[0] <= value <= cert[1]:
            stats.certificate_hits += 1
            return True
        if value <= floor:
            stats.certificate_hits += 1
            return False
        return replayer.probe_selected(index, declared.with_value(value))

    return _bisect_critical_value(
        is_selected_at,
        declared.value,
        relative_tolerance=relative_tolerance,
        absolute_tolerance=absolute_tolerance,
        max_iterations=max_iterations,
        known_selected=True,
    )


def _trace_critical_value_muca(
    replayer,
    index: int,
    *,
    relative_tolerance: float,
    absolute_tolerance: float,
    max_iterations: int = _MAX_BISECTIONS,
    declared_value: float | None = None,
) -> float:
    """MUCA twin of :func:`_trace_critical_value_ufp` (value-only probes)."""
    declared = (
        replayer.declared(index).value if declared_value is None else declared_value
    )
    cert = replayer.certified_selected_interval(index, 1.0)
    stats = replayer.stats

    def is_selected_at(value: float) -> bool:
        if value <= 0.0:
            return False
        if cert is not None and cert[0] <= value <= cert[1]:
            stats.certificate_hits += 1
            return True
        return replayer.probe_selected(index, value)

    return _bisect_critical_value(
        is_selected_at,
        declared,
        relative_tolerance=relative_tolerance,
        absolute_tolerance=absolute_tolerance,
        max_iterations=max_iterations,
        known_selected=True,
    )


def _record_base_run(algorithm, instance, expected_winners: set[int] | None):
    """Run ``algorithm`` once with trace recording and build a replayer.

    Returns ``None`` when ``algorithm`` does not accept a ``trace=`` keyword
    (opaque wrappers fall back to from-scratch probe runs).  When the caller
    knows the winner set of the allocation it holds, the traced base run is
    checked against it — a free, loud version of ``verify_winners``.
    """
    if not supports_trace(algorithm):
        return None
    recorder = TraceRecorder()
    base = algorithm(instance, trace=recorder)
    if recorder.trace is None:
        # A **kwargs wrapper that swallowed trace= — the base run above was
        # wasted work and every probe will run from scratch; tell the user
        # rather than being silently slower than use_trace=False.
        warnings.warn(
            "use_trace=True had no effect: the algorithm accepted but did "
            "not forward the trace= keyword; falling back to from-scratch "
            "probe runs",
            stacklevel=3,
        )
        return None
    if expected_winners is not None:
        winners = (
            set(base.winners)
            if isinstance(base, MUCAAllocation)
            else base.selected_indices()
        )
        if winners != expected_winners:
            raise MechanismError(
                "algorithm/allocation mismatch: the traced base run produced "
                "a different winner set than the allocation being paid"
            )
    return make_replayer(recorder.trace)


def _ufp_payment_task(idx: int) -> float:
    """One winner's critical value, with the shared state read from the
    :mod:`repro.parallel` worker payload (shipped once per worker)."""
    algorithm, instance, kwargs = parallel.worker_payload()
    return critical_value_ufp(algorithm, instance, idx, **kwargs)


def _muca_payment_task(idx: int) -> float:
    algorithm, instance, kwargs = parallel.worker_payload()
    return critical_value_muca(algorithm, instance, idx, **kwargs)


def _ufp_payment_task_trace(idx: int) -> float:
    """Trace-replay twin of :func:`_ufp_payment_task`: the replayer (and its
    warm checkpoint state) ships once per worker, each task resumes probe
    runs from the divergence round."""
    replayer, kwargs = parallel.worker_payload()
    return _trace_critical_value_ufp(replayer, idx, **kwargs)


def _muca_payment_task_trace(idx: int) -> float:
    replayer, kwargs = parallel.worker_payload()
    return _trace_critical_value_muca(replayer, idx, **kwargs)


def compute_ufp_payments(
    algorithm: UFPAlgorithm,
    instance: UFPInstance,
    allocation: Allocation,
    *,
    winners: Iterable[int] | None = None,
    relative_tolerance: float = 1e-6,
    absolute_tolerance: float = 1e-9,
    verify_winners: bool = False,
    jobs: int | None = None,
    use_trace: bool = False,
    replay_stats: dict | None = None,
) -> np.ndarray:
    """Critical-value payments for every request (losers pay zero).

    Parameters
    ----------
    algorithm:
        The (monotone, exact) allocation rule; **must** be the same
        deterministic callable that produced ``allocation``.  This
        precondition is relied on, not just documented: each winner is known
        to be selected at its declaration, so the confirming mechanism
        re-run is skipped (``assume_selected=True``).  Passing a mismatched
        algorithm/allocation pair yields meaningless payments rather than
        the :class:`~repro.exceptions.MechanismError` that
        :func:`critical_value_ufp` raises for non-winners.
    allocation:
        The allocation under the declared types.
    winners:
        Restrict payment computation to these winning request indices
        (default: all winners).
    verify_winners:
        Re-enable the confirming mechanism run per winner (one extra
        ``algorithm`` call each), restoring the loud
        :class:`~repro.exceptions.MechanismError` on an algorithm/allocation
        mismatch at the cost of the saved run.
    jobs:
        Worker processes for the per-winner bisections (``None`` → the
        ``REPRO_JOBS`` environment default → serial).  Every winner's
        bisection is an independent deterministic function of ``(algorithm,
        instance, winner)``, so fan-out changes wall-clock only: the payment
        vector is byte-identical at any ``jobs``.  The instance and
        algorithm ship once per worker (inherited copy-on-write under
        ``fork``, together with the warm per-graph tree memo), not once per
        winner.
    use_trace:
        Record the base run's acceptance trace once (one extra
        ``algorithm`` call) and answer every bisection probe by
        suffix-resume replay from the probe's divergence round instead of a
        from-scratch run — see :mod:`repro.core.trace`.  The payment vector
        is bit-identical with or without tracing (and at any ``jobs``);
        only wall-clock changes.  Requires ``algorithm`` to accept a
        ``trace=`` keyword (the ``repro.core`` solvers do); opaque wrappers
        fall back to the from-scratch path silently.  The traced base run's
        winner set is checked against ``allocation`` for free, so a
        mismatched pair raises loudly even without ``verify_winners``.
    replay_stats:
        Optional dict that receives the replayer's work counters
        (``replay_probes``, ``replay_rounds_skipped``, ...) after a traced
        run — experiment cells surface these in ``RunStats.extra``-style
        rows.  Left untouched when tracing is off or unavailable.  The
        counters are accumulated in *this* process: under ``jobs > 1`` the
        probes run in forked workers whose copies of the replayer are
        discarded, so the counters read (near) zero — use ``jobs=1`` when
        the diagnostics matter.
    """
    payments = np.zeros(instance.num_requests, dtype=np.float64)
    winner_set = allocation.selected_indices()
    targets = winner_set if winners is None else (set(int(w) for w in winners) & winner_set)
    ordered = sorted(targets)
    if use_trace and ordered:
        replayer = _record_base_run(algorithm, instance, winner_set)
        if replayer is not None:
            kwargs = dict(
                relative_tolerance=relative_tolerance,
                absolute_tolerance=absolute_tolerance,
            )
            values = parallel.pmap(
                _ufp_payment_task_trace,
                ordered,
                jobs=jobs,
                payload=(replayer, kwargs),
            )
            for idx, value in zip(ordered, values):
                payments[idx] = value
            if replay_stats is not None:
                replay_stats.update(replayer.stats.as_extra())
            return payments
    # Each ``idx`` is a winner of the allocation this same (deterministic)
    # algorithm produced, so it is selected at its declared value by
    # construction — skip the confirming re-run unless the caller asked
    # for the guard back.
    kwargs = dict(
        relative_tolerance=relative_tolerance,
        absolute_tolerance=absolute_tolerance,
        assume_selected=not verify_winners,
    )
    values = parallel.pmap(
        _ufp_payment_task, ordered, jobs=jobs, payload=(algorithm, instance, kwargs)
    )
    for idx, value in zip(ordered, values):
        payments[idx] = value
    return payments


def compute_muca_payments(
    algorithm: MUCAAlgorithm,
    instance: MUCAInstance,
    allocation: MUCAAllocation,
    *,
    winners: Iterable[int] | None = None,
    relative_tolerance: float = 1e-6,
    absolute_tolerance: float = 1e-9,
    verify_winners: bool = False,
    jobs: int | None = None,
    use_trace: bool = False,
    replay_stats: dict | None = None,
) -> np.ndarray:
    """Critical-value payments for every bid (losers pay zero).

    ``algorithm`` must be the deterministic callable that produced
    ``allocation``; see :func:`compute_ufp_payments` for the
    ``verify_winners`` escape hatch, the ``jobs`` fan-out contract and the
    ``use_trace`` suffix-resume replay path (bit-identical payments, only
    wall-clock changes).
    """
    payments = np.zeros(instance.num_bids, dtype=np.float64)
    winner_set = set(allocation.winners)
    targets = winner_set if winners is None else (set(int(w) for w in winners) & winner_set)
    ordered = sorted(targets)
    if use_trace and ordered:
        replayer = _record_base_run(algorithm, instance, winner_set)
        if replayer is not None:
            kwargs = dict(
                relative_tolerance=relative_tolerance,
                absolute_tolerance=absolute_tolerance,
            )
            values = parallel.pmap(
                _muca_payment_task_trace,
                ordered,
                jobs=jobs,
                payload=(replayer, kwargs),
            )
            for idx, value in zip(ordered, values):
                payments[idx] = value
            if replay_stats is not None:
                replay_stats.update(replayer.stats.as_extra())
            return payments
    kwargs = dict(
        relative_tolerance=relative_tolerance,
        absolute_tolerance=absolute_tolerance,
        assume_selected=not verify_winners,
    )
    values = parallel.pmap(
        _muca_payment_task, ordered, jobs=jobs, payload=(algorithm, instance, kwargs)
    )
    for idx, value in zip(ordered, values):
        payments[idx] = value
    return payments

"""Critical-value payments.

For a monotone allocation rule the selection of agent ``r`` is, with every
other declaration fixed, monotone in ``r``'s declared value: there is a
threshold (the *critical value*) above which ``r`` is selected and below
which it is not.  Charging every winner its critical value — and losers
nothing — yields the truthful mechanism of Theorem 2.3.

The critical value is found by bisection over the declared value, re-running
the allocation algorithm with the single declaration changed.  The number of
algorithm runs per winner is ``O(log((v_hi - v_lo) / tol))``; experiments
that only need allocations (not payments) should not compute payments.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from repro.auctions.allocation import MUCAAllocation
from repro.auctions.instance import MUCAInstance
from repro.exceptions import MechanismError
from repro.flows.allocation import Allocation
from repro.flows.instance import UFPInstance

__all__ = [
    "critical_value_ufp",
    "critical_value_muca",
    "compute_ufp_payments",
    "compute_muca_payments",
]

UFPAlgorithm = Callable[[UFPInstance], Allocation]
MUCAAlgorithm = Callable[[MUCAInstance], MUCAAllocation]


def _bisect_critical_value(
    is_selected_at: Callable[[float], bool],
    declared_value: float,
    *,
    relative_tolerance: float,
    absolute_tolerance: float,
    max_iterations: int,
) -> float:
    """Find the selection threshold of a monotone-in-value selection predicate.

    ``is_selected_at(v)`` must be monotone non-decreasing in ``v`` and true at
    ``declared_value``.  The returned value ``c`` satisfies: the agent is
    selected at ``c + tol`` and (unless ``c`` is effectively zero) not
    selected at ``c - tol``.
    """
    if not is_selected_at(declared_value):
        raise MechanismError(
            "critical value requested for a declaration that is not selected"
        )
    low = 0.0
    high = float(declared_value)
    # Quick exit: selected even at a negligible positive value -> payment ~ 0.
    tiny = max(absolute_tolerance, relative_tolerance * high) * 0.5
    if is_selected_at(tiny):
        return 0.0
    for _ in range(max_iterations):
        if high - low <= max(absolute_tolerance, relative_tolerance * high):
            break
        mid = 0.5 * (low + high)
        if is_selected_at(mid):
            high = mid
        else:
            low = mid
    return high


def critical_value_ufp(
    algorithm: UFPAlgorithm,
    instance: UFPInstance,
    request_index: int,
    *,
    relative_tolerance: float = 1e-6,
    absolute_tolerance: float = 1e-9,
    max_iterations: int = 60,
) -> float:
    """Critical value of one *winning* request under ``algorithm``.

    The declared demand is held fixed; only the declared value is varied.
    Raises :class:`~repro.exceptions.MechanismError` when the request is not
    selected under its declaration (losers pay nothing — do not call this).
    """
    request_index = int(request_index)
    declared = instance.requests[request_index]

    def is_selected_at(value: float) -> bool:
        if value <= 0.0:
            return False
        trial = instance.replace_request(request_index, declared.with_value(value))
        return algorithm(trial).is_selected(request_index)

    return _bisect_critical_value(
        is_selected_at,
        declared.value,
        relative_tolerance=relative_tolerance,
        absolute_tolerance=absolute_tolerance,
        max_iterations=max_iterations,
    )


def critical_value_muca(
    algorithm: MUCAAlgorithm,
    instance: MUCAInstance,
    bid_index: int,
    *,
    relative_tolerance: float = 1e-6,
    absolute_tolerance: float = 1e-9,
    max_iterations: int = 60,
) -> float:
    """Critical value of one *winning* bid under ``algorithm``."""
    bid_index = int(bid_index)
    declared = instance.bids[bid_index]

    def is_selected_at(value: float) -> bool:
        if value <= 0.0:
            return False
        trial = instance.replace_bid(bid_index, declared.with_value(value))
        return algorithm(trial).is_winner(bid_index)

    return _bisect_critical_value(
        is_selected_at,
        declared.value,
        relative_tolerance=relative_tolerance,
        absolute_tolerance=absolute_tolerance,
        max_iterations=max_iterations,
    )


def compute_ufp_payments(
    algorithm: UFPAlgorithm,
    instance: UFPInstance,
    allocation: Allocation,
    *,
    winners: Iterable[int] | None = None,
    relative_tolerance: float = 1e-6,
    absolute_tolerance: float = 1e-9,
) -> np.ndarray:
    """Critical-value payments for every request (losers pay zero).

    Parameters
    ----------
    algorithm:
        The (monotone, exact) allocation rule; must be the same callable that
        produced ``allocation``.
    allocation:
        The allocation under the declared types.
    winners:
        Restrict payment computation to these winning request indices
        (default: all winners).
    """
    payments = np.zeros(instance.num_requests, dtype=np.float64)
    winner_set = allocation.selected_indices()
    targets = winner_set if winners is None else (set(int(w) for w in winners) & winner_set)
    for idx in sorted(targets):
        payments[idx] = critical_value_ufp(
            algorithm,
            instance,
            idx,
            relative_tolerance=relative_tolerance,
            absolute_tolerance=absolute_tolerance,
        )
    return payments


def compute_muca_payments(
    algorithm: MUCAAlgorithm,
    instance: MUCAInstance,
    allocation: MUCAAllocation,
    *,
    winners: Iterable[int] | None = None,
    relative_tolerance: float = 1e-6,
    absolute_tolerance: float = 1e-9,
) -> np.ndarray:
    """Critical-value payments for every bid (losers pay zero)."""
    payments = np.zeros(instance.num_bids, dtype=np.float64)
    winner_set = set(allocation.winners)
    targets = winner_set if winners is None else (set(int(w) for w in winners) & winner_set)
    for idx in sorted(targets):
        payments[idx] = critical_value_muca(
            algorithm,
            instance,
            idx,
            relative_tolerance=relative_tolerance,
            absolute_tolerance=absolute_tolerance,
        )
    return payments

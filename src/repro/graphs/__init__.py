"""Capacitated graph substrate.

This package provides the edge-capacitated graph model used by every
unsplittable-flow component of the library:

* :class:`repro.graphs.graph.CapacitatedGraph` — a CSR-backed directed or
  undirected capacitated graph whose per-edge state lives in flat numpy
  arrays (capacities, dual weights, loads), so that the primal-dual inner
  loops never touch per-edge Python objects.
* :mod:`repro.graphs.shortest_path` — Dijkstra / Bellman-Ford under mutable
  edge weights, with a reusable single-source form for requests that share a
  source vertex.
* :mod:`repro.graphs.generators` — random and structured topologies
  (Erdős–Rényi-style random digraphs, grids, ISP-like two-level topologies).
* :mod:`repro.graphs.lower_bounds` — the adversarial constructions of the
  paper: the directed staircase of Figure 2 and the undirected 7-vertex
  ring of Figure 3.
"""

from repro.graphs.graph import CapacitatedGraph, EdgeView
from repro.graphs.paths import (
    path_edge_ids,
    path_length,
    is_simple_path,
    validate_path,
)
from repro.graphs.shortest_path import (
    ShortestPathResult,
    single_source_dijkstra,
    multi_source_dijkstra,
    reference_dijkstra,
    shortest_path,
    bellman_ford,
    set_backend,
    get_backend,
    use_backend,
    available_backends,
)
from repro.graphs.generators import (
    random_digraph,
    random_graph,
    grid_graph,
    ring_graph,
    isp_topology,
    fat_tree_topology,
    fat_tree_host_range,
    waxman_graph,
    barabasi_albert_graph,
    multi_region_topology,
    multi_region_leaves,
    from_networkx,
    to_networkx,
)
from repro.graphs.partition import (
    GraphPartition,
    BorderQuotient,
    QuotientArc,
    single_region_partition,
    block_partition,
    multi_region_partition,
    bfs_partition,
    build_border_quotient,
)
from repro.graphs.lower_bounds import (
    directed_staircase,
    undirected_ring7,
    staircase_optimal_value,
    ring7_optimal_value,
)

__all__ = [
    "CapacitatedGraph",
    "EdgeView",
    "path_edge_ids",
    "path_length",
    "is_simple_path",
    "validate_path",
    "ShortestPathResult",
    "single_source_dijkstra",
    "multi_source_dijkstra",
    "reference_dijkstra",
    "shortest_path",
    "bellman_ford",
    "set_backend",
    "get_backend",
    "use_backend",
    "available_backends",
    "random_digraph",
    "random_graph",
    "grid_graph",
    "ring_graph",
    "isp_topology",
    "fat_tree_topology",
    "fat_tree_host_range",
    "waxman_graph",
    "barabasi_albert_graph",
    "multi_region_topology",
    "multi_region_leaves",
    "from_networkx",
    "to_networkx",
    "GraphPartition",
    "BorderQuotient",
    "QuotientArc",
    "single_region_partition",
    "block_partition",
    "multi_region_partition",
    "bfs_partition",
    "build_border_quotient",
    "directed_staircase",
    "undirected_ring7",
    "staircase_optimal_value",
    "ring7_optimal_value",
]

"""Region partitions of a capacitated graph, and their border quotient.

The partitioned solver (:mod:`repro.partition`) cuts the substrate into
vertex regions and runs one pricing-engine shard per region, so this module
owns everything that is purely *topological* about that cut:

* :class:`GraphPartition` — a validated assignment of every vertex to one
  of ``k`` regions, with derived views (per-region vertex/edge sets, the
  cut-edge set, border vertices) computed lazily and cached.
* Partitioners — :func:`single_region_partition` (the trivial cut used by
  the differential harness), :func:`block_partition` /
  :func:`multi_region_partition` (the natural contiguous clusters of
  :func:`~repro.graphs.generators.multi_region_topology`), and
  :func:`bfs_partition`, a deterministic seeded multi-source BFS grower
  with an optional local min-cut refinement sweep for arbitrary graphs.
* :class:`BorderQuotient` — the contraction of the partition onto its
  border vertices: one quotient node per border vertex, one arc per cut
  edge plus one *shortcut* arc per ordered border pair within a region.
  The quotient carries no weights — shortcut lengths depend on the live
  dual state of each region shard, so the solver supplies them per
  iteration — but its structure (nodes, arcs, adjacency) is fixed by the
  partition and built once here.

Everything in this module is deterministic: the same graph, labels and
seed always produce the same partition, which the bit-identity contract of
the partitioned solver relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import InvalidInstanceError
from repro.graphs.graph import CapacitatedGraph
from repro.utils.prng import ensure_rng

__all__ = [
    "GraphPartition",
    "BorderQuotient",
    "QuotientArc",
    "single_region_partition",
    "block_partition",
    "multi_region_partition",
    "bfs_partition",
    "build_border_quotient",
]


class GraphPartition:
    """An assignment of every vertex of ``graph`` to one of ``k`` regions.

    Parameters
    ----------
    graph:
        The substrate being cut.
    labels:
        Length-``n`` integer array; ``labels[v]`` is the region of vertex
        ``v``.  Regions must be exactly ``0 .. k-1`` with every region
        non-empty.

    Notes
    -----
    An edge is *intra-region* when both endpoints share a region and a
    *cut edge* otherwise; a *border vertex* is an endpoint of a cut edge.
    Disabled edges still belong to their (cut or intra) set — edge-id
    alignment across substrate mutations matters more than excluding them
    here, and routing never sees them anyway.
    """

    __slots__ = (
        "_graph",
        "_labels",
        "_k",
        "_tails",
        "_heads",
        "_cut_edge_ids",
        "_region_vertices",
        "_region_edge_ids",
        "_border_vertices",
    )

    def __init__(
        self, graph: CapacitatedGraph, labels: Sequence[int] | np.ndarray
    ) -> None:
        labels = np.asarray(labels, dtype=np.int64)
        if labels.shape != (graph.num_vertices,):
            raise InvalidInstanceError(
                f"labels must have shape ({graph.num_vertices},), got {labels.shape}"
            )
        if labels.size == 0:
            raise InvalidInstanceError("cannot partition an empty graph")
        k = int(labels.max()) + 1
        if labels.min() < 0:
            raise InvalidInstanceError("region labels must be non-negative")
        counts = np.bincount(labels, minlength=k)
        if (counts == 0).any():
            empty = int(np.flatnonzero(counts == 0)[0])
            raise InvalidInstanceError(
                f"region {empty} is empty; labels must cover 0..k-1 contiguously"
            )
        self._graph = graph
        self._labels = labels
        self._k = k
        edge_list = graph.edge_list()
        self._tails = np.fromiter(
            (e[0] for e in edge_list), dtype=np.int64, count=len(edge_list)
        )
        self._heads = np.fromiter(
            (e[1] for e in edge_list), dtype=np.int64, count=len(edge_list)
        )
        self._cut_edge_ids: np.ndarray | None = None
        self._region_vertices: tuple[np.ndarray, ...] | None = None
        self._region_edge_ids: tuple[np.ndarray, ...] | None = None
        self._border_vertices: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # Basic views
    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> CapacitatedGraph:
        return self._graph

    @property
    def labels(self) -> np.ndarray:
        """Read-only region label per vertex."""
        view = self._labels.view()
        view.flags.writeable = False
        return view

    @property
    def num_regions(self) -> int:
        return self._k

    def region_of(self, vertex: int) -> int:
        return int(self._labels[vertex])

    def is_intra(self, u: int, v: int) -> bool:
        """Whether vertices ``u`` and ``v`` share a region."""
        return bool(self._labels[u] == self._labels[v])

    # ------------------------------------------------------------------ #
    # Derived sets (lazy, cached)
    # ------------------------------------------------------------------ #
    @property
    def cut_edge_ids(self) -> np.ndarray:
        """Edge ids whose endpoints lie in different regions (ascending)."""
        if self._cut_edge_ids is None:
            self._cut_edge_ids = np.flatnonzero(
                self._labels[self._tails] != self._labels[self._heads]
            ).astype(np.int64)
        return self._cut_edge_ids

    @property
    def num_cut_edges(self) -> int:
        return int(self.cut_edge_ids.size)

    def region_vertices(self, region: int) -> np.ndarray:
        """Global vertex ids of a region, ascending (the shard's local
        vertex ``i`` is ``region_vertices(r)[i]`` — order-preserving
        relabeling keeps Dijkstra tie-breaking consistent with the global
        graph)."""
        if self._region_vertices is None:
            self._region_vertices = tuple(
                np.flatnonzero(self._labels == r).astype(np.int64)
                for r in range(self._k)
            )
        return self._region_vertices[region]

    def region_edge_ids(self, region: int) -> np.ndarray:
        """Global edge ids internal to a region, ascending (the shard's
        local edge ``j`` is ``region_edge_ids(r)[j]``)."""
        if self._region_edge_ids is None:
            tl = self._labels[self._tails]
            hl = self._labels[self._heads]
            intra = tl == hl
            self._region_edge_ids = tuple(
                np.flatnonzero(intra & (tl == r)).astype(np.int64)
                for r in range(self._k)
            )
        return self._region_edge_ids[region]

    @property
    def border_vertices(self) -> np.ndarray:
        """Global ids of cut-edge endpoints, ascending and distinct."""
        if self._border_vertices is None:
            cut = self.cut_edge_ids
            endpoints = np.concatenate([self._tails[cut], self._heads[cut]])
            self._border_vertices = np.unique(endpoints).astype(np.int64)
        return self._border_vertices

    def split_requests(self, requests: Sequence) -> tuple[list[list[int]], list[int]]:
        """Split request indices into per-region intra lists and a cross list.

        Returns ``(intra, cross)`` where ``intra[r]`` holds the indices of
        requests whose source and target both lie in region ``r`` (ascending,
        so shard-local request order matches global declaration order) and
        ``cross`` the indices whose terminals straddle regions.
        """
        intra: list[list[int]] = [[] for _ in range(self._k)]
        cross: list[int] = []
        labels = self._labels
        for idx, request in enumerate(requests):
            rs = int(labels[request.source])
            rt = int(labels[request.target])
            if rs == rt:
                intra[rs].append(idx)
            else:
                cross.append(idx)
        return intra, cross

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GraphPartition(n={self._graph.num_vertices}, k={self._k}, "
            f"cut={self.num_cut_edges})"
        )


# ---------------------------------------------------------------------- #
# Partitioners
# ---------------------------------------------------------------------- #
def single_region_partition(graph: CapacitatedGraph) -> GraphPartition:
    """The trivial 1-region partition (no cut edges, one shard == the
    global graph); the differential harness pins the partitioned solver to
    the global one through it."""
    return GraphPartition(graph, np.zeros(graph.num_vertices, dtype=np.int64))


def block_partition(graph: CapacitatedGraph, num_regions: int) -> GraphPartition:
    """Contiguous vertex-id blocks of (near-)equal size.

    Vertex ``v`` lands in region ``v // ceil(n / k)`` — the natural cut for
    generators that lay regions out as contiguous id blocks.
    """
    n = graph.num_vertices
    k = int(num_regions)
    if not 1 <= k <= n:
        raise InvalidInstanceError(f"num_regions must lie in [1, {n}], got {k}")
    block = -(-n // k)  # ceil
    labels = np.arange(n, dtype=np.int64) // block
    return GraphPartition(graph, labels)


def multi_region_partition(
    graph: CapacitatedGraph,
    num_regions: int,
    cores_per_region: int,
    leaves_per_core: int,
) -> GraphPartition:
    """The natural clusters of a matching
    :func:`~repro.graphs.generators.multi_region_topology` call.

    Region ``r`` occupies the contiguous block of
    ``cores_per_region * (1 + leaves_per_core)`` vertices starting at
    ``r * block`` (cores first) — exactly the generator's layout, so the
    cut-edge set is precisely the backbone links.
    """
    block = int(cores_per_region) * (1 + int(leaves_per_core))
    expected = int(num_regions) * block
    if graph.num_vertices != expected:
        raise InvalidInstanceError(
            f"graph has {graph.num_vertices} vertices but a "
            f"{num_regions}x({cores_per_region} cores, {leaves_per_core} "
            f"leaves/core) layout needs {expected}"
        )
    labels = np.arange(graph.num_vertices, dtype=np.int64) // block
    return GraphPartition(graph, labels)


def _undirected_neighbors(graph: CapacitatedGraph) -> list[list[int]]:
    """Per-vertex neighbor lists over live edges, ignoring orientation
    (region growing treats the substrate as a connectivity structure)."""
    neighbors: list[list[int]] = [[] for _ in range(graph.num_vertices)]
    disabled = graph.disabled_edges
    for eid, (u, v, _cap) in enumerate(graph.edge_list()):
        if eid in disabled:
            continue
        neighbors[u].append(v)
        neighbors[v].append(u)
    return neighbors


def bfs_partition(
    graph: CapacitatedGraph,
    num_regions: int,
    *,
    seed: int | np.random.Generator | None = None,
    refine_passes: int = 1,
) -> GraphPartition:
    """A deterministic seeded multi-source BFS partition for arbitrary graphs.

    ``num_regions`` seed vertices are drawn without replacement from
    ``seed`` and sorted (region ``i`` grows from the ``i``-th smallest seed
    vertex, so region numbering is independent of draw order); regions then
    expand one BFS layer per round in round-robin region order, claiming
    unassigned vertices in adjacency order.  Vertices unreachable from
    every seed are assigned round-robin by vertex id.  ``refine_passes``
    local sweeps then move border vertices to the neighboring region that
    most reduces the cut size (a deterministic one-vertex min-cut
    refinement — ties keep the current region, moves never empty a
    region), which tightens seeded cuts on graphs without natural blocks.
    """
    n = graph.num_vertices
    k = int(num_regions)
    if not 1 <= k <= n:
        raise InvalidInstanceError(f"num_regions must lie in [1, {n}], got {k}")
    rng = ensure_rng(seed)
    seeds = np.sort(rng.choice(n, size=k, replace=False))
    labels = np.full(n, -1, dtype=np.int64)
    neighbors = _undirected_neighbors(graph)
    frontiers: list[list[int]] = []
    for region, vertex in enumerate(seeds):
        labels[vertex] = region
        frontiers.append([int(vertex)])
    while any(frontiers):
        for region in range(k):
            grown: list[int] = []
            for u in frontiers[region]:
                for v in neighbors[u]:
                    if labels[v] < 0:
                        labels[v] = region
                        grown.append(v)
            frontiers[region] = grown
    unreached = np.flatnonzero(labels < 0)
    for position, vertex in enumerate(unreached):
        labels[vertex] = position % k
    for _ in range(max(0, int(refine_passes))):
        if k == 1 or not _refine_once(labels, neighbors, k):
            break
    return GraphPartition(graph, labels)


def _refine_once(labels: np.ndarray, neighbors: list[list[int]], k: int) -> bool:
    """One deterministic refinement sweep; returns whether anything moved."""
    sizes = np.bincount(labels, minlength=k)
    moved = False
    for v in range(labels.size):
        current = int(labels[v])
        if sizes[current] <= 1 or not neighbors[v]:
            continue
        tally: dict[int, int] = {}
        for u in neighbors[v]:
            lab = int(labels[u])
            tally[lab] = tally.get(lab, 0) + 1
        here = tally.get(current, 0)
        # Strictly-better target, lowest region id on ties among targets.
        best_region, best_count = current, here
        for lab in sorted(tally):
            if tally[lab] > best_count:
                best_region, best_count = lab, tally[lab]
        if best_region != current:
            labels[v] = best_region
            sizes[current] -= 1
            sizes[best_region] += 1
            moved = True
    return moved


# ---------------------------------------------------------------------- #
# Border-node contraction
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class QuotientArc:
    """One arc of the border quotient.

    ``kind == "cut"`` arcs cross between regions along a single substrate
    cut edge (``edge_id`` is its global id); ``kind == "shortcut"`` arcs
    stand for the within-region shortest path between two border vertices
    of ``region`` — their length under the live dual weights is supplied
    by the solver, not stored here.
    """

    tail: int  # quotient node id
    head: int  # quotient node id
    kind: str  # "cut" | "shortcut"
    edge_id: int = -1  # global edge id for cut arcs
    region: int = -1  # owning region for shortcut arcs


@dataclass
class BorderQuotient:
    """The contraction of a partition onto its border vertices.

    Attributes
    ----------
    vertices:
        Global ids of the quotient nodes (the border vertices), ascending;
        quotient node ``q`` stands for global vertex ``vertices[q]``.
    node_of:
        Inverse mapping ``global vertex id -> quotient node id``.
    arcs:
        All quotient arcs (cut arcs first, then shortcut arcs, both in
        deterministic construction order).
    adjacency:
        ``adjacency[q]`` lists the indices into :attr:`arcs` of the arcs
        leaving quotient node ``q``.
    """

    vertices: np.ndarray
    node_of: dict[int, int]
    arcs: list[QuotientArc]
    adjacency: list[list[int]]

    @property
    def num_nodes(self) -> int:
        return int(self.vertices.size)

    def border_nodes_of_region(self, labels: np.ndarray, region: int) -> list[int]:
        """Quotient node ids whose underlying vertex lies in ``region``."""
        return [
            q
            for q, vertex in enumerate(self.vertices.tolist())
            if int(labels[vertex]) == region
        ]


def build_border_quotient(partition: GraphPartition) -> BorderQuotient:
    """Build the border-node contraction of ``partition``.

    Cut arcs follow substrate orientation (both directions for undirected
    graphs); shortcut arcs connect every ordered pair of distinct border
    vertices within one region.  Disabled cut edges contribute no arc —
    routing must never see them.
    """
    graph = partition.graph
    border = partition.border_vertices
    node_of = {int(v): q for q, v in enumerate(border.tolist())}
    arcs: list[QuotientArc] = []
    disabled = graph.disabled_edges
    for eid in partition.cut_edge_ids.tolist():
        if eid in disabled:
            continue
        u, v = graph.edge_endpoints(eid)
        arcs.append(QuotientArc(node_of[u], node_of[v], "cut", edge_id=eid))
        if not graph.directed:
            arcs.append(QuotientArc(node_of[v], node_of[u], "cut", edge_id=eid))
    labels = partition.labels
    for region in range(partition.num_regions):
        nodes = [q for q in range(border.size) if labels[border[q]] == region]
        for qa in nodes:
            for qb in nodes:
                if qa != qb:
                    arcs.append(QuotientArc(qa, qb, "shortcut", region=region))
    adjacency: list[list[int]] = [[] for _ in range(border.size)]
    for index, arc in enumerate(arcs):
        adjacency[arc.tail].append(index)
    return BorderQuotient(
        vertices=border, node_of=node_of, arcs=arcs, adjacency=adjacency
    )

"""Graph generators: random, grid, ring and ISP-like topologies.

These provide the synthetic workload topologies for the experiments.  All of
them take a uniform ``capacity`` (or a capacity range) so that the capacity
bound ``B = min_e c_e`` of the generated instance is easy to control — the
paper's algorithms require ``B = Omega(ln m / eps^2)``.

Determinism contract
--------------------
Every stochastic generator in this package (and in
:mod:`repro.flows.generators` / :mod:`repro.auctions.generators`) accepts
the same ``seed`` parameter, normalized by
:func:`repro.utils.prng.ensure_rng`: an ``int`` seed, a shared
:class:`numpy.random.Generator` (consumed in place, so several generators
can draw from one deterministic stream), or ``None`` for the library-wide
fixed default seed.  The same seed always reproduces the identical object,
bit for bit — ``tests/test_generator_determinism.py`` enforces this for
every generator.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx
import numpy as np

from repro.exceptions import InvalidInstanceError
from repro.graphs.graph import CapacitatedGraph
from repro.utils.prng import ensure_rng

__all__ = [
    "random_digraph",
    "random_graph",
    "grid_graph",
    "ring_graph",
    "isp_topology",
    "from_networkx",
    "to_networkx",
]


def _capacity_array(
    rng: np.random.Generator,
    count: int,
    capacity: float | tuple[float, float],
) -> np.ndarray:
    """Draw ``count`` capacities, either constant or uniform in a range."""
    if isinstance(capacity, tuple):
        low, high = float(capacity[0]), float(capacity[1])
        if not 0 < low <= high:
            raise InvalidInstanceError(f"invalid capacity range ({low}, {high})")
        return rng.uniform(low, high, size=count)
    value = float(capacity)
    if value <= 0:
        raise InvalidInstanceError("capacity must be positive")
    return np.full(count, value, dtype=np.float64)


def random_digraph(
    num_vertices: int,
    edge_probability: float,
    capacity: float | tuple[float, float],
    *,
    seed: int | np.random.Generator | None = None,
    ensure_connected: bool = True,
) -> CapacitatedGraph:
    """Random directed graph in the Erdős–Rényi ``G(n, p)`` style.

    Parameters
    ----------
    num_vertices:
        Number of vertices.
    edge_probability:
        Probability of each ordered pair ``(u, v)``, ``u != v``, being an arc.
    capacity:
        Either a constant capacity or a ``(low, high)`` range sampled
        uniformly per edge.
    ensure_connected:
        When ``True`` a directed Hamiltonian cycle over a random vertex
        permutation is added first, so every ordered pair has at least one
        connecting path; random arcs are then added on top.  This keeps
        request generation simple (any source/target pair is routable).
    """
    if num_vertices < 2:
        raise InvalidInstanceError("random_digraph needs at least 2 vertices")
    if not 0.0 <= edge_probability <= 1.0:
        raise InvalidInstanceError("edge_probability must lie in [0, 1]")
    rng = ensure_rng(seed)

    existing: set[tuple[int, int]] = set()
    edges: list[tuple[int, int]] = []

    if ensure_connected:
        perm = rng.permutation(num_vertices)
        for i in range(num_vertices):
            u = int(perm[i])
            v = int(perm[(i + 1) % num_vertices])
            edges.append((u, v))
            existing.add((u, v))

    mask = rng.random((num_vertices, num_vertices)) < edge_probability
    np.fill_diagonal(mask, False)
    for u, v in zip(*np.nonzero(mask)):
        pair = (int(u), int(v))
        if pair not in existing:
            existing.add(pair)
            edges.append(pair)

    caps = _capacity_array(rng, len(edges), capacity)
    return CapacitatedGraph(
        num_vertices,
        [(u, v, float(c)) for (u, v), c in zip(edges, caps)],
        directed=True,
    )


def random_graph(
    num_vertices: int,
    edge_probability: float,
    capacity: float | tuple[float, float],
    *,
    seed: int | np.random.Generator | None = None,
    ensure_connected: bool = True,
) -> CapacitatedGraph:
    """Random undirected graph in the ``G(n, p)`` style.

    Mirrors :func:`random_digraph`; connectivity is ensured with a random
    spanning cycle.
    """
    if num_vertices < 2:
        raise InvalidInstanceError("random_graph needs at least 2 vertices")
    if not 0.0 <= edge_probability <= 1.0:
        raise InvalidInstanceError("edge_probability must lie in [0, 1]")
    rng = ensure_rng(seed)

    existing: set[tuple[int, int]] = set()
    edges: list[tuple[int, int]] = []

    if ensure_connected:
        perm = rng.permutation(num_vertices)
        for i in range(num_vertices):
            u = int(perm[i])
            v = int(perm[(i + 1) % num_vertices])
            key = (min(u, v), max(u, v))
            if key not in existing:
                existing.add(key)
                edges.append(key)

    mask = rng.random((num_vertices, num_vertices)) < edge_probability
    iu = np.triu_indices(num_vertices, k=1)
    for u, v in zip(iu[0][mask[iu]], iu[1][mask[iu]]):
        key = (int(u), int(v))
        if key not in existing:
            existing.add(key)
            edges.append(key)

    caps = _capacity_array(rng, len(edges), capacity)
    return CapacitatedGraph(
        num_vertices,
        [(u, v, float(c)) for (u, v), c in zip(edges, caps)],
        directed=False,
    )


def grid_graph(
    rows: int,
    cols: int,
    capacity: float | tuple[float, float],
    *,
    directed: bool = False,
    seed: int | np.random.Generator | None = None,
) -> CapacitatedGraph:
    """A ``rows x cols`` mesh; vertex ``(i, j)`` has index ``i * cols + j``.

    When ``directed`` is True each mesh edge becomes two opposite arcs (each
    with its own capacity draw), which models full-duplex links.
    """
    if rows < 1 or cols < 1:
        raise InvalidInstanceError("grid dimensions must be positive")
    rng = ensure_rng(seed)
    undirected_edges: list[tuple[int, int]] = []
    for i in range(rows):
        for j in range(cols):
            v = i * cols + j
            if j + 1 < cols:
                undirected_edges.append((v, v + 1))
            if i + 1 < rows:
                undirected_edges.append((v, v + cols))
    if directed:
        pairs = [(u, v) for u, v in undirected_edges] + [(v, u) for u, v in undirected_edges]
    else:
        pairs = undirected_edges
    caps = _capacity_array(rng, len(pairs), capacity)
    return CapacitatedGraph(
        rows * cols,
        [(u, v, float(c)) for (u, v), c in zip(pairs, caps)],
        directed=directed,
    )


def ring_graph(
    num_vertices: int,
    capacity: float | tuple[float, float],
    *,
    directed: bool = False,
    seed: int | np.random.Generator | None = None,
) -> CapacitatedGraph:
    """A simple cycle on ``num_vertices`` vertices.

    ``capacity`` is a constant or a ``(low, high)`` range sampled uniformly
    per edge — the same convention (and the same ``seed`` handling) as every
    other generator in this module.  With a constant capacity the topology
    is fully deterministic and ``seed`` is never consulted.
    """
    if num_vertices < 3:
        raise InvalidInstanceError("a ring needs at least 3 vertices")
    pairs = [(i, (i + 1) % num_vertices) for i in range(num_vertices)]
    # A constant capacity consumes no randomness, so a shared generator
    # passes through ring_graph unperturbed in that case.
    caps = _capacity_array(ensure_rng(seed), len(pairs), capacity)
    return CapacitatedGraph(
        num_vertices,
        [(u, v, float(c)) for (u, v), c in zip(pairs, caps)],
        directed=directed,
    )


def isp_topology(
    num_core: int,
    leaves_per_core: int,
    core_capacity: float,
    access_capacity: float,
    *,
    seed: int | np.random.Generator | None = None,
    directed: bool = False,
) -> CapacitatedGraph:
    """A two-level ISP-like topology: a dense core plus access trees.

    Core vertices ``0 .. num_core-1`` form a complete graph with
    ``core_capacity`` links; each core vertex additionally serves
    ``leaves_per_core`` access vertices through ``access_capacity`` links.
    This is the "network routing" scenario the paper's introduction
    motivates: many small customers (access leaves) requesting bandwidth
    across a well-provisioned backbone.
    """
    if num_core < 2:
        raise InvalidInstanceError("need at least 2 core vertices")
    if leaves_per_core < 0:
        raise InvalidInstanceError("leaves_per_core must be non-negative")
    edges: list[tuple[int, int, float]] = []
    for u in range(num_core):
        for v in range(u + 1, num_core):
            edges.append((u, v, float(core_capacity)))
            if directed:
                edges.append((v, u, float(core_capacity)))
    next_vertex = num_core
    for core in range(num_core):
        for _ in range(leaves_per_core):
            edges.append((next_vertex, core, float(access_capacity)))
            if directed:
                edges.append((core, next_vertex, float(access_capacity)))
            next_vertex += 1
    return CapacitatedGraph(next_vertex, edges, directed=directed)


# ---------------------------------------------------------------------- #
# networkx interoperability
# ---------------------------------------------------------------------- #
def from_networkx(
    nx_graph: "nx.Graph | nx.DiGraph",
    *,
    capacity_attr: str = "capacity",
    default_capacity: float | None = None,
) -> tuple[CapacitatedGraph, dict]:
    """Convert a networkx (di)graph into a :class:`CapacitatedGraph`.

    Returns the converted graph and a mapping from original node labels to
    the integer vertex ids used by the library.
    """
    directed = nx_graph.is_directed()
    nodes = list(nx_graph.nodes())
    node_index = {node: i for i, node in enumerate(nodes)}
    edges: list[tuple[int, int, float]] = []
    for u, v, data in nx_graph.edges(data=True):
        cap = data.get(capacity_attr, default_capacity)
        if cap is None:
            raise InvalidInstanceError(
                f"edge ({u!r}, {v!r}) has no {capacity_attr!r} attribute and no "
                "default_capacity was given"
            )
        edges.append((node_index[u], node_index[v], float(cap)))
    graph = CapacitatedGraph(len(nodes), edges, directed=directed)
    return graph, node_index


def to_networkx(graph: CapacitatedGraph) -> "nx.Graph | nx.DiGraph":
    """Convert a :class:`CapacitatedGraph` to a networkx graph.

    Edge capacities are stored in the ``capacity`` attribute, and the edge id
    in ``edge_id``.  Parallel edges collapse onto the last one written (use a
    MultiGraph manually if that matters for your analysis).
    """
    nxg: nx.Graph | nx.DiGraph = nx.DiGraph() if graph.directed else nx.Graph()
    nxg.add_nodes_from(range(graph.num_vertices))
    for edge in graph.edges():
        nxg.add_edge(edge.tail, edge.head, capacity=edge.capacity, edge_id=edge.edge_id)
    return nxg

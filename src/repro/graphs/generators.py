"""Graph generators: random, grid, ring and ISP-like topologies.

These provide the synthetic workload topologies for the experiments.  All of
them take a uniform ``capacity`` (or a capacity range) so that the capacity
bound ``B = min_e c_e`` of the generated instance is easy to control — the
paper's algorithms require ``B = Omega(ln m / eps^2)``.

Determinism contract
--------------------
Every stochastic generator in this package (and in
:mod:`repro.flows.generators` / :mod:`repro.auctions.generators`) accepts
the same ``seed`` parameter, normalized by
:func:`repro.utils.prng.ensure_rng`: an ``int`` seed, a shared
:class:`numpy.random.Generator` (consumed in place, so several generators
can draw from one deterministic stream), or ``None`` for the library-wide
fixed default seed.  The same seed always reproduces the identical object,
bit for bit — ``tests/test_generator_determinism.py`` enforces this for
every generator.
"""

from __future__ import annotations

import math
from typing import Sequence

import networkx as nx
import numpy as np

from repro.exceptions import InvalidInstanceError
from repro.graphs.graph import CapacitatedGraph
from repro.utils.prng import ensure_rng

__all__ = [
    "random_digraph",
    "random_graph",
    "grid_graph",
    "ring_graph",
    "isp_topology",
    "fat_tree_topology",
    "fat_tree_host_range",
    "waxman_graph",
    "barabasi_albert_graph",
    "multi_region_topology",
    "multi_region_leaves",
    "from_networkx",
    "to_networkx",
]


def _capacity_array(
    rng: np.random.Generator,
    count: int,
    capacity: float | tuple[float, float],
) -> np.ndarray:
    """Draw ``count`` capacities, either constant or uniform in a range."""
    if isinstance(capacity, tuple):
        low, high = float(capacity[0]), float(capacity[1])
        if not 0 < low <= high:
            raise InvalidInstanceError(f"invalid capacity range ({low}, {high})")
        return rng.uniform(low, high, size=count)
    value = float(capacity)
    if value <= 0:
        raise InvalidInstanceError("capacity must be positive")
    return np.full(count, value, dtype=np.float64)


def _require_edges(edges: Sequence, generator: str) -> None:
    """Reject edge-less outputs at construction time.

    An edge-less graph is useless to every downstream consumer (the dual
    state needs ``min_e c_e``, solvers need at least one routable path) and
    used to surface only as an unhelpful numpy error deep inside them; the
    generators fail fast with an actionable message instead.
    """
    if not edges:
        raise InvalidInstanceError(
            f"{generator} produced a graph with no edges; increase the size "
            "parameters or the edge probability (every generated topology "
            "must have at least one edge)"
        )


def random_digraph(
    num_vertices: int,
    edge_probability: float,
    capacity: float | tuple[float, float],
    *,
    seed: int | np.random.Generator | None = None,
    ensure_connected: bool = True,
) -> CapacitatedGraph:
    """Random directed graph in the Erdős–Rényi ``G(n, p)`` style.

    Parameters
    ----------
    num_vertices:
        Number of vertices.
    edge_probability:
        Probability of each ordered pair ``(u, v)``, ``u != v``, being an arc.
    capacity:
        Either a constant capacity or a ``(low, high)`` range sampled
        uniformly per edge.
    ensure_connected:
        When ``True`` a directed Hamiltonian cycle over a random vertex
        permutation is added first, so every ordered pair has at least one
        connecting path; random arcs are then added on top.  This keeps
        request generation simple (any source/target pair is routable).
    """
    if num_vertices < 2:
        raise InvalidInstanceError("random_digraph needs at least 2 vertices")
    if not 0.0 <= edge_probability <= 1.0:
        raise InvalidInstanceError("edge_probability must lie in [0, 1]")
    rng = ensure_rng(seed)

    existing: set[tuple[int, int]] = set()
    edges: list[tuple[int, int]] = []

    if ensure_connected:
        perm = rng.permutation(num_vertices)
        for i in range(num_vertices):
            u = int(perm[i])
            v = int(perm[(i + 1) % num_vertices])
            edges.append((u, v))
            existing.add((u, v))

    mask = rng.random((num_vertices, num_vertices)) < edge_probability
    np.fill_diagonal(mask, False)
    for u, v in zip(*np.nonzero(mask)):
        pair = (int(u), int(v))
        if pair not in existing:
            existing.add(pair)
            edges.append(pair)

    _require_edges(edges, "random_digraph")
    caps = _capacity_array(rng, len(edges), capacity)
    return CapacitatedGraph(
        num_vertices,
        [(u, v, float(c)) for (u, v), c in zip(edges, caps)],
        directed=True,
    )


def random_graph(
    num_vertices: int,
    edge_probability: float,
    capacity: float | tuple[float, float],
    *,
    seed: int | np.random.Generator | None = None,
    ensure_connected: bool = True,
) -> CapacitatedGraph:
    """Random undirected graph in the ``G(n, p)`` style.

    Mirrors :func:`random_digraph`; connectivity is ensured with a random
    spanning cycle.
    """
    if num_vertices < 2:
        raise InvalidInstanceError("random_graph needs at least 2 vertices")
    if not 0.0 <= edge_probability <= 1.0:
        raise InvalidInstanceError("edge_probability must lie in [0, 1]")
    rng = ensure_rng(seed)

    existing: set[tuple[int, int]] = set()
    edges: list[tuple[int, int]] = []

    if ensure_connected:
        perm = rng.permutation(num_vertices)
        for i in range(num_vertices):
            u = int(perm[i])
            v = int(perm[(i + 1) % num_vertices])
            key = (min(u, v), max(u, v))
            if key not in existing:
                existing.add(key)
                edges.append(key)

    mask = rng.random((num_vertices, num_vertices)) < edge_probability
    iu = np.triu_indices(num_vertices, k=1)
    for u, v in zip(iu[0][mask[iu]], iu[1][mask[iu]]):
        key = (int(u), int(v))
        if key not in existing:
            existing.add(key)
            edges.append(key)

    _require_edges(edges, "random_graph")
    caps = _capacity_array(rng, len(edges), capacity)
    return CapacitatedGraph(
        num_vertices,
        [(u, v, float(c)) for (u, v), c in zip(edges, caps)],
        directed=False,
    )


def grid_graph(
    rows: int,
    cols: int,
    capacity: float | tuple[float, float],
    *,
    directed: bool = False,
    seed: int | np.random.Generator | None = None,
) -> CapacitatedGraph:
    """A ``rows x cols`` mesh; vertex ``(i, j)`` has index ``i * cols + j``.

    When ``directed`` is True each mesh edge becomes two opposite arcs (each
    with its own capacity draw), which models full-duplex links.
    """
    if rows < 1 or cols < 1:
        raise InvalidInstanceError("grid dimensions must be positive")
    if rows * cols < 2:
        # A 1x1 grid has one vertex and no edges; nothing downstream can use
        # it, so reject it here with a clear message.
        raise InvalidInstanceError(
            "a 1x1 grid has no edges; grids need at least 2 vertices"
        )
    rng = ensure_rng(seed)
    undirected_edges: list[tuple[int, int]] = []
    for i in range(rows):
        for j in range(cols):
            v = i * cols + j
            if j + 1 < cols:
                undirected_edges.append((v, v + 1))
            if i + 1 < rows:
                undirected_edges.append((v, v + cols))
    if directed:
        pairs = [(u, v) for u, v in undirected_edges] + [(v, u) for u, v in undirected_edges]
    else:
        pairs = undirected_edges
    caps = _capacity_array(rng, len(pairs), capacity)
    return CapacitatedGraph(
        rows * cols,
        [(u, v, float(c)) for (u, v), c in zip(pairs, caps)],
        directed=directed,
    )


def ring_graph(
    num_vertices: int,
    capacity: float | tuple[float, float],
    *,
    directed: bool = False,
    seed: int | np.random.Generator | None = None,
) -> CapacitatedGraph:
    """A simple cycle on ``num_vertices`` vertices.

    ``capacity`` is a constant or a ``(low, high)`` range sampled uniformly
    per edge — the same convention (and the same ``seed`` handling) as every
    other generator in this module.  With a constant capacity the topology
    is fully deterministic and ``seed`` is never consulted.
    """
    if num_vertices < 3:
        raise InvalidInstanceError("a ring needs at least 3 vertices")
    pairs = [(i, (i + 1) % num_vertices) for i in range(num_vertices)]
    # A constant capacity consumes no randomness, so a shared generator
    # passes through ring_graph unperturbed in that case.
    caps = _capacity_array(ensure_rng(seed), len(pairs), capacity)
    return CapacitatedGraph(
        num_vertices,
        [(u, v, float(c)) for (u, v), c in zip(pairs, caps)],
        directed=directed,
    )


def isp_topology(
    num_core: int,
    leaves_per_core: int,
    core_capacity: float,
    access_capacity: float,
    *,
    seed: int | np.random.Generator | None = None,
    directed: bool = False,
) -> CapacitatedGraph:
    """A two-level ISP-like topology: a dense core plus access trees.

    Core vertices ``0 .. num_core-1`` form a complete graph with
    ``core_capacity`` links; each core vertex additionally serves
    ``leaves_per_core`` access vertices through ``access_capacity`` links.
    This is the "network routing" scenario the paper's introduction
    motivates: many small customers (access leaves) requesting bandwidth
    across a well-provisioned backbone.
    """
    if num_core < 2:
        raise InvalidInstanceError("need at least 2 core vertices")
    if leaves_per_core < 0:
        raise InvalidInstanceError("leaves_per_core must be non-negative")
    edges: list[tuple[int, int, float]] = []
    for u in range(num_core):
        for v in range(u + 1, num_core):
            edges.append((u, v, float(core_capacity)))
            if directed:
                edges.append((v, u, float(core_capacity)))
    next_vertex = num_core
    for core in range(num_core):
        for _ in range(leaves_per_core):
            edges.append((next_vertex, core, float(access_capacity)))
            if directed:
                edges.append((core, next_vertex, float(access_capacity)))
            next_vertex += 1
    return CapacitatedGraph(next_vertex, edges, directed=directed)


def fat_tree_topology(
    k: int,
    core_capacity: float | tuple[float, float],
    aggregation_capacity: float | tuple[float, float],
    edge_capacity: float | tuple[float, float],
    *,
    hosts_per_edge: int | None = None,
    host_capacity: float | tuple[float, float] | None = None,
    seed: int | np.random.Generator | None = None,
    directed: bool = False,
) -> CapacitatedGraph:
    """A ``k``-ary fat-tree (Clos) datacenter topology.

    The standard three-tier layout: ``(k/2)^2`` core switches; ``k`` pods of
    ``k/2`` aggregation and ``k/2`` edge switches each; aggregation switch
    ``i`` of every pod uplinks to core group ``i`` (cores
    ``i*k/2 .. i*k/2 + k/2 - 1``), aggregation and edge switches of one pod
    form a complete bipartite graph, and each edge switch serves
    ``hosts_per_edge`` hosts (default ``k/2``, the canonical fat-tree).

    Vertex layout (contiguous id blocks, documented because request
    generators want the host block): cores ``0 .. (k/2)^2 - 1``, then per
    pod ``k/2`` aggregation followed by ``k/2`` edge switches, then all
    hosts — ``fat_tree_host_range(k, hosts_per_edge)`` returns the host ids.

    Capacities per tier are constants or ``(low, high)`` ranges drawn in a
    fixed order (core uplinks, pod-internal links, host links); with all
    tiers constant no randomness is consumed, so a shared ``seed``
    generator passes through unperturbed (like :func:`ring_graph`).
    """
    if k < 2 or k % 2 != 0:
        raise InvalidInstanceError("fat-tree arity k must be an even integer >= 2")
    half = k // 2
    if hosts_per_edge is None:
        hosts_per_edge = half
    if hosts_per_edge < 0:
        raise InvalidInstanceError("hosts_per_edge must be non-negative")

    num_core = half * half
    agg_of = lambda pod, i: num_core + pod * k + i  # noqa: E731
    edge_of = lambda pod, j: num_core + pod * k + half + j  # noqa: E731
    num_switches = num_core + k * k

    core_links: list[tuple[int, int]] = []
    pod_links: list[tuple[int, int]] = []
    host_links: list[tuple[int, int]] = []
    for pod in range(k):
        for i in range(half):
            for c in range(half):
                core_links.append((i * half + c, agg_of(pod, i)))
        for i in range(half):
            for j in range(half):
                pod_links.append((agg_of(pod, i), edge_of(pod, j)))
    next_host = num_switches
    for pod in range(k):
        for j in range(half):
            for _ in range(hosts_per_edge):
                host_links.append((edge_of(pod, j), next_host))
                next_host += 1

    rng = ensure_rng(seed)
    groups = [
        (core_links, core_capacity),
        (pod_links, aggregation_capacity),
        (host_links, edge_capacity if host_capacity is None else host_capacity),
    ]
    edges: list[tuple[int, int, float]] = []
    for pairs, capacity in groups:
        caps = _capacity_array(rng, len(pairs), capacity)
        for (u, v), c in zip(pairs, caps):
            edges.append((u, v, float(c)))
            if directed:
                edges.append((v, u, float(c)))
    return CapacitatedGraph(next_host, edges, directed=directed)


def fat_tree_host_range(k: int, hosts_per_edge: int | None = None) -> range:
    """The host vertex ids of ``fat_tree_topology(k, ...)`` (empty when the
    tree was built with ``hosts_per_edge=0``)."""
    half = k // 2
    if hosts_per_edge is None:
        hosts_per_edge = half
    num_switches = half * half + k * k
    return range(num_switches, num_switches + k * half * hosts_per_edge)


def waxman_graph(
    num_vertices: int,
    capacity: float | tuple[float, float],
    *,
    alpha: float = 0.6,
    beta: float = 0.4,
    seed: int | np.random.Generator | None = None,
    directed: bool = False,
    ensure_connected: bool = True,
) -> CapacitatedGraph:
    """A Waxman random geometric graph (the classic WAN/ISP model).

    Vertices are placed uniformly in the unit square and each pair ``(u, v)``
    becomes an edge with probability ``alpha * exp(-d(u, v) / (beta * L))``
    where ``d`` is the Euclidean distance and ``L = sqrt(2)`` the diameter
    of the square — nearby routers are much more likely to be linked, which
    is why Waxman graphs are the standard synthetic wide-area topology.

    Draw order under one ``seed`` (fixed for reproducibility): positions,
    the connectivity cycle permutation (when ``ensure_connected``), the
    pairwise coin flips, the capacities.
    """
    if num_vertices < 2:
        raise InvalidInstanceError("waxman_graph needs at least 2 vertices")
    if not 0.0 < alpha <= 1.0:
        raise InvalidInstanceError("alpha must lie in (0, 1]")
    if beta <= 0.0:
        raise InvalidInstanceError("beta must be positive")
    rng = ensure_rng(seed)

    positions = rng.random((num_vertices, 2))
    existing: set[tuple[int, int]] = set()
    edges: list[tuple[int, int]] = []
    if ensure_connected:
        perm = rng.permutation(num_vertices)
        for i in range(num_vertices):
            u = int(perm[i])
            v = int(perm[(i + 1) % num_vertices])
            key = (u, v) if directed else (min(u, v), max(u, v))
            if key not in existing:
                existing.add(key)
                edges.append(key)

    diffs = positions[:, None, :] - positions[None, :, :]
    distances = np.sqrt((diffs * diffs).sum(axis=2))
    prob = alpha * np.exp(-distances / (beta * math.sqrt(2.0)))
    mask = rng.random((num_vertices, num_vertices)) < prob
    np.fill_diagonal(mask, False)
    if directed:
        candidates = zip(*np.nonzero(mask))
    else:
        iu = np.triu_indices(num_vertices, k=1)
        candidates = zip(iu[0][mask[iu]], iu[1][mask[iu]])
    for u, v in candidates:
        key = (int(u), int(v))
        if key not in existing:
            existing.add(key)
            edges.append(key)

    _require_edges(edges, "waxman_graph")
    caps = _capacity_array(rng, len(edges), capacity)
    return CapacitatedGraph(
        num_vertices,
        [(u, v, float(c)) for (u, v), c in zip(edges, caps)],
        directed=directed,
    )


def barabasi_albert_graph(
    num_vertices: int,
    attachments: int,
    capacity: float | tuple[float, float],
    *,
    seed: int | np.random.Generator | None = None,
    directed: bool = False,
) -> CapacitatedGraph:
    """A Barabási–Albert preferential-attachment scale-free graph.

    Growth starts from ``attachments`` isolated vertices; every subsequent
    vertex attaches to ``attachments`` distinct existing vertices chosen
    proportionally to their current degree (the first newcomer links to all
    initial vertices).  The result has hub vertices with very high degree —
    the contention pattern of internet-like networks, where a few transit
    links carry most paths.

    When ``directed`` is True every attachment becomes two opposite arcs
    (full-duplex), each with its own capacity draw.
    """
    if attachments < 1:
        raise InvalidInstanceError("attachments must be at least 1")
    if num_vertices <= attachments:
        raise InvalidInstanceError(
            "num_vertices must exceed attachments (the initial vertex block)"
        )
    rng = ensure_rng(seed)

    pairs: list[tuple[int, int]] = []
    # One entry per edge endpoint: sampling it uniformly is sampling
    # vertices proportionally to degree.
    endpoint_pool: list[int] = []
    for v in range(attachments, num_vertices):
        if v == attachments:
            targets = list(range(attachments))
        else:
            targets_set: set[int] = set()
            while len(targets_set) < attachments:
                targets_set.add(endpoint_pool[int(rng.integers(len(endpoint_pool)))])
            targets = sorted(targets_set)
        for t in targets:
            pairs.append((t, v))
            endpoint_pool.append(t)
            endpoint_pool.append(v)

    if directed:
        arc_pairs = [pair for u, v in pairs for pair in ((u, v), (v, u))]
    else:
        arc_pairs = pairs
    caps = _capacity_array(rng, len(arc_pairs), capacity)
    return CapacitatedGraph(
        num_vertices,
        [(u, v, float(c)) for (u, v), c in zip(arc_pairs, caps)],
        directed=directed,
    )


def multi_region_topology(
    num_regions: int,
    cores_per_region: int,
    leaves_per_core: int,
    backbone_capacity: float | tuple[float, float],
    core_capacity: float | tuple[float, float],
    access_capacity: float | tuple[float, float],
    *,
    interlinks_per_pair: int = 1,
    seed: int | np.random.Generator | None = None,
    directed: bool = False,
) -> CapacitatedGraph:
    """A multi-region ISP composite: per-region cores + leaves, random
    inter-region backbone links.

    Every region is a two-level ISP topology (complete core graph on
    ``cores_per_region`` vertices, ``leaves_per_core`` access leaves per
    core); regions are stitched together by ``interlinks_per_pair``
    backbone links per region pair, each between one random core vertex of
    either region.  Vertex layout: region ``r`` occupies the contiguous
    block starting at ``r * (cores_per_region * (1 + leaves_per_core))``,
    cores first — :func:`multi_region_leaves` returns the access-leaf ids.

    Draw order under one ``seed``: backbone endpoints (all pairs, in region
    order), then capacities (backbone, core, access).
    """
    if num_regions < 2:
        raise InvalidInstanceError("need at least 2 regions")
    if cores_per_region < 1:
        raise InvalidInstanceError("need at least 1 core vertex per region")
    if leaves_per_core < 0:
        raise InvalidInstanceError("leaves_per_core must be non-negative")
    if interlinks_per_pair < 1:
        raise InvalidInstanceError("interlinks_per_pair must be at least 1")
    rng = ensure_rng(seed)
    block = cores_per_region * (1 + leaves_per_core)

    backbone_pairs: list[tuple[int, int]] = []
    for r in range(num_regions):
        for s in range(r + 1, num_regions):
            for _ in range(interlinks_per_pair):
                u = r * block + int(rng.integers(cores_per_region))
                v = s * block + int(rng.integers(cores_per_region))
                backbone_pairs.append((u, v))

    core_pairs: list[tuple[int, int]] = []
    access_pairs: list[tuple[int, int]] = []
    for r in range(num_regions):
        base = r * block
        for u in range(cores_per_region):
            for v in range(u + 1, cores_per_region):
                core_pairs.append((base + u, base + v))
        next_leaf = base + cores_per_region
        for core in range(cores_per_region):
            for _ in range(leaves_per_core):
                access_pairs.append((next_leaf, base + core))
                next_leaf += 1

    edges: list[tuple[int, int, float]] = []
    groups = [
        (backbone_pairs, backbone_capacity),
        (core_pairs, core_capacity),
        (access_pairs, access_capacity),
    ]
    for pairs, capacity in groups:
        caps = _capacity_array(rng, len(pairs), capacity)
        for (u, v), c in zip(pairs, caps):
            edges.append((u, v, float(c)))
            if directed:
                edges.append((v, u, float(c)))
    return CapacitatedGraph(num_regions * block, edges, directed=directed)


def multi_region_leaves(
    num_regions: int, cores_per_region: int, leaves_per_core: int
) -> list[int]:
    """The access-leaf vertex ids of the matching
    :func:`multi_region_topology` call (request terminal pool)."""
    block = cores_per_region * (1 + leaves_per_core)
    leaves: list[int] = []
    for r in range(num_regions):
        start = r * block + cores_per_region
        leaves.extend(range(start, start + cores_per_region * leaves_per_core))
    return leaves


# ---------------------------------------------------------------------- #
# networkx interoperability
# ---------------------------------------------------------------------- #
def from_networkx(
    nx_graph: "nx.Graph | nx.DiGraph",
    *,
    capacity_attr: str = "capacity",
    default_capacity: float | None = None,
) -> tuple[CapacitatedGraph, dict]:
    """Convert a networkx (di)graph into a :class:`CapacitatedGraph`.

    Returns the converted graph and a mapping from original node labels to
    the integer vertex ids used by the library.
    """
    directed = nx_graph.is_directed()
    nodes = list(nx_graph.nodes())
    node_index = {node: i for i, node in enumerate(nodes)}
    edges: list[tuple[int, int, float]] = []
    for u, v, data in nx_graph.edges(data=True):
        cap = data.get(capacity_attr, default_capacity)
        if cap is None:
            raise InvalidInstanceError(
                f"edge ({u!r}, {v!r}) has no {capacity_attr!r} attribute and no "
                "default_capacity was given"
            )
        edges.append((node_index[u], node_index[v], float(cap)))
    graph = CapacitatedGraph(len(nodes), edges, directed=directed)
    return graph, node_index


def to_networkx(graph: CapacitatedGraph) -> "nx.Graph | nx.DiGraph":
    """Convert a :class:`CapacitatedGraph` to a networkx graph.

    Edge capacities are stored in the ``capacity`` attribute, and the edge id
    in ``edge_id``.  Parallel edges collapse onto the last one written (use a
    MultiGraph manually if that matters for your analysis).
    """
    nxg: nx.Graph | nx.DiGraph = nx.DiGraph() if graph.directed else nx.Graph()
    nxg.add_nodes_from(range(graph.num_vertices))
    for edge in graph.edges():
        nxg.add_edge(edge.tail, edge.head, capacity=edge.capacity, edge_id=edge.edge_id)
    return nxg

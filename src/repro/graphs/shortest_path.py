"""Shortest path computations under mutable per-edge weights.

The primal-dual algorithms of the paper (``Bounded-UFP`` and
``Bounded-UFP-Repeat``) repeatedly ask for the shortest ``s_r -> t_r`` path
under the *current* dual weights ``y_e >= 0``.  Weights are always
non-negative, so Dijkstra with a binary heap is correct; Bellman-Ford is
provided as an independent oracle for differential testing.

Two Dijkstra implementations are offered with identical semantics:

* :func:`single_source_dijkstra` — the production hot loop.  It runs over
  flat Python lists (the CSR adjacency pre-extracted once per graph via
  :meth:`~repro.graphs.graph.CapacitatedGraph.csr_lists`, the weight vector
  converted once per call) and an array-backed binary heap of ``(dist,
  vertex)`` pairs, so the inner relaxation performs no per-edge numpy scalar
  boxing.  Its output — distances, parents and therefore extracted paths —
  is bit-for-bit identical to :func:`reference_dijkstra`.
* :func:`reference_dijkstra` — the original straightforward numpy-indexing
  implementation, kept as the differential-testing oracle for the fast one.

Both tie-break identically: heap entries are ``(dist, vertex)`` tuples (so
equal distances settle in vertex order), and a relaxation only overwrites a
parent on a strict improvement (so the first arc, in CSR order from the
earliest-settled tail, that attains the final distance is the parent).

Pluggable backends
------------------
Full-tree computations (no ``targets`` early exit) are routed through a
process-global **backend registry**:

* ``"lists"`` — the flat-Python-list kernel above (the default);
* ``"scipy"`` — batched ``scipy.sparse.csgraph.dijkstra`` over CSR arrays
  cached on :attr:`CapacitatedGraph.substrate_cache`, with parent extraction
  replaying the lists kernel's exact tie-breaking, so distances, parents and
  therefore every downstream allocation are **bit-identical** to the lists
  backend (enforced by the differential backend-parity suite).  Its batched
  entry point :func:`multi_source_dijkstra` computes several source trees in
  one vectorized C call — the pricing engine uses it to prime and to refresh
  invalidated trees.

Select with :func:`set_backend`/:func:`use_backend` or the
``REPRO_SP_BACKEND`` environment variable.  The scipy backend transparently
falls back to the lists kernel for the cases outside its contract (graphs
with parallel edges, non-positive weights, explicit ``targets``), so
selecting it is always safe.

Why the scipy distances are bit-identical: with strictly positive weights
the Dijkstra fixpoint over IEEE doubles is tie-break independent — every
settled vertex satisfies ``dist[v] = min_u (dist[u] + w(u, v))`` over the
tails with strictly smaller distance, and induction over the settle order
shows any two conforming implementations compute the same double at every
vertex.  Parents are then *reconstructed* under the lists kernel's rule (the
first arc, in ``(settle rank of tail, CSR position)`` order, whose relaxation
attains the final distance bit-for-bit), rather than trusting scipy's own
predecessor tie-breaking.
"""

from __future__ import annotations

import heapq
import os
import warnings
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from repro.exceptions import NoPathError
from repro.graphs.graph import CapacitatedGraph

__all__ = [
    "ShortestPathResult",
    "dijkstra_lists",
    "single_source_dijkstra",
    "multi_source_dijkstra",
    "reference_dijkstra",
    "shortest_path",
    "bellman_ford",
    "set_backend",
    "get_backend",
    "use_backend",
    "available_backends",
    "BACKEND_ENV_VAR",
]

#: Environment variable consulted for the initial backend selection.
BACKEND_ENV_VAR = "REPRO_SP_BACKEND"


@dataclass(frozen=True)
class ShortestPathResult:
    """The shortest-path tree of one source vertex.

    Attributes
    ----------
    source:
        The source vertex the tree is rooted at.
    distances:
        Array of length ``n``; ``distances[v]`` is the weight of the shortest
        path from ``source`` to ``v`` (``inf`` when unreachable).
    parent_vertex:
        ``parent_vertex[v]`` is the predecessor of ``v`` on its shortest path
        (``-1`` for the source and unreachable vertices).
    parent_edge:
        ``parent_edge[v]`` is the edge id used to enter ``v`` (``-1`` when
        not applicable).
    """

    source: int
    distances: np.ndarray
    parent_vertex: np.ndarray
    parent_edge: np.ndarray

    def reachable(self, target: int) -> bool:
        return bool(np.isfinite(self.distances[target]))

    def distance(self, target: int) -> float:
        return float(self.distances[target])

    def path_to(self, target: int) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Return ``(vertex_path, edge_id_path)`` from the source to ``target``.

        Raises :class:`~repro.exceptions.NoPathError` if ``target`` is not
        reachable from the source.
        """
        target = int(target)
        if not self.reachable(target):
            raise NoPathError(f"vertex {target} unreachable from {self.source}")
        vertices: list[int] = [target]
        edges: list[int] = []
        v = target
        while v != self.source:
            e = int(self.parent_edge[v])
            p = int(self.parent_vertex[v])
            edges.append(e)
            vertices.append(p)
            v = p
        vertices.reverse()
        edges.reverse()
        return tuple(vertices), tuple(edges)

    def used_edge_ids(self) -> set[int]:
        """The set of edge ids appearing as parent edges anywhere in the tree.

        This is the invalidation footprint used by the tree caches: as long
        as no weight of an edge in this set changes (and no weight decreases
        at all), a rerun of Dijkstra would reproduce this exact tree.
        """
        used = set(self.parent_edge.tolist())
        used.discard(-1)
        return used


def _validate_weights(graph: CapacitatedGraph, weights: np.ndarray) -> np.ndarray:
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (graph.num_edges,):
        raise ValueError(
            f"weights must have shape ({graph.num_edges},), got {weights.shape}"
        )
    if graph.num_edges and float(weights.min()) < 0.0:
        raise ValueError("Dijkstra requires non-negative weights")
    return weights


def dijkstra_lists(
    n: int,
    indptr: list[int],
    adj_heads: list[int],
    adj_edge_ids: list[int],
    w: list[float],
    source: int,
    targets: set[int] | None = None,
) -> tuple[list[float], list[int], list[int]]:
    """The Dijkstra hot loop over flat Python lists.

    Returns ``(dist, parent_vertex, parent_edge)`` as plain lists
    (unreachable vertices carry ``inf`` / ``-1``).  This is the shared core
    of :func:`single_source_dijkstra` (which wraps it in numpy arrays and
    input validation) and of the pricing engine's tree cache (which keeps
    the raw lists to avoid per-call array construction on small graphs).
    Arithmetic and tie-breaking are bit-identical to
    :func:`reference_dijkstra`.
    """
    inf = float("inf")
    dist = [inf] * n
    parent_vertex = [-1] * n
    parent_edge = [-1] * n
    settled = bytearray(n)

    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    # Copy: the early-exit set is drained as targets settle, and callers may
    # reuse theirs across several sources.
    remaining = set(targets) if targets is not None else None

    heappop = heapq.heappop
    heappush = heapq.heappush
    while heap:
        d, u = heappop(heap)
        if settled[u]:
            continue
        settled[u] = 1
        if remaining is not None:
            remaining.discard(u)
            if not remaining:
                break
        for k in range(indptr[u], indptr[u + 1]):
            v = adj_heads[k]
            if settled[v]:
                continue
            nd = d + w[adj_edge_ids[k]]
            if nd < dist[v]:
                dist[v] = nd
                parent_vertex[v] = u
                parent_edge[v] = adj_edge_ids[k]
                heappush(heap, (nd, v))

    return dist, parent_vertex, parent_edge


# --------------------------------------------------------------------- #
# Backend registry
# --------------------------------------------------------------------- #
class ListsBackend:
    """The default backend: the flat-Python-list Dijkstra kernel."""

    name = "lists"
    #: Whether :meth:`trees` computes several sources in one vectorized call
    #: (the lists kernel just loops, so batching buys nothing).
    supports_batch = False

    def trees(
        self,
        graph: CapacitatedGraph,
        sources: list[int],
        weights: np.ndarray,
        *,
        weights_list: list[float] | None = None,
    ) -> list[tuple[list[float], list[int], list[int]]]:
        """Full shortest-path trees ``(dist, parent_vertex, parent_edge)``
        as raw lists, one per source, in ``sources`` order.

        Per-tree computation dispatches through the active compute kernel
        (:mod:`repro.kernels`), so ``REPRO_KERNEL=numba`` accelerates this
        backend too; every kernel tier is bit-identical to the lists loop.
        """
        from repro.kernels import get_kernel

        kernel = get_kernel()
        if kernel.wants_weights_list and weights_list is None:
            weights_list = weights.tolist()
        return [
            kernel.dijkstra(graph, weights, weights_list, s) for s in sources
        ]


class ScipyBackend:
    """Batched ``scipy.sparse.csgraph.dijkstra`` with lists-kernel parents.

    Distances for all requested sources come from one vectorized call on a
    CSR matrix whose structure (``indptr``/``indices``/arc edge ids/arc
    tails) is cached on the graph's substrate cache; only the per-arc data
    vector ``weights[arc_edge_ids]`` is rebuilt per call.  Parents are then
    reconstructed under the exact tie-breaking of :func:`dijkstra_lists`
    (see the module docstring), keeping the output bit-identical.

    Outside its contract — parallel edges (scipy's CSR canonicalization
    sums duplicate entries), non-positive weights (the tie-break-independence
    argument needs ``w > 0``) — it silently delegates to the lists kernel.
    """

    name = "scipy"
    supports_batch = True

    _CACHE_KEY = "shortest_path/scipy_csr"

    def __init__(self) -> None:
        from scipy.sparse import csr_matrix  # noqa: F401 - fail fast if absent
        from scipy.sparse.csgraph import dijkstra  # noqa: F401

    def _structure(self, graph: CapacitatedGraph):
        cached = graph.substrate_cache.get(self._CACHE_KEY)
        if cached is None:
            indptr = graph.indptr
            arc_heads = graph.adjacency_heads
            arc_eids = graph.adjacency_edge_ids
            arc_tails = np.repeat(
                np.arange(graph.num_vertices, dtype=np.int64), np.diff(indptr)
            )
            # Parallel arcs (same tail and head) would be summed by scipy's
            # duplicate canonicalization; detect once and delegate forever.
            pair_keys = arc_tails * graph.num_vertices + arc_heads
            has_parallel = bool(np.unique(pair_keys).size < pair_keys.size)
            cached = (
                indptr.astype(np.int32),
                arc_heads.astype(np.int32),
                arc_eids,
                arc_tails,
                has_parallel,
            )
            graph.substrate_cache[self._CACHE_KEY] = cached
        return cached

    def trees(
        self,
        graph: CapacitatedGraph,
        sources: list[int],
        weights: np.ndarray,
        *,
        weights_list: list[float] | None = None,
    ) -> list[tuple[list[float], list[int], list[int]]]:
        from scipy.sparse import csr_matrix
        from scipy.sparse.csgraph import dijkstra as csgraph_dijkstra

        indptr, arc_heads, arc_eids, arc_tails, has_parallel = self._structure(graph)
        weights = np.asarray(weights, dtype=np.float64)
        if has_parallel or (weights.size and float(weights.min()) <= 0.0):
            return _LISTS_BACKEND.trees(
                graph, sources, weights, weights_list=weights_list
            )

        n = graph.num_vertices
        arc_w = weights[arc_eids]
        matrix = csr_matrix((arc_w, arc_heads, indptr), shape=(n, n), copy=False)
        dist_matrix = csgraph_dijkstra(matrix, directed=True, indices=sources)
        dist_matrix = np.atleast_2d(dist_matrix)

        results: list[tuple[list[float], list[int], list[int]]] = []
        for row, source in enumerate(sources):
            dist = dist_matrix[row]
            parent_vertex, parent_edge = self._reconstruct_parents(
                n, arc_tails, arc_heads, arc_eids, arc_w, dist, source
            )
            if parent_vertex is None:
                # Bitwise inconsistency (cannot happen under the contract,
                # but never emit a tree we cannot prove identical).
                results.append(
                    _LISTS_BACKEND.trees(
                        graph, [source], weights, weights_list=weights_list
                    )[0]
                )
                continue
            results.append((dist.tolist(), parent_vertex, parent_edge))
        return results

    @staticmethod
    def _reconstruct_parents(
        n: int,
        arc_tails: np.ndarray,
        arc_heads: np.ndarray,
        arc_eids: np.ndarray,
        arc_w: np.ndarray,
        dist: np.ndarray,
        source: int,
    ) -> tuple[list[int], list[int]] | tuple[None, None]:
        """Parents under the lists kernel's tie-breaking, from distances.

        The kernel's final parent of ``v`` is the first relaxation — tails
        in settle order, arcs in CSR order within a tail — that attains the
        final ``dist[v]`` exactly.  With strictly positive weights every
        attaining tail has strictly smaller distance, so settle order among
        candidates is the ``(dist, vertex)`` lexicographic order and the
        winner is the candidate arc minimizing ``(settle_rank[tail],
        csr_position)``.
        """
        finite_tail = np.isfinite(dist[arc_tails])
        sums = dist[arc_tails] + arc_w
        candidate = finite_tail & (sums == dist[arc_heads])

        parent_vertex = np.full(n, -1, dtype=np.int64)
        parent_edge = np.full(n, -1, dtype=np.int64)

        cidx = np.nonzero(candidate)[0]
        if cidx.size:
            # Settle rank: vertices sorted by (dist, vertex id).
            rank = np.empty(n, dtype=np.int64)
            rank[np.lexsort((np.arange(n), dist))] = np.arange(n)
            heads_c = arc_heads[cidx].astype(np.int64)
            order = np.lexsort((cidx, rank[arc_tails[cidx]], heads_c))
            sorted_heads = heads_c[order]
            first = np.ones(order.size, dtype=bool)
            first[1:] = sorted_heads[1:] != sorted_heads[:-1]
            winners = cidx[order[first]]
            win_heads = arc_heads[winners].astype(np.int64)
            parent_vertex[win_heads] = arc_tails[winners]
            parent_edge[win_heads] = arc_eids[winners]

        # Every finite, non-source vertex must have found a parent.
        reachable = np.isfinite(dist)
        reachable[source] = False
        if np.any(reachable & (parent_edge < 0)):  # pragma: no cover - guard
            return None, None
        return parent_vertex.tolist(), parent_edge.tolist()


_LISTS_BACKEND = ListsBackend()
_BACKENDS: dict[str, type] = {"lists": ListsBackend, "scipy": ScipyBackend}
_active_backend = None


def available_backends() -> list[str]:
    """Registered backend names (``"scipy"`` listed even if scipy is absent;
    selecting it then raises)."""
    return sorted(_BACKENDS)


def get_backend():
    """The active backend instance (resolving ``REPRO_SP_BACKEND`` on first
    use; unknown or unavailable values warn and fall back to ``"lists"``)."""
    global _active_backend
    if _active_backend is None:
        name = os.environ.get(BACKEND_ENV_VAR, "lists").strip() or "lists"
        try:
            set_backend(name)
        except (KeyError, ImportError) as exc:
            warnings.warn(
                f"{BACKEND_ENV_VAR}={name!r} unavailable ({exc}); using 'lists'",
                stacklevel=2,
            )
            _active_backend = _LISTS_BACKEND
    return _active_backend


def set_backend(name: str):
    """Select the process-global shortest-path backend by name.

    Returns the backend instance.  Raises ``KeyError`` for unknown names and
    ``ImportError`` when the scipy backend is requested without scipy.
    """
    global _active_backend
    key = str(name).strip().lower()
    if key not in _BACKENDS:
        raise KeyError(
            f"unknown shortest-path backend {name!r}; available: {available_backends()}"
        )
    _active_backend = _LISTS_BACKEND if key == "lists" else _BACKENDS[key]()
    return _active_backend


def set_backend_from_cli(name: str, parser) -> None:
    """:func:`set_backend` with argparse-friendly error reporting.

    Shared by the experiments and scenarios CLIs' ``--backend`` flags: an
    explicit argument always beats an inherited ``REPRO_SP_BACKEND``; an
    unknown or unavailable backend exits via ``parser.error``.
    """
    try:
        set_backend(name)
    except (KeyError, ImportError) as exc:
        parser.error(str(exc))


@contextmanager
def use_backend(name: str):
    """Context manager form of :func:`set_backend` (restores the previous
    backend on exit) — the parity tests' workhorse."""
    global _active_backend
    previous = get_backend()
    set_backend(name)
    try:
        yield _active_backend
    finally:
        _active_backend = previous


def single_source_dijkstra(
    graph: CapacitatedGraph,
    source: int,
    weights: np.ndarray,
    *,
    targets: set[int] | frozenset[int] | None = None,
) -> ShortestPathResult:
    """Dijkstra from ``source`` under non-negative per-edge ``weights``.

    Parameters
    ----------
    graph:
        The capacitated graph (provides CSR adjacency and edge ids).
    source:
        Source vertex.
    weights:
        Array of length ``graph.num_edges`` with the weight of each logical
        edge (undirected edges have one weight used in both directions).
    targets:
        Optional early-exit set: once every vertex in ``targets`` has been
        settled the search stops.  Distances of unsettled vertices are left
        as ``inf`` even if they are reachable, so only use the result for the
        requested targets in that case.

    Notes
    -----
    The output is bit-for-bit identical to :func:`reference_dijkstra` —
    same distances, same parents, same extracted paths — whichever backend
    is active (the scipy backend replays the lists kernel's tie-breaking).
    The ``targets`` early exit is a lists-kernel-only optimization, so
    passing ``targets`` always uses the lists kernel.
    """
    n = graph.num_vertices
    source = int(source)
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range")
    weights = _validate_weights(graph, weights)

    if targets is not None:
        from repro.kernels import get_kernel

        remaining = set(int(t) for t in targets)
        dist, parent_vertex, parent_edge = get_kernel().dijkstra(
            graph, weights, None, source, remaining
        )
    else:
        dist, parent_vertex, parent_edge = get_backend().trees(
            graph, [source], weights
        )[0]

    return ShortestPathResult(
        source=source,
        distances=np.asarray(dist, dtype=np.float64),
        parent_vertex=np.asarray(parent_vertex, dtype=np.int64),
        parent_edge=np.asarray(parent_edge, dtype=np.int64),
    )


def multi_source_dijkstra(
    graph: CapacitatedGraph,
    sources,
    weights: np.ndarray,
) -> list[ShortestPathResult]:
    """Full shortest-path trees for several sources in one backend call.

    Under the scipy backend all distance computations happen in a single
    vectorized ``csgraph.dijkstra`` call; under the lists backend this is an
    ordinary loop.  Each returned tree is bit-identical to the corresponding
    :func:`single_source_dijkstra` result.
    """
    n = graph.num_vertices
    sources = [int(s) for s in sources]
    for s in sources:
        if not 0 <= s < n:
            raise ValueError(f"source {s} out of range")
    weights = _validate_weights(graph, weights)
    trees = get_backend().trees(graph, sources, weights) if sources else []
    return [
        ShortestPathResult(
            source=s,
            distances=np.asarray(dist, dtype=np.float64),
            parent_vertex=np.asarray(pv, dtype=np.int64),
            parent_edge=np.asarray(pe, dtype=np.int64),
        )
        for s, (dist, pv, pe) in zip(sources, trees)
    ]


def reference_dijkstra(
    graph: CapacitatedGraph,
    source: int,
    weights: np.ndarray,
    *,
    targets: set[int] | frozenset[int] | None = None,
) -> ShortestPathResult:
    """The original numpy-indexing Dijkstra, kept as a differential oracle.

    Semantically (and bit-for-bit) equivalent to
    :func:`single_source_dijkstra`; slower because the relaxation loop boxes
    a numpy scalar per arc.
    """
    n = graph.num_vertices
    source = int(source)
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range")
    weights = _validate_weights(graph, weights)

    dist = np.full(n, np.inf, dtype=np.float64)
    parent_vertex = np.full(n, -1, dtype=np.int64)
    parent_edge = np.full(n, -1, dtype=np.int64)
    settled = np.zeros(n, dtype=bool)

    indptr = graph.indptr
    adj_heads = graph.adjacency_heads
    adj_edge_ids = graph.adjacency_edge_ids

    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    remaining = set(int(t) for t in targets) if targets is not None else None

    while heap:
        d, u = heapq.heappop(heap)
        if settled[u]:
            continue
        settled[u] = True
        if remaining is not None:
            remaining.discard(u)
            if not remaining:
                break
        lo, hi = indptr[u], indptr[u + 1]
        heads = adj_heads[lo:hi]
        eids = adj_edge_ids[lo:hi]
        for k in range(heads.shape[0]):
            v = int(heads[k])
            if settled[v]:
                continue
            e = int(eids[k])
            nd = d + float(weights[e])
            if nd < dist[v]:
                dist[v] = nd
                parent_vertex[v] = u
                parent_edge[v] = e
                heapq.heappush(heap, (nd, v))

    return ShortestPathResult(
        source=source,
        distances=dist,
        parent_vertex=parent_vertex,
        parent_edge=parent_edge,
    )


def shortest_path(
    graph: CapacitatedGraph,
    source: int,
    target: int,
    weights: np.ndarray,
) -> tuple[tuple[int, ...], tuple[int, ...], float]:
    """Return ``(vertex_path, edge_id_path, length)`` for one ``s -> t`` pair.

    Raises :class:`~repro.exceptions.NoPathError` when ``target`` is not
    reachable from ``source``.
    """
    result = single_source_dijkstra(graph, source, weights, targets={int(target)})
    if not result.reachable(int(target)):
        raise NoPathError(f"no path from {source} to {target}")
    vertices, edges = result.path_to(int(target))
    return vertices, edges, result.distance(int(target))


def bellman_ford(
    graph: CapacitatedGraph,
    source: int,
    weights: np.ndarray,
) -> ShortestPathResult:
    """Bellman-Ford single-source shortest paths.

    Slower than Dijkstra but independent of the heap implementation — used in
    tests as a differential oracle.  Negative weights are accepted (the
    algorithms never produce them, but the oracle should not assume that);
    negative cycles raise ``ValueError``.
    """
    n = graph.num_vertices
    m = graph.num_edges
    source = int(source)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (m,):
        raise ValueError(f"weights must have shape ({m},), got {weights.shape}")

    dist = np.full(n, np.inf, dtype=np.float64)
    parent_vertex = np.full(n, -1, dtype=np.int64)
    parent_edge = np.full(n, -1, dtype=np.int64)
    dist[source] = 0.0

    # The arc list — (tail, head, edge_id), both orientations for undirected
    # graphs — is cached on the graph.
    arcs = graph.bellman_ford_arcs()

    for _ in range(n - 1):
        changed = False
        for u, v, eid in arcs:
            if np.isfinite(dist[u]) and dist[u] + weights[eid] < dist[v] - 1e-15:
                dist[v] = dist[u] + weights[eid]
                parent_vertex[v] = u
                parent_edge[v] = eid
                changed = True
        if not changed:
            break
    else:
        # One more pass to detect negative cycles reachable from the source.
        for u, v, eid in arcs:
            if np.isfinite(dist[u]) and dist[u] + weights[eid] < dist[v] - 1e-9:
                raise ValueError("negative cycle detected")

    return ShortestPathResult(
        source=source,
        distances=dist,
        parent_vertex=parent_vertex,
        parent_edge=parent_edge,
    )

"""Shortest path computations under mutable per-edge weights.

The primal-dual algorithms of the paper (``Bounded-UFP`` and
``Bounded-UFP-Repeat``) repeatedly ask for the shortest ``s_r -> t_r`` path
under the *current* dual weights ``y_e >= 0``.  Weights are always
non-negative, so Dijkstra with a binary heap is correct; Bellman-Ford is
provided as an independent oracle for differential testing.

Two call forms are offered:

* :func:`single_source_dijkstra` computes the full distance / parent tree of
  one source.  The algorithms group requests by source so that one call
  serves every request sharing that source in an iteration.
* :func:`shortest_path` is the convenience one-shot ``s -> t`` form.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.exceptions import NoPathError
from repro.graphs.graph import CapacitatedGraph

__all__ = [
    "ShortestPathResult",
    "single_source_dijkstra",
    "shortest_path",
    "bellman_ford",
]


@dataclass(frozen=True)
class ShortestPathResult:
    """The shortest-path tree of one source vertex.

    Attributes
    ----------
    source:
        The source vertex the tree is rooted at.
    distances:
        Array of length ``n``; ``distances[v]`` is the weight of the shortest
        path from ``source`` to ``v`` (``inf`` when unreachable).
    parent_vertex:
        ``parent_vertex[v]`` is the predecessor of ``v`` on its shortest path
        (``-1`` for the source and unreachable vertices).
    parent_edge:
        ``parent_edge[v]`` is the edge id used to enter ``v`` (``-1`` when
        not applicable).
    """

    source: int
    distances: np.ndarray
    parent_vertex: np.ndarray
    parent_edge: np.ndarray

    def reachable(self, target: int) -> bool:
        return bool(np.isfinite(self.distances[target]))

    def distance(self, target: int) -> float:
        return float(self.distances[target])

    def path_to(self, target: int) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Return ``(vertex_path, edge_id_path)`` from the source to ``target``.

        Raises :class:`~repro.exceptions.NoPathError` if ``target`` is not
        reachable from the source.
        """
        target = int(target)
        if not self.reachable(target):
            raise NoPathError(f"vertex {target} unreachable from {self.source}")
        vertices: list[int] = [target]
        edges: list[int] = []
        v = target
        while v != self.source:
            e = int(self.parent_edge[v])
            p = int(self.parent_vertex[v])
            edges.append(e)
            vertices.append(p)
            v = p
        vertices.reverse()
        edges.reverse()
        return tuple(vertices), tuple(edges)


def single_source_dijkstra(
    graph: CapacitatedGraph,
    source: int,
    weights: np.ndarray,
    *,
    targets: set[int] | frozenset[int] | None = None,
) -> ShortestPathResult:
    """Dijkstra from ``source`` under non-negative per-edge ``weights``.

    Parameters
    ----------
    graph:
        The capacitated graph (provides CSR adjacency and edge ids).
    source:
        Source vertex.
    weights:
        Array of length ``graph.num_edges`` with the weight of each logical
        edge (undirected edges have one weight used in both directions).
    targets:
        Optional early-exit set: once every vertex in ``targets`` has been
        settled the search stops.  Distances of unsettled vertices are left
        as ``inf`` even if they are reachable, so only use the result for the
        requested targets in that case.
    """
    n = graph.num_vertices
    source = int(source)
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range")
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (graph.num_edges,):
        raise ValueError(
            f"weights must have shape ({graph.num_edges},), got {weights.shape}"
        )
    if graph.num_edges and float(weights.min()) < 0.0:
        raise ValueError("Dijkstra requires non-negative weights")

    dist = np.full(n, np.inf, dtype=np.float64)
    parent_vertex = np.full(n, -1, dtype=np.int64)
    parent_edge = np.full(n, -1, dtype=np.int64)
    settled = np.zeros(n, dtype=bool)

    indptr = graph.indptr
    adj_heads = graph.adjacency_heads
    adj_edge_ids = graph.adjacency_edge_ids

    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    remaining = set(int(t) for t in targets) if targets is not None else None

    while heap:
        d, u = heapq.heappop(heap)
        if settled[u]:
            continue
        settled[u] = True
        if remaining is not None:
            remaining.discard(u)
            if not remaining:
                break
        lo, hi = indptr[u], indptr[u + 1]
        heads = adj_heads[lo:hi]
        eids = adj_edge_ids[lo:hi]
        for k in range(heads.shape[0]):
            v = int(heads[k])
            if settled[v]:
                continue
            e = int(eids[k])
            nd = d + float(weights[e])
            if nd < dist[v]:
                dist[v] = nd
                parent_vertex[v] = u
                parent_edge[v] = e
                heapq.heappush(heap, (nd, v))

    return ShortestPathResult(
        source=source,
        distances=dist,
        parent_vertex=parent_vertex,
        parent_edge=parent_edge,
    )


def shortest_path(
    graph: CapacitatedGraph,
    source: int,
    target: int,
    weights: np.ndarray,
) -> tuple[tuple[int, ...], tuple[int, ...], float]:
    """Return ``(vertex_path, edge_id_path, length)`` for one ``s -> t`` pair.

    Raises :class:`~repro.exceptions.NoPathError` when ``target`` is not
    reachable from ``source``.
    """
    result = single_source_dijkstra(graph, source, weights, targets={int(target)})
    if not result.reachable(int(target)):
        raise NoPathError(f"no path from {source} to {target}")
    vertices, edges = result.path_to(int(target))
    return vertices, edges, result.distance(int(target))


def bellman_ford(
    graph: CapacitatedGraph,
    source: int,
    weights: np.ndarray,
) -> ShortestPathResult:
    """Bellman-Ford single-source shortest paths.

    Slower than Dijkstra but independent of the heap implementation — used in
    tests as a differential oracle.  Negative weights are accepted (the
    algorithms never produce them, but the oracle should not assume that);
    negative cycles raise ``ValueError``.
    """
    n = graph.num_vertices
    m = graph.num_edges
    source = int(source)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (m,):
        raise ValueError(f"weights must have shape ({m},), got {weights.shape}")

    dist = np.full(n, np.inf, dtype=np.float64)
    parent_vertex = np.full(n, -1, dtype=np.int64)
    parent_edge = np.full(n, -1, dtype=np.int64)
    dist[source] = 0.0

    # Build the arc list once: (tail, head, edge_id) including both
    # orientations for undirected graphs.
    arcs: list[tuple[int, int, int]] = []
    for eid in range(m):
        u, v = graph.edge_endpoints(eid)
        arcs.append((u, v, eid))
        if not graph.directed:
            arcs.append((v, u, eid))

    for _ in range(n - 1):
        changed = False
        for u, v, eid in arcs:
            if np.isfinite(dist[u]) and dist[u] + weights[eid] < dist[v] - 1e-15:
                dist[v] = dist[u] + weights[eid]
                parent_vertex[v] = u
                parent_edge[v] = eid
                changed = True
        if not changed:
            break
    else:
        # One more pass to detect negative cycles reachable from the source.
        for u, v, eid in arcs:
            if np.isfinite(dist[u]) and dist[u] + weights[eid] < dist[v] - 1e-9:
                raise ValueError("negative cycle detected")

    return ShortestPathResult(
        source=source,
        distances=dist,
        parent_vertex=parent_vertex,
        parent_edge=parent_edge,
    )

"""Shortest path computations under mutable per-edge weights.

The primal-dual algorithms of the paper (``Bounded-UFP`` and
``Bounded-UFP-Repeat``) repeatedly ask for the shortest ``s_r -> t_r`` path
under the *current* dual weights ``y_e >= 0``.  Weights are always
non-negative, so Dijkstra with a binary heap is correct; Bellman-Ford is
provided as an independent oracle for differential testing.

Two Dijkstra implementations are offered with identical semantics:

* :func:`single_source_dijkstra` — the production hot loop.  It runs over
  flat Python lists (the CSR adjacency pre-extracted once per graph via
  :meth:`~repro.graphs.graph.CapacitatedGraph.csr_lists`, the weight vector
  converted once per call) and an array-backed binary heap of ``(dist,
  vertex)`` pairs, so the inner relaxation performs no per-edge numpy scalar
  boxing.  Its output — distances, parents and therefore extracted paths —
  is bit-for-bit identical to :func:`reference_dijkstra`.
* :func:`reference_dijkstra` — the original straightforward numpy-indexing
  implementation, kept as the differential-testing oracle for the fast one.

Both tie-break identically: heap entries are ``(dist, vertex)`` tuples (so
equal distances settle in vertex order), and a relaxation only overwrites a
parent on a strict improvement (so the first arc, in CSR order from the
earliest-settled tail, that attains the final distance is the parent).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.exceptions import NoPathError
from repro.graphs.graph import CapacitatedGraph

__all__ = [
    "ShortestPathResult",
    "dijkstra_lists",
    "single_source_dijkstra",
    "reference_dijkstra",
    "shortest_path",
    "bellman_ford",
]


@dataclass(frozen=True)
class ShortestPathResult:
    """The shortest-path tree of one source vertex.

    Attributes
    ----------
    source:
        The source vertex the tree is rooted at.
    distances:
        Array of length ``n``; ``distances[v]`` is the weight of the shortest
        path from ``source`` to ``v`` (``inf`` when unreachable).
    parent_vertex:
        ``parent_vertex[v]`` is the predecessor of ``v`` on its shortest path
        (``-1`` for the source and unreachable vertices).
    parent_edge:
        ``parent_edge[v]`` is the edge id used to enter ``v`` (``-1`` when
        not applicable).
    """

    source: int
    distances: np.ndarray
    parent_vertex: np.ndarray
    parent_edge: np.ndarray

    def reachable(self, target: int) -> bool:
        return bool(np.isfinite(self.distances[target]))

    def distance(self, target: int) -> float:
        return float(self.distances[target])

    def path_to(self, target: int) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Return ``(vertex_path, edge_id_path)`` from the source to ``target``.

        Raises :class:`~repro.exceptions.NoPathError` if ``target`` is not
        reachable from the source.
        """
        target = int(target)
        if not self.reachable(target):
            raise NoPathError(f"vertex {target} unreachable from {self.source}")
        vertices: list[int] = [target]
        edges: list[int] = []
        v = target
        while v != self.source:
            e = int(self.parent_edge[v])
            p = int(self.parent_vertex[v])
            edges.append(e)
            vertices.append(p)
            v = p
        vertices.reverse()
        edges.reverse()
        return tuple(vertices), tuple(edges)

    def used_edge_ids(self) -> set[int]:
        """The set of edge ids appearing as parent edges anywhere in the tree.

        This is the invalidation footprint used by the tree caches: as long
        as no weight of an edge in this set changes (and no weight decreases
        at all), a rerun of Dijkstra would reproduce this exact tree.
        """
        used = set(self.parent_edge.tolist())
        used.discard(-1)
        return used


def _validate_weights(graph: CapacitatedGraph, weights: np.ndarray) -> np.ndarray:
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (graph.num_edges,):
        raise ValueError(
            f"weights must have shape ({graph.num_edges},), got {weights.shape}"
        )
    if graph.num_edges and float(weights.min()) < 0.0:
        raise ValueError("Dijkstra requires non-negative weights")
    return weights


def dijkstra_lists(
    n: int,
    indptr: list[int],
    adj_heads: list[int],
    adj_edge_ids: list[int],
    w: list[float],
    source: int,
    targets: set[int] | None = None,
) -> tuple[list[float], list[int], list[int]]:
    """The Dijkstra hot loop over flat Python lists.

    Returns ``(dist, parent_vertex, parent_edge)`` as plain lists
    (unreachable vertices carry ``inf`` / ``-1``).  This is the shared core
    of :func:`single_source_dijkstra` (which wraps it in numpy arrays and
    input validation) and of the pricing engine's tree cache (which keeps
    the raw lists to avoid per-call array construction on small graphs).
    Arithmetic and tie-breaking are bit-identical to
    :func:`reference_dijkstra`.
    """
    inf = float("inf")
    dist = [inf] * n
    parent_vertex = [-1] * n
    parent_edge = [-1] * n
    settled = bytearray(n)

    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    # Copy: the early-exit set is drained as targets settle, and callers may
    # reuse theirs across several sources.
    remaining = set(targets) if targets is not None else None

    heappop = heapq.heappop
    heappush = heapq.heappush
    while heap:
        d, u = heappop(heap)
        if settled[u]:
            continue
        settled[u] = 1
        if remaining is not None:
            remaining.discard(u)
            if not remaining:
                break
        for k in range(indptr[u], indptr[u + 1]):
            v = adj_heads[k]
            if settled[v]:
                continue
            nd = d + w[adj_edge_ids[k]]
            if nd < dist[v]:
                dist[v] = nd
                parent_vertex[v] = u
                parent_edge[v] = adj_edge_ids[k]
                heappush(heap, (nd, v))

    return dist, parent_vertex, parent_edge


def single_source_dijkstra(
    graph: CapacitatedGraph,
    source: int,
    weights: np.ndarray,
    *,
    targets: set[int] | frozenset[int] | None = None,
) -> ShortestPathResult:
    """Dijkstra from ``source`` under non-negative per-edge ``weights``.

    Parameters
    ----------
    graph:
        The capacitated graph (provides CSR adjacency and edge ids).
    source:
        Source vertex.
    weights:
        Array of length ``graph.num_edges`` with the weight of each logical
        edge (undirected edges have one weight used in both directions).
    targets:
        Optional early-exit set: once every vertex in ``targets`` has been
        settled the search stops.  Distances of unsettled vertices are left
        as ``inf`` even if they are reachable, so only use the result for the
        requested targets in that case.

    Notes
    -----
    The output is bit-for-bit identical to :func:`reference_dijkstra` —
    same distances, same parents, same extracted paths — the implementations
    differ only in the data layout of the hot loop.
    """
    n = graph.num_vertices
    source = int(source)
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range")
    weights = _validate_weights(graph, weights)

    indptr, adj_heads, adj_edge_ids = graph.csr_lists()
    remaining = set(int(t) for t in targets) if targets is not None else None
    dist, parent_vertex, parent_edge = dijkstra_lists(
        n, indptr, adj_heads, adj_edge_ids, weights.tolist(), source, remaining
    )

    return ShortestPathResult(
        source=source,
        distances=np.asarray(dist, dtype=np.float64),
        parent_vertex=np.asarray(parent_vertex, dtype=np.int64),
        parent_edge=np.asarray(parent_edge, dtype=np.int64),
    )


def reference_dijkstra(
    graph: CapacitatedGraph,
    source: int,
    weights: np.ndarray,
    *,
    targets: set[int] | frozenset[int] | None = None,
) -> ShortestPathResult:
    """The original numpy-indexing Dijkstra, kept as a differential oracle.

    Semantically (and bit-for-bit) equivalent to
    :func:`single_source_dijkstra`; slower because the relaxation loop boxes
    a numpy scalar per arc.
    """
    n = graph.num_vertices
    source = int(source)
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range")
    weights = _validate_weights(graph, weights)

    dist = np.full(n, np.inf, dtype=np.float64)
    parent_vertex = np.full(n, -1, dtype=np.int64)
    parent_edge = np.full(n, -1, dtype=np.int64)
    settled = np.zeros(n, dtype=bool)

    indptr = graph.indptr
    adj_heads = graph.adjacency_heads
    adj_edge_ids = graph.adjacency_edge_ids

    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    remaining = set(int(t) for t in targets) if targets is not None else None

    while heap:
        d, u = heapq.heappop(heap)
        if settled[u]:
            continue
        settled[u] = True
        if remaining is not None:
            remaining.discard(u)
            if not remaining:
                break
        lo, hi = indptr[u], indptr[u + 1]
        heads = adj_heads[lo:hi]
        eids = adj_edge_ids[lo:hi]
        for k in range(heads.shape[0]):
            v = int(heads[k])
            if settled[v]:
                continue
            e = int(eids[k])
            nd = d + float(weights[e])
            if nd < dist[v]:
                dist[v] = nd
                parent_vertex[v] = u
                parent_edge[v] = e
                heapq.heappush(heap, (nd, v))

    return ShortestPathResult(
        source=source,
        distances=dist,
        parent_vertex=parent_vertex,
        parent_edge=parent_edge,
    )


def shortest_path(
    graph: CapacitatedGraph,
    source: int,
    target: int,
    weights: np.ndarray,
) -> tuple[tuple[int, ...], tuple[int, ...], float]:
    """Return ``(vertex_path, edge_id_path, length)`` for one ``s -> t`` pair.

    Raises :class:`~repro.exceptions.NoPathError` when ``target`` is not
    reachable from ``source``.
    """
    result = single_source_dijkstra(graph, source, weights, targets={int(target)})
    if not result.reachable(int(target)):
        raise NoPathError(f"no path from {source} to {target}")
    vertices, edges = result.path_to(int(target))
    return vertices, edges, result.distance(int(target))


def bellman_ford(
    graph: CapacitatedGraph,
    source: int,
    weights: np.ndarray,
) -> ShortestPathResult:
    """Bellman-Ford single-source shortest paths.

    Slower than Dijkstra but independent of the heap implementation — used in
    tests as a differential oracle.  Negative weights are accepted (the
    algorithms never produce them, but the oracle should not assume that);
    negative cycles raise ``ValueError``.
    """
    n = graph.num_vertices
    m = graph.num_edges
    source = int(source)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (m,):
        raise ValueError(f"weights must have shape ({m},), got {weights.shape}")

    dist = np.full(n, np.inf, dtype=np.float64)
    parent_vertex = np.full(n, -1, dtype=np.int64)
    parent_edge = np.full(n, -1, dtype=np.int64)
    dist[source] = 0.0

    # The arc list — (tail, head, edge_id), both orientations for undirected
    # graphs — is cached on the graph.
    arcs = graph.bellman_ford_arcs()

    for _ in range(n - 1):
        changed = False
        for u, v, eid in arcs:
            if np.isfinite(dist[u]) and dist[u] + weights[eid] < dist[v] - 1e-15:
                dist[v] = dist[u] + weights[eid]
                parent_vertex[v] = u
                parent_edge[v] = eid
                changed = True
        if not changed:
            break
    else:
        # One more pass to detect negative cycles reachable from the source.
        for u, v, eid in arcs:
            if np.isfinite(dist[u]) and dist[u] + weights[eid] < dist[v] - 1e-9:
                raise ValueError("negative cycle detected")

    return ShortestPathResult(
        source=source,
        distances=dist,
        parent_vertex=parent_vertex,
        parent_edge=parent_edge,
    )

"""CSR-backed capacitated graph.

The graph is the substrate of the B-bounded unsplittable flow problem: a
directed or undirected graph ``G = (V, E)`` where every edge ``e`` carries a
positive capacity ``c_e``.  The primal-dual algorithms of the paper maintain a
dual weight ``y_e`` per edge and repeatedly compute shortest paths under those
weights, so the representation is optimized for

* O(1) access to the out-arcs of a vertex (CSR adjacency),
* per-edge state stored in flat numpy arrays indexed by *edge id*, and
* undirected edges exposed as two arcs that share one edge id (and hence one
  capacity, one dual weight and one load counter).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import InvalidInstanceError
from repro.types import Direction

__all__ = ["CapacitatedGraph", "EdgeView"]


@dataclass(frozen=True)
class EdgeView:
    """A read-only view of a single logical edge."""

    edge_id: int
    tail: int
    head: int
    capacity: float

    def endpoints(self) -> tuple[int, int]:
        return (self.tail, self.head)


class CapacitatedGraph:
    """An edge-capacitated graph in compressed sparse row (CSR) form.

    Parameters
    ----------
    num_vertices:
        Number of vertices ``n``; vertices are the integers ``0 .. n-1``.
    edges:
        Iterable of ``(tail, head, capacity)`` triples.  Parallel edges are
        allowed (they get distinct edge ids); self loops are rejected because
        a simple path never uses them and they only complicate feasibility
        accounting.
    directed:
        When ``True`` each triple is a single arc; when ``False`` each triple
        is an undirected edge traversable in both directions, with both
        traversal directions sharing the same capacity.

    Notes
    -----
    The class is immutable after construction: algorithms keep their mutable
    per-edge state (dual weights ``y_e``, routed flow ``f_e``) in external
    numpy arrays of length :attr:`num_edges`, indexed by edge id.  This keeps
    a single graph shareable across algorithm runs and across threads.
    """

    __slots__ = (
        "_n",
        "_m",
        "_directed",
        "_capacities",
        "_tails",
        "_heads",
        "_indptr",
        "_adj_heads",
        "_adj_edge_ids",
        "_edge_lookup",
        "_disabled",
        "_substrate_cache",
    )

    def __init__(
        self,
        num_vertices: int,
        edges: Iterable[tuple[int, int, float]],
        *,
        directed: bool = True,
        disabled_edges: Iterable[int] = (),
    ) -> None:
        n = int(num_vertices)
        if n <= 0:
            raise InvalidInstanceError("graph must have at least one vertex")
        edge_list = list(edges)
        m = len(edge_list)

        tails = np.empty(m, dtype=np.int64)
        heads = np.empty(m, dtype=np.int64)
        capacities = np.empty(m, dtype=np.float64)
        for eid, (u, v, c) in enumerate(edge_list):
            u, v = int(u), int(v)
            if not (0 <= u < n and 0 <= v < n):
                raise InvalidInstanceError(
                    f"edge {eid} endpoints ({u}, {v}) out of range for n={n}"
                )
            if u == v:
                raise InvalidInstanceError(f"edge {eid} is a self loop at vertex {u}")
            c = float(c)
            if not np.isfinite(c) or c <= 0.0:
                raise InvalidInstanceError(
                    f"edge {eid} has non-positive or non-finite capacity {c!r}"
                )
            tails[eid] = u
            heads[eid] = v
            capacities[eid] = c

        self._n = n
        self._m = m
        self._directed = bool(directed)
        self._capacities = capacities
        self._tails = tails
        self._heads = heads

        # Disabled edges model substrate faults: the edge keeps its id and
        # capacity (so every edge-id-indexed array stays aligned across
        # substrate mutations) but contributes no arcs — routing simply never
        # sees it, on any shortest-path backend.
        disabled = frozenset(int(e) for e in disabled_edges)
        for eid in disabled:
            if not 0 <= eid < m:
                raise InvalidInstanceError(
                    f"disabled edge id {eid} out of range for m={m}"
                )
        self._disabled = disabled

        # Build CSR adjacency over *arcs*.  Undirected edges contribute two
        # arcs sharing the same edge id.
        if self._directed:
            arc_tails = tails
            arc_heads = heads
            arc_edge_ids = np.arange(m, dtype=np.int64)
        else:
            arc_tails = np.concatenate([tails, heads])
            arc_heads = np.concatenate([heads, tails])
            arc_edge_ids = np.concatenate(
                [np.arange(m, dtype=np.int64), np.arange(m, dtype=np.int64)]
            )
        if disabled:
            keep = ~np.isin(arc_edge_ids, np.fromiter(sorted(disabled), dtype=np.int64))
            arc_tails = arc_tails[keep]
            arc_heads = arc_heads[keep]
            arc_edge_ids = arc_edge_ids[keep]

        order = np.argsort(arc_tails, kind="stable")
        sorted_tails = arc_tails[order]
        self._adj_heads = arc_heads[order]
        self._adj_edge_ids = arc_edge_ids[order]
        counts = np.bincount(sorted_tails, minlength=n)
        self._indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)

        # Lookup of (u, v) -> list of edge ids, respecting orientation for
        # directed graphs and treating (u, v) == (v, u) for undirected ones.
        # Disabled edges are excluded: has_edge/edge_ids_between answer
        # routability questions.
        lookup: dict[tuple[int, int], list[int]] = {}
        for eid in range(m):
            if eid in disabled:
                continue
            u, v = int(tails[eid]), int(heads[eid])
            keys = [(u, v)] if self._directed else [(u, v), (v, u)]
            for key in keys:
                lookup.setdefault(key, []).append(eid)
        self._edge_lookup = lookup

        # Lazily-populated cache of derived, immutable artifacts (plain-list
        # CSR for the Dijkstra hot loop, the Bellman-Ford arc list, shortest
        # path trees under the initial dual weights 1/c).  The graph itself is
        # immutable, so everything derived purely from its topology and
        # capacities can be computed once and shared across algorithm runs.
        self._substrate_cache = {}

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of logical edges ``m`` (an undirected edge counts once)."""
        return self._m

    @property
    def directed(self) -> bool:
        return self._directed

    @property
    def direction(self) -> Direction:
        return Direction.DIRECTED if self._directed else Direction.UNDIRECTED

    @property
    def capacities(self) -> np.ndarray:
        """Read-only array of edge capacities indexed by edge id."""
        view = self._capacities.view()
        view.flags.writeable = False
        return view

    @property
    def min_capacity(self) -> float:
        """``B = min_e c_e`` — the capacity bound of the instance."""
        if self._m == 0:
            raise InvalidInstanceError("graph has no edges, B is undefined")
        return float(self._capacities.min())

    @property
    def max_capacity(self) -> float:
        if self._m == 0:
            raise InvalidInstanceError("graph has no edges")
        return float(self._capacities.max())

    # ------------------------------------------------------------------ #
    # Adjacency / lookup
    # ------------------------------------------------------------------ #
    @property
    def indptr(self) -> np.ndarray:
        """CSR row pointer over arcs (length ``n + 1``)."""
        return self._indptr

    @property
    def adjacency_heads(self) -> np.ndarray:
        """CSR array of arc head vertices."""
        return self._adj_heads

    @property
    def adjacency_edge_ids(self) -> np.ndarray:
        """CSR array mapping each arc to its logical edge id."""
        return self._adj_edge_ids

    def out_arcs(self, vertex: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(heads, edge_ids)`` of the arcs leaving ``vertex``."""
        lo, hi = self._indptr[vertex], self._indptr[vertex + 1]
        return self._adj_heads[lo:hi], self._adj_edge_ids[lo:hi]

    def out_degree(self, vertex: int) -> int:
        return int(self._indptr[vertex + 1] - self._indptr[vertex])

    @property
    def substrate_cache(self) -> dict:
        """Mutable scratch dictionary for derived, immutable artifacts.

        The graph never changes after construction, so any value derived
        purely from its topology / capacities (shortest-path trees under the
        fixed initial weights ``1/c``, scratch adjacency encodings, ...) may
        be memoized here and shared across algorithm runs.  Callers must only
        store values that are functions of the graph alone plus their key.
        """
        return self._substrate_cache

    def csr_lists(self) -> tuple[list[int], list[int], list[int]]:
        """The CSR adjacency as plain Python lists ``(indptr, heads, eids)``.

        The Dijkstra hot loop indexes adjacency per arc; plain lists avoid
        the numpy scalar boxing (`int()` / `float()` per arc) that dominates
        the pure-numpy representation for graphs of this size.  Built once
        and cached.
        """
        cached = self._substrate_cache.get("csr_lists")
        if cached is None:
            cached = (
                self._indptr.tolist(),
                self._adj_heads.tolist(),
                self._adj_edge_ids.tolist(),
            )
            self._substrate_cache["csr_lists"] = cached
        return cached

    def bellman_ford_arcs(self) -> list[tuple[int, int, int]]:
        """The arc list ``[(tail, head, edge_id), ...]`` used by Bellman-Ford.

        Undirected edges contribute both orientations.  Cached on the graph so
        repeated oracle calls (differential tests sweep many sources) do not
        rebuild it from :meth:`edge_endpoints` every time.
        """
        arcs = self._substrate_cache.get("bellman_ford_arcs")
        if arcs is None:
            tails = self._tails.tolist()
            heads = self._heads.tolist()
            live = [e for e in range(self._m) if e not in self._disabled]
            arcs = [(tails[e], heads[e], e) for e in live]
            if not self._directed:
                arcs.extend((heads[e], tails[e], e) for e in live)
            self._substrate_cache["bellman_ford_arcs"] = arcs
        return arcs

    def edge_endpoints(self, edge_id: int) -> tuple[int, int]:
        """Return the ``(tail, head)`` pair of a logical edge as constructed."""
        return int(self._tails[edge_id]), int(self._heads[edge_id])

    def edge_capacity(self, edge_id: int) -> float:
        return float(self._capacities[edge_id])

    def edge_ids_between(self, u: int, v: int) -> tuple[int, ...]:
        """Return all edge ids connecting ``u`` to ``v`` (orientation-aware
        for directed graphs, symmetric for undirected ones)."""
        return tuple(self._edge_lookup.get((int(u), int(v)), ()))

    def has_edge(self, u: int, v: int) -> bool:
        return bool(self._edge_lookup.get((int(u), int(v))))

    def edges(self) -> Iterator[EdgeView]:
        """Iterate over logical edges as :class:`EdgeView` objects."""
        for eid in range(self._m):
            yield EdgeView(
                edge_id=eid,
                tail=int(self._tails[eid]),
                head=int(self._heads[eid]),
                capacity=float(self._capacities[eid]),
            )

    def edge_list(self) -> list[tuple[int, int, float]]:
        """Return the edge list ``[(tail, head, capacity), ...]``."""
        return [
            (int(self._tails[e]), int(self._heads[e]), float(self._capacities[e]))
            for e in range(self._m)
        ]

    # ------------------------------------------------------------------ #
    # Derived graphs
    # ------------------------------------------------------------------ #
    @property
    def disabled_edges(self) -> frozenset[int]:
        """Edge ids excluded from routing (substrate faults).  Disabled
        edges keep their id and capacity so edge-id-indexed state stays
        aligned, but contribute no arcs to the adjacency."""
        return self._disabled

    def with_capacities(
        self,
        capacities: Sequence[float] | np.ndarray,
        *,
        disabled_edges: Iterable[int] | None = None,
    ) -> "CapacitatedGraph":
        """Return a copy of this graph with the given per-edge capacities.

        ``disabled_edges`` replaces the disabled set of the copy; ``None``
        (the default) inherits this graph's.  The copy starts with a fresh
        :attr:`substrate_cache`, so nothing derived from the old substrate
        (shortest-path trees, CSR scratch encodings) can leak across the
        mutation.
        """
        capacities = np.asarray(capacities, dtype=np.float64)
        if capacities.shape != (self._m,):
            raise InvalidInstanceError(
                f"expected {self._m} capacities, got shape {capacities.shape}"
            )
        edges = [
            (int(self._tails[e]), int(self._heads[e]), float(capacities[e]))
            for e in range(self._m)
        ]
        return CapacitatedGraph(
            self._n,
            edges,
            directed=self._directed,
            disabled_edges=self._disabled if disabled_edges is None else disabled_edges,
        )

    def with_disabled_edges(self, disabled_edges: Iterable[int]) -> "CapacitatedGraph":
        """Return a copy with the disabled-edge set *replaced* by the given
        ids (pass ``()`` to re-enable everything).  Capacities are kept."""
        return self.with_capacities(self._capacities, disabled_edges=disabled_edges)

    def scaled(self, factor: float) -> "CapacitatedGraph":
        """Return a copy with every capacity multiplied by ``factor``."""
        if factor <= 0:
            raise InvalidInstanceError("scale factor must be positive")
        return self.with_capacities(self._capacities * float(factor))

    # ------------------------------------------------------------------ #
    # Dunder / misc
    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "directed" if self._directed else "undirected"
        return (
            f"CapacitatedGraph(n={self._n}, m={self._m}, {kind}, "
            f"B={self.min_capacity if self._m else float('nan'):g})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CapacitatedGraph):
            return NotImplemented
        return (
            self._n == other._n
            and self._directed == other._directed
            and self._disabled == other._disabled
            and np.array_equal(self._tails, other._tails)
            and np.array_equal(self._heads, other._heads)
            and np.allclose(self._capacities, other._capacities)
        )

    def __hash__(self) -> int:
        return hash((self._n, self._m, self._directed))

"""Path utilities: edge-id resolution, lengths, simplicity and validation."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import InvalidInstanceError, NoPathError
from repro.graphs.graph import CapacitatedGraph

__all__ = ["path_edge_ids", "path_length", "is_simple_path", "validate_path"]


def path_edge_ids(
    graph: CapacitatedGraph,
    vertices: Sequence[int],
    *,
    weights: np.ndarray | None = None,
) -> tuple[int, ...]:
    """Resolve a vertex path to a tuple of edge ids.

    When parallel edges exist between consecutive vertices the cheapest one
    under ``weights`` is chosen (or the one with the largest capacity when no
    weights are given), matching what a shortest-path computation would do.

    Raises
    ------
    NoPathError
        If some consecutive pair of vertices is not connected by an edge.
    """
    vertices = [int(v) for v in vertices]
    if len(vertices) < 2:
        return ()
    edge_ids: list[int] = []
    for u, v in zip(vertices[:-1], vertices[1:]):
        candidates = graph.edge_ids_between(u, v)
        if not candidates:
            raise NoPathError(f"no edge between {u} and {v}")
        if weights is not None:
            best = min(candidates, key=lambda e: float(weights[e]))
        else:
            best = max(candidates, key=graph.edge_capacity)
        edge_ids.append(best)
    return tuple(edge_ids)


def path_length(weights: np.ndarray, edge_ids: Sequence[int]) -> float:
    """Return the total weight ``sum_e y_e`` of a path given by edge ids."""
    if len(edge_ids) == 0:
        return 0.0
    return float(np.asarray(weights, dtype=np.float64)[np.asarray(edge_ids, dtype=np.int64)].sum())


def is_simple_path(vertices: Sequence[int]) -> bool:
    """A path is simple when it never repeats a vertex."""
    vertices = list(vertices)
    return len(set(vertices)) == len(vertices)


def validate_path(
    graph: CapacitatedGraph,
    vertices: Sequence[int],
    *,
    source: int | None = None,
    target: int | None = None,
    require_simple: bool = True,
) -> tuple[int, ...]:
    """Validate a vertex path and return its edge ids.

    Checks that consecutive vertices are adjacent, that the path starts and
    ends at the given ``source`` / ``target`` when provided, and (optionally)
    that the path is simple — the LP of Figure 1 only sums over simple paths.
    """
    vertices = [int(v) for v in vertices]
    if not vertices:
        raise InvalidInstanceError("a path must contain at least one vertex")
    for v in vertices:
        if not 0 <= v < graph.num_vertices:
            raise InvalidInstanceError(f"path vertex {v} out of range")
    if source is not None and vertices[0] != int(source):
        raise InvalidInstanceError(
            f"path starts at {vertices[0]}, expected source {source}"
        )
    if target is not None and vertices[-1] != int(target):
        raise InvalidInstanceError(
            f"path ends at {vertices[-1]}, expected target {target}"
        )
    if require_simple and not is_simple_path(vertices):
        raise InvalidInstanceError(f"path {vertices} is not simple")
    return path_edge_ids(graph, vertices)

"""The adversarial lower-bound graph constructions of the paper.

Two families are provided:

* :func:`directed_staircase` — the Figure 2 instance behind Theorem 3.11: a
  directed bipartite-like "staircase" where source vertex ``s_i`` has an arc
  to every intermediate vertex ``v_j`` with ``j >= i``, every intermediate
  vertex has an arc to the common target ``t``, and every edge has capacity
  ``B``.  Requests are ``B`` unit-demand unit-value requests per source.  Any
  *reasonable iterative path minimizing* algorithm satisfies only a
  ``1 - (B/(B+1))^B -> 1 - 1/e`` fraction of the optimum on it, which is the
  source of the ``e/(e-1)`` lower bound.
* :func:`undirected_ring7` — the Figure 3 instance behind Theorem 3.12: a
  7-vertex undirected graph on which reasonable iterative path minimizers
  lose a ``4/3`` factor for *any* capacity ``B``.

Both functions return the graph together with the request quadruples
``(source, target, demand, value)`` as plain tuples; wrap them in a
:class:`repro.flows.UFPInstance` with
:func:`repro.flows.generators.staircase_instance` /
:func:`repro.flows.generators.ring7_instance`.
"""

from __future__ import annotations

from repro.exceptions import InvalidInstanceError
from repro.graphs.graph import CapacitatedGraph

__all__ = [
    "directed_staircase",
    "undirected_ring7",
    "staircase_optimal_value",
    "ring7_optimal_value",
]

RequestQuad = tuple[int, int, float, float]


def directed_staircase(
    num_sources: int,
    capacity: int,
    *,
    subdivide: bool = False,
) -> tuple[CapacitatedGraph, list[RequestQuad], dict[str, int]]:
    """Build the Figure 2 directed staircase instance.

    Parameters
    ----------
    num_sources:
        ``ell`` — the number of source vertices ``s_1 .. s_ell`` and also the
        number of intermediate vertices ``v_1 .. v_ell``.
    capacity:
        ``B`` — the uniform edge capacity; also the number of identical
        ``(s_i, t, 1, 1)`` requests per source.
    subdivide:
        When ``True``, every ``s_i -> v_j`` arc is replaced by a directed
        path with ``i*ell + 1 - j`` edges (1-indexed, as in the proof of
        Theorem 3.11).  This is the paper's tie-elimination device: any
        reasonable algorithm prefers paths with fewer edges, so the
        adversarial schedule is forced without relying on a tie-breaking
        assumption.  The graph grows to ``O(ell^3)`` edges.

    Returns
    -------
    (graph, requests, layout):
        ``graph`` is the directed capacitated graph; ``requests`` is the list
        of ``B * ell`` request quadruples; ``layout`` maps the roles
        (``"source_0"``, ``"intermediate_0"``, ..., ``"target"``) to vertex
        ids so tests and experiments can reason about the structure.

    Notes
    -----
    Vertex numbering: sources are ``0 .. ell-1`` (``s_1 .. s_ell``),
    intermediates are ``ell .. 2*ell-1`` (``v_1 .. v_ell``), the target ``t``
    is ``2*ell``; subdivision vertices (if any) come after.  Arcs are
    ``s_i -> v_j`` for every ``j >= i`` and ``v_j -> t`` for every ``j``, all
    with capacity ``B``.  Without subdivision the number of edges is
    ``ell + ell*(ell+1)/2``.
    """
    ell = int(num_sources)
    B = int(capacity)
    if ell < 1:
        raise InvalidInstanceError("num_sources must be at least 1")
    if B < 1:
        raise InvalidInstanceError("capacity B must be at least 1")

    target = 2 * ell
    edges: list[tuple[int, int, float]] = []
    next_vertex = 2 * ell + 1
    # s_i -> v_j arcs for j >= i (0-indexed; the paper's condition j >= i is
    # index-shift invariant).
    for i in range(ell):
        for j in range(i, ell):
            if not subdivide:
                edges.append((i, ell + j, float(B)))
                continue
            # Replace the arc by a path with (i+1)*ell + 1 - (j+1) edges
            # (the paper's i*ell + 1 - j with 1-based indices).
            length = (i + 1) * ell - j
            previous = i
            for hop in range(length - 1):
                edges.append((previous, next_vertex, float(B)))
                previous = next_vertex
                next_vertex += 1
            edges.append((previous, ell + j, float(B)))
    # v_j -> t arcs.
    for j in range(ell):
        edges.append((ell + j, target, float(B)))

    graph = CapacitatedGraph(next_vertex if subdivide else 2 * ell + 1, edges, directed=True)

    requests: list[RequestQuad] = []
    for i in range(ell):
        for _ in range(B):
            requests.append((i, target, 1.0, 1.0))

    layout = {f"source_{i}": i for i in range(ell)}
    layout.update({f"intermediate_{j}": ell + j for j in range(ell)})
    layout["target"] = target
    return graph, requests, layout


def staircase_optimal_value(num_sources: int, capacity: int) -> float:
    """The optimum of the staircase instance is ``B * ell``: route the
    ``B`` requests of source ``s_i`` through ``(s_i, v_i, t)``."""
    return float(int(num_sources) * int(capacity))


def staircase_reasonable_upper_bound(num_sources: int, capacity: int) -> float:
    """Upper bound on what a reasonable iterative path minimizer can achieve
    on the staircase (Theorem 3.11 analysis, including the integrality slack).

    The bound is ``B * ell * (1 - (B/(B+1))^B) + B^2``: the leading term is
    the fraction of sources whose requests are ever satisfiable, and the
    additive ``B^2`` absorbs rounding of the phase lengths.
    """
    ell = int(num_sources)
    B = int(capacity)
    frac = 1.0 - (B / (B + 1.0)) ** B
    return B * ell * frac + B * B


def undirected_ring7(
    capacity: int,
) -> tuple[CapacitatedGraph, list[RequestQuad], dict[str, int]]:
    """Build the Figure 3 undirected 7-vertex instance (Theorem 3.12).

    The graph has vertices ``v_1 .. v_7`` (ids ``0 .. 6``) and the edges

    ``(v1, v2), (v2, v3)`` — the left "detour" path,
    ``(v4, v5), (v5, v6)`` — the right "detour" path,
    ``(v1, v7), (v3, v7), (v4, v7), (v6, v7)`` — the central hub edges,

    all with capacity ``B`` (``B`` must be even so the ``B/2`` phases of the
    adversarial schedule are integral).  The requests are ``B`` copies each of
    ``(v1, v3)``, ``(v4, v6)``, ``(v1, v6)`` and ``(v3, v4)``, every one with
    unit demand and unit value.

    The optimum routes the first two groups around the detours and the last
    two groups through the hub, for total value ``4B``; any reasonable
    iterative path minimizer achieves at most ``3B``.
    """
    B = int(capacity)
    if B < 2 or B % 2 != 0:
        raise InvalidInstanceError("capacity B must be an even integer >= 2")

    # Vertex ids: v1..v7 -> 0..6.
    v1, v2, v3, v4, v5, v6, v7 = range(7)
    edges = [
        (v1, v2, float(B)),
        (v2, v3, float(B)),
        (v4, v5, float(B)),
        (v5, v6, float(B)),
        (v1, v7, float(B)),
        (v3, v7, float(B)),
        (v4, v7, float(B)),
        (v6, v7, float(B)),
    ]
    graph = CapacitatedGraph(7, edges, directed=False)

    requests: list[RequestQuad] = []
    for s, t in [(v1, v3), (v4, v6), (v1, v6), (v3, v4)]:
        for _ in range(B):
            requests.append((s, t, 1.0, 1.0))

    layout = {f"v{i + 1}": i for i in range(7)}
    return graph, requests, layout


def ring7_optimal_value(capacity: int) -> float:
    """The optimum of the Figure 3 instance is ``4B``."""
    return 4.0 * int(capacity)


def ring7_reasonable_upper_bound(capacity: int) -> float:
    """A reasonable iterative path minimizer achieves at most ``3B`` on the
    Figure 3 instance (Theorem 3.12)."""
    return 3.0 * int(capacity)

"""Scenario campaigns: declarative sweeps with a resumable result store.

The experiments of :mod:`repro.experiments` each reproduce one claim of
the paper on hand-picked workloads.  This package is the broad-coverage
layer on top of the same machinery: a *suite* is a plain-dict cross
product of

* **topology families** — fat-tree/Clos datacenters, Waxman WANs,
  Barabási–Albert scale-free graphs, multi-region ISP composites, plus the
  stock grid/ring/random/ISP topologies (:mod:`repro.scenarios.topologies`);
* **demand regimes** — capacity ladders sweeping ``B`` against ``ln m``,
  tiny-capacity adversarial settings, heterogeneous bid mixes
  (:mod:`repro.scenarios.regimes`);
* **workload modes** — offline ``Bounded-UFP`` (optionally with
  critical-value payments), the repetitions variant, and online streaming
  auctions (:mod:`repro.scenarios.runner`).

Campaign cells fan out through :func:`repro.experiments.harness.map_cells`
(and hence :func:`repro.parallel.pmap` — bit-identical at any ``jobs``)
and every completed cell is committed to a persistent JSONL
:class:`~repro.scenarios.store.ResultStore` with a content-hashed
manifest, so ``repro.scenarios run/resume`` skips already-computed cells
after a crash or interrupt and the store's content hash certifies that a
resumed campaign equals an uninterrupted one.

Quickstart
----------
>>> from repro import scenarios
>>> result = scenarios.run_campaign(scenarios.get_suite("smoke"))
>>> result.all_cells_ok
True

Command line::

    python -m repro.scenarios list
    python -m repro.scenarios run demo --store runs/demo --jobs 4
    python -m repro.scenarios resume --store runs/demo
    python -m repro.scenarios report --store runs/demo
"""

from repro.scenarios.report import campaign_table, render_report
from repro.scenarios.runner import CampaignResult, run_campaign, run_cell
from repro.scenarios.specs import (
    CellSpec,
    cell_hash,
    enumerate_cells,
    normalize_suite,
    suite_hash,
)
from repro.scenarios.store import ResultStore
from repro.scenarios.suites import BUILTIN_SUITES, available_suites, get_suite
from repro.scenarios.topologies import available_families, build_topology

__all__ = [
    "CampaignResult",
    "CellSpec",
    "ResultStore",
    "BUILTIN_SUITES",
    "available_suites",
    "available_families",
    "build_topology",
    "campaign_table",
    "cell_hash",
    "enumerate_cells",
    "get_suite",
    "normalize_suite",
    "render_report",
    "run_campaign",
    "run_cell",
    "suite_hash",
]

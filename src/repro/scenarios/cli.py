"""Command-line interface: ``python -m repro.scenarios``.

Subcommands
-----------
``list``
    Print the built-in suites and the available topology families.
``run <suite>``
    Run a campaign: ``<suite>`` is a built-in name (``smoke``, ``demo``,
    ``capacity-ladder``) or a path to a suite-spec JSON file.  With
    ``--store DIR`` every completed cell is committed to a resumable result
    store and cells already in the store are skipped.
``resume``
    Continue the campaign a store was initialized with (the suite spec is
    read back from the store itself).
``report``
    Render the comparison table of a store without running anything.

``--jobs`` fans cells over worker processes (results bit-identical at any
value); an explicit ``--jobs``/``--backend``/``--kernel`` always beats the
inherited ``REPRO_JOBS``/``REPRO_SP_BACKEND``/``REPRO_KERNEL`` environment
variables.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.io import dumps_strict, loads_strict
from repro.scenarios.report import render_report
from repro.scenarios.runner import run_campaign
from repro.scenarios.store import ResultStore
from repro.scenarios.suites import available_suites, get_suite
from repro.scenarios.topologies import available_families

__all__ = ["main", "build_parser"]


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        default=None,
        help="result-store directory (created if missing); completed cells "
        "are committed there and skipped on re-runs",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the cell fan-out (default: REPRO_JOBS env "
        "or serial; 0 = all cores; results are bit-identical at any --jobs)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        help="shortest-path backend (e.g. 'lists', 'scipy'); an explicit "
        "choice beats an inherited REPRO_SP_BACKEND env var",
    )
    parser.add_argument(
        "--kernel",
        default=None,
        help="compute kernel ('lists', 'numpy', 'numba'); an explicit choice "
        "beats an inherited REPRO_KERNEL env var; all kernels are "
        "bit-identical",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit JSON instead of the text report"
    )


def _add_robustness(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        help="retry a failing/crashing cell this many extra times before "
        "quarantining it (default: 0)",
    )
    parser.add_argument(
        "--retry-backoff",
        type=float,
        default=0.0,
        help="seconds to sleep before the first retry (doubled each further "
        "attempt; default: 0)",
    )
    parser.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        help="wall-clock budget per cell in seconds; a cell exceeding it "
        "fails (and is retried/quarantined like any other failure)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-scenarios",
        description="Scenario campaigns: topology families x demand regimes x "
        "workload modes, with a resumable result store.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list built-in suites and topology families")

    run_parser = sub.add_parser("run", help="run a campaign (skips stored cells)")
    run_parser.add_argument(
        "suite", help="built-in suite name or path to a suite-spec JSON file"
    )
    run_parser.add_argument("--seed", type=int, default=None, help="override suite seed")
    run_parser.add_argument(
        "--fresh",
        action="store_true",
        help="wipe the store first instead of resuming into it",
    )
    _add_common(run_parser)
    _add_robustness(run_parser)

    resume_parser = sub.add_parser(
        "resume", help="continue the campaign a store was initialized with"
    )
    _add_common(resume_parser)
    _add_robustness(resume_parser)

    report_parser = sub.add_parser("report", help="render a store's comparison table")
    _add_common(report_parser)

    return parser


def _load_suite(source: str) -> dict:
    path = Path(source)
    if path.suffix == ".json" or path.exists():
        if not path.exists():
            raise SystemExit(f"suite spec file not found: {source}")
        return loads_strict(path.read_text())
    try:
        return get_suite(source)
    except KeyError as exc:
        raise SystemExit(str(exc))


def _emit(result, store: ResultStore | None, as_json: bool) -> int:
    # Hash only the current suite's cells: records of cells renamed or
    # removed by a suite edit stay in the store but not in the report.
    content_hash = (
        store.content_hash(result.records) if store is not None else None
    )
    if as_json:
        payload = {
            "suite": result.suite["name"],
            "records": result.records,
            "computed": result.computed,
            "skipped": result.skipped,
            "invalidated": result.invalidated,
            "failed": result.failed,
            "content_hash": content_hash,
        }
        print(dumps_strict(payload, indent=2))
    else:
        from repro.kernels import get_kernel

        title = f"Scenario campaign: {result.suite['name']}"
        print(
            render_report(
                result.records,
                title=title,
                content_hash=content_hash,
                kernel=get_kernel().name,
            )
        )
        print(f"  {result.summary_line()}")
    # Nonzero when any structural claim failed OR any cell was quarantined
    # (crashed/timed out through every retry) — a campaign that "completed"
    # by quarantining cells must not look green to CI.
    return 0 if result.all_cells_ok and not result.failed else 1


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; non-zero when any cell's structural claims failed."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        print("built-in suites:")
        for name in available_suites():
            print(f"  {name}: {get_suite(name).get('description', '')}")
        print("topology families: " + ", ".join(available_families()))
        return 0

    if args.backend:
        # Explicit argument beats any inherited REPRO_SP_BACKEND value
        # (including inside --jobs worker processes, which inherit the
        # parent's resolved backend).
        from repro.graphs.shortest_path import set_backend_from_cli

        set_backend_from_cli(args.backend, parser)

    if getattr(args, "kernel", None):
        # Same precedence contract as --backend, for the compute kernel.
        from repro.kernels import set_kernel_from_cli

        set_kernel_from_cli(args.kernel, parser)

    store = ResultStore(args.store) if args.store else None

    if args.command == "report":
        if store is None:
            parser.error("report needs --store")
        suite = store.load_suite()
        from repro.scenarios.specs import enumerate_cells

        keys = [cell.key for cell in enumerate_cells(suite)]
        records = store.records(keys)
        content_hash = store.content_hash(keys)
        if args.json:
            print(
                dumps_strict(
                    {
                        "suite": suite["name"],
                        "records": records,
                        "content_hash": content_hash,
                    },
                    indent=2,
                )
            )
        else:
            print(
                render_report(
                    records,
                    title=f"Scenario campaign: {suite['name']}",
                    content_hash=content_hash,
                )
            )
        return 0

    if args.command == "resume":
        if store is None:
            parser.error("resume needs --store")
        suite = store.load_suite()
        result = run_campaign(
            suite,
            store=store,
            jobs=args.jobs,
            progress=None if args.json else (lambda msg: print(f"  {msg}")),
            retries=args.retries,
            retry_backoff=args.retry_backoff,
            cell_timeout=args.cell_timeout,
        )
        return _emit(result, store, args.json)

    # run
    suite = _load_suite(args.suite)
    if args.seed is not None:
        suite = dict(suite)
        suite["seed"] = args.seed
    result = run_campaign(
        suite,
        store=store,
        jobs=args.jobs,
        fresh=bool(getattr(args, "fresh", False)),
        progress=None if args.json else (lambda msg: print(f"  {msg}")),
        retries=args.retries,
        retry_backoff=args.retry_backoff,
        cell_timeout=args.cell_timeout,
    )
    return _emit(result, store, args.json)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())

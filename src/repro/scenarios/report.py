"""Cross-scenario comparison tables for campaign results.

Renders the flat cell records of a campaign (live
:class:`~repro.scenarios.runner.CampaignResult` or a persisted
:class:`~repro.scenarios.store.ResultStore`) as one comparison table plus
per-axis aggregate lines, so regimes and topology families can be compared
at a glance: approximation ratio against the fractional LP bound,
admission rate, revenue and trace-replay work where the mode computed
them.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Mapping

from repro.utils.tables import Table

__all__ = ["DEFAULT_COLUMNS", "campaign_table", "render_report"]

DEFAULT_COLUMNS = (
    "topology",
    "regime",
    "mode",
    "n",
    "m",
    "B",
    "B_over_log_m",
    "epsilon",
    "requests",
    "admitted",
    "admission_rate",
    "value",
    "bound",
    "ratio",
    "value_ratio",
    "revenue",
    # Compute-kernel dispatch count (tier-invariant; see repro.kernels) —
    # attributes bench regressions to kernel-shaped work without putting the
    # tier *name* into the hashed records.
    "kernel_calls",
    # Partitioned-solving columns (present only on offline cells whose mode
    # set a "partition" entry; see repro.partition).
    "partition_regions",
    "partition_cut_edges",
    "partition_cross",
    "partition_value",
    "partition_gap",
    "partition_exact",
    # Fault-injection columns (present only on cells that ran with a
    # non-zero-intensity fault schedule; see repro.faults).
    "fault_events",
    "fault_revocations",
    "fault_jam_arrived",
    "fault_jam_admitted",
    "fault_upfront_fees",
    "fault_net_revenue",
    "fault_honest_share",
    # Quarantine columns (present only on cells that failed through every
    # retry; see the campaign runner's crash tolerance).
    "failed",
    "error_type",
    "attempts",
    "claims_ok",
)


def _present_columns(records: Iterable[Mapping[str, Any]]) -> list[str]:
    present = {key for record in records for key in record}
    return [column for column in DEFAULT_COLUMNS if column in present]


def campaign_table(
    records: Mapping[str, Mapping[str, Any]], *, title: str = "Scenario campaign"
) -> Table:
    """The cell records as a renderable text table (canonical cell order,
    only the standard columns that at least one record carries)."""
    rows = list(records.values())
    table = Table(columns=_present_columns(rows), title=title)
    for row in rows:
        table.add_row({k: row.get(k) for k in table.columns})
    return table


def _finite(values: Iterable[float]) -> list[float]:
    return [v for v in values if isinstance(v, (int, float)) and math.isfinite(v)]


def _aggregate_lines(records: Mapping[str, Mapping[str, Any]]) -> list[str]:
    lines: list[str] = []
    by_axis: dict[str, dict[str, list[float]]] = {}
    for record in records.values():
        for axis in ("regime", "family"):
            label = record.get(axis)
            if label is None:
                continue
            bucket = by_axis.setdefault(axis, {}).setdefault(str(label), [])
            ratio_value = record.get("ratio")
            if ratio_value is not None:
                bucket.append(float(ratio_value))
    for axis, buckets in by_axis.items():
        parts = []
        for label in sorted(buckets):
            finite = _finite(buckets[label])
            if not finite:
                continue
            geomean = math.exp(sum(math.log(v) for v in finite) / len(finite))
            parts.append(f"{label}: {geomean:.3f}")
        if parts:
            lines.append(f"  geomean ratio by {axis}: " + ", ".join(parts))
    failed = [key for key, record in records.items() if not record.get("claims_ok", True)]
    if failed:
        lines.append(f"  FAILED claims in cells: {', '.join(failed)}")
    return lines


def render_report(
    records: Mapping[str, Mapping[str, Any]],
    *,
    title: str = "Scenario campaign",
    content_hash: str | None = None,
    kernel: str | None = None,
) -> str:
    """The full text report: table, aggregates, optional store hash.

    ``kernel`` names the compute-kernel tier the campaign ran under; it is
    rendered as a header line only (never stored in the records), so the
    store hash stays bit-identical across tiers while the report remains
    attributable.
    """
    lines = [campaign_table(records, title=title).render()]
    lines.extend(_aggregate_lines(records))
    if kernel is not None:
        lines.append(f"  compute kernel: {kernel}")
    if content_hash is not None:
        lines.append(f"  store hash: {content_hash}")
    return "\n".join(lines)

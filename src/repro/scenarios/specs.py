"""Scenario suite specs: plain dicts → validated, hashable campaign cells.

A *suite* is a plain-dict description of a scenario campaign — the cross
product of **topology families** × **demand regimes** × **workload modes**::

    suite = {
        "name": "demo",
        "seed": 7,
        "topologies": [{"name": "clos", "family": "fat_tree", "k": 4}, ...],
        "regimes":    [{"name": "B4logm",
                        "capacity": {"scale_log_m": 4.0, "min": 2.0},
                        "num_requests": 30}, ...],
        "modes":      [{"name": "offline", "kind": "offline", "epsilon": 0.3},
                       {"name": "stream", "kind": "online",
                        "arrivals": "poisson"}, ...],
    }

Every combination becomes one :class:`CellSpec`.  Two properties make the
campaign layer resumable and deterministic:

* **Stable per-cell seeds** — seeds are derived by hashing labels, *not*
  by position in an rng stream, so adding/removing/reordering cells never
  changes any other cell's workload.  The topology-structure seed hashes
  only the topology name and the workload seed only (topology, regime):
  a capacity ladder therefore sweeps ``B`` over the *same* graph
  structure, and the offline and online modes of one (topology, regime)
  pair clear the *same* request population — cross-mode columns compare
  like with like.
* **Content hashes** — :func:`cell_hash` digests the cell's entire spec
  (topology + regime + mode params + seed + schema version).  The result
  store keys completed work on this hash, so editing a cell's parameters
  automatically invalidates exactly the affected cells on resume.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.exceptions import InvalidInstanceError
from repro.io import dumps_canonical
from repro.utils.prng import DEFAULT_SEED

__all__ = [
    "SPEC_SCHEMA_VERSION",
    "CellSpec",
    "normalize_suite",
    "enumerate_cells",
    "cell_hash",
    "suite_hash",
]

#: Bumped whenever cell semantics change incompatibly; part of every cell
#: hash, so stores produced by older semantics are recomputed, not reused.
SPEC_SCHEMA_VERSION = 1

_KNOWN_MODE_KINDS = ("offline", "online", "repeated")


@dataclass(frozen=True)
class CellSpec:
    """One fully-resolved campaign cell (picklable, JSON-safe fields only).

    ``topology_seed`` drives the graph-structure draws (stable per topology
    name), ``workload_seed`` the request/arrival draws (stable per
    topology × regime pair).
    """

    suite: str
    key: str
    topology: Mapping[str, Any]
    regime: Mapping[str, Any]
    mode: Mapping[str, Any]
    topology_seed: int
    workload_seed: int

    def as_dict(self) -> dict[str, Any]:
        return {
            "suite": self.suite,
            "key": self.key,
            "topology": dict(self.topology),
            "regime": dict(self.regime),
            "mode": dict(self.mode),
            "topology_seed": self.topology_seed,
            "workload_seed": self.workload_seed,
        }


def _named_entries(entries: Sequence[Mapping[str, Any]], section: str) -> list[dict]:
    """Validate one suite section: a non-empty list of dicts with unique
    names (defaulting the name from the family/kind plus position)."""
    if not isinstance(entries, (list, tuple)) or not entries:
        raise InvalidInstanceError(f"suite section {section!r} must be a non-empty list")
    named: list[dict] = []
    seen: set[str] = set()
    for position, entry in enumerate(entries):
        if not isinstance(entry, Mapping):
            raise InvalidInstanceError(f"{section}[{position}] must be a dict")
        entry = dict(entry)
        default = entry.get("family") or entry.get("kind") or f"{section}{position}"
        name = str(entry.get("name", default))
        if "/" in name:
            raise InvalidInstanceError(
                f"{section} name {name!r} must not contain '/' (reserved for cell keys)"
            )
        if name in seen:
            raise InvalidInstanceError(f"duplicate {section} name {name!r}")
        seen.add(name)
        entry["name"] = name
        named.append(entry)
    return named


def normalize_suite(spec: Mapping[str, Any]) -> dict[str, Any]:
    """Validate a plain-dict suite spec and fill defaults.

    Returns a new dict with every topology/regime/mode named, the seed
    resolved, and unknown top-level keys rejected (they are almost always
    typos that would otherwise silently change nothing).
    """
    if not isinstance(spec, Mapping):
        raise InvalidInstanceError("a suite spec must be a dict")
    allowed = {"name", "seed", "topologies", "regimes", "modes", "description"}
    unknown = set(spec) - allowed
    if unknown:
        raise InvalidInstanceError(
            f"unknown suite keys {sorted(unknown)}; allowed: {sorted(allowed)}"
        )
    for section in ("topologies", "regimes", "modes"):
        if section not in spec:
            raise InvalidInstanceError(f"suite spec is missing the {section!r} section")

    suite = {
        "name": str(spec.get("name", "suite")),
        "seed": int(spec["seed"]) if spec.get("seed") is not None else DEFAULT_SEED,
        "description": str(spec.get("description", "")),
        "topologies": _named_entries(spec["topologies"], "topologies"),
        "regimes": _named_entries(spec["regimes"], "regimes"),
        "modes": _named_entries(spec["modes"], "modes"),
    }
    for mode in suite["modes"]:
        kind = mode.get("kind", "offline")
        if kind not in _KNOWN_MODE_KINDS:
            raise InvalidInstanceError(
                f"unknown mode kind {kind!r}; known: {_KNOWN_MODE_KINDS}"
            )
        mode["kind"] = kind
    return suite


def _derive_seed(suite_seed: int, label: str) -> int:
    """A stable 63-bit seed from the suite seed and a scope label."""
    digest = hashlib.sha256(f"{suite_seed}:{label}".encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def enumerate_cells(suite: Mapping[str, Any]) -> list[CellSpec]:
    """The campaign's cells in canonical (topology, regime, mode) order."""
    suite = normalize_suite(suite)
    cells: list[CellSpec] = []
    for topology in suite["topologies"]:
        topology_seed = _derive_seed(suite["seed"], f"topology:{topology['name']}")
        for regime in suite["regimes"]:
            workload_seed = _derive_seed(
                suite["seed"], f"workload:{topology['name']}/{regime['name']}"
            )
            for mode in suite["modes"]:
                key = f"{topology['name']}/{regime['name']}/{mode['name']}"
                cells.append(
                    CellSpec(
                        suite=suite["name"],
                        key=key,
                        topology=topology,
                        regime=regime,
                        mode=mode,
                        topology_seed=topology_seed,
                        workload_seed=workload_seed,
                    )
                )
    return cells


def cell_hash(cell: CellSpec) -> str:
    """Content hash identifying the cell's computation (spec + seed +
    schema); the result store's resume test compares against this."""
    payload = cell.as_dict()
    payload["schema"] = SPEC_SCHEMA_VERSION
    return hashlib.sha256(dumps_canonical(payload).encode()).hexdigest()


def suite_hash(suite: Mapping[str, Any]) -> str:
    """Content hash of the whole normalized suite spec."""
    payload = {"schema": SPEC_SCHEMA_VERSION, "suite": normalize_suite(suite)}
    return hashlib.sha256(dumps_canonical(payload).encode()).hexdigest()

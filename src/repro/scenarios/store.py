"""The persistent, resumable campaign result store.

Layout of a store directory::

    store/
      suite.json       # the normalized suite spec + its content hash
      results.jsonl    # one line per completed cell: {key, cell, record}
      manifest.jsonl   # one line per *committed* cell: {key, cell, record_sha}

Durability protocol: a cell's record line is appended (and flushed) to
``results.jsonl`` *before* its manifest line is appended, so the manifest
is the source of truth — a crash between the two writes leaves an orphan
record line that is simply ignored (its key has no matching manifest
entry) and recomputed on resume.  Later manifest entries win, so a
recomputed cell shadows any stale line without rewriting the file.

Everything is serialized through :mod:`repro.io`'s strict encoder —
non-finite metrics (``ratio = inf`` on cells where nothing was admitted)
round-trip as sentinel strings instead of the non-standard
``Infinity``/``NaN`` JSON tokens.

:meth:`ResultStore.content_hash` digests the committed ``(key, cell-hash,
record)`` triples *sorted by key*, so the hash is independent of
completion order: an interrupted-and-resumed campaign hashes identically
to an uninterrupted one, at any ``--jobs`` (records themselves contain no
timing).
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.exceptions import InvalidInstanceError
from repro.io import dumps_canonical, loads_strict
from repro.scenarios.specs import normalize_suite, suite_hash
from repro.utils.jsonl import append_line, iter_jsonl, repair_trailing, write_durable

__all__ = ["ResultStore"]

# The durable-JSONL protocol (torn-tail repair, fsync'd appends, directory
# fsync on file creation) lives in repro.utils.jsonl and is shared with the
# service write-ahead log; the old private names stay importable.
_repair_trailing = repair_trailing
_append_line = append_line
_iter_jsonl = iter_jsonl


class ResultStore:
    """A directory-backed, append-only campaign result store."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.suite_path = self.root / "suite.json"
        self.results_path = self.root / "results.jsonl"
        self.manifest_path = self.root / "manifest.jsonl"

    # ------------------------------------------------------------------ #
    # Suite binding
    # ------------------------------------------------------------------ #
    def exists(self) -> bool:
        return self.suite_path.exists()

    def initialize(self, suite: Mapping[str, Any], *, fresh: bool = False) -> dict:
        """Bind the store to a suite (creating the directory).

        Re-initializing with the same suite is a no-op (that is what resume
        does).  An *edited* suite under the same name is accepted — the
        suite spec on disk is updated and the per-cell content hashes decide
        which stored cells are still valid, so "add a regime and re-run" is
        an incremental operation.  A suite with a *different name* raises
        unless ``fresh`` wipes the store first: silently mixing two
        campaigns in one store would corrupt both.
        """
        suite = normalize_suite(suite)
        digest = suite_hash(suite)
        if fresh:
            for path in (self.suite_path, self.results_path, self.manifest_path):
                if path.exists():
                    path.unlink()
        if self.suite_path.exists():
            existing = loads_strict(self.suite_path.read_text())
            if existing.get("name") != suite["name"]:
                raise InvalidInstanceError(
                    f"store at {self.root} holds a different suite "
                    f"({existing.get('name')!r}); use a new store directory "
                    "or pass fresh=True to wipe it"
                )
            if existing.get("suite_hash") == digest:
                return suite
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {"name": suite["name"], "suite_hash": digest, "suite": suite}
        write_durable(self.suite_path, dumps_canonical(payload) + "\n")
        return suite

    def load_suite(self) -> dict:
        """The suite spec this store was initialized with."""
        if not self.suite_path.exists():
            raise InvalidInstanceError(f"no campaign store at {self.root}")
        return loads_strict(self.suite_path.read_text())["suite"]

    # ------------------------------------------------------------------ #
    # Cells
    # ------------------------------------------------------------------ #
    def completed(self) -> dict[str, str]:
        """Map of committed cell key → cell hash (later entries win)."""
        return {
            entry["key"]: entry["cell"]
            for entry in _iter_jsonl(self.manifest_path)
            if "key" in entry and "cell" in entry
        }

    def append(self, key: str, cell_digest: str, record: Mapping[str, Any]) -> None:
        """Durably commit one completed cell (record first, then manifest)."""
        record_line = dumps_canonical(
            {"key": key, "cell": cell_digest, "record": dict(record)}
        )
        record_sha = hashlib.sha256(record_line.encode()).hexdigest()
        _append_line(self.results_path, record_line)
        _append_line(
            self.manifest_path,
            dumps_canonical({"key": key, "cell": cell_digest, "record_sha": record_sha}),
        )

    def records(self, keys: Iterable[str] | None = None) -> dict[str, dict]:
        """Committed records by key (manifest-confirmed lines only; for a
        recomputed cell the line matching the winning manifest entry wins).

        ``keys`` optionally restricts the view to the given cell keys —
        the campaign runner passes the current suite's keys, so cells
        renamed or removed by a suite edit do not linger in reports.
        """
        wanted = None if keys is None else set(keys)
        manifest = {
            entry["key"]: entry
            for entry in _iter_jsonl(self.manifest_path)
            if "key" in entry
        }
        records: dict[str, dict] = {}
        for entry in _iter_jsonl(self.results_path):
            key = entry.get("key")
            if wanted is not None and key not in wanted:
                continue
            committed = manifest.get(key)
            if committed is None or committed.get("cell") != entry.get("cell"):
                continue
            line_sha = hashlib.sha256(dumps_canonical(entry).encode()).hexdigest()
            if committed.get("record_sha") not in (None, line_sha):
                continue
            records[key] = entry["record"]
        return records

    def content_hash(self, keys: Iterable[str] | None = None) -> str:
        """Order-independent digest of the committed campaign results
        (optionally restricted to ``keys``, see :meth:`records`)."""
        manifest = self.completed()
        records = self.records(keys)
        digest = hashlib.sha256()
        for key in sorted(records):
            digest.update(
                dumps_canonical(
                    {"key": key, "cell": manifest[key], "record": records[key]}
                ).encode()
            )
            digest.update(b"\n")
        return digest.hexdigest()

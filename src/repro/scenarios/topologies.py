"""Topology families for scenario campaigns.

Maps a topology spec dict plus a resolved base capacity ``B`` onto a
:class:`~repro.graphs.graph.CapacitatedGraph` built by the generators in
:mod:`repro.graphs.generators`.  Each family returns a :class:`Topology`
bundling the graph with its natural request-terminal pool (hosts for the
fat-tree, access leaves for the ISP-style families, every vertex
otherwise), so demand regimes place traffic where the family's real-world
counterpart would see it.

Capacity handling: the regime hands this module one base capacity ``B``
(the instance's intended capacity bound ``min_e c_e``).  Hierarchical
families scale their upper tiers from it (e.g. a fat-tree's aggregation
and core links get ``aggregation_scale * B`` and ``core_scale * B``), and
a spec-level ``"capacity_jitter": [lo, hi]`` multiplies ``B`` into the
uniform range ``(lo*B, hi*B)`` per tier, exercising the generators'
capacity-range draw paths.  Scales are >= 1, so ``B`` stays the minimum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.exceptions import InvalidInstanceError
from repro.graphs import generators as g
from repro.graphs.graph import CapacitatedGraph

__all__ = ["Topology", "available_families", "build_topology"]


@dataclass
class Topology:
    """A built substrate plus the vertex pool requests should terminate in
    (``None`` means "all vertices")."""

    graph: CapacitatedGraph
    terminals: Sequence[int] | None = None


def _capacity(spec: Mapping[str, Any], base: float, scale: float = 1.0):
    """Resolve one tier's capacity: ``scale * B``, optionally jittered into
    a uniform range by the spec's ``capacity_jitter`` pair."""
    jitter = spec.get("capacity_jitter")
    if jitter is None:
        return float(base) * float(scale)
    lo, hi = float(jitter[0]), float(jitter[1])
    if not 1.0 <= lo <= hi:
        raise InvalidInstanceError(
            f"capacity_jitter must satisfy 1 <= lo <= hi, got {jitter!r}"
        )
    return (base * scale * lo, base * scale * hi)


def _build_grid(spec, base, rng):
    rows, cols = int(spec.get("rows", 4)), int(spec.get("cols", 4))
    return Topology(
        g.grid_graph(
            rows, cols, _capacity(spec, base),
            directed=bool(spec.get("directed", False)), seed=rng,
        )
    )


def _build_ring(spec, base, rng):
    return Topology(
        g.ring_graph(
            int(spec.get("num_vertices", 12)), _capacity(spec, base),
            directed=bool(spec.get("directed", False)), seed=rng,
        )
    )


def _build_random(spec, base, rng):
    n = int(spec.get("num_vertices", 16))
    p = float(spec.get("edge_probability", 0.25))
    if bool(spec.get("directed", True)):
        graph = g.random_digraph(n, p, _capacity(spec, base), seed=rng)
    else:
        graph = g.random_graph(n, p, _capacity(spec, base), seed=rng)
    return Topology(graph)


def _build_isp(spec, base, rng):
    num_core = int(spec.get("num_core", 4))
    leaves = int(spec.get("leaves_per_core", 3))
    core_scale = float(spec.get("core_scale", 2.0))
    graph = g.isp_topology(
        num_core, leaves, base * core_scale, base,
        seed=rng, directed=bool(spec.get("directed", False)),
    )
    return Topology(graph, terminals=list(range(num_core, graph.num_vertices)))


def _build_fat_tree(spec, base, rng):
    k = int(spec.get("k", 4))
    hosts_per_edge = spec.get("hosts_per_edge")
    hosts_per_edge = None if hosts_per_edge is None else int(hosts_per_edge)
    graph = g.fat_tree_topology(
        k,
        _capacity(spec, base, float(spec.get("core_scale", 4.0))),
        _capacity(spec, base, float(spec.get("aggregation_scale", 2.0))),
        _capacity(spec, base),
        hosts_per_edge=hosts_per_edge,
        seed=rng,
        directed=bool(spec.get("directed", False)),
    )
    hosts = list(g.fat_tree_host_range(k, hosts_per_edge))
    return Topology(graph, terminals=hosts or None)


def _build_waxman(spec, base, rng):
    return Topology(
        g.waxman_graph(
            int(spec.get("num_vertices", 20)),
            _capacity(spec, base),
            alpha=float(spec.get("alpha", 0.6)),
            beta=float(spec.get("beta", 0.4)),
            seed=rng,
            directed=bool(spec.get("directed", False)),
        )
    )


def _build_barabasi_albert(spec, base, rng):
    return Topology(
        g.barabasi_albert_graph(
            int(spec.get("num_vertices", 20)),
            int(spec.get("attachments", 2)),
            _capacity(spec, base),
            seed=rng,
            directed=bool(spec.get("directed", False)),
        )
    )


def _build_multi_region(spec, base, rng):
    regions = int(spec.get("regions", 3))
    cores = int(spec.get("cores_per_region", 3))
    leaves = int(spec.get("leaves_per_core", 2))
    graph = g.multi_region_topology(
        regions, cores, leaves,
        _capacity(spec, base, float(spec.get("backbone_scale", 4.0))),
        _capacity(spec, base, float(spec.get("core_scale", 2.0))),
        _capacity(spec, base),
        interlinks_per_pair=int(spec.get("interlinks_per_pair", 1)),
        seed=rng,
        directed=bool(spec.get("directed", False)),
    )
    terminals = g.multi_region_leaves(regions, cores, leaves)
    return Topology(graph, terminals=terminals or None)


_FAMILIES: dict[str, Callable[[Mapping[str, Any], float, np.random.Generator], Topology]] = {
    "grid": _build_grid,
    "ring": _build_ring,
    "random": _build_random,
    "isp": _build_isp,
    "fat_tree": _build_fat_tree,
    "waxman": _build_waxman,
    "barabasi_albert": _build_barabasi_albert,
    "multi_region": _build_multi_region,
}


def available_families() -> list[str]:
    """Registered topology family names."""
    return sorted(_FAMILIES)


def build_topology(
    spec: Mapping[str, Any], base_capacity: float, rng: np.random.Generator
) -> Topology:
    """Build the topology a spec describes with base capacity ``B``.

    ``rng`` is consumed in place (library seed contract), so the caller can
    thread one cell generator through topology and request construction.
    """
    family = spec.get("family")
    if family not in _FAMILIES:
        raise InvalidInstanceError(
            f"unknown topology family {family!r}; available: {available_families()}"
        )
    if base_capacity <= 0:
        raise InvalidInstanceError("base capacity must be positive")
    return _FAMILIES[family](spec, float(base_capacity), rng)

"""The campaign runner: fan cells out, persist each completed cell.

One campaign cell = one topology × regime × mode combination.  The cell
function materializes the workload (:mod:`repro.scenarios.regimes`), runs
the mode's solver — offline ``Bounded-UFP``, the repetitions variant, or
the online streaming auction — and returns a flat, JSON-safe record of
deterministic metrics (no wall-clock: records must be bit-identical at any
``jobs``, which is what makes store hashes comparable across runs).

Cells flow through :func:`repro.experiments.harness.map_cells` (and hence
:func:`repro.parallel.pmap`) in *waves*: after each wave the completed
cells are committed to the :class:`~repro.scenarios.store.ResultStore` in
cell order, so a killed campaign resumes from the last committed wave and
recomputes only what is missing.  Wave size scales with the worker count;
it changes checkpoint granularity only, never results.

Workload modes (the ``"mode"`` axis):

* ``{"kind": "offline", "epsilon": "auto", "payments": false, "bound": "lp"}``
  — one sealed-bid ``Bounded-UFP`` clearing; ``epsilon`` is a float or
  ``"auto"`` (matched to the capacity regime, see ``_resolve_epsilon``);
  ``payments: true`` adds
  critical-value payments (trace-replay accelerated) and revenue/replay
  columns; ``bound: "lp"`` (default) adds the fractional LP optimum and
  the approximation ratio.
* ``{"kind": "repeated", ...}`` — ``Bounded-UFP-Repeat`` (Theorem 5.1).
* ``{"kind": "online", "arrivals": "poisson" | "bursty" | "adversarial" |
  "trace", "admission": "greedy" | "threshold", "payments": false,
  "compare_offline": true}`` — the streaming auction of
  :mod:`repro.online`; ``compare_offline`` also clears the full instance
  offline and reports the empirical competitive ratio.
"""

from __future__ import annotations

import os
import signal
import threading
import time as _time
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable, Mapping, Sequence

from repro import parallel
from repro.core.bounded_ufp import bounded_ufp
from repro.core.bounded_ufp_repeat import bounded_ufp_repeat
from repro.exceptions import InvalidInstanceError
from repro.experiments.harness import CellOutcome, map_cells, ratio
from repro.flows.instance import UFPInstance
from repro.mechanism.payments import compute_ufp_payments
from repro.online.arrivals import (
    adversarial_arrivals,
    bursty_arrivals,
    poisson_arrivals,
    trace_arrivals,
)
from repro.online.auction import OnlineAuction
from repro.parallel import WorkerError
from repro.scenarios.regimes import (
    ARRIVAL_STREAM,
    FAULT_STREAM,
    PARTITION_STREAM,
    build_cell_instance,
    cell_rng,
)
from repro.scenarios.specs import CellSpec, cell_hash, enumerate_cells, normalize_suite
from repro.scenarios.store import ResultStore
from repro.utils.backoff import BackoffPolicy

__all__ = ["CampaignResult", "CellTimeoutError", "run_cell", "run_campaign"]


class CellTimeoutError(Exception):
    """A cell exceeded its ``cell_timeout`` wall-clock budget."""


@dataclass
class CampaignResult:
    """Outcome of one campaign invocation."""

    suite: dict
    records: dict[str, dict]
    computed: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)
    invalidated: list[str] = field(default_factory=list)
    failed: list[str] = field(default_factory=list)

    @property
    def num_cells(self) -> int:
        return len(self.records)

    @property
    def all_cells_ok(self) -> bool:
        return all(record.get("claims_ok", True) for record in self.records.values())

    def summary_line(self) -> str:
        return (
            f"cells: {self.num_cells} total, {len(self.computed)} computed, "
            f"{len(self.skipped)} skipped"
            + (f", {len(self.invalidated)} invalidated" if self.invalidated else "")
            + (f", {len(self.failed)} FAILED (quarantined)" if self.failed else "")
        )


# ---------------------------------------------------------------------- #
# One cell
# ---------------------------------------------------------------------- #
def _lp_bound(instance: UFPInstance, mode: Mapping[str, Any]) -> float | None:
    if mode.get("bound", "lp") == "none":
        return None
    from repro.lp.fractional_ufp import solve_fractional_ufp

    return float(solve_fractional_ufp(instance).objective)


def _resolve_epsilon(mode: Mapping[str, Any], instance: UFPInstance) -> float:
    """The cell's accuracy parameter.

    ``"auto"`` (the default) matches epsilon to the instance's capacity
    regime the way the paper does: Theorem 3.1 needs
    ``B >= ln(m) / eps^2``, so the tightest admissible choice is
    ``eps = sqrt(ln(m) / B)`` (clamped to ``[0.05, 1]``).  Tiny-capacity
    adversarial cells then run at ``eps = 1`` (where the guarantee is
    vacuous but the mechanism still clears) while large-capacity cells get
    a sharp epsilon — without it, a fixed small epsilon would admit
    nothing below its regime and the cross-regime comparison would be
    vacuous.
    """
    epsilon = mode.get("epsilon", "auto")
    if epsilon == "auto":
        import math as _math

        log_m = _math.log(max(2, instance.graph.num_edges))
        bound = max(1e-9, float(instance.capacity_bound()))
        return min(1.0, max(0.05, _math.sqrt(log_m / bound)))
    return float(epsilon)


def _base_record(cell: CellSpec, instance: UFPInstance, base_capacity: float) -> dict:
    graph = instance.graph
    meta = instance.metadata
    return {
        "key": cell.key,
        "topology": cell.topology["name"],
        "family": cell.topology.get("family"),
        "regime": cell.regime["name"],
        "mode": cell.mode["name"],
        "kind": cell.mode["kind"],
        "n": graph.num_vertices,
        "m": graph.num_edges,
        "B": base_capacity,
        "B_over_log_m": meta.get("B_over_log_m"),
        "requests": instance.num_requests,
    }


def _resolve_cell_partition(cell: CellSpec, instance: UFPInstance):
    """Resolve a mode's ``partition`` entry into a partition + exactness flag.

    ``partition`` accepts ``"auto"``/``true`` (the natural clusters of a
    ``multi_region`` topology), an integer region count or a dict with a
    ``regions`` key.  Returns ``(GraphPartition, exact_contract)`` where
    ``exact_contract`` marks partitions eligible for the bit-identity
    claim (the trivial partition and ``multi_region``'s natural clusters):
    on an intra-only cell they must reproduce the global solver exactly
    *provided* the global clearing never routed across the cut — a premise
    ``_partition_metrics`` verifies per cell rather than assumes.
    """
    from repro.graphs.partition import (
        bfs_partition,
        multi_region_partition,
        single_region_partition,
    )

    spec = cell.mode["partition"]
    regions = spec.get("regions", "auto") if isinstance(spec, Mapping) else spec
    topology = cell.topology
    natural = topology.get("family") == "multi_region"
    # NB: `regions is True` (not `in (...)`) — `1 == True` would otherwise
    # swallow the explicit 1-region spec.
    if regions == "auto" or regions is True:
        if not natural:
            raise InvalidInstanceError(
                "partition 'auto' needs a multi_region topology; give an "
                "explicit region count for other families"
            )
        regions = int(topology.get("regions", 3))
    regions = int(regions)
    if regions == 1:
        return single_region_partition(instance.graph), True
    if natural and regions == int(topology.get("regions", 3)):
        return (
            multi_region_partition(
                instance.graph,
                regions,
                int(topology.get("cores_per_region", 3)),
                int(topology.get("leaves_per_core", 2)),
            ),
            True,
        )
    return (
        bfs_partition(
            instance.graph,
            regions,
            seed=cell_rng(cell.topology_seed, PARTITION_STREAM),
        ),
        False,
    )


def _partition_metrics(
    cell: CellSpec,
    instance: UFPInstance,
    outcome: CellOutcome,
    epsilon: float,
    allocation,
) -> dict:
    """Partitioned-solver columns of one offline cell.

    Runs the partitioned solver next to the global ``allocation`` the cell
    already produced: always reports the region/cut/cross shape and the
    approximation gap vs. the global value, and claims bit-identity on
    intra-only cells whose partition carries the exactness contract *and*
    whose global clearing never routed across the cut (region-internal
    shortest paths can leave their region once internal congestion makes a
    backbone detour cheaper, so the premise is checked, not assumed).
    """
    spec = cell.mode["partition"]
    spec = spec if isinstance(spec, Mapping) else {}
    partition, exact_contract = _resolve_cell_partition(cell, instance)
    partitioned = bounded_ufp(instance, epsilon, partition=partition)
    outcome.claim(
        "partitioned allocation is feasible", partitioned.is_feasible()
    )
    extra = partitioned.stats.extra
    cross = int(extra.get("partition_cross_requests", 0.0))
    record: dict[str, Any] = {
        "partition_regions": partition.num_regions,
        "partition_cut_edges": partition.num_cut_edges,
        "partition_cross": cross,
        "partition_value": float(partitioned.value),
        "partition_admitted": partitioned.num_selected,
    }
    if spec.get("compare_global", True):
        cut = set(partition.cut_edge_ids.tolist())
        stays_internal = not any(
            eid in cut for routed in allocation.routed for eid in routed.edge_ids
        )
        exact = exact_contract and cross == 0 and stays_internal
        matches = (
            [r.request_index for r in partitioned.routed]
            == [r.request_index for r in allocation.routed]
            and [r.edge_ids for r in partitioned.routed]
            == [r.edge_ids for r in allocation.routed]
            and float(partitioned.value) == float(allocation.value)
        )
        if exact:
            outcome.claim(
                "partitioned solver is bit-identical to the global solver "
                "on an intra-region-only cell",
                matches,
            )
        record["partition_gap"] = ratio(
            float(allocation.value), float(partitioned.value)
        )
        record["partition_exact"] = bool(exact and matches)
    return record


def _offline_metrics(
    cell: CellSpec, instance: UFPInstance, outcome: CellOutcome
) -> dict:
    mode = cell.mode
    epsilon = _resolve_epsilon(mode, instance)
    if mode["kind"] == "repeated":
        solver = partial(bounded_ufp_repeat, epsilon=epsilon)
    else:
        solver = partial(bounded_ufp, epsilon=epsilon)
    allocation = solver(instance)
    outcome.claim("allocation is feasible", allocation.is_feasible())

    record: dict[str, Any] = {
        "epsilon": epsilon,
        "admitted": allocation.num_selected,
        "value": float(allocation.value),
        "admission_rate": allocation.num_selected / max(1, instance.num_requests),
        "stopped_by_budget": bool(allocation.stats.stopped_by_budget),
        "iterations": int(allocation.stats.iterations),
        # Kernel-invariant dispatch count (never the kernel *name*: records
        # feed the store content hash, which must not change across tiers).
        "kernel_calls": float(
            allocation.stats.extra.get("pricing_kernel_calls", 0.0)
        ),
    }
    bound = _lp_bound(instance, mode)
    if bound is not None:
        record["bound"] = bound
        record["ratio"] = ratio(bound, float(allocation.value))
        outcome.claim(
            "allocation value is within the fractional LP bound",
            float(allocation.value) <= bound + 1e-6,
        )
    if mode.get("payments"):
        replay_stats: dict[str, float] = {}
        payments = compute_ufp_payments(
            solver,
            instance,
            allocation,
            use_trace=bool(mode.get("use_trace", True)),
            replay_stats=replay_stats,
        )
        values = instance.values_array()
        outcome.claim(
            "payments are individually rational",
            bool((payments <= values + 1e-9).all()),
        )
        record["revenue"] = float(payments.sum())
        record.update({k: float(v) for k, v in replay_stats.items()})
    if mode.get("partition"):
        if mode["kind"] != "offline":
            raise InvalidInstanceError(
                "partitioned solving is an offline-mode option; "
                f"got kind {mode['kind']!r}"
            )
        record.update(
            _partition_metrics(cell, instance, outcome, epsilon, allocation)
        )
    return record


_ARRIVALS = ("poisson", "bursty", "adversarial", "trace")


def _online_metrics(
    cell: CellSpec, instance: UFPInstance, outcome: CellOutcome
) -> dict:
    mode = cell.mode
    if mode.get("partition"):
        raise InvalidInstanceError(
            "partitioned solving is an offline-mode option; "
            f"got kind {mode['kind']!r}"
        )
    epsilon = _resolve_epsilon(mode, instance)
    arrivals = mode.get("arrivals", "poisson")
    if arrivals not in _ARRIVALS:
        raise InvalidInstanceError(
            f"unknown arrival process {arrivals!r}; known: {_ARRIVALS}"
        )
    arrival_rng = cell_rng(cell.workload_seed, ARRIVAL_STREAM)
    requests = list(instance.requests)
    if arrivals == "poisson":
        stream = poisson_arrivals(
            requests,
            rate=float(mode.get("rate", 2.0)),
            batch_window=float(mode.get("batch_window", 1.0)),
            seed=arrival_rng,
        )
    elif arrivals == "bursty":
        stream = bursty_arrivals(
            requests,
            burst_size=int(mode.get("burst_size", 6)),
            shuffle=True,
            seed=arrival_rng,
        )
    elif arrivals == "adversarial":
        stream = adversarial_arrivals(
            requests, order=str(mode.get("order", "density_ascending"))
        )
    else:
        stream = trace_arrivals(instance, batch_size=int(mode.get("batch_size", 5)))

    auction = OnlineAuction(
        instance.graph,
        epsilon,
        admission=mode.get("admission", "greedy"),
        score_threshold=float(mode.get("score_threshold", 1.0)),
        compute_payments=bool(mode.get("payments", False)),
        max_requeues=int(mode.get("max_requeues", 2)),
        compensation_rate=float(mode.get("compensation_rate", 0.0)),
        name=instance.name,
    )
    fault_report = None
    if mode.get("faults") is not None:
        from repro.faults import FaultSchedule, run_with_faults

        schedule = FaultSchedule(
            dict(mode["faults"]),
            seed=cell_rng(cell.workload_seed, FAULT_STREAM),
        )
        online, report = run_with_faults(auction, stream, schedule)
        # A zero-intensity schedule must leave the record bit-identical to
        # the fault-free mode (the differential store-hash tests rely on
        # it), so degradation columns appear only when faults could fire.
        if not schedule.zero_intensity:
            fault_report = report
    else:
        online = auction.run(stream)
    outcome.claim("online allocation is feasible", online.is_feasible())

    record: dict[str, Any] = {
        "epsilon": epsilon,
        "admitted": online.num_selected,
        "value": float(online.value),
        "admission_rate": online.num_selected / max(1, instance.num_requests),
        "stopped_by_budget": bool(online.stats.stopped_by_budget),
        "batches": int(online.num_batches),
        "sp_calls": int(online.stats.shortest_path_calls),
        "tree_reuses": float(online.stats.extra.get("pricing_tree_reuses", 0.0)),
        "kernel_calls": float(online.stats.extra.get("pricing_kernel_calls", 0.0)),
    }
    if mode.get("payments"):
        values = online.instance.values_array()
        outcome.claim(
            "online payments are individually rational",
            bool((online.payments <= values + 1e-9).all()),
        )
        record["revenue"] = float(online.revenue)
    if mode.get("compare_offline", True):
        offline = bounded_ufp(instance, epsilon)
        record["offline_value"] = float(offline.value)
        # ratio() handles the zero cases (1 when both zero, inf when only
        # the offline clearing got nothing).
        record["value_ratio"] = ratio(float(online.value), float(offline.value))
    bound = _lp_bound(instance, mode) if mode.get("bound") == "lp" else None
    if bound is not None:
        record["bound"] = bound
        record["ratio"] = ratio(bound, float(online.value))
    if fault_report is not None:
        record.update(
            {key: float(value) for key, value in fault_report.as_extra().items()}
        )
        # How much admitted honest value survived relative to total admitted
        # value — the jamming-damage headline number.
        total_value = float(online.value)
        record["fault_honest_share"] = (
            fault_report.honest_value / total_value if total_value > 0 else 1.0
        )
    return record


def run_cell(cell: CellSpec) -> CellOutcome:
    """Run one campaign cell and return its outcome (one record row).

    Pure function of the cell spec — no ambient rng, no wall-clock in the
    record — so it satisfies the :func:`repro.parallel.pmap` determinism
    contract and records hash identically at any ``jobs``.
    """
    outcome = CellOutcome()
    inject = cell.mode.get("inject_failure")
    if inject:
        # Chaos-testing hook: a mode may ask its own cell to fail, so the
        # quarantine/retry machinery can be exercised end to end from a
        # plain suite spec (the CI chaos lane does exactly this).
        if inject == "exception":
            raise RuntimeError(f"injected failure in cell {cell.key}")
        if inject == "sigkill":
            if parallel.in_worker():
                os.kill(os.getpid(), signal.SIGKILL)
            # Serial fallback: killing the only process would take the whole
            # campaign down, so degrade to an ordinary failure.
            raise RuntimeError(f"injected failure in cell {cell.key}")
        if inject == "timeout":
            _time.sleep(3600.0)
    instance, _topology, base_capacity = build_cell_instance(cell)
    record = _base_record(cell, instance, base_capacity)
    if cell.mode["kind"] == "online":
        record.update(_online_metrics(cell, instance, outcome))
    else:
        record.update(_offline_metrics(cell, instance, outcome))
    failed = [description for description, holds in outcome.claims if not holds]
    record["claims_ok"] = not failed
    if failed:
        record["claims_failed"] = failed
    outcome.rows.append(record)
    return outcome


# ---------------------------------------------------------------------- #
# The campaign driver
# ---------------------------------------------------------------------- #
def _wave_size(jobs: int | None) -> int:
    # Checkpoint after every ~2 chunks per worker: small enough that a
    # killed campaign loses little work, large enough to amortize fan-out.
    return max(4, 2 * parallel.resolve_jobs(jobs))


def _guarded_run_cell(task: tuple[CellSpec, float | None]) -> CellOutcome:
    """Run one cell under an optional wall-clock budget.

    The timeout uses ``SIGALRM``, so it fires even inside a single solver
    call (pure-Python loops included); pool workers execute tasks on their
    main thread, which is where Python delivers signals.  With no timeout
    (or on platforms without ``SIGALRM``) this is exactly :func:`run_cell`.

    ``signal.signal``/``signal.setitimer`` raise ``ValueError`` when called
    off the main thread, so a caller driving the campaign from a worker
    thread (dashboards, test harnesses) falls back to the no-timeout path —
    same degradation as platforms without ``SIGALRM``.
    """
    cell, timeout = task
    if (
        not timeout
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        return run_cell(cell)

    def _on_alarm(signum, frame):  # pragma: no cover - timing dependent
        raise CellTimeoutError(f"cell {cell.key} timed out after {timeout:g}s")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, float(timeout))
    try:
        return run_cell(cell)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _quarantine_record(
    cell: CellSpec, error: BaseException, attempts: int
) -> dict[str, Any]:
    """The failed-cell record committed to the store (cell quarantine).

    Deliberately shaped like a normal record (same identity columns,
    ``claims_ok`` false) so reporting, store hashing and resume treat it
    uniformly; ``failed`` marks it non-skippable — a later ``resume``
    retries the cell instead of trusting the failure forever.  The full
    worker traceback (preserved across the pickle boundary by
    :class:`~repro.parallel.WorkerError`) rides along so a quarantined
    cell is debuggable from its stored record alone.
    """
    record = {
        "key": cell.key,
        "topology": cell.topology["name"],
        "family": cell.topology.get("family"),
        "regime": cell.regime["name"],
        "mode": cell.mode["name"],
        "kind": cell.mode["kind"],
        "failed": True,
        "error": str(error),
        "error_type": getattr(error, "error_type", type(error).__name__),
        "attempts": attempts,
        "claims_ok": False,
    }
    traceback = getattr(error, "traceback", None)
    if traceback:
        record["traceback"] = traceback
    return record


def run_campaign(
    suite: Mapping[str, Any],
    *,
    store: ResultStore | None = None,
    jobs: int | None = None,
    fresh: bool = False,
    progress: Callable[[str], None] | None = None,
    retries: int = 0,
    retry_backoff: float = 0.0,
    cell_timeout: float | None = None,
) -> CampaignResult:
    """Run a scenario campaign, resuming from ``store`` when it has results.

    Cells already committed to the store *with an identical cell hash* are
    skipped; cells whose spec or seed changed are recomputed (their old
    records are shadowed by the newer manifest entries).  Without a store
    the campaign runs fully in memory.

    The runner is crash-tolerant: a cell that raises, times out
    (``cell_timeout`` seconds of wall clock) or kills its worker process is
    retried up to ``retries`` times (sleeping
    ``retry_backoff * 2**(attempt - 1)`` seconds before retry attempt
    ``attempt`` — i.e. ``retry_backoff`` before the first retry, doubling
    each further retry), and if it still fails it is *quarantined* — a
    failed record is committed to the store and reported, and the rest of
    the campaign completes.  Quarantined cells are never skipped on resume:
    a later ``resume`` retries them (deterministically — same spec, same
    seeds) instead of trusting the failure forever.
    """
    suite = normalize_suite(suite)
    cells = enumerate_cells(suite)
    hashes = {cell.key: cell_hash(cell) for cell in cells}
    retries = max(0, int(retries))
    # One backoff policy for the whole repo (repro.utils.backoff): with no
    # cap and no jitter this is exactly the documented doubling schedule,
    # pinned by the recorded-sleep regression test.
    backoff = BackoffPolicy(base=max(0.0, float(retry_backoff)))

    completed: dict[str, str] = {}
    stored: dict[str, dict] = {}
    if store is not None:
        suite = store.initialize(suite, fresh=fresh)
        completed = store.completed()
        stored = store.records(hashes)

    # A cell is skippable only when its manifest entry matches the current
    # cell hash AND its record line is intact AND the record is a success —
    # a damaged results file or a quarantined failure (the crash scenarios
    # the store exists for) degrades to recomputation, never to an error.
    skipped = [
        cell.key
        for cell in cells
        if completed.get(cell.key) == hashes[cell.key]
        and cell.key in stored
        and not stored[cell.key].get("failed")
    ]
    invalidated = [
        cell.key
        for cell in cells
        if cell.key in completed and completed[cell.key] != hashes[cell.key]
    ]
    skipped_set = set(skipped)
    pending = [cell for cell in cells if cell.key not in skipped_set]

    records: dict[str, dict] = {key: stored[key] for key in skipped}
    failed_keys: list[str] = []

    wave = _wave_size(jobs)
    for start in range(0, len(pending), wave):
        chunk = pending[start : start + wave]
        if progress is not None:
            progress(
                f"running cells {start + 1}..{start + len(chunk)} of {len(pending)}"
            )
        remaining = chunk
        results: dict[str, CellOutcome | WorkerError] = {}
        attempts_used: dict[str, int] = {}
        for attempt in range(retries + 1):
            if not remaining:
                break
            if attempt:
                backoff.sleep_for(attempt, sleep=_time.sleep)
            # Retry isolation: a retry re-enters run_cell with nothing but
            # the CellSpec — build_cell_instance constructs a fresh graph
            # (hence fresh substrate_cache/tree memos) and the solver builds
            # its engine and dual state inside the call, so no state from a
            # SIGALRM-interrupted attempt (half-updated duals, a poisoned
            # pricing heap) can leak into the retry.  The regression test
            # pins retried-after-timeout == untimed, bit for bit.
            outcomes = map_cells(
                _guarded_run_cell,
                [(cell, cell_timeout) for cell in remaining],
                jobs=jobs,
                on_error="capture",
            )
            still_failing: list[CellSpec] = []
            for cell, outcome in zip(remaining, outcomes):
                attempts_used[cell.key] = attempt + 1
                results[cell.key] = outcome
                if isinstance(outcome, WorkerError):
                    still_failing.append(cell)
                    if progress is not None:
                        progress(
                            f"cell {cell.key} failed (attempt {attempt + 1}"
                            f"/{retries + 1}): {outcome}"
                        )
            remaining = still_failing
        for cell in chunk:
            outcome = results[cell.key]
            if isinstance(outcome, WorkerError):
                record = _quarantine_record(
                    cell, outcome, attempts_used[cell.key]
                )
                failed_keys.append(cell.key)
            else:
                record = outcome.rows[0]
            records[cell.key] = record
            if store is not None:
                store.append(cell.key, hashes[cell.key], record)

    # Report in canonical cell order.
    ordered = {cell.key: records[cell.key] for cell in cells}
    return CampaignResult(
        suite=suite,
        records=ordered,
        computed=[cell.key for cell in pending],
        skipped=skipped,
        invalidated=invalidated,
        failed=failed_keys,
    )

"""Built-in scenario suites.

Four pinned campaigns ship with the library:

* ``smoke`` — the CI smoke lane: 2 topologies × 2 regimes × offline+online,
  each cell tiny.  Exists to exercise run → kill → resume end to end in
  seconds.
* ``demo`` — the reference campaign: four topology families (fat-tree/Clos,
  Waxman WAN, Barabási–Albert scale-free, multi-region ISP composite)
  × three capacity regimes (tiny-capacity adversarial, the ``B ≈ ln m``
  boundary, the large-capacity regime of Theorem 3.1 — the latter with a
  heterogeneous mouse/elephant bid mix) × offline and online modes.
* ``capacity-ladder`` — the large-capacity stress ladder: one fat-tree and
  one Waxman topology swept across ``B = scale * ln m`` for
  ``scale ∈ {0.5, 1, 2, 4, 8}``, offline with payments on, so the ladder
  reports how ratio, admission rate and revenue move as the instance
  enters the paper's regime.
* ``chaos`` — the fault-injection lane: two small topologies, one regime,
  online modes sweeping :mod:`repro.faults` intensities (a fault-free
  baseline, link failures with repair, capacity churn, a jamming stream
  with an upfront fee, and everything at once).  Exists so the degradation
  path — revocations, refunds, requeues, jam accounting — runs end to end
  on every CI pass.
* ``partition`` — the partition-parity lane: a multi-region ISP composite
  cleared offline with the partitioned solver next to the global one, over
  the natural region cut, the trivial 1-region cut and a generic BFS cut.
  Exists so the bit-identity contract of :mod:`repro.partition` (and the
  approximation-gap column for cross-region traffic) runs end to end on
  every CI pass.

All are plain dicts — copy one, edit it, and pass it to
``repro.scenarios run`` as a JSON file to build your own campaign.
"""

from __future__ import annotations

from typing import Any

__all__ = ["BUILTIN_SUITES", "available_suites", "get_suite"]


def _smoke_suite() -> dict[str, Any]:
    return {
        "name": "smoke",
        "seed": 11,
        "description": "tiny run/kill/resume smoke campaign (CI lane)",
        "topologies": [
            {"name": "grid", "family": "grid", "rows": 3, "cols": 3},
            {"name": "wax", "family": "waxman", "num_vertices": 10},
        ],
        "regimes": [
            {"name": "tiny", "capacity": 2.0, "num_requests": 10},
            {
                "name": "logm",
                "capacity": {"scale_log_m": 2.0, "min": 2.0},
                "num_requests": 10,
            },
        ],
        "modes": [
            {"name": "offline", "kind": "offline", "epsilon": "auto", "bound": "lp"},
            {
                "name": "stream",
                "kind": "online",
                "epsilon": "auto",
                "arrivals": "bursty",
                "burst_size": 4,
            },
        ],
    }


def _demo_suite() -> dict[str, Any]:
    return {
        "name": "demo",
        "seed": 7,
        "description": (
            "4 topology families x 3 capacity regimes x offline+online — the "
            "pinned reference campaign"
        ),
        "topologies": [
            {"name": "clos", "family": "fat_tree", "k": 4},
            {"name": "wan", "family": "waxman", "num_vertices": 18, "alpha": 0.7},
            {
                "name": "scalefree",
                "family": "barabasi_albert",
                "num_vertices": 18,
                "attachments": 2,
            },
            {
                "name": "regions",
                "family": "multi_region",
                "regions": 3,
                "cores_per_region": 3,
                "leaves_per_core": 2,
            },
        ],
        "regimes": [
            {
                "name": "adversarial-tiny",
                "capacity": 2.0,
                "num_requests": 24,
                "demand_range": [0.5, 1.0],
            },
            {
                "name": "boundary",
                "capacity": {"scale_log_m": 1.0, "min": 2.0},
                "num_requests": 24,
            },
            {
                "name": "large-cap-mix",
                "capacity": {"scale_log_m": 6.0, "min": 4.0},
                "num_requests": 28,
                "mix": [
                    {
                        "fraction": 0.8,
                        "demand_range": [0.05, 0.25],
                        "value_range": [0.4, 1.2],
                    },
                    {
                        "fraction": 0.2,
                        "demand_range": [0.7, 1.0],
                        "value_range": [2.0, 6.0],
                        "value_proportional_to_demand": True,
                    },
                ],
            },
        ],
        "modes": [
            {"name": "offline", "kind": "offline", "epsilon": "auto", "bound": "lp"},
            {
                "name": "stream",
                "kind": "online",
                "epsilon": "auto",
                "arrivals": "poisson",
                "rate": 3.0,
                "compare_offline": True,
            },
        ],
    }


def _capacity_ladder_suite() -> dict[str, Any]:
    return {
        "name": "capacity-ladder",
        "seed": 13,
        "description": (
            "B = scale * ln(m) ladder into the Theorem 3.1 regime, payments on"
        ),
        "topologies": [
            {"name": "clos", "family": "fat_tree", "k": 4},
            {"name": "wan", "family": "waxman", "num_vertices": 20},
        ],
        "regimes": [
            {
                "name": f"B{str(scale).replace('.', 'p')}logm",
                "capacity": {"scale_log_m": scale, "min": 1.0},
                "num_requests": {"per_vertex": 3.0},
                "demand_range": [0.4, 1.0],
            }
            for scale in (0.5, 1.0, 2.0, 4.0, 8.0)
        ],
        "modes": [
            {
                "name": "auction",
                "kind": "offline",
                "epsilon": "auto",
                "bound": "lp",
                "payments": True,
            }
        ],
    }


def _chaos_suite() -> dict[str, Any]:
    base = {
        "kind": "online",
        "epsilon": "auto",
        "arrivals": "bursty",
        "burst_size": 4,
        "compare_offline": False,
    }
    return {
        "name": "chaos",
        "seed": 29,
        "description": (
            "fault-injection lane: failures, churn and jamming over small "
            "topologies (CI chaos smoke)"
        ),
        "topologies": [
            {"name": "grid", "family": "grid", "rows": 3, "cols": 3},
            {"name": "wax", "family": "waxman", "num_vertices": 12},
        ],
        "regimes": [
            {
                "name": "logm",
                "capacity": {"scale_log_m": 2.0, "min": 2.0},
                "num_requests": 16,
            }
        ],
        "modes": [
            # Intensities are deliberately violent — the lane exists to make
            # the degradation paths (revocation, refund, requeue, jam
            # accounting) actually fire on these tiny instances, not to
            # model a realistic failure rate.
            {"name": "stream", **base},
            {
                "name": "failures",
                **base,
                "faults": {"edge_failure_rate": 1.5, "failure_duration": 2},
            },
            {
                "name": "churn",
                **base,
                "faults": {
                    "churn_rate": 1.5,
                    "churn_factor_range": [0.05, 0.35],
                    "churn_edges": 6,
                    "churn_duration": 2,
                },
            },
            {
                "name": "jam",
                **base,
                "payments": True,
                "compensation_rate": 0.1,
                "faults": {
                    "jam_rate": 1.5,
                    "jam_demand_range": [0.5, 1.0],
                    "jam_value_range": [0.01, 0.05],
                    "upfront_fee": 0.02,
                },
            },
            {
                "name": "everything",
                **base,
                "payments": True,
                "compensation_rate": 0.1,
                "faults": {
                    "edge_failure_rate": 1.5,
                    "failure_duration": 2,
                    "churn_rate": 1.5,
                    "churn_factor_range": [0.05, 0.35],
                    "churn_edges": 6,
                    "churn_duration": 2,
                    "jam_rate": 1.0,
                    "jam_value_range": [0.01, 0.05],
                    "upfront_fee": 0.01,
                },
            },
        ],
    }


def _partition_suite() -> dict[str, Any]:
    return {
        "name": "partition",
        "seed": 43,
        "description": (
            "partitioned-vs-global parity lane over a multi-region ISP "
            "composite (CI partition smoke)"
        ),
        "topologies": [
            {
                "name": "regions",
                "family": "multi_region",
                "regions": 3,
                "cores_per_region": 3,
                "leaves_per_core": 2,
            },
        ],
        "regimes": [
            {
                "name": "logm",
                "capacity": {"scale_log_m": 2.0, "min": 2.0},
                "num_requests": 20,
            }
        ],
        "modes": [
            # Cross-region traffic exists in this workload, so the natural
            # cut exercises the hierarchical quotient path and reports its
            # gap; the 1-region cut must be bit-identical to the global
            # solver (claimed inside the cell); the generic BFS cut
            # exercises the arbitrary-graph partitioner end to end.
            {
                "name": "part-auto",
                "kind": "offline",
                "epsilon": "auto",
                "bound": "lp",
                "partition": "auto",
            },
            {
                "name": "part-1",
                "kind": "offline",
                "epsilon": "auto",
                "bound": "none",
                "partition": 1,
            },
            {
                "name": "part-bfs2",
                "kind": "offline",
                "epsilon": "auto",
                "bound": "none",
                "partition": {"regions": 2},
            },
        ],
    }


BUILTIN_SUITES = {
    "smoke": _smoke_suite,
    "demo": _demo_suite,
    "capacity-ladder": _capacity_ladder_suite,
    "chaos": _chaos_suite,
    "partition": _partition_suite,
}


def available_suites() -> list[str]:
    """Names of the built-in suites."""
    return sorted(BUILTIN_SUITES)


def get_suite(name: str) -> dict[str, Any]:
    """A fresh copy of a built-in suite spec by name."""
    key = name.strip().lower()
    if key not in BUILTIN_SUITES:
        raise KeyError(
            f"unknown suite {name!r}; built-ins: {', '.join(available_suites())}"
        )
    return BUILTIN_SUITES[key]()

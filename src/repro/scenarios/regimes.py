"""Demand regimes: capacity ladders, adversarial tiny capacity, bid mixes.

A regime spec resolves, for one topology, into a concrete
:class:`~repro.flows.instance.UFPInstance`: it decides the base capacity
``B`` the topology is built with and the request population routed over it.

Capacity forms (the ``"capacity"`` key)::

    8.0                                   # absolute B
    {"scale_log_m": 4.0, "min": 2.0}      # B = max(min, scale * ln m)
    {"value": 8.0}                        # absolute, spelled out

``scale_log_m`` is the paper's regime dial: Theorems 3.1/4.1 need
``B >= ln(m) / eps^2``, so sweeping the scale across ``[0.5 .. 8]`` walks
an instance from the adversarial tiny-capacity regime (where the
``e/(e-1)`` guarantee does not apply) into the large-capacity regime
(where it must hold).  Because ``m`` is only known once the topology
exists, resolution builds the topology twice with identical rng streams —
once with a probe capacity to count edges, once with the resolved ``B`` —
which is cheap and bit-deterministic (capacity values never influence
which edges a generator creates or how many rng draws it makes).

Request forms: ``num_requests`` is absolute or ``{"per_vertex": x}``;
``demand_range`` / ``value_range`` / ``value_proportional_to_demand``
mirror :func:`repro.flows.generators.random_requests`, and an optional
``"mix"`` list of group dicts routes through
:func:`repro.flows.generators.mixed_random_requests` (heterogeneous bid
populations).  Requests draw from an rng stream independent of the
topology stream, so capacity resolution never shifts the workload.
"""

from __future__ import annotations

import math
from typing import Any, Mapping

import numpy as np

from repro.exceptions import InvalidInstanceError
from repro.flows.generators import mixed_random_requests, random_requests
from repro.flows.instance import UFPInstance
from repro.scenarios.specs import CellSpec
from repro.scenarios.topologies import Topology, build_topology

__all__ = [
    "resolve_base_capacity",
    "build_cell_instance",
    "cell_rng",
    "ARRIVAL_STREAM",
    "FAULT_STREAM",
    "PARTITION_STREAM",
]

# Sub-stream labels: each concern draws from default_rng([seed, label]) so
# streams never interfere regardless of how much each consumes.  Topology
# structure draws come from the cell's topology_seed (stable per topology
# name), request and arrival draws from its workload_seed (stable per
# topology × regime), so regimes sweep capacity over identical structures
# and modes clear identical request populations.
_TOPOLOGY_STREAM = 1
_REQUEST_STREAM = 2
ARRIVAL_STREAM = 3
# Fault-event draws (failure/churn/jam schedules) get their own stream so
# adding faults to a mode never perturbs the topology/request/arrival draws
# of fault-free cells sharing the same seeds.
FAULT_STREAM = 4
# Seed draws of the generic BFS region partitioner (partitioned-solver
# modes); keyed to the topology_seed — partitions are a property of the
# structure, not the workload — and separate from the topology stream so a
# partitioned mode never perturbs the substrate of its unpartitioned twin.
PARTITION_STREAM = 5


def cell_rng(seed: int, stream: int) -> np.random.Generator:
    """The deterministic rng of one (seed, concern) pair."""
    return np.random.default_rng([int(seed), int(stream)])


def resolve_base_capacity(regime: Mapping[str, Any], num_edges: int) -> float:
    """Resolve the regime's ``capacity`` entry against an edge count."""
    spec = regime.get("capacity", 8.0)
    if isinstance(spec, (int, float)):
        value = float(spec)
    elif isinstance(spec, Mapping):
        if "scale_log_m" in spec:
            scale = float(spec["scale_log_m"])
            if scale <= 0:
                raise InvalidInstanceError("scale_log_m must be positive")
            value = max(
                float(spec.get("min", 2.0)), scale * math.log(max(2, num_edges))
            )
        elif "value" in spec:
            value = float(spec["value"])
        else:
            raise InvalidInstanceError(
                f"capacity dict needs 'scale_log_m' or 'value', got {sorted(spec)}"
            )
    else:
        raise InvalidInstanceError(f"unsupported capacity spec {spec!r}")
    if value <= 0:
        raise InvalidInstanceError("resolved capacity must be positive")
    return value


def _num_requests(regime: Mapping[str, Any], num_vertices: int) -> int:
    spec = regime.get("num_requests", 30)
    if isinstance(spec, Mapping):
        if "per_vertex" not in spec:
            raise InvalidInstanceError(
                f"num_requests dict needs 'per_vertex', got {sorted(spec)}"
            )
        return max(1, int(round(float(spec["per_vertex"]) * num_vertices)))
    count = int(spec)
    if count < 1:
        raise InvalidInstanceError("num_requests must be at least 1")
    return count


def build_cell_instance(cell: CellSpec) -> tuple[UFPInstance, Topology, float]:
    """Materialize one campaign cell's workload.

    Returns ``(instance, topology, base_capacity)``; the instance metadata
    records the resolved regime (B, m, B/ln m) for the report tables.
    """
    regime = cell.regime
    capacity_spec = regime.get("capacity", 8.0)
    needs_edge_count = (
        isinstance(capacity_spec, Mapping) and "scale_log_m" in capacity_spec
    )
    if needs_edge_count:
        probe = build_topology(
            cell.topology, 1.0, cell_rng(cell.topology_seed, _TOPOLOGY_STREAM)
        )
        num_edges = probe.graph.num_edges
    else:
        num_edges = 0  # unused
    base_capacity = resolve_base_capacity(regime, num_edges)
    topology = build_topology(
        cell.topology, base_capacity, cell_rng(cell.topology_seed, _TOPOLOGY_STREAM)
    )
    graph = topology.graph

    request_rng = cell_rng(cell.workload_seed, _REQUEST_STREAM)
    count = _num_requests(regime, graph.num_vertices)
    terminals = topology.terminals
    if "mix" in regime:
        requests = mixed_random_requests(
            graph,
            count,
            regime["mix"],
            seed=request_rng,
            sources=terminals,
            targets=terminals,
        )
    else:
        requests = random_requests(
            graph,
            count,
            demand_range=tuple(regime.get("demand_range", (0.1, 1.0))),
            value_range=tuple(regime.get("value_range", (0.5, 2.0))),
            value_proportional_to_demand=bool(
                regime.get("value_proportional_to_demand", False)
            ),
            seed=request_rng,
            sources=terminals,
            targets=terminals,
        )

    log_m = math.log(max(2, graph.num_edges))
    instance = UFPInstance(
        graph,
        requests,
        name=cell.key,
        metadata={
            "kind": "scenario-cell",
            "suite": cell.suite,
            "cell": cell.key,
            "family": cell.topology.get("family"),
            "regime": cell.regime.get("name"),
            "base_capacity": base_capacity,
            "num_edges": graph.num_edges,
            "B_over_log_m": base_capacity / log_m,
        },
    )
    return instance, topology, base_capacity

"""Drive an online auction through a stream while injecting faults.

:func:`run_with_faults` is the fault-mode counterpart of
:meth:`OnlineAuction.run`: it walks the arrival stream batch by batch,
applies the :class:`~repro.faults.schedule.FaultSchedule`'s events between
batches (substrate mutations through the auction's degradation hooks, jam
requests appended to the batch's arrivals) and returns the finalized
allocation together with a :class:`FaultReport` of the degradation
accounting — admitted value split honest vs. jam, payments, refunds,
compensation, upfront fees.

With ``schedule=None`` or a zero-intensity schedule the loop reduces to
exactly ``auction.submit(batch.requests, time=batch.time)`` per batch —
bit-identical to the fault-free driver, which the differential tests
enforce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.flows.streaming import StreamingAllocation
from repro.faults.schedule import FaultEvent, FaultSchedule, is_jam_request
from repro.online.arrivals import Batch
from repro.online.auction import OnlineAuction

__all__ = ["FaultReport", "run_with_faults"]


@dataclass
class FaultReport:
    """Degradation accounting of one fault-injected run.

    ``honest_value`` / ``jam_value_admitted`` partition the final admitted
    value; ``net_revenue`` is what the operator keeps: payments collected
    (refunds already netted out by the auction) plus upfront fees minus
    compensation paid to revoked winners.
    """

    num_batches: int = 0
    events: list[FaultEvent] = field(default_factory=list)
    jam_arrived: int = 0
    jam_admitted: int = 0
    jam_value_admitted: float = 0.0
    jam_payments: float = 0.0
    honest_admitted: int = 0
    honest_value: float = 0.0
    upfront_fees: float = 0.0
    upfront_fees_jam: float = 0.0
    revocations: int = 0
    revenue_refunded: float = 0.0
    compensation: float = 0.0
    value_revoked: float = 0.0
    net_revenue: float = 0.0

    def as_extra(self, prefix: str = "fault_") -> dict[str, float]:
        """Flatten into scenario-table / ``RunStats.extra`` style keys."""
        return {
            f"{prefix}events": float(len(self.events)),
            f"{prefix}jam_arrived": float(self.jam_arrived),
            f"{prefix}jam_admitted": float(self.jam_admitted),
            f"{prefix}jam_value": self.jam_value_admitted,
            f"{prefix}jam_payments": self.jam_payments,
            f"{prefix}honest_admitted": float(self.honest_admitted),
            f"{prefix}honest_value": self.honest_value,
            f"{prefix}upfront_fees": self.upfront_fees,
            f"{prefix}revocations": float(self.revocations),
            f"{prefix}refunded": self.revenue_refunded,
            f"{prefix}compensation": self.compensation,
            f"{prefix}value_revoked": self.value_revoked,
            f"{prefix}net_revenue": self.net_revenue,
        }


def run_with_faults(
    auction: OnlineAuction,
    stream: Iterable[Batch],
    schedule: FaultSchedule | None = None,
) -> tuple[StreamingAllocation, FaultReport]:
    """Consume ``stream`` through ``auction`` under ``schedule``'s faults.

    Substrate events (fail/repair/resize/revert) are applied through the
    auction's degradation hooks *before* the batch they precede; jam events
    append their requests after the batch's honest arrivals (griefers join
    the same clearing).  Returns ``(allocation, report)``.
    """
    report = FaultReport()
    upfront = (
        float(schedule.spec["upfront_fee"]) if schedule is not None else 0.0
    )
    for batch_index, batch in enumerate(stream):
        requests = batch.requests
        if schedule is not None:
            for event in schedule.events_before_batch(batch_index, auction.graph):
                report.events.append(event)
                if event.kind == "fail":
                    auction.fail_edges(event.edge_ids)
                elif event.kind == "repair":
                    auction.repair_edges(event.edge_ids)
                elif event.kind == "resize":
                    auction.resize_edges(event.edge_ids, event.factor)
                elif event.kind == "revert":
                    auction.revert_edges(event.edge_ids)
                elif event.kind == "jam":
                    requests = tuple(requests) + event.requests
                    report.jam_arrived += len(event.requests)
        auction.submit(requests, time=batch.time)
        report.num_batches += 1

    allocation = auction.finalize()

    payments = allocation.payments
    for item in allocation.routed:
        payment = (
            float(payments[item.request_index])
            if item.request_index < payments.size
            else 0.0
        )
        if is_jam_request(item.request):
            report.jam_admitted += 1
            report.jam_value_admitted += item.request.value
            report.jam_payments += payment
        else:
            report.honest_admitted += 1
            report.honest_value += item.request.value
    if upfront > 0.0:
        report.upfront_fees = upfront * allocation.instance.num_requests
        report.upfront_fees_jam = upfront * report.jam_arrived
    report.revocations = len(allocation.revocations)
    report.revenue_refunded = allocation.total_refunded
    report.compensation = allocation.total_compensation
    report.value_revoked = allocation.value_revoked
    report.net_revenue = (
        allocation.revenue + report.upfront_fees - report.compensation
    )
    return allocation, report

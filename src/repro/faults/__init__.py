"""Deterministic fault injection for online auction runs.

The paper analyzes the mechanism on a static substrate; this package
measures how revenue and competitive ratio degrade when the network itself
misbehaves.  Three fault families are modeled, all seeded and bit-exactly
reproducible:

* **edge failures** — edges drop out of the substrate (and optionally come
  back after a fixed outage), stranding allocations routed over them;
* **capacity churn** — edges resize mid-stream (and optionally revert to
  their exact original capacities), possibly below their current load;
* **jamming** — streams of low-value griefing requests interleaved with the
  honest workload, optionally deterred by an upfront fee charged per
  arrival (the Lightning-jamming fee-schedule model).

:class:`FaultSchedule` turns a plain-dict spec into a per-batch event
stream; :func:`run_with_faults` drives an
:class:`~repro.online.auction.OnlineAuction` through a stream while applying
those events between batches and returns the allocation together with a
:class:`FaultReport` of the degradation accounting.  A zero-intensity
schedule injects nothing and leaves the run bit-identical to the fault-free
path — the differential tests enforce this.
"""

from repro.faults.injector import FaultReport, run_with_faults
from repro.faults.schedule import (
    FaultEvent,
    FaultSchedule,
    JAM_NAME_PREFIX,
    is_jam_request,
    normalize_fault_spec,
)

__all__ = [
    "FaultEvent",
    "FaultReport",
    "FaultSchedule",
    "JAM_NAME_PREFIX",
    "is_jam_request",
    "normalize_fault_spec",
    "run_with_faults",
]

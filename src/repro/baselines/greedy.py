"""Greedy baselines.

The greedy rules sort requests (bids) by declared value or by value density
and admit each one along a shortest *feasible* path (respectively, whenever
the bundle still fits).  They are the natural "what a practitioner would try
first" baselines: monotone in the value (a higher value only moves a request
earlier in the order), trivially exact, but without a constant-factor
guarantee — an adversarial instance can make them lose a polynomial factor,
and the E8 comparison experiment shows them losing to ``Bounded-UFP`` on the
contended workloads.
"""

from __future__ import annotations

import time

import numpy as np

from repro.auctions.allocation import MUCAAllocation
from repro.auctions.instance import MUCAInstance
from repro.exceptions import InvalidInstanceError
from repro.flows.allocation import Allocation, RoutedRequest
from repro.flows.instance import UFPInstance
from repro.graphs.shortest_path import single_source_dijkstra
from repro.types import RunStats

__all__ = [
    "greedy_ufp_by_value",
    "greedy_ufp_by_density",
    "greedy_muca_by_value",
    "greedy_muca_by_density",
]


def _greedy_ufp(instance: UFPInstance, order: np.ndarray, label: str) -> Allocation:
    """Admit requests in the given order along hop-shortest feasible paths."""
    if instance.num_edges == 0:
        raise InvalidInstanceError("greedy UFP requires a graph with at least one edge")
    graph = instance.graph
    capacities = graph.capacities
    residual = capacities.copy()
    start = time.perf_counter()
    routed: list[RoutedRequest] = []
    sp_calls = 0

    for idx in order:
        req = instance.requests[int(idx)]
        # Exclude edges whose residual capacity cannot carry the demand by
        # giving them infinite weight; all other edges cost one hop.
        weights = np.where(residual + 1e-12 >= req.demand, 1.0, np.inf)
        tree = single_source_dijkstra(graph, req.source, weights, targets={req.target})
        sp_calls += 1
        if not tree.reachable(req.target) or not np.isfinite(tree.distance(req.target)):
            continue
        vertices, edge_ids = tree.path_to(req.target)
        ids = np.asarray(edge_ids, dtype=np.int64)
        if np.any(residual[ids] + 1e-12 < req.demand):
            continue
        residual[ids] -= req.demand
        routed.append(
            RoutedRequest(
                request_index=int(idx),
                request=req,
                vertices=vertices,
                edge_ids=edge_ids,
            )
        )

    stats = RunStats(
        iterations=len(order),
        shortest_path_calls=sp_calls,
        wall_time_s=time.perf_counter() - start,
    )
    return Allocation(instance=instance, routed=routed, stats=stats, algorithm=label)


def greedy_ufp_by_value(instance: UFPInstance) -> Allocation:
    """Admit requests in decreasing declared value.

    Ties are broken by request index, so the order is independent of the
    other agents' declarations given the value ranking.
    """
    values = instance.values_array()
    order = np.lexsort((np.arange(instance.num_requests), -values))
    return _greedy_ufp(instance, order, "Greedy-UFP[value]")


def greedy_ufp_by_density(instance: UFPInstance) -> Allocation:
    """Admit requests in decreasing value density ``v_r / d_r``."""
    density = np.array([r.density for r in instance.requests], dtype=np.float64)
    order = np.lexsort((np.arange(instance.num_requests), -density))
    return _greedy_ufp(instance, order, "Greedy-UFP[density]")


def _greedy_muca(instance: MUCAInstance, order: np.ndarray, label: str) -> MUCAAllocation:
    residual = instance.multiplicities.copy()
    start = time.perf_counter()
    winners: list[int] = []
    for idx in order:
        bid = instance.bids[int(idx)]
        ids = np.asarray(bid.bundle, dtype=np.int64)
        if np.all(residual[ids] + 1e-12 >= 1.0):
            residual[ids] -= 1.0
            winners.append(int(idx))
    stats = RunStats(iterations=len(order), wall_time_s=time.perf_counter() - start)
    return MUCAAllocation(instance=instance, winners=winners, stats=stats, algorithm=label)


def greedy_muca_by_value(instance: MUCAInstance) -> MUCAAllocation:
    """Accept bids in decreasing declared value whenever the bundle fits."""
    values = instance.values_array()
    order = np.lexsort((np.arange(instance.num_bids), -values))
    return _greedy_muca(instance, order, "Greedy-MUCA[value]")


def greedy_muca_by_density(instance: MUCAInstance) -> MUCAAllocation:
    """Accept bids in decreasing value per item ``v_r / |U_r|``."""
    density = np.array(
        [bid.value / bid.size for bid in instance.bids], dtype=np.float64
    )
    order = np.lexsort((np.arange(instance.num_bids), -density))
    return _greedy_muca(instance, order, "Greedy-MUCA[density]")

"""A Briest–Krysta–Vöcking style primal-dual baseline (approximation ~ e).

The paper compares its ``e/(e-1)`` guarantee against the previously best
truthful mechanism of Briest, Krysta and Vöcking (STOC 2005), described only
as "a monotone primal-dual based algorithm, motivated by the work of Garg and
Könemann, achieving an approximation guarantee that approaches e".  The
original algorithm is not reproduced verbatim here (the STOC'05 paper is a
separate artifact); instead this module reconstructs a member of the same
family with the same guarantee:

* it is the identical iterative normalized-shortest-path minimizer with the
  identical exponential weight update ``y_e *= exp(eps B d / c_e)``, but
* it stops at the **more conservative dual budget**
  ``sum_e c_e y_e <= e^{beta * eps * (B - 1)}`` with
  ``beta = -ln(1 - 1/e) ≈ 0.4587``.

Feasibility holds a fortiori (the budget is smaller than Algorithm 1's), the
algorithm is monotone by the same argument as Lemma 3.4, and rerunning the
Lemma 3.8 analysis with threshold ``e^{beta eps (B-1)}`` gives
``D/P <= 1 / (1 - e^{-beta}) + o(1) = e + o(1)`` — the BKV-type guarantee.
The reconstruction therefore preserves exactly the property the comparison
experiments need: a truthful primal-dual mechanism whose guarantee (and
empirical behaviour on the adversarial workloads) is a constant factor worse
because it commits to stopping earlier.  The substitution is recorded in
DESIGN.md.
"""

from __future__ import annotations

import math
import time

from repro.auctions.allocation import MUCAAllocation
from repro.auctions.instance import MUCAInstance
from repro.core.dual_state import DualWeights
from repro.exceptions import InvalidInstanceError
from repro.flows.allocation import Allocation, RoutedRequest
from repro.flows.instance import UFPInstance
from repro.graphs.shortest_path import single_source_dijkstra
from repro.types import RunStats

__all__ = ["BKV_STOP_FRACTION", "briest_style_ufp", "briest_style_muca"]

#: The stopping-threshold fraction ``beta`` for which the Lemma 3.8 analysis
#: yields a guarantee of ``1 / (1 - e^{-beta}) = e``.
BKV_STOP_FRACTION: float = -math.log(1.0 - 1.0 / math.e)


class _ConservativeDuals(DualWeights):
    """Dual weights whose budget limit is scaled down by ``beta``."""

    __slots__ = ("_beta",)

    def __init__(self, capacities, epsilon, *, beta: float, capacity_bound=None) -> None:
        super().__init__(capacities, epsilon, capacity_bound=capacity_bound)
        if not 0.0 < beta <= 1.0:
            raise ValueError("beta must lie in (0, 1]")
        self._beta = float(beta)

    @property
    def budget_limit(self) -> float:  # noqa: D401 - same semantics, scaled
        """The conservative threshold ``e^{beta * eps * (B - 1)}``."""
        return math.exp(self._beta * self.epsilon * (self.capacity_bound - 1.0))


def briest_style_ufp(
    instance: UFPInstance,
    epsilon: float,
    *,
    stop_fraction: float = BKV_STOP_FRACTION,
) -> Allocation:
    """Run the reconstructed BKV-style primal-dual UFP algorithm.

    Parameters
    ----------
    instance:
        The B-bounded instance (demands in ``(0, 1]``).
    epsilon:
        Accuracy parameter in ``(0, 1]``.
    stop_fraction:
        The fraction ``beta`` of the Algorithm 1 budget exponent at which to
        stop; the default reproduces the ``e``-type guarantee.  ``1.0``
        recovers ``Bounded-UFP`` exactly, which makes this function the
        natural vehicle for the stopping-rule ablation of experiment E8.
    """
    if not 0.0 < float(epsilon) <= 1.0:
        raise ValueError("epsilon must lie in (0, 1]")
    if instance.num_edges == 0:
        raise InvalidInstanceError("the instance graph has no edges")
    if instance.num_requests and instance.max_demand > 1.0 + 1e-12:
        raise InvalidInstanceError("demands must be normalized to (0, 1]")

    graph = instance.graph
    start = time.perf_counter()
    duals = _ConservativeDuals(graph.capacities, float(epsilon), beta=float(stop_fraction))

    pool: set[int] = set(range(instance.num_requests))
    routed: list[RoutedRequest] = []
    iterations = 0
    sp_calls = 0
    stopped_by_budget = False

    while pool:
        if not duals.within_budget:
            stopped_by_budget = True
            break
        weights = duals.weights
        by_source: dict[int, list[int]] = {}
        for idx in pool:
            by_source.setdefault(instance.requests[idx].source, []).append(idx)

        best_idx = -1
        best_score = math.inf
        best_path = None
        unreachable: list[int] = []
        for source in sorted(by_source):
            idxs = by_source[source]
            targets = {instance.requests[i].target for i in idxs}
            tree = single_source_dijkstra(graph, source, weights, targets=targets)
            sp_calls += 1
            for i in sorted(idxs):
                req = instance.requests[i]
                if not tree.reachable(req.target):
                    unreachable.append(i)
                    continue
                score = req.demand / req.value * tree.distance(req.target)
                if score < best_score - 1e-15:
                    best_score = score
                    best_idx = i
                    best_path = tree.path_to(req.target)
        for i in unreachable:
            pool.discard(i)
        if best_idx < 0:
            break
        req = instance.requests[best_idx]
        vertices, edge_ids = best_path  # type: ignore[misc]
        duals.apply_selection(edge_ids, req.demand)
        routed.append(
            RoutedRequest(
                request_index=best_idx, request=req, vertices=vertices, edge_ids=edge_ids
            )
        )
        pool.discard(best_idx)
        iterations += 1

    stats = RunStats(
        iterations=iterations,
        shortest_path_calls=sp_calls,
        stopped_by_budget=stopped_by_budget,
        wall_time_s=time.perf_counter() - start,
        extra={"stop_fraction": float(stop_fraction), "epsilon": float(epsilon)},
    )
    return Allocation(
        instance=instance,
        routed=routed,
        stats=stats,
        algorithm=f"BKV-style-UFP(eps={float(epsilon):g}, beta={float(stop_fraction):.3f})",
    )


def briest_style_muca(
    instance: MUCAInstance,
    epsilon: float,
    *,
    stop_fraction: float = BKV_STOP_FRACTION,
) -> MUCAAllocation:
    """The auction analogue of :func:`briest_style_ufp`."""
    if not 0.0 < float(epsilon) <= 1.0:
        raise ValueError("epsilon must lie in (0, 1]")
    start = time.perf_counter()
    duals = _ConservativeDuals(
        instance.multiplicities, float(epsilon), beta=float(stop_fraction)
    )
    pool: set[int] = set(range(instance.num_bids))
    winners: list[int] = []
    iterations = 0
    stopped_by_budget = False

    while pool:
        if not duals.within_budget:
            stopped_by_budget = True
            break
        best_idx = -1
        best_score = math.inf
        for i in sorted(pool):
            bid = instance.bids[i]
            score = duals.path_length(bid.bundle) / bid.value
            if score < best_score - 1e-15:
                best_score = score
                best_idx = i
        if best_idx < 0:  # pragma: no cover
            break
        duals.apply_selection(instance.bids[best_idx].bundle, 1.0)
        winners.append(best_idx)
        pool.discard(best_idx)
        iterations += 1

    stats = RunStats(
        iterations=iterations,
        stopped_by_budget=stopped_by_budget,
        wall_time_s=time.perf_counter() - start,
        extra={"stop_fraction": float(stop_fraction), "epsilon": float(epsilon)},
    )
    return MUCAAllocation(
        instance=instance,
        winners=winners,
        stats=stats,
        algorithm=f"BKV-style-MUCA(eps={float(epsilon):g}, beta={float(stop_fraction):.3f})",
    )

"""Exact (exponential-time) solvers for small instances.

Exact optima are needed as ground truth in unit tests and in the small-scale
cells of the comparison experiment: the fractional LP only gives an upper
bound, while these solvers give the true integral optimum — at exponential
cost, so they enforce explicit size limits rather than silently running
forever.

* :func:`exact_ufp` enumerates the simple paths of every request (with a
  configurable cap) and runs a depth-first branch-and-bound over
  "skip or route along one of the paths" decisions, pruning with the sum of
  remaining values.
* :func:`exact_muca` runs the analogous branch-and-bound over bids.
"""

from __future__ import annotations

import time

import networkx as nx
import numpy as np

from repro.auctions.allocation import MUCAAllocation
from repro.auctions.instance import MUCAInstance
from repro.exceptions import InvalidInstanceError
from repro.flows.allocation import Allocation, RoutedRequest
from repro.flows.instance import UFPInstance
from repro.graphs.generators import to_networkx
from repro.graphs.paths import path_edge_ids
from repro.types import RunStats

__all__ = ["exact_ufp", "exact_muca"]


def exact_ufp(
    instance: UFPInstance,
    *,
    max_requests: int = 18,
    max_paths_per_request: int = 60,
    max_path_hops: int | None = None,
) -> Allocation:
    """Optimal unsplittable flow by branch-and-bound over path choices.

    Parameters
    ----------
    instance:
        The instance; must have at most ``max_requests`` requests.
    max_requests:
        Safety limit — the search is exponential in the number of requests.
    max_paths_per_request:
        Cap on enumerated simple paths per request; if a request has more,
        only the first ``max_paths_per_request`` (in networkx enumeration
        order) are considered, which can make the result an underestimate.
        The limit is generous for the small graphs this is meant for.
    max_path_hops:
        Optional cutoff on path length (edges) during enumeration.

    Returns
    -------
    Allocation
        An optimal feasible allocation (ties broken arbitrarily).
    """
    if instance.num_requests > int(max_requests):
        raise InvalidInstanceError(
            f"exact_ufp limited to {max_requests} requests; got {instance.num_requests}"
        )
    graph = instance.graph
    start = time.perf_counter()
    nxg = to_networkx(graph)

    # Enumerate candidate paths per request.
    candidate_paths: list[list[tuple[tuple[int, ...], tuple[int, ...]]]] = []
    for req in instance.requests:
        paths: list[tuple[tuple[int, ...], tuple[int, ...]]] = []
        if nx.has_path(nxg, req.source, req.target):
            for vertices in nx.all_simple_paths(
                nxg, req.source, req.target, cutoff=max_path_hops
            ):
                vertices = tuple(int(v) for v in vertices)
                paths.append((vertices, path_edge_ids(graph, vertices)))
                if len(paths) >= int(max_paths_per_request):
                    break
        candidate_paths.append(paths)

    # Order requests by decreasing value so good solutions are found early
    # and the bound prunes aggressively.
    order = sorted(range(instance.num_requests), key=lambda i: -instance.requests[i].value)
    suffix_value = np.zeros(instance.num_requests + 1, dtype=np.float64)
    for pos in range(instance.num_requests - 1, -1, -1):
        suffix_value[pos] = suffix_value[pos + 1] + instance.requests[order[pos]].value

    capacities = graph.capacities
    best_value = -1.0
    best_choice: list[tuple[int, int]] = []  # (request index, path position)
    current: list[tuple[int, int]] = []
    residual = capacities.copy()
    nodes_explored = 0

    def recurse(pos: int, value: float) -> None:
        nonlocal best_value, best_choice, nodes_explored
        nodes_explored += 1
        if value > best_value:
            best_value = value
            best_choice = list(current)
        if pos >= len(order):
            return
        if value + suffix_value[pos] <= best_value + 1e-12:
            return  # cannot beat the incumbent
        idx = order[pos]
        req = instance.requests[idx]
        # Branch 1..k: route along each candidate path that still fits.
        for path_pos, (_, edge_ids) in enumerate(candidate_paths[idx]):
            ids = np.asarray(edge_ids, dtype=np.int64)
            if np.any(residual[ids] + 1e-12 < req.demand):
                continue
            residual[ids] -= req.demand
            current.append((idx, path_pos))
            recurse(pos + 1, value + req.value)
            current.pop()
            residual[ids] += req.demand
        # Branch 0: skip the request.
        recurse(pos + 1, value)

    recurse(0, 0.0)

    routed = [
        RoutedRequest(
            request_index=idx,
            request=instance.requests[idx],
            vertices=candidate_paths[idx][path_pos][0],
            edge_ids=candidate_paths[idx][path_pos][1],
        )
        for idx, path_pos in best_choice
    ]
    stats = RunStats(
        iterations=nodes_explored,
        wall_time_s=time.perf_counter() - start,
        extra={"nodes_explored": float(nodes_explored)},
    )
    return Allocation(instance=instance, routed=routed, stats=stats, algorithm="Exact-UFP")


def exact_muca(
    instance: MUCAInstance,
    *,
    max_bids: int = 24,
) -> MUCAAllocation:
    """Optimal multi-unit auction allocation by branch-and-bound over bids."""
    if instance.num_bids > int(max_bids):
        raise InvalidInstanceError(
            f"exact_muca limited to {max_bids} bids; got {instance.num_bids}"
        )
    start = time.perf_counter()
    order = sorted(range(instance.num_bids), key=lambda i: -instance.bids[i].value)
    suffix_value = np.zeros(instance.num_bids + 1, dtype=np.float64)
    for pos in range(instance.num_bids - 1, -1, -1):
        suffix_value[pos] = suffix_value[pos + 1] + instance.bids[order[pos]].value

    residual = instance.multiplicities.copy()
    best_value = -1.0
    best_set: list[int] = []
    current: list[int] = []
    nodes_explored = 0

    def recurse(pos: int, value: float) -> None:
        nonlocal best_value, best_set, nodes_explored
        nodes_explored += 1
        if value > best_value:
            best_value = value
            best_set = list(current)
        if pos >= len(order):
            return
        if value + suffix_value[pos] <= best_value + 1e-12:
            return
        idx = order[pos]
        bid = instance.bids[idx]
        ids = np.asarray(bid.bundle, dtype=np.int64)
        if np.all(residual[ids] + 1e-12 >= 1.0):
            residual[ids] -= 1.0
            current.append(idx)
            recurse(pos + 1, value + bid.value)
            current.pop()
            residual[ids] += 1.0
        recurse(pos + 1, value)

    recurse(0, 0.0)

    stats = RunStats(
        iterations=nodes_explored,
        wall_time_s=time.perf_counter() - start,
        extra={"nodes_explored": float(nodes_explored)},
    )
    return MUCAAllocation(
        instance=instance, winners=best_set, stats=stats, algorithm="Exact-MUCA"
    )

"""Baseline algorithms the paper compares against (or motivates against).

* :mod:`repro.baselines.greedy` — greedy by value / by density for UFP and
  MUCA: simple, monotone-in-value but with no constant-factor guarantee in
  the large-capacity regime.
* :mod:`repro.baselines.briest` — a reconstruction of the Briest, Krysta and
  Vöcking (STOC'05) style primal-dual baseline whose guarantee approaches
  ``e``; see the module docstring for exactly what is reconstructed and why.
* :mod:`repro.baselines.randomized_rounding` — the Raghavan–Thompson
  randomized rounding of the fractional LP: near-optimal for large B but
  *not monotone*, which is the paper's motivation for a different technique.
* :mod:`repro.baselines.exact` — exact (exponential-time) solvers for small
  instances, used as ground truth in tests and small-scale experiments.
"""

from repro.baselines.greedy import (
    greedy_ufp_by_value,
    greedy_ufp_by_density,
    greedy_muca_by_value,
    greedy_muca_by_density,
)
from repro.baselines.briest import briest_style_ufp, briest_style_muca
from repro.baselines.randomized_rounding import (
    randomized_rounding_ufp,
    randomized_rounding_muca,
)
from repro.baselines.exact import exact_ufp, exact_muca

__all__ = [
    "greedy_ufp_by_value",
    "greedy_ufp_by_density",
    "greedy_muca_by_value",
    "greedy_muca_by_density",
    "briest_style_ufp",
    "briest_style_muca",
    "randomized_rounding_ufp",
    "randomized_rounding_muca",
    "exact_ufp",
    "exact_muca",
]

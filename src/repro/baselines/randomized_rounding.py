"""Randomized rounding of the fractional LP (Raghavan–Thompson).

For ``B = Omega(ln m / eps^2)`` the classical technique — solve the
fractional relaxation, scale it down by ``(1 - eps)`` and round each request
independently (selecting path ``s`` with probability proportional to its
fractional weight) — yields a ``(1 + eps)``-approximation with high
probability.  The paper's point is that this near-optimal algorithm is *not
monotone* (a request that raises its value can change the LP solution and the
coin flips in a way that turns it from a winner into a loser), so it cannot
be used as a truthful mechanism; experiment E4/E8 demonstrates both facts
empirically: near-optimal value, failed monotonicity audit.

Two safety nets keep the output feasible on every run (the classical
analysis only gives feasibility with high probability):

* the fractional solution is scaled by ``1 - eps`` before rounding, and
* requests whose rounded path would overflow an edge are dropped in rounding
  order (a standard alteration step).
"""

from __future__ import annotations

import time

import numpy as np

from repro.auctions.allocation import MUCAAllocation
from repro.auctions.instance import MUCAInstance
from repro.flows.allocation import Allocation, RoutedRequest
from repro.flows.instance import UFPInstance
from repro.lp.fractional_muca import solve_fractional_muca
from repro.lp.path_lp import solve_path_lp
from repro.types import RunStats
from repro.utils.prng import ensure_rng

__all__ = ["randomized_rounding_ufp", "randomized_rounding_muca"]


def randomized_rounding_ufp(
    instance: UFPInstance,
    epsilon: float = 0.1,
    *,
    seed: int | np.random.Generator | None = None,
    drop_violators: bool = True,
) -> Allocation:
    """Randomized rounding of the path LP.

    Parameters
    ----------
    instance:
        The UFP instance.
    epsilon:
        Scaling parameter: each request is selected with probability
        ``(1 - eps) * sum_s x_s`` and, if selected, routed along path ``s``
        with probability proportional to ``x_s``.
    seed:
        Randomness source (the rounding is inherently randomized — which is
        precisely why it cannot be derandomized into a monotone rule by
        simple means).
    drop_violators:
        Apply the alteration step that drops any rounded request whose path
        would exceed a capacity.  Disable only to observe raw rounding.
    """
    if not 0.0 < float(epsilon) < 1.0:
        raise ValueError("epsilon must lie in (0, 1)")
    rng = ensure_rng(seed)
    start = time.perf_counter()

    lp = solve_path_lp(instance)
    graph = instance.graph
    residual = graph.capacities.copy()
    routed: list[RoutedRequest] = []

    for idx, req in enumerate(instance.requests):
        distribution = lp.path_distribution(idx)
        if not distribution:
            continue
        total = sum(weight for _, weight in distribution)
        accept_probability = (1.0 - float(epsilon)) * min(total, 1.0)
        if rng.random() >= accept_probability:
            continue
        weights = np.array([w for _, w in distribution], dtype=np.float64)
        weights = weights / weights.sum()
        choice = int(rng.choice(len(distribution), p=weights))
        column = distribution[choice][0]
        ids = np.asarray(column.edge_ids, dtype=np.int64)
        if drop_violators and np.any(residual[ids] + 1e-12 < req.demand):
            continue
        residual[ids] -= req.demand
        routed.append(
            RoutedRequest(
                request_index=idx,
                request=req,
                vertices=column.vertices,
                edge_ids=column.edge_ids,
            )
        )

    stats = RunStats(
        iterations=instance.num_requests,
        wall_time_s=time.perf_counter() - start,
        extra={"lp_objective": lp.objective, "epsilon": float(epsilon)},
    )
    return Allocation(
        instance=instance,
        routed=routed,
        stats=stats,
        algorithm=f"RandomizedRounding-UFP(eps={float(epsilon):g})",
    )


def randomized_rounding_muca(
    instance: MUCAInstance,
    epsilon: float = 0.1,
    *,
    seed: int | np.random.Generator | None = None,
    drop_violators: bool = True,
) -> MUCAAllocation:
    """Randomized rounding of the fractional auction LP."""
    if not 0.0 < float(epsilon) < 1.0:
        raise ValueError("epsilon must lie in (0, 1)")
    rng = ensure_rng(seed)
    start = time.perf_counter()

    lp = solve_fractional_muca(instance)
    residual = instance.multiplicities.copy()
    winners: list[int] = []
    for idx, bid in enumerate(instance.bids):
        probability = (1.0 - float(epsilon)) * float(np.clip(lp.fractions[idx], 0.0, 1.0))
        if rng.random() >= probability:
            continue
        ids = np.asarray(bid.bundle, dtype=np.int64)
        if drop_violators and np.any(residual[ids] + 1e-12 < 1.0):
            continue
        residual[ids] -= 1.0
        winners.append(idx)

    stats = RunStats(
        iterations=instance.num_bids,
        wall_time_s=time.perf_counter() - start,
        extra={"lp_objective": lp.objective, "epsilon": float(epsilon)},
    )
    return MUCAAllocation(
        instance=instance,
        winners=winners,
        stats=stats,
        algorithm=f"RandomizedRounding-MUCA(eps={float(epsilon):g})",
    )

"""Numpy compute kernel: vectorized commit path, bit-identical by proof.

Two optimizations over the lists tier, both on the round-loop commit path
(profiling on ``payments_replay_medium`` puts ~60% of engine time in dual
updates plus tree-cache bookkeeping; the Dijkstra heap itself is
sequential and gains nothing from numpy, so this tier inherits it):

**Multiplier-table dual update.**  The reference computes
``y[ids] * np.exp(eps * B * d / caps[ids])`` per committed path.  Payment
bisections and trace replays apply the *same* ``(eps, B, d)`` triple
against the *same* capacity vector hundreds of times, so this tier
precomputes ``np.exp(eps * B * d / capacities)`` once over the whole
vector and gathers ``mult[ids]`` thereafter.  Bit-identity is not a hope
but a property: IEEE-754 division is correctly rounded per element, so
``(s / capacities)[ids] == s / capacities[ids]`` exactly, and numpy's
``exp`` ufunc is positionally stable (``np.exp(x)[ids] == np.exp(x[ids])``
— the same scalar routine is applied per element regardless of vector
shape; the kernel test suite re-verifies this on every run).  Tables live
in a module-global store keyed by capacity-vector identity with weakref
eviction, because the hot consumers (payment probes) build a *fresh*
``DualWeights`` per probe around a *shared* capacity array — a per-object
cache would miss every time.

**Bitmask invalidation index.**  The pricing engine's tree cache keeps,
per cached source, the set of edge ids its tree uses, and evicts trees
whose edges got repriced.  Python ints are arbitrary-width bit vectors
with C-speed bitwise ops, so this tier stores each tree's edge set as one
int mask and each invalidation as one OR + AND-scan, replacing the
reference's dict-of-sets churn (the other ~35% of the profile).  Only
bookkeeping changes — the *set* of evicted sources is provably equal, and
the caller still evicts in sorted order.
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.kernels.lists import ListsKernel, _bundle_scores, _iter_mask_bits

__all__ = ["NumpyKernel"]

#: Above this edge count a full-vector exp table costs more than the
#: per-path gathers it saves under typical path lengths; fall back to the
#: reference arithmetic (bit-identical either way, so the threshold is
#: purely a performance choice).
_TABLE_MAX_EDGES = 4096
#: Per-capacity-vector cap on distinct (epsilon, B, demand) tables.
_TABLE_MAX_ENTRIES = 128

# capacity-array id -> (weakref to the array, {(eps, B, demand): table}).
# Keyed by id() with a weakref finalizer so a freed capacity vector drops
# its tables; the finalizer double-checks identity to survive id reuse.
_TABLE_STORE: dict[int, tuple[weakref.ref, dict]] = {}


def _multiplier_table(capacities, epsilon, B, demand):
    key = id(capacities)
    entry = _TABLE_STORE.get(key)
    if entry is None or entry[0]() is not capacities:
        def _evict(_ref, _key=key):
            stored = _TABLE_STORE.get(_key)
            if stored is not None and stored[0]() is None:
                del _TABLE_STORE[_key]

        entry = (weakref.ref(capacities, _evict), {})
        _TABLE_STORE[key] = entry
    tables = entry[1]
    tkey = (epsilon, B, demand)
    table = tables.get(tkey)
    if table is None:
        if len(tables) >= _TABLE_MAX_ENTRIES:
            tables.clear()
        table = np.exp(epsilon * B * demand / capacities)
        tables[tkey] = table
    return table


class _BitmaskIndex:
    """Tree-cache invalidation index over Python-int bitmasks."""

    __slots__ = ("_tree_masks", "_union_mask")

    def __init__(self):
        self._tree_masks: dict[int, int] = {}
        # OR of all registered masks: lets a miss (the common case for
        # off-tree repricings) exit after one AND instead of a full scan.
        self._union_mask = 0

    def register(self, source: int, tree) -> None:
        mask = tree.edge_mask
        if mask is None:
            mask = 0
            for eid in tree.edge_set:
                mask |= 1 << eid
            tree.edge_mask = mask
        self._tree_masks[source] = mask
        self._union_mask |= mask

    def invalidate(self, edge_ids) -> list[int]:
        probe = 0
        for eid in edge_ids:
            probe |= 1 << eid
        if not (probe & self._union_mask):
            return []
        hit = [s for s, m in self._tree_masks.items() if m & probe]
        if hit:
            for source in hit:
                del self._tree_masks[source]
            union = 0
            for m in self._tree_masks.values():
                union |= m
            self._union_mask = union
        return sorted(hit)

    def discard(self, source: int) -> None:
        if self._tree_masks.pop(source, None) is not None:
            union = 0
            for m in self._tree_masks.values():
                union |= m
            self._union_mask = union

    def clear(self) -> None:
        self._tree_masks.clear()
        self._union_mask = 0

    def snapshot(self):
        return ("masks", tuple(sorted(self._tree_masks.items())))

    def restore(self, payload) -> None:
        self.clear()
        tag, entries = payload
        if tag == "masks":
            for source, mask in entries:
                self._tree_masks[source] = mask
                self._union_mask |= mask
        elif tag == "sets":
            for source, edge_set in entries:
                mask = 0
                for eid in edge_set:
                    mask |= 1 << eid
                self._tree_masks[source] = mask
                self._union_mask |= mask
        else:  # pragma: no cover - future-proofing
            raise ValueError(f"unknown invalidation snapshot tag {tag!r}")

    # Exposed for the parity tests (reconstructs the reference view).
    def edge_sets(self) -> dict[int, frozenset[int]]:
        return {
            s: frozenset(_iter_mask_bits(m)) for s, m in self._tree_masks.items()
        }


class NumpyKernel(ListsKernel):
    """Vectorized tier: reference Dijkstra, table-driven commit path."""

    name = "numpy"
    wants_weights_list = True

    def dual_update(self, y, capacities, ids, epsilon, B, demand):
        if capacities.shape[0] > _TABLE_MAX_EDGES:
            return super().dual_update(y, capacities, ids, epsilon, B, demand)
        mult = _multiplier_table(capacities, epsilon, B, demand)
        old = y[ids]
        new = old * mult[ids]
        y[ids] = new
        return float(capacities[ids] @ (new - old))

    def bundle_scores(self, weights, flat, starts, values):
        return _bundle_scores(weights, flat, starts, values)

    def make_invalidation_index(self):
        return _BitmaskIndex()

"""The unified compute-kernel layer: hot loops behind one registry.

Three inner loops dominate every auction round of this reproduction — the
array-heap Dijkstra (:func:`repro.graphs.shortest_path.dijkstra_lists`),
the exponential dual update of the commit path
(:meth:`repro.core.dual_state.DualWeights.apply_selection`) and the
vectorized CSR bundle scoring of the MUCA engine.  This package hoists all
three behind a process-global **kernel registry** mirroring the
shortest-path backend registry of :mod:`repro.graphs.shortest_path`:

* ``"lists"`` — today's pure-Python reference code, unchanged (the
  default).  Every other tier is tested bit-identical against it.
* ``"numpy"`` — always available.  Same Dijkstra loop (a sequential binary
  heap gains nothing from numpy), but two vectorized wins on the commit
  path: a *multiplier-table* dual update (the per-edge factors
  ``exp(eps B d / c_e)`` are precomputed over the whole capacity vector
  once per distinct demand and shared across runs on the same substrate —
  payment bisections replay the same demands hundreds of times) and a
  *bitmask invalidation index* for the pricing engine's tree cache
  (per-source edge sets become Python-int bitmasks; registering a tree is
  one dict store and invalidating a path is one AND-scan instead of
  dict-of-sets churn).
* ``"numba"`` — optional, auto-detected.  The array-heap Dijkstra is
  JIT-compiled over int64/float64 CSR arrays with the exact relaxation
  arithmetic and ``(dist, vertex)`` tie-breaking of the lists loop; the
  commit path reuses the numpy tier's vectorized arithmetic (an
  independently JIT-compiled ``exp``/dot could round differently, and the
  determinism contract outranks the last factor of speed).  When numba is
  not importable the registry **silently falls back to numpy** — selecting
  ``REPRO_KERNEL=numba`` on a numba-less host must never fail a run.

Determinism contract
--------------------
All tiers are **bit-identical** on every output the test suite pins:
allocations, payments, trace replays and campaign-store content hashes,
across both shortest-path backends, with and without tracing, at any
``jobs=``.  The numpy tier's two optimizations preserve bits by
construction: IEEE division is correctly rounded per element and numpy's
``exp`` ufunc is positionally stable (``np.exp(x)[ids] ==
np.exp(x[ids])``, verified by the kernel test suite), so gathering from a
full-vector multiplier table equals the reference's per-path computation;
the bitmask index changes only *bookkeeping*, never which trees are
evicted.  ``math.exp`` is forbidden in every tier — it disagrees with
``np.exp`` in the last ulp on a few percent of inputs.

Selection mirrors the SP-backend contract: :func:`set_kernel` /
:func:`use_kernel` / the ``REPRO_KERNEL`` environment variable, with an
explicit choice (programmatic or ``--kernel``) always beating the
environment, including inside ``pmap`` workers (the parent resolves the
kernel pre-fork and ships it, exactly as it ships the SP backend).
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager

from repro.kernels.lists import ListsKernel
from repro.kernels.numpy_tier import NumpyKernel

__all__ = [
    "KERNEL_ENV_VAR",
    "available_kernels",
    "get_kernel",
    "set_kernel",
    "set_kernel_from_cli",
    "use_kernel",
    "kernel_available",
]

#: Environment variable consulted for the initial kernel selection.
KERNEL_ENV_VAR = "REPRO_KERNEL"

_LISTS_KERNEL = ListsKernel()
_NUMPY_KERNEL = NumpyKernel()

_active_kernel = None


def _make_kernel(name: str):
    if name == "lists":
        return _LISTS_KERNEL
    if name == "numpy":
        return _NUMPY_KERNEL
    if name == "numba":
        from repro.kernels.numba_tier import load_numba_kernel

        return load_numba_kernel()  # raises ImportError when numba is absent
    raise KeyError(
        f"unknown compute kernel {name!r}; available: {available_kernels()}"
    )


def available_kernels() -> list[str]:
    """Registered kernel names (``"numba"`` listed even if numba is absent;
    explicitly selecting it then raises, env resolution falls back)."""
    return ["lists", "numba", "numpy"]


def kernel_available(name: str) -> bool:
    """Whether ``set_kernel(name)`` would succeed in this environment."""
    try:
        _make_kernel(str(name).strip().lower())
    except (KeyError, ImportError):
        return False
    return True


def get_kernel():
    """The active kernel instance, resolving ``REPRO_KERNEL`` on first use.

    Env-var resolution is forgiving, so an inherited environment can never
    break a run: an unknown name warns and falls back to ``"lists"``;
    ``"numba"`` without numba installed falls back **silently** to the
    numpy tier (same bits, no JIT) — that silent downgrade is part of the
    kernel contract and is exercised by the test suite.
    """
    global _active_kernel
    if _active_kernel is None:
        name = os.environ.get(KERNEL_ENV_VAR, "lists").strip().lower() or "lists"
        try:
            set_kernel(name)
        except KeyError as exc:
            warnings.warn(
                f"{KERNEL_ENV_VAR}={name!r} unknown ({exc}); using 'lists'",
                stacklevel=2,
            )
            _active_kernel = _LISTS_KERNEL
        except ImportError:
            # numba requested but not importable: the numpy tier is the
            # drop-in replacement (bit-identical, always available).
            _active_kernel = _NUMPY_KERNEL
    return _active_kernel


def set_kernel(name: str):
    """Select the process-global compute kernel by name.

    Returns the kernel instance.  Raises ``KeyError`` for unknown names and
    ``ImportError`` when the numba tier is requested without numba — the
    explicit API fails fast; only *env-var* resolution falls back.
    """
    global _active_kernel
    _active_kernel = _make_kernel(str(name).strip().lower())
    return _active_kernel


def set_kernel_from_cli(name: str, parser) -> None:
    """:func:`set_kernel` with argparse-friendly error reporting.

    Shared by the experiments and scenarios CLIs' ``--kernel`` flags: an
    explicit argument always beats an inherited ``REPRO_KERNEL``; an
    unknown or unavailable kernel exits via ``parser.error``.
    """
    try:
        set_kernel(name)
    except (KeyError, ImportError) as exc:
        parser.error(str(exc))


@contextmanager
def use_kernel(name: str):
    """Context manager form of :func:`set_kernel` (restores the previous
    kernel on exit) — the parity tests' workhorse."""
    global _active_kernel
    previous = get_kernel()
    set_kernel(name)
    try:
        yield _active_kernel
    finally:
        _active_kernel = previous

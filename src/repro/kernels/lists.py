"""Reference compute kernel: the seed's pure-Python hot loops, verbatim.

This tier *is* the specification.  The numpy and numba tiers are accepted
only because the parity suite shows them bit-identical to the outputs of
this module on the pinned fuzz corpus; any future kernel must clear the
same bar.  Nothing here is new code — the Dijkstra wrapper delegates to
:func:`repro.graphs.shortest_path.dijkstra_lists`, and the dual-update /
bundle-scoring bodies are the exact expressions hoisted out of
``DualWeights.apply_selection`` and ``BundlePricingEngine.__init__``.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.shortest_path import dijkstra_lists

__all__ = ["ListsKernel"]


def _bundle_scores(weights, flat, starts, values):
    """Per-bundle price/value scores over the flattened CSR bundle layout.

    Shared by every tier: ``np.add.reduceat`` already walks the flat edge
    array in one C pass, and the ``* (1.0 - 1e-9)`` shave (which keeps a
    bundle whose price sits exactly at its value admissible) must use the
    same single rounding in all tiers.
    """
    prices = np.add.reduceat(weights[flat], starts)
    return (prices / values) * (1.0 - 1e-9)


class _EdgeSetIndex:
    """Reference invalidation index for the pricing engine's tree cache.

    Maps each cached shortest-path tree to the set of edge ids it uses and
    each edge id to the sources whose trees use it — the seed's
    ``_edge_sources`` bookkeeping, extracted behind the index protocol so
    the numpy tier can swap in a bitmask representation.
    """

    __slots__ = ("_edge_sources", "_tree_edges")

    def __init__(self):
        self._edge_sources: dict[int, set[int]] = {}
        self._tree_edges: dict[int, frozenset[int]] = {}

    def register(self, source: int, tree) -> None:
        """Index ``tree`` for ``source``.  The engine contract is that
        ``source`` is not currently indexed (its previous tree, if any, was
        evicted through :meth:`invalidate`/:meth:`discard` first)."""
        edge_set = tree.edge_set
        self._tree_edges[source] = edge_set
        for eid in edge_set:
            self._edge_sources.setdefault(eid, set()).add(source)

    def invalidate(self, edge_ids) -> list[int]:
        """Sources whose trees touch any of ``edge_ids``; drops them from
        the index.  The caller evicts the trees and bumps epochs."""
        hit: set[int] = set()
        for eid in edge_ids:
            sources = self._edge_sources.get(eid)
            if sources:
                hit |= sources
        for source in hit:
            for eid in self._tree_edges.pop(source, ()):  # pragma: no branch
                sources = self._edge_sources.get(eid)
                if sources is not None:
                    sources.discard(source)
                    if not sources:
                        del self._edge_sources[eid]
        return sorted(hit)

    def discard(self, source: int) -> None:
        for eid in self._tree_edges.pop(source, ()):
            sources = self._edge_sources.get(eid)
            if sources is not None:
                sources.discard(source)
                if not sources:
                    del self._edge_sources[eid]

    def clear(self) -> None:
        self._edge_sources.clear()
        self._tree_edges.clear()

    def snapshot(self):
        """Immutable checkpoint payload (tagged so either index flavor can
        restore from either snapshot)."""
        return (
            "sets",
            tuple(sorted((s, es) for s, es in self._tree_edges.items())),
        )

    def restore(self, payload) -> None:
        self.clear()
        tag, entries = payload
        if tag == "sets":
            for source, edge_set in entries:
                self._tree_edges[source] = frozenset(edge_set)
                for eid in self._tree_edges[source]:
                    self._edge_sources.setdefault(eid, set()).add(source)
        elif tag == "masks":
            for source, mask in entries:
                edge_set = frozenset(_iter_mask_bits(mask))
                self._tree_edges[source] = edge_set
                for eid in edge_set:
                    self._edge_sources.setdefault(eid, set()).add(source)
        else:  # pragma: no cover - future-proofing
            raise ValueError(f"unknown invalidation snapshot tag {tag!r}")


def _iter_mask_bits(mask: int):
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class ListsKernel:
    """The pure-Python reference tier (always available, the default)."""

    name = "lists"
    #: Whether :meth:`dijkstra` wants the pre-materialised ``weights_list``
    #: (callers that cache ``weights.tolist()`` pass it through; array
    #: tiers set this False and take the ndarray directly).
    wants_weights_list = True

    def dijkstra(self, graph, weights, weights_list, source, targets=None):
        """One shortest-path tree as parallel Python lists.

        ``weights`` is the float64 dual vector, ``weights_list`` its
        ``tolist()`` form (computed here when the caller has not cached
        it).  Returns ``(dist, parent_vertex, parent_edge)`` exactly as
        :func:`dijkstra_lists` does.
        """
        indptr, heads, eids = graph.csr_lists()
        w = weights_list if weights_list is not None else weights.tolist()
        return dijkstra_lists(
            graph.num_vertices, indptr, heads, eids, w, source, targets
        )

    def dual_update(self, y, capacities, ids, epsilon, B, demand):
        """Apply the multiplicative dual update in place; returns the
        budget increment ``sum c_e (y_e' - y_e)`` as a float."""
        caps = capacities[ids]
        old = y[ids]
        new = old * np.exp(epsilon * B * demand / caps)
        y[ids] = new
        return float(caps @ (new - old))

    def bundle_scores(self, weights, flat, starts, values):
        return _bundle_scores(weights, flat, starts, values)

    def make_invalidation_index(self):
        return _EdgeSetIndex()

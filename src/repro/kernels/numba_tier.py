"""Numba compute kernel: JIT-compiled array-heap Dijkstra (optional tier).

Importing this module raises ``ImportError`` when numba is absent; the
registry turns that into a silent numpy fallback for env-var resolution
and a fast failure for explicit :func:`repro.kernels.set_kernel` calls.

Bit-identity argument
---------------------
The JIT loop mirrors :func:`repro.graphs.shortest_path.dijkstra_lists`
statement for statement: the relaxation is the same two-operand float64
sum ``nd = d + w[eid]`` (no reassociation, no fma — numba is configured
without ``fastmath``), parents overwrite only on strict improvement, and
the heap orders entries by ``(dist, vertex)`` exactly as ``heapq`` orders
the reference's tuples.  The pushed entries of one run are *distinct* as
pairs (a vertex is re-pushed only on a strict distance improvement), so
the pop sequence of any conforming binary heap is the unique sorted order
of the live entries — implementation differences in sift details cannot
change which vertex settles next, hence every ``nd`` is computed from the
same operands in the same order as the reference.  The parity suite
re-checks this on the pinned corpus whenever numba is present.

The commit-path methods (dual update, bundle scoring, invalidation index)
are inherited from the numpy tier unchanged: re-deriving ``exp`` inside a
JIT region could round differently from numpy's ufunc, and the
determinism contract outranks the last factor of speed there.
"""

from __future__ import annotations

import numpy as np

try:
    from numba import njit
except ImportError as _exc:  # pragma: no cover - exercised only sans numba
    raise ImportError(
        "the 'numba' compute kernel requires the optional numba dependency "
        "(pip install 'repro-bounded-ufp[numba]')"
    ) from _exc

from repro.graphs.shortest_path import dijkstra_lists
from repro.kernels.numpy_tier import NumpyKernel

__all__ = ["NumbaKernel", "load_numba_kernel"]

_CSR_CACHE_KEY = "kernels/numba_csr"


@njit(cache=False)
def _dijkstra_arrays(n, indptr, heads, eids, w, source):  # pragma: no cover
    inf = np.inf
    dist = np.full(n, inf, dtype=np.float64)
    parent_vertex = np.full(n, -1, dtype=np.int64)
    parent_edge = np.full(n, -1, dtype=np.int64)
    settled = np.zeros(n, dtype=np.uint8)

    cap = heads.shape[0] + 1
    heap_d = np.empty(cap, dtype=np.float64)
    heap_v = np.empty(cap, dtype=np.int64)
    size = 0

    dist[source] = 0.0
    heap_d[0] = 0.0
    heap_v[0] = source
    size = 1

    while size > 0:
        d = heap_d[0]
        u = heap_v[0]
        # Pop: move the last entry to the root and sift down under the
        # (dist, vertex) lexicographic order heapq uses on tuples.
        size -= 1
        if size > 0:
            ld = heap_d[size]
            lv = heap_v[size]
            pos = 0
            while True:
                child = 2 * pos + 1
                if child >= size:
                    break
                right = child + 1
                if right < size and (
                    heap_d[right] < heap_d[child]
                    or (heap_d[right] == heap_d[child] and heap_v[right] < heap_v[child])
                ):
                    child = right
                if heap_d[child] < ld or (heap_d[child] == ld and heap_v[child] < lv):
                    heap_d[pos] = heap_d[child]
                    heap_v[pos] = heap_v[child]
                    pos = child
                else:
                    break
            heap_d[pos] = ld
            heap_v[pos] = lv

        if settled[u]:
            continue
        settled[u] = 1
        for k in range(indptr[u], indptr[u + 1]):
            v = heads[k]
            if settled[v]:
                continue
            nd = d + w[eids[k]]
            if nd < dist[v]:
                dist[v] = nd
                parent_vertex[v] = u
                parent_edge[v] = eids[k]
                # Push (nd, v): sift up under the same lexicographic order.
                pos = size
                size += 1
                while pos > 0:
                    parent = (pos - 1) // 2
                    if nd < heap_d[parent] or (
                        nd == heap_d[parent] and v < heap_v[parent]
                    ):
                        heap_d[pos] = heap_d[parent]
                        heap_v[pos] = heap_v[parent]
                        pos = parent
                    else:
                        break
                heap_d[pos] = nd
                heap_v[pos] = v

    return dist, parent_vertex, parent_edge


def _csr_arrays(graph):
    cached = graph.substrate_cache.get(_CSR_CACHE_KEY)
    if cached is None:
        indptr, heads, eids = graph.csr_lists()
        cached = (
            np.asarray(indptr, dtype=np.int64),
            np.asarray(heads, dtype=np.int64),
            np.asarray(eids, dtype=np.int64),
        )
        graph.substrate_cache[_CSR_CACHE_KEY] = cached
    return cached


class NumbaKernel(NumpyKernel):
    """JIT tier: compiled Dijkstra, numpy commit path."""

    name = "numba"
    # Takes the float64 weight vector directly; callers skip the
    # weights.tolist() materialisation entirely under this tier.
    wants_weights_list = False

    def dijkstra(self, graph, weights, weights_list, source, targets=None):
        if targets is not None:
            # The early-exit path is cold (payment probes and the partition
            # solver ask for full trees); keep the reference loop rather
            # than carrying a second JIT specialization.
            indptr, heads, eids = graph.csr_lists()
            w = weights_list if weights_list is not None else weights.tolist()
            return dijkstra_lists(
                graph.num_vertices, indptr, heads, eids, w, source, targets
            )
        indptr, heads, eids = _csr_arrays(graph)
        w = np.ascontiguousarray(weights, dtype=np.float64)
        dist, pv, pe = _dijkstra_arrays(
            graph.num_vertices, indptr, heads, eids, w, source
        )
        return dist.tolist(), pv.tolist(), pe.tolist()


_KERNEL = None


def load_numba_kernel() -> NumbaKernel:
    global _KERNEL
    if _KERNEL is None:
        _KERNEL = NumbaKernel()
    return _KERNEL

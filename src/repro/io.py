"""JSON (de)serialization of instances and allocations.

Experiments and downstream users need to persist workloads and results:
benchmark instances are generated once and reused, allocations are archived
next to the EXPERIMENTS.md numbers they produced, and bug reports attach the
exact instance that triggered them.  This module provides a stable,
human-readable JSON schema for the three core object kinds:

* :class:`~repro.flows.instance.UFPInstance` (graph + requests + metadata),
* :class:`~repro.auctions.instance.MUCAInstance` (multiplicities + bids),
* :class:`~repro.flows.allocation.Allocation` /
  :class:`~repro.auctions.allocation.MUCAAllocation` (references the
  instance by embedded copy, so a result file is self-contained).

The schema is versioned (``"schema"`` field) so future format changes can be
detected instead of mis-parsed.

Non-finite floats
-----------------
Metric payloads legitimately contain ``inf``/``nan`` —
:func:`repro.experiments.harness.ratio` returns ``math.inf`` when nothing
was achieved, and several experiment columns use ``nan`` for "not
measured".  Python's ``json.dumps`` emits the non-standard ``Infinity`` /
``NaN`` tokens for them, which strict JSON parsers (and most other
languages) reject.  Every file this module (and the
:mod:`repro.scenarios` result store) writes therefore encodes non-finite
floats as the sentinel strings :data:`INF_SENTINEL` /
:data:`NEG_INF_SENTINEL` / :data:`NAN_SENTINEL` via
:func:`encode_nonfinite`, serializes with ``allow_nan=False`` (so a leak
is an error, not a malformed file), and decodes them back on load.  The
sentinel strings are reserved: a user string equal to one of them would
decode as the float.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any

import numpy as np

from repro.auctions.allocation import MUCAAllocation
from repro.auctions.instance import Bid, MUCAInstance
from repro.exceptions import InvalidInstanceError
from repro.flows.allocation import Allocation, RoutedRequest
from repro.flows.instance import UFPInstance
from repro.flows.request import Request
from repro.graphs.graph import CapacitatedGraph

__all__ = [
    "SCHEMA_VERSION",
    "INF_SENTINEL",
    "NEG_INF_SENTINEL",
    "NAN_SENTINEL",
    "encode_nonfinite",
    "decode_nonfinite",
    "dumps_strict",
    "dumps_canonical",
    "loads_strict",
    "ufp_instance_to_dict",
    "ufp_instance_from_dict",
    "muca_instance_to_dict",
    "muca_instance_from_dict",
    "allocation_to_dict",
    "allocation_from_dict",
    "muca_allocation_to_dict",
    "muca_allocation_from_dict",
    "save_json",
    "load_json",
]

SCHEMA_VERSION = 1

#: Sentinel strings standing in for non-finite floats in serialized JSON.
INF_SENTINEL = "__repro_inf__"
NEG_INF_SENTINEL = "__repro_-inf__"
NAN_SENTINEL = "__repro_nan__"

_SENTINEL_TO_FLOAT = {
    INF_SENTINEL: math.inf,
    NEG_INF_SENTINEL: -math.inf,
    NAN_SENTINEL: math.nan,
}


def encode_nonfinite(value: Any) -> Any:
    """Recursively replace non-finite floats with their sentinel strings.

    Containers (dicts, lists, tuples) are rebuilt; everything else passes
    through untouched, so the result serializes with ``allow_nan=False``.
    """
    if isinstance(value, float):
        if math.isnan(value):
            return NAN_SENTINEL
        if math.isinf(value):
            return INF_SENTINEL if value > 0 else NEG_INF_SENTINEL
        return value
    if isinstance(value, dict):
        return {k: encode_nonfinite(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [encode_nonfinite(v) for v in value]
    return value


def decode_nonfinite(value: Any) -> Any:
    """Invert :func:`encode_nonfinite` (sentinel strings become floats)."""
    if isinstance(value, str):
        return _SENTINEL_TO_FLOAT.get(value, value)
    if isinstance(value, dict):
        return {k: decode_nonfinite(v) for k, v in value.items()}
    if isinstance(value, list):
        return [decode_nonfinite(v) for v in value]
    return value


def dumps_strict(payload: Any, **kwargs: Any) -> str:
    """``json.dumps`` with non-finite floats sentinel-encoded and
    ``allow_nan=False`` — the output never contains the non-standard
    ``Infinity``/``NaN`` tokens."""
    return json.dumps(encode_nonfinite(payload), allow_nan=False, **kwargs)


def dumps_canonical(payload: Any) -> str:
    """Canonical strict JSON (sorted keys, minimal separators) — the form
    the scenario result store hashes, so hashes are layout-independent."""
    return dumps_strict(payload, sort_keys=True, separators=(",", ":"))


def loads_strict(text: str) -> Any:
    """``json.loads`` plus :func:`decode_nonfinite` on the result."""
    return decode_nonfinite(json.loads(text))


# ---------------------------------------------------------------------- #
# UFP instances
# ---------------------------------------------------------------------- #
def ufp_instance_to_dict(instance: UFPInstance) -> dict[str, Any]:
    """Serialize a UFP instance (graph, requests, metadata) to plain dicts."""
    graph = instance.graph
    return {
        "schema": SCHEMA_VERSION,
        "kind": "ufp_instance",
        "name": instance.name,
        "graph": {
            "num_vertices": graph.num_vertices,
            "directed": graph.directed,
            "edges": [[u, v, c] for u, v, c in graph.edge_list()],
            **(
                {"disabled_edges": sorted(graph.disabled_edges)}
                if graph.disabled_edges
                else {}
            ),
        },
        "requests": [
            {
                "source": r.source,
                "target": r.target,
                "demand": r.demand,
                "value": r.value,
                "name": r.name,
            }
            for r in instance.requests
        ],
        "metadata": _jsonable(instance.metadata),
    }


def ufp_instance_from_dict(payload: dict[str, Any]) -> UFPInstance:
    """Rebuild a UFP instance from :func:`ufp_instance_to_dict` output."""
    _check_schema(payload, "ufp_instance")
    graph_payload = payload["graph"]
    graph = CapacitatedGraph(
        int(graph_payload["num_vertices"]),
        [(int(u), int(v), float(c)) for u, v, c in graph_payload["edges"]],
        directed=bool(graph_payload["directed"]),
        disabled_edges=[int(e) for e in graph_payload.get("disabled_edges", ())],
    )
    requests = [
        Request(
            int(r["source"]),
            int(r["target"]),
            float(r["demand"]),
            float(r["value"]),
            name=str(r.get("name", "")),
        )
        for r in payload["requests"]
    ]
    return UFPInstance(
        graph, requests, name=str(payload.get("name", "")), metadata=payload.get("metadata", {})
    )


# ---------------------------------------------------------------------- #
# Auction instances
# ---------------------------------------------------------------------- #
def muca_instance_to_dict(instance: MUCAInstance) -> dict[str, Any]:
    """Serialize a multi-unit auction instance."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": "muca_instance",
        "name": instance.name,
        "multiplicities": [float(c) for c in instance.multiplicities],
        "bids": [
            {"bundle": list(b.bundle), "value": b.value, "name": b.name}
            for b in instance.bids
        ],
        "metadata": _jsonable(instance.metadata),
    }


def muca_instance_from_dict(payload: dict[str, Any]) -> MUCAInstance:
    """Rebuild an auction instance from :func:`muca_instance_to_dict` output."""
    _check_schema(payload, "muca_instance")
    bids = [
        Bid(tuple(int(u) for u in b["bundle"]), float(b["value"]), name=str(b.get("name", "")))
        for b in payload["bids"]
    ]
    return MUCAInstance(
        np.asarray(payload["multiplicities"], dtype=np.float64),
        bids,
        name=str(payload.get("name", "")),
        metadata=payload.get("metadata", {}),
    )


# ---------------------------------------------------------------------- #
# Allocations
# ---------------------------------------------------------------------- #
def allocation_to_dict(allocation: Allocation) -> dict[str, Any]:
    """Serialize a UFP allocation together with the instance it solves."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": "ufp_allocation",
        "algorithm": allocation.algorithm,
        "instance": ufp_instance_to_dict(allocation.instance),
        "routed": [
            {
                "request_index": item.request_index,
                "vertices": list(item.vertices),
                "copies": item.copies,
            }
            for item in allocation.routed
        ],
        "value": allocation.value,
    }


def allocation_from_dict(payload: dict[str, Any]) -> Allocation:
    """Rebuild a UFP allocation; paths are re-validated against the graph."""
    _check_schema(payload, "ufp_allocation")
    instance = ufp_instance_from_dict(payload["instance"])
    routed_payload = payload.get("routed", [])
    allocation = Allocation.from_paths(
        instance,
        [(int(item["request_index"]), item["vertices"]) for item in routed_payload],
        copies=[int(item.get("copies", 1)) for item in routed_payload],
        algorithm=str(payload.get("algorithm", "")),
    )
    return allocation


def muca_allocation_to_dict(allocation: MUCAAllocation) -> dict[str, Any]:
    """Serialize an auction allocation together with its instance."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": "muca_allocation",
        "algorithm": allocation.algorithm,
        "instance": muca_instance_to_dict(allocation.instance),
        "winners": [int(w) for w in allocation.winners],
        "value": allocation.value,
    }


def muca_allocation_from_dict(payload: dict[str, Any]) -> MUCAAllocation:
    """Rebuild an auction allocation from its serialized form."""
    _check_schema(payload, "muca_allocation")
    instance = muca_instance_from_dict(payload["instance"])
    return MUCAAllocation.from_winners(
        instance, payload.get("winners", []), algorithm=str(payload.get("algorithm", ""))
    )


# ---------------------------------------------------------------------- #
# Files
# ---------------------------------------------------------------------- #
_SERIALIZERS = {
    UFPInstance: ufp_instance_to_dict,
    MUCAInstance: muca_instance_to_dict,
    Allocation: allocation_to_dict,
    MUCAAllocation: muca_allocation_to_dict,
}

_DESERIALIZERS = {
    "ufp_instance": ufp_instance_from_dict,
    "muca_instance": muca_instance_from_dict,
    "ufp_allocation": allocation_from_dict,
    "muca_allocation": muca_allocation_from_dict,
}


def save_json(obj: UFPInstance | MUCAInstance | Allocation | MUCAAllocation,
              path: str | Path) -> Path:
    """Write any supported object to ``path`` as pretty-printed JSON."""
    for cls, serializer in _SERIALIZERS.items():
        if isinstance(obj, cls):
            payload = serializer(obj)
            break
    else:
        raise TypeError(f"cannot serialize objects of type {type(obj)!r}")
    path = Path(path)
    path.write_text(dumps_strict(payload, indent=2, sort_keys=False))
    return path


def load_json(path: str | Path) -> UFPInstance | MUCAInstance | Allocation | MUCAAllocation:
    """Load any supported object previously written by :func:`save_json`."""
    payload = loads_strict(Path(path).read_text())
    kind = payload.get("kind")
    if kind not in _DESERIALIZERS:
        raise InvalidInstanceError(f"unknown or missing object kind {kind!r} in {path}")
    return _DESERIALIZERS[kind](payload)


# ---------------------------------------------------------------------- #
# Helpers
# ---------------------------------------------------------------------- #
def _check_schema(payload: dict[str, Any], expected_kind: str) -> None:
    if not isinstance(payload, dict):
        raise InvalidInstanceError("serialized payload must be a JSON object")
    schema = payload.get("schema")
    if schema != SCHEMA_VERSION:
        raise InvalidInstanceError(
            f"unsupported schema version {schema!r} (this build reads {SCHEMA_VERSION})"
        )
    kind = payload.get("kind")
    if kind != expected_kind:
        raise InvalidInstanceError(f"expected a {expected_kind!r} payload, got {kind!r}")


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of metadata values to JSON-safe types."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)

"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by the library derive from :class:`ReproError`, so
downstream code can catch a single base class.  Subclasses are intentionally
fine grained: infeasibility of a produced allocation is a different failure
mode from a malformed instance, and experiments distinguish them.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidInstanceError",
    "InvalidRequestError",
    "InfeasibleAllocationError",
    "CapacityBoundError",
    "NoPathError",
    "LPSolveError",
    "MechanismError",
    "MonotonicityViolationError",
    "ExperimentError",
]


class ReproError(Exception):
    """Base class of every exception raised by the :mod:`repro` library."""


class InvalidInstanceError(ReproError):
    """An instance (graph, request set, auction) violates its own invariants."""


class InvalidRequestError(InvalidInstanceError):
    """A single request or bundle is malformed (non-positive demand, etc.)."""


class InfeasibleAllocationError(ReproError):
    """An allocation violates edge capacities or item multiplicities."""


class CapacityBoundError(ReproError):
    """The instance does not satisfy the large-capacity assumption required
    by an algorithm (``B >= ln(m) / eps**2``) and strict mode is enabled."""


class NoPathError(ReproError):
    """No path exists between the source and target of a request."""


class LPSolveError(ReproError):
    """The underlying LP solver failed or returned an unusable status."""


class MechanismError(ReproError):
    """A mechanism-layer failure (e.g. payment computation on a loser)."""


class MonotonicityViolationError(MechanismError):
    """An empirical monotonicity audit found a violating deviation."""


class ExperimentError(ReproError):
    """An experiment harness was misconfigured or produced no data."""
